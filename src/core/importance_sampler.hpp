#pragma once

// Single-window importance sampling (paper Algorithm 1).
//
//   1. Sample (theta_i, s_i, rho_i) from the window proposal.
//   2. Propagate all tuples through one Simulator::run_batch call over a
//      structure-of-arrays EnsembleBuffer (OpenMP-parallel inside the
//      backend; every trajectory owns a counter-based RNG stream addressed
//      by its identity, so results are independent of thread count).
//   3. Weight each trajectory by the window likelihood of the observed
//      case (and optionally death) counts -- bias and likelihood read and
//      write the buffer's day-major row spans in place.
//   4. Resample to construct the posterior, then regenerate end-of-window
//      checkpoints for the unique survivors only via a second, small
//      run_batch over a survivor ensemble. Regeneration re-runs the
//      deterministic (seed, stream)-addressed simulation instead of
//      storing every candidate's state: checkpoints cost memory, re-runs
//      cost one window of compute, and survivors are few.

#include <cstdint>
#include <functional>
#include <span>

#include "core/bias_model.hpp"
#include "core/data.hpp"
#include "core/likelihood.hpp"
#include "core/particle.hpp"
#include "core/simulator.hpp"
#include "stats/resampling.hpp"

namespace epismc::core {

/// Parameters proposed for one particle.
struct ProposedParams {
  double theta = 0.0;
  double rho = 1.0;
  std::uint32_t parent = 0;  // index into the parent-state vector
};

/// Callable drawing the j-th proposal; receives a dedicated engine whose
/// stream is derived from (window seed, j) so proposals are reproducible.
using ParamProposal =
    std::function<ProposedParams(rng::Engine& eng, std::uint32_t j)>;

struct WindowSpec {
  std::int32_t from_day = 0;
  std::int32_t to_day = 0;
  std::uint32_t window_index = 0;
  std::size_t n_params = 1000;      // unique (theta, rho) draws
  std::size_t replicates = 10;      // seeds per draw
  std::size_t resample_size = 2000; // posterior draws
  bool common_random_numbers = true;
  bool use_deaths = false;
  stats::ResamplingScheme scheme = stats::ResamplingScheme::kSystematic;
  std::uint64_t seed = 0;  // base randomness identity for this window

  /// Throws std::invalid_argument on an inverted window or zero-sized
  /// budget; `data` (when provided) must cover [from_day, to_day] and
  /// carry a death series whenever use_deaths is set.
  /// run_importance_window calls this before doing any work, so a
  /// misconfigured window fails up front instead of mid-propagation.
  void validate(const ObservedData* data = nullptr) const;
};

/// Run one calibration window; `parents` must outlive the call.
/// `case_likelihood` scores the reported-case stream, `death_likelihood`
/// the death stream (paper eq. 4 composes the two as independent factors;
/// the streams live on very different count magnitudes, so they get
/// separate error models).
[[nodiscard]] WindowResult run_importance_window(
    const Simulator& sim, const Likelihood& case_likelihood,
    const Likelihood& death_likelihood, const BiasModel& bias,
    const ObservedData& data, std::span<const epi::Checkpoint> parents,
    const WindowSpec& spec, const ParamProposal& propose);

/// Convenience overload: one error model for both streams. The forwarded
/// call validates the spec against the data up front, so a deaths-enabled
/// spec over case-only data fails with a precise message rather than deep
/// in the window loop.
[[nodiscard]] inline WindowResult run_importance_window(
    const Simulator& sim, const Likelihood& likelihood, const BiasModel& bias,
    const ObservedData& data, std::span<const epi::Checkpoint> parents,
    const WindowSpec& spec, const ParamProposal& propose) {
  return run_importance_window(sim, likelihood, likelihood, bias, data,
                               parents, spec, propose);
}

}  // namespace epismc::core
