#pragma once

// Single-window importance sampling (paper Algorithm 1), single-pass.
//
//   1. Sample (theta_i, s_i, rho_i) from the window proposal.
//   2. Propagate all tuples through one fused Simulator::run_batch call
//      over a structure-of-arrays EnsembleBuffer (OpenMP-parallel inside
//      the backend; every trajectory owns a counter-based RNG stream
//      addressed by its identity, so results are independent of thread
//      count). The same sweep applies the reporting bias, scores the
//      window likelihood against a precomputed observation cache, and --
//      under inline capture -- snapshots each sim's end-of-window state
//      into a typed StatePool, so the ensemble is touched exactly once.
//   3. Normalize weights with a single log-sum-exp pass shared with the
//      log-marginal diagnostic (core::ParticleSystem owns this
//      bookkeeping), then resample the posterior. Under an adaptive
//      InferenceStrategy, a window whose ESS collapses below the
//      configured threshold instead re-scores through a tempering ladder
//      likelihood^phi over the cached per-sim log-likelihoods (each phi
//      bisected to hold the rung ESS at the target -- pure re-weighting,
//      no extra propagation), optionally followed by PMMH-style
//      independence-rejuvenation moves drawn from the window's own
//      proposal (whose density cancels, so acceptance is exactly the
//      likelihood ratio) and propagated through the same fused batch
//      kernel. The full trace lands in WindowResult::smc.
//   4. Keep end states for the unique resampled survivors only: inline
//      capture compacts the pool down to the survivors (O(survivors)
//      pointer moves, no re-simulation, no serialization). CapturePolicy
//      can instead defer capture to a replay pass over the survivors --
//      the pre-single-pass behaviour, retained for backends whose states
//      are too large to hold for every candidate (the ABM's agent arrays
//      at scale): checkpoints cost memory, re-runs cost one window of
//      compute, and survivors are few.

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>

#include "core/bias_model.hpp"
#include "core/data.hpp"
#include "core/likelihood.hpp"
#include "core/particle.hpp"
#include "core/particle_system.hpp"
#include "core/simulator.hpp"
#include "core/state_pool.hpp"
#include "stats/resampling.hpp"

namespace epismc::core {

/// Parameters proposed for one particle.
struct ProposedParams {
  double theta = 0.0;
  double rho = 1.0;
  std::uint32_t parent = 0;  // index into the parent-state pool
};

/// Callable drawing the j-th proposal; receives a dedicated engine whose
/// stream is derived from (window seed, j) so proposals are reproducible.
using ParamProposal =
    std::function<ProposedParams(rng::Engine& eng, std::uint32_t j)>;

/// How a window's end-of-window states are captured.
enum class CapturePolicy : std::uint8_t {
  /// Inline when n_sims * approx_state_bytes fits the spec's inline
  /// budget, deferred replay otherwise. The default: compact models
  /// (SEIR, chain-binomial) capture inline, large agent-array states fall
  /// back to replay.
  kAuto,
  /// Snapshot every sim's end state into the pool during the weighted
  /// pass; survivors are kept by compaction. No second propagation pass.
  kInline,
  /// Propagate the weighted pass without capture, then re-run the unique
  /// resampled survivors through the window to regenerate their end
  /// states (bit-identical by stream discipline). The legacy two-pass
  /// path; costs up to one extra window of compute.
  kDeferredReplay,
};

[[nodiscard]] const char* to_string(CapturePolicy policy);

struct WindowSpec {
  std::int32_t from_day = 0;
  std::int32_t to_day = 0;
  std::uint32_t window_index = 0;
  std::size_t n_params = 1000;      // unique (theta, rho) draws
  std::size_t replicates = 10;      // seeds per draw
  std::size_t resample_size = 2000; // posterior draws
  bool common_random_numbers = true;
  bool use_deaths = false;
  stats::ResamplingScheme scheme = stats::ResamplingScheme::kSystematic;
  std::uint64_t seed = 0;  // base randomness identity for this window

  /// End-state capture strategy (see CapturePolicy).
  CapturePolicy capture = CapturePolicy::kAuto;
  /// kAuto's memory ceiling for inline capture: the peak transient cost of
  /// holding every candidate's end state, n_sims * approx_state_bytes.
  std::size_t inline_state_budget = std::size_t{512} << 20;  // 512 MiB

  /// How scored likelihoods become the posterior sample (see
  /// core::InferenceStrategy). kSingleStage is the paper's scheme and
  /// reproduces the historical path bit for bit; the adaptive strategies
  /// engage a temper ladder only when the window degenerates.
  InferenceStrategy inference = InferenceStrategy::kSingleStage;
  /// Degeneracy trigger and per-rung target, as a fraction of n_sims: the
  /// ladder engages when single-stage ESS < ess_threshold * n_sims, and
  /// each rung's temperature is bisected so the rung ESS stays at that
  /// level. Must lie in (0, 1).
  double ess_threshold = 0.5;
  /// Hard cap on ladder rungs; the last rung always completes to phi = 1
  /// (possibly below the ESS target, which the diagnostics record).
  std::size_t max_temper_stages = 12;
  /// Rejuvenation rounds after a triggered ladder (kTemperedRejuvenate).
  std::size_t rejuvenation_moves = 1;

  /// What to do with a draw whose log-likelihood scores non-finite (NaN /
  /// +inf): quarantine it to -inf with a DegeneracyReport entry, or throw
  /// CalibrationError. See core::DegeneracyPolicy.
  DegeneracyPolicy on_degenerate = DegeneracyPolicy::kQuarantine;

  /// Throws std::invalid_argument on an inverted window, zero-sized
  /// budget, or out-of-range inference knobs (ESS threshold outside
  /// (0, 1), zero ladder/move caps); `data` (when provided) must cover
  /// [from_day, to_day] and carry a death series whenever use_deaths is
  /// set. run_importance_window calls this before doing any work, so a
  /// misconfigured window fails up front instead of mid-propagation.
  void validate(const ObservedData* data = nullptr) const;
};

/// Run one calibration window; `parents` must outlive the call and must
/// come from this simulator's make_pool().
/// `case_likelihood` scores the reported-case stream, `death_likelihood`
/// the death stream (paper eq. 4 composes the two as independent factors;
/// the streams live on very different count magnitudes, so they get
/// separate error models).
[[nodiscard]] WindowResult run_importance_window(
    const Simulator& sim, const Likelihood& case_likelihood,
    const Likelihood& death_likelihood, const BiasModel& bias,
    const ObservedData& data, const StatePool& parents, const WindowSpec& spec,
    const ParamProposal& propose);

/// io-boundary overload: parent states arrive as portable checkpoints and
/// are pooled through the simulator's typed converter before the window
/// runs (one parse per parent).
[[nodiscard]] WindowResult run_importance_window(
    const Simulator& sim, const Likelihood& case_likelihood,
    const Likelihood& death_likelihood, const BiasModel& bias,
    const ObservedData& data, std::span<const epi::Checkpoint> parents,
    const WindowSpec& spec, const ParamProposal& propose);

/// Convenience overload: one error model for both streams. The forwarded
/// call validates the spec against the data up front, so a deaths-enabled
/// spec over case-only data fails with a precise message rather than deep
/// in the window loop.
[[nodiscard]] inline WindowResult run_importance_window(
    const Simulator& sim, const Likelihood& likelihood, const BiasModel& bias,
    const ObservedData& data, std::span<const epi::Checkpoint> parents,
    const WindowSpec& spec, const ParamProposal& propose) {
  return run_importance_window(sim, likelihood, likelihood, bias, data,
                               parents, spec, propose);
}

/// Pool-parent variant of the single-error-model convenience overload.
[[nodiscard]] inline WindowResult run_importance_window(
    const Simulator& sim, const Likelihood& likelihood, const BiasModel& bias,
    const ObservedData& data, const StatePool& parents, const WindowSpec& spec,
    const ParamProposal& propose) {
  return run_importance_window(sim, likelihood, likelihood, bias, data,
                               parents, spec, propose);
}

namespace detail {

// --- Shared window internals (the streaming calibrator reuses these). ------
//
// src/stream/ splits a window's weighted pass into per-day increments but
// must land on the same posterior bits as run_importance_window. These
// helpers are the single source of truth for a window's stream identities
// and for the post-scoring pipeline (normalize -> strategy dispatch ->
// survivor compaction -> rejuvenation), so the streaming path re-uses the
// batch machinery instead of re-implementing it.

/// The degeneracy classification both scoring paths share: NaN and +inf
/// are numerical failures (demote / throw per policy); -inf is a
/// legitimate impossible trajectory and passes through untouched.
[[nodiscard]] inline bool nonfinite_score(double logw) noexcept {
  return std::isnan(logw) ||
         logw == std::numeric_limits<double>::infinity();
}

/// Fold per-sim quarantine flags (1 = demoted this pass) into a report.
[[nodiscard]] DegeneracyReport collect_degenerate(
    std::span<const std::uint8_t> flags);

/// The kThrow action, shared by the batch window and the streaming day:
/// raises CalibrationError naming `where` and the first offending draws.
[[noreturn]] void throw_degenerate(const std::string& where,
                                   const DegeneracyReport& report);

/// Engine drawing the j-th proposal of a window.
[[nodiscard]] rng::PhiloxEngine proposal_engine(const WindowSpec& spec,
                                                std::uint32_t j);
/// Model-stream key of sim (draw j, replicate r); depends only on r under
/// common random numbers.
[[nodiscard]] std::uint64_t model_stream_key(const WindowSpec& spec,
                                             std::uint32_t j, std::uint32_t r);
/// Bias engine of sim (draw j, replicate r) at its start-of-window
/// position. Bias draws are consumed day-sequentially, so a per-day split
/// that persists this engine across days is bit-identical to one
/// whole-window apply_into call.
[[nodiscard]] rng::PhiloxEngine bias_engine(const WindowSpec& spec,
                                            std::uint32_t j, std::uint32_t r);
/// Engine of the single-stage posterior resample.
[[nodiscard]] rng::PhiloxEngine resample_engine(const WindowSpec& spec);

/// Stages 1-2 of a window: draw the spec's n_params proposals from their
/// per-(window, j) engines and fill the ensemble's identity / parameter /
/// RNG columns. `ens` must be presized to n_params * replicates rows.
void layout_window_ensemble(const WindowSpec& spec, const StatePool& parents,
                            const ParamProposal& propose, EnsembleBuffer& ens);

/// Everything the post-scoring pipeline reads. References must outlive the
/// resolve_window_posterior call (they are call-scoped, not stored).
struct WindowPosteriorInputs {
  const Simulator& sim;
  const Likelihood& case_likelihood;
  const Likelihood& death_likelihood;
  const BiasModel& bias;
  const StatePool& parents;
  const WindowSpec& spec;
  const ParamProposal& propose;
  const ObservationCache& case_cache;   // prepared over the full window
  const ObservationCache& death_cache;  // empty unless spec.use_deaths
  /// Full-window log-likelihood per sim for rejuvenation acceptance.
  /// Empty means "use the ensemble's log_weight column" (the batch case);
  /// the streaming driver passes its own accumulators here because after a
  /// mid-window resample the log_weight column only covers the tail.
  std::span<const double> rejuvenation_loglik = {};
  /// Draws the scoring pass quarantined (log-likelihood demoted to -inf
  /// under DegeneracyPolicy::kQuarantine); copied onto result.smc and
  /// cited when the whole window turns out degenerate.
  DegeneracyReport degeneracy = {};
};

/// Stages 3-6 of a window, operating on result.ensemble (whose log_weight
/// column must hold the scored per-sim log-likelihoods): normalize weights
/// and diagnostics, dispatch the inference strategy (single resample or
/// ESS-triggered temper ladder), keep end states for the unique survivors
/// (compacting `capture` under inline capture, deferred replay otherwise),
/// and run rejuvenation moves when the strategy asks for them. Fills
/// result.{weights, resampled, state_pool, sim_to_state, rejuvenated,
/// diag, smc} exactly as run_importance_window does.
void resolve_window_posterior(const WindowPosteriorInputs& in,
                              std::shared_ptr<StatePool> capture,
                              bool inline_capture, WindowResult& result);

}  // namespace detail

}  // namespace epismc::core
