#pragma once

// Synthetic ground truth (paper §V-A).
//
// The experiments calibrate against data simulated from the same model
// family: the transmission rate theta follows the schedule 0.30 / 0.27 /
// 0.25 / 0.40 switching at days 34, 48 and 62, and observed cases are a
// binomial thinning of true cases with reporting probability rho following
// 0.60 / 0.70 / 0.85 / 0.80 on the same horizons (reporting improves as
// the epidemic matures). Deaths are observed without bias.

#include <cstdint>
#include <vector>

#include "core/data.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/trajectory.hpp"

namespace epismc::core {

struct ScenarioConfig {
  epi::DiseaseParameters params;
  std::vector<epi::PiecewiseSchedule::Segment> theta_segments = {
      {0, 0.30}, {34, 0.27}, {48, 0.25}, {62, 0.40}};
  std::vector<epi::PiecewiseSchedule::Segment> rho_segments = {
      {0, 0.60}, {34, 0.70}, {48, 0.85}, {62, 0.80}};
  std::int32_t total_days = 100;
  std::int64_t initial_exposed = 400;
  /// Seed 1 produces a truth realization whose window-1 level sits near
  /// the median of the theta = 0.3 path ensemble; atypically low/high
  /// realizations shift the rho estimate along the (level, rho) ridge --
  /// an identifiability feature of the model worth knowing about (see
  /// EXPERIMENTS.md).
  std::uint64_t seed = 1;
  bool use_chain_binomial = false;  // ground truth from the baseline engine
};

struct GroundTruth {
  epi::Trajectory trajectory;       // full simulator output
  std::vector<double> true_cases;   // daily new infections, days 1..T
  std::vector<double> observed_cases;  // binomially thinned
  std::vector<double> deaths;       // observed without bias
  epi::PiecewiseSchedule theta;
  epi::PiecewiseSchedule rho;

  /// Package the observable streams for the calibrator (first day = 1).
  [[nodiscard]] ObservedData observed() const {
    return ObservedData(1, observed_cases, deaths);
  }
  [[nodiscard]] double theta_at(std::int32_t day) const {
    return theta.value_at(day);
  }
  [[nodiscard]] double rho_at(std::int32_t day) const {
    return rho.value_at(day);
  }
};

[[nodiscard]] GroundTruth simulate_ground_truth(const ScenarioConfig& config);

}  // namespace epismc::core
