#pragma once

// Synthetic ground truth (paper §V-A).
//
// The experiments calibrate against data simulated from the same model
// family: the transmission rate theta follows the schedule 0.30 / 0.27 /
// 0.25 / 0.40 switching at days 34, 48 and 62, and observed cases are a
// binomial thinning of true cases with reporting probability rho following
// 0.60 / 0.70 / 0.85 / 0.80 on the same horizons (reporting improves as
// the epidemic matures). Deaths are observed without bias.

#include <cstdint>
#include <vector>

#include "core/data.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/trajectory.hpp"
#include "random/distributions.hpp"
#include "random/seeding.hpp"

namespace epismc::core {

struct ScenarioConfig {
  epi::DiseaseParameters params;
  std::vector<epi::PiecewiseSchedule::Segment> theta_segments = {
      {0, 0.30}, {34, 0.27}, {48, 0.25}, {62, 0.40}};
  std::vector<epi::PiecewiseSchedule::Segment> rho_segments = {
      {0, 0.60}, {34, 0.70}, {48, 0.85}, {62, 0.80}};
  std::int32_t total_days = 100;
  std::int64_t initial_exposed = 400;
  /// Seed 1 produces a truth realization whose window-1 level sits near
  /// the median of the theta = 0.3 path ensemble; atypically low/high
  /// realizations shift the rho estimate along the (level, rho) ridge --
  /// an identifiability feature of the model worth knowing about (see
  /// EXPERIMENTS.md).
  std::uint64_t seed = 1;
  bool use_chain_binomial = false;  // ground truth from the baseline engine
};

struct GroundTruth {
  epi::Trajectory trajectory;       // full simulator output
  std::vector<double> true_cases;   // daily new infections, days 1..T
  std::vector<double> observed_cases;  // binomially thinned
  std::vector<double> deaths;       // observed without bias
  epi::PiecewiseSchedule theta;
  epi::PiecewiseSchedule rho;

  /// Package the observable streams for the calibrator (first day = 1).
  [[nodiscard]] ObservedData observed() const {
    return ObservedData(1, observed_cases, deaths);
  }
  [[nodiscard]] double theta_at(std::int32_t day) const {
    return theta.value_at(day);
  }
  [[nodiscard]] double rho_at(std::int32_t day) const {
    return rho.value_at(day);
  }
};

[[nodiscard]] GroundTruth simulate_ground_truth(const ScenarioConfig& config);

/// Seed of the truth realization. Shared by every engine, so the
/// event-driven, chain-binomial, and agent-based truths of one
/// ScenarioConfig derive their randomness identically.
[[nodiscard]] std::uint64_t truth_seed(const ScenarioConfig& config);

/// Assemble a GroundTruth from any model exposing seed_exposed /
/// run_until_day / trajectory (the epi engines and the agent-based model
/// all do): run it to the horizon, extract the case and death series, and
/// binomially thin the true cases under the day's reporting probability.
/// This is the single definition of the observation model; engine-specific
/// truth generators (core's simulate_ground_truth, api's agent-based
/// preset) must go through it so the thinning never diverges.
template <typename Model>
[[nodiscard]] GroundTruth ground_truth_from_model(Model model,
                                                  const ScenarioConfig& config,
                                                  epi::PiecewiseSchedule theta,
                                                  epi::PiecewiseSchedule rho) {
  model.seed_exposed(config.initial_exposed);
  model.run_until_day(config.total_days);

  GroundTruth truth;
  truth.trajectory = model.trajectory();
  truth.theta = std::move(theta);
  truth.rho = std::move(rho);
  truth.true_cases = truth.trajectory.new_infections(1, config.total_days);
  truth.deaths = truth.trajectory.new_deaths(1, config.total_days);

  // Binomial thinning of true cases with the day's reporting probability.
  constexpr std::uint64_t kThinTag = 0x5448494Eull;  // "THIN"
  auto thin_eng = rng::make_engine(config.seed, {kThinTag});
  truth.observed_cases.reserve(truth.true_cases.size());
  for (std::size_t i = 0; i < truth.true_cases.size(); ++i) {
    const auto day = static_cast<std::int32_t>(i) + 1;
    const auto n = static_cast<std::int64_t>(truth.true_cases[i]);
    const double p = truth.rho.value_at(day);
    truth.observed_cases.push_back(
        static_cast<double>(rng::binomial(thin_eng, n, p)));
  }
  return truth;
}

}  // namespace epismc::core
