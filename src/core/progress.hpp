#pragma once

// Liveness hook for the long-running calibration drivers.
//
// A supervised deployment needs to distinguish "still grinding through an
// expensive window" from "wedged": the drivers cannot know how long a
// window *should* take, but they do know when they cross a progress
// boundary. A ProgressReporter is the single hook the three long-running
// drivers beat at their natural cadence:
//
//   SequentialCalibrator   after every completed window
//   StreamingCalibrator    after every assimilated day
//   ScenarioSweep          per window of every cell (via the cell session)
//
// supervise::Supervisor wires the hook to a heartbeat pipe so a child that
// stops beating for longer than stall_timeout is killed and retried; any
// other monitoring (progress bars, watchdog timers) can ride the same hook.
// The default-constructed reporter is inert and costs one branch per beat,
// so un-supervised runs pay nothing.

#include <functional>
#include <utility>

namespace epismc::core {

struct ProgressReporter {
  /// Called at each progress boundary. Must be cheap, non-throwing in
  /// spirit (a throw would abort the window it interrupts), and -- when
  /// the driver runs its cells OpenMP-parallel -- thread-safe.
  std::function<void()> on_beat;

  void beat() const {
    if (on_beat) on_beat();
  }
  [[nodiscard]] bool armed() const noexcept {
    return static_cast<bool>(on_beat);
  }

  /// Both hooks in sequence (compose a user progress bar with the
  /// supervisor heartbeat); inert parts collapse away.
  [[nodiscard]] static ProgressReporter chain(ProgressReporter a,
                                              ProgressReporter b) {
    if (!a.armed()) return b;
    if (!b.armed()) return a;
    return ProgressReporter{[a = std::move(a), b = std::move(b)]() {
      a.beat();
      b.beat();
    }};
  }
};

}  // namespace epismc::core
