#include "core/particle.hpp"

#include <stdexcept>
#include <string>

#include "stats/descriptive.hpp"

namespace epismc::core {

epi::Checkpoint WindowResult::state_checkpoint(std::uint32_t s) const {
  if (!state_pool || s >= sim_to_state.size() ||
      sim_to_state[s] == kNoState) {
    throw std::logic_error("state_checkpoint: sim " + std::to_string(s) +
                           " kept no end-of-window state");
  }
  return state_pool->to_checkpoint(sim_to_state[s]);
}

std::vector<double> WindowResult::posterior_thetas() const {
  std::vector<double> out;
  out.reserve(resampled.size());
  for (const std::uint32_t s : resampled) out.push_back(ensemble.theta[s]);
  return out;
}

std::vector<double> WindowResult::posterior_rhos() const {
  std::vector<double> out;
  out.reserve(resampled.size());
  for (const std::uint32_t s : resampled) out.push_back(ensemble.rho[s]);
  return out;
}

std::vector<double> WindowResult::posterior_quantile(Series field,
                                                     double q) const {
  if (resampled.empty()) {
    throw std::logic_error("posterior_quantile: window not yet resampled");
  }
  const std::size_t days = window_length();
  std::vector<double> out(days);
  std::vector<double> column(resampled.size());
  for (std::size_t d = 0; d < days; ++d) {
    for (std::size_t i = 0; i < resampled.size(); ++i) {
      column[i] = ensemble.series(field, resampled[i])[d];
    }
    out[d] = stats::quantile(column, q);
  }
  return out;
}

}  // namespace epismc::core
