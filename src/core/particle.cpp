#include "core/particle.hpp"

#include <ostream>
#include <stdexcept>
#include <string>

#include "stats/descriptive.hpp"

namespace epismc::core {

epi::Checkpoint WindowResult::state_checkpoint(std::uint32_t s) const {
  if (!state_pool || s >= sim_to_state.size() ||
      sim_to_state[s] == kNoState) {
    throw std::logic_error("state_checkpoint: sim " + std::to_string(s) +
                           " kept no end-of-window state");
  }
  return state_pool->to_checkpoint(sim_to_state[s]);
}

double WindowResult::draw_theta(std::size_t i) const {
  if (rejuvenated) return rejuvenated->theta.at(i);
  return ensemble.theta[resampled.at(i)];
}

double WindowResult::draw_rho(std::size_t i) const {
  if (rejuvenated) return rejuvenated->rho.at(i);
  return ensemble.rho[resampled.at(i)];
}

std::uint32_t WindowResult::draw_state_slot(std::size_t i) const {
  const std::uint32_t slot = rejuvenated ? rejuvenated->state_slot.at(i)
                                         : sim_to_state[resampled.at(i)];
  if (slot == kNoState) {
    throw std::logic_error("draw_state_slot: draw " + std::to_string(i) +
                           " kept no end-of-window state");
  }
  return slot;
}

std::span<const double> WindowResult::draw_series(EnsembleBuffer::Series s,
                                                  std::size_t i) const {
  if (rejuvenated && rejuvenated->moved.at(i)) {
    return rejuvenated->series.series(s, rejuvenated->series_row[i]);
  }
  return ensemble.series(s, resampled.at(i));
}

std::vector<double> WindowResult::posterior_thetas() const {
  std::vector<double> out;
  out.reserve(resampled.size());
  for (std::size_t i = 0; i < resampled.size(); ++i) {
    out.push_back(draw_theta(i));
  }
  return out;
}

std::vector<double> WindowResult::posterior_rhos() const {
  std::vector<double> out;
  out.reserve(resampled.size());
  for (std::size_t i = 0; i < resampled.size(); ++i) {
    out.push_back(draw_rho(i));
  }
  return out;
}

std::vector<double> WindowResult::posterior_quantile(Series field,
                                                     double q) const {
  if (resampled.empty()) {
    throw std::logic_error("posterior_quantile: window not yet resampled");
  }
  const std::size_t days = window_length();
  std::vector<double> out(days);
  std::vector<double> column(resampled.size());
  for (std::size_t d = 0; d < days; ++d) {
    for (std::size_t i = 0; i < resampled.size(); ++i) {
      column[i] = draw_series(field, i)[d];
    }
    out[d] = stats::quantile(column, q);
  }
  return out;
}

void write_smc_diagnostics_csv(std::ostream& os,
                               std::span<const WindowResult> windows) {
  os << "window,from_day,to_day,strategy,kind,index,phi,ess,"
        "log_marginal_increment,acceptance_rate\n";
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const WindowResult& win = windows[w];
    const SmcDiagnostics& d = win.smc;
    const std::string prefix = std::to_string(w) + "," +
                               std::to_string(win.from_day) + "," +
                               std::to_string(win.to_day) + "," +
                               to_string(d.strategy) + ",";
    for (std::size_t k = 0; k < d.stages.size(); ++k) {
      const SmcStage& s = d.stages[k];
      os << prefix << "stage," << k << "," << s.phi << "," << s.ess << ","
         << s.log_marginal_increment << ",\n";
    }
    for (std::size_t r = 0; r < d.move_acceptance.size(); ++r) {
      os << prefix << "move," << r << "," << 1.0 << "," << d.final_ess
         << ",," << d.move_acceptance[r] << "\n";
    }
  }
}

}  // namespace epismc::core
