#include "core/particle.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace epismc::core {

std::vector<double> WindowResult::posterior_thetas() const {
  std::vector<double> out;
  out.reserve(resampled.size());
  for (const std::uint32_t s : resampled) out.push_back(sims[s].theta);
  return out;
}

std::vector<double> WindowResult::posterior_rhos() const {
  std::vector<double> out;
  out.reserve(resampled.size());
  for (const std::uint32_t s : resampled) out.push_back(sims[s].rho);
  return out;
}

std::vector<double> WindowResult::posterior_quantile(Series field,
                                                     double q) const {
  if (resampled.empty()) {
    throw std::logic_error("posterior_quantile: window not yet resampled");
  }
  const auto series_of = [&](const SimRecord& rec) -> const std::vector<double>& {
    switch (field) {
      case Series::kTrueCases: return rec.true_cases;
      case Series::kObsCases: return rec.obs_cases;
      case Series::kDeaths: return rec.deaths;
    }
    throw std::logic_error("posterior_quantile: bad series");
  };
  const std::size_t days = window_length();
  std::vector<double> out(days);
  std::vector<double> column(resampled.size());
  for (std::size_t d = 0; d < days; ++d) {
    for (std::size_t i = 0; i < resampled.size(); ++i) {
      column[i] = series_of(sims[resampled[i]])[d];
    }
    out[d] = stats::quantile(column, q);
  }
  return out;
}

}  // namespace epismc::core
