#include "core/sequential_calibrator.hpp"

#include <stdexcept>

#include "api/components.hpp"
#include "fault/fault.hpp"
#include "random/engines.hpp"

namespace epismc::core {

void CalibrationConfig::validate() const {
  if (windows.empty()) {
    throw std::invalid_argument("CalibrationConfig: no windows");
  }
  for (std::size_t m = 0; m < windows.size(); ++m) {
    if (windows[m].second < windows[m].first) {
      throw std::invalid_argument("CalibrationConfig: window ends before start");
    }
    if (m > 0 && windows[m].first != windows[m - 1].second + 1) {
      throw std::invalid_argument(
          "CalibrationConfig: windows must be contiguous");
    }
  }
  if (n_params == 0 || replicates == 0 || resample_size == 0) {
    throw std::invalid_argument("CalibrationConfig: zero-sized budget");
  }
  if (!(defensive_fraction > 0.0 && defensive_fraction <= 1.0)) {
    // A zero (or negative) fraction silently disables the defensive prior
    // mixture -- the safeguard that keeps regime shifts wider than the
    // jitter kernel reachable (the paper's day-62 jump). Disabling a
    // safeguard must be an explicit decision, so the config rejects it
    // instead of accepting a footgun default.
    throw std::invalid_argument(
        "CalibrationConfig: defensive_fraction must be in (0, 1], got " +
        std::to_string(defensive_fraction) +
        " (a zero/negative fraction disables the defensive prior mixture "
        "that keeps regime shifts reachable; use a small positive fraction "
        "such as 0.01 to approximate 'off')");
  }
  if (!(ess_threshold > 0.0 && ess_threshold < 1.0)) {
    throw std::invalid_argument(
        "CalibrationConfig: ess_threshold must be a fraction of n_sims in "
        "(0, 1), got " + std::to_string(ess_threshold));
  }
  if (max_temper_stages == 0) {
    throw std::invalid_argument(
        "CalibrationConfig: max_temper_stages must be >= 1");
  }
  if (inference == InferenceStrategy::kTemperedRejuvenate &&
      rejuvenation_moves == 0) {
    throw std::invalid_argument(
        "CalibrationConfig: the tempered+rejuvenate strategy needs "
        "rejuvenation_moves >= 1 (use \"tempered\" for ladder-only runs)");
  }
  if (burnin_day < 0 || burnin_day >= windows.front().first) {
    throw std::invalid_argument(
        "CalibrationConfig: burnin_day must be in [0, first window start)");
  }
  if (!theta_prior || !rho_prior) {
    throw std::invalid_argument("CalibrationConfig: null prior");
  }
  // Resolve every named component now: a typo'd likelihood (including the
  // death-stream one, which a cases-only run never touches) or bias model
  // must fail here, before any window has burned compute -- not on the run
  // that first exercises it.
  (void)api::likelihoods().create(likelihood_name, likelihood_parameter);
  (void)api::likelihoods().create(death_likelihood_name,
                                  death_likelihood_parameter);
  (void)api::bias_models().create(bias_name);
}

PosteriorDraws PosteriorDraws::from_window(const WindowResult& w) {
  const std::size_t n = w.n_draws();
  PosteriorDraws d;
  d.theta.resize(n);
  d.rho.resize(n);
  d.parent_slot.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.theta[i] = w.draw_theta(i);
    d.rho[i] = w.draw_rho(i);
    d.parent_slot[i] = w.draw_state_slot(i);
  }
  return d;
}

ParamProposal make_prior_proposal(const CalibrationConfig& config,
                                  bool needs_rho) {
  return [theta_prior = config.theta_prior, rho_prior = config.rho_prior,
          needs_rho](rng::Engine& eng, std::uint32_t) {
    ProposedParams p;
    p.theta = theta_prior->sample(eng);
    p.rho = needs_rho ? rho_prior->sample(eng) : 1.0;
    p.parent = 0;
    return p;
  };
}

ParamProposal make_posterior_proposal(
    const CalibrationConfig& config,
    std::shared_ptr<const PosteriorDraws> draws, bool needs_rho) {
  if (!draws || draws->size() == 0) {
    throw std::invalid_argument(
        "make_posterior_proposal: empty posterior draw set");
  }
  return [draws = std::move(draws), theta_prior = config.theta_prior,
          rho_prior = config.rho_prior, theta_jitter = config.theta_jitter,
          rho_jitter = config.rho_jitter,
          defensive_fraction = config.defensive_fraction,
          needs_rho](rng::Engine& eng, std::uint32_t j) {
    const std::size_t draw = j % draws->size();
    ProposedParams p;
    if (rng::uniform_double(eng) < defensive_fraction) {
      // Defensive component: fresh draw from the window-1 priors so that
      // parameter jumps beyond the jitter width stay reachable.
      p.theta = theta_prior->sample(eng);
      p.rho = needs_rho ? rho_prior->sample(eng) : 1.0;
    } else {
      p.theta = theta_jitter.sample(eng, draws->theta[draw]);
      p.rho = needs_rho ? rho_jitter.sample(eng, draws->rho[draw]) : 1.0;
    }
    p.parent = draws->parent_slot[draw];
    return p;
  };
}

WindowSpec make_window_spec(const CalibrationConfig& config, std::size_t m) {
  if (m >= config.windows.size()) {
    throw std::out_of_range("make_window_spec: window " + std::to_string(m) +
                            " of " + std::to_string(config.windows.size()));
  }
  WindowSpec spec;
  spec.from_day = config.windows[m].first;
  spec.to_day = config.windows[m].second;
  spec.window_index = static_cast<std::uint32_t>(m);
  spec.n_params = config.n_params;
  spec.replicates = config.replicates;
  spec.resample_size = config.resample_size;
  spec.common_random_numbers = config.common_random_numbers;
  spec.use_deaths = config.use_deaths;
  spec.scheme = config.scheme;
  spec.seed = rng::hash_combine(config.seed, m);
  spec.capture = config.capture;
  spec.inline_state_budget = config.inline_state_budget;
  spec.inference = config.inference;
  spec.ess_threshold = config.ess_threshold;
  spec.max_temper_stages = config.max_temper_stages;
  spec.rejuvenation_moves = config.rejuvenation_moves;
  spec.on_degenerate = config.on_degenerate;
  return spec;
}

SequentialCalibrator::SequentialCalibrator(const Simulator& sim,
                                           ObservedData data,
                                           CalibrationConfig config)
    : sim_(sim), data_(std::move(data)), config_(std::move(config)) {
  config_.validate();
  // The window count is fixed, so reserving keeps WindowResult references
  // returned by run_next_window stable across later windows.
  results_.reserve(config_.windows.size());
  likelihood_ =
      make_likelihood(config_.likelihood_name, config_.likelihood_parameter);
  death_likelihood_ = make_likelihood(config_.death_likelihood_name,
                                      config_.death_likelihood_parameter);
  bias_ = make_bias_model(config_.bias_name);

  const auto [first_from, first_to] = config_.windows.front();
  const auto [last_from, last_to] = config_.windows.back();
  if (data_.first_day() > first_from || data_.last_day() < last_to) {
    throw std::invalid_argument(
        "SequentialCalibrator: observed data does not cover the windows");
  }
  if (config_.use_deaths && !data_.has_deaths()) {
    throw std::invalid_argument(
        "SequentialCalibrator: use_deaths set but no death series");
  }
}

const epi::Checkpoint& SequentialCalibrator::initial_state() const {
  if (!initial_pool_ || initial_pool_->empty()) {
    throw std::logic_error("SequentialCalibrator: no window has run yet");
  }
  return initial_ckpt_;
}

const WindowResult& SequentialCalibrator::run_next_window() {
  const std::size_t m = results_.size();
  if (m >= config_.windows.size()) {
    throw std::logic_error("SequentialCalibrator: all windows already run");
  }
  const WindowSpec spec = make_window_spec(config_, m);
  const bool needs_rho = bias_->uses_rho();

  if (m == 0) {
    // Shared initial state; with the default burnin_day = 0 every particle
    // simulates its own early path and only the seeding is shared. The
    // checkpoint crosses the io boundary exactly once, into the pool.
    initial_ckpt_ = sim_.initial_state(
        config_.burnin_day, rng::hash_combine(config_.seed, 0x494E4954ull));
    initial_pool_ = sim_.make_pool();
    initial_pool_->append_checkpoint(initial_ckpt_);

    results_.push_back(run_importance_window(
        sim_, *likelihood_, *death_likelihood_, *bias_, data_, *initial_pool_,
        spec, make_prior_proposal(config_, needs_rho)));
    fault::hit("window-boundary");
    progress_.beat();
    return results_.back();
  }

  // Later windows: posterior draws of window m-1 are the proposal centers,
  // and their pooled end states are the restart points -- live typed
  // states, never re-parsed from bytes.
  const WindowResult& prev = results_[m - 1];
  if (!prev.state_pool || prev.state_pool->empty()) {
    throw std::logic_error("SequentialCalibrator: previous window kept no states");
  }
  const ParamProposal propose = make_posterior_proposal(
      config_, std::make_shared<PosteriorDraws>(PosteriorDraws::from_window(prev)),
      needs_rho);
  results_.push_back(run_importance_window(sim_, *likelihood_,
                                           *death_likelihood_, *bias_, data_,
                                           *prev.state_pool, spec, propose));
  fault::hit("window-boundary");
  progress_.beat();
  return results_.back();
}

void SequentialCalibrator::run_all() {
  while (!finished()) run_next_window();
}

}  // namespace epismc::core
