#pragma once

// Particle marginal Metropolis-Hastings (PMMH) comparator.
//
// The paper's importance-sampling scheme draws the whole parameter cloud up
// front; the classical alternative from the particle-filter literature it
// cites (Flury & Shephard 2011, Doucet et al.) is pseudo-marginal MCMC: a
// random-walk Metropolis chain over (theta, rho) whose acceptance ratio
// uses an *unbiased estimate* of the window likelihood obtained by
// averaging replicate simulations. Exact in the pseudo-marginal sense for
// any replicate count. Implemented here as a baseline/ablation so the
// trade-off the paper implies (one embarrassingly parallel sweep vs an
// inherently sequential chain) can be measured rather than asserted.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bias_model.hpp"
#include "core/data.hpp"
#include "core/likelihood.hpp"
#include "core/prior.hpp"
#include "core/simulator.hpp"

namespace epismc::core {

struct PmmhConfig {
  std::int32_t from_day = 20;
  std::int32_t to_day = 33;
  std::size_t iterations = 1500;
  std::size_t burnin = 300;
  std::size_t replicates = 10;  // simulations per likelihood estimate
  double theta_step = 0.02;     // random-walk sd
  double rho_step = 0.06;
  std::uint64_t seed = 99;
  bool use_deaths = false;

  std::shared_ptr<const Prior> theta_prior =
      std::make_shared<UniformPrior>(0.1, 0.5);
  std::shared_ptr<const Prior> rho_prior =
      std::make_shared<BetaPrior>(4.0, 1.0);

  void validate() const;
};

struct PmmhResult {
  std::vector<double> theta_chain;   // post-burnin draws
  std::vector<double> rho_chain;
  std::vector<double> loglik_chain;  // estimated log-likelihood per draw
  double acceptance_rate = 0.0;
  std::size_t simulations_used = 0;  // total simulator runs

  [[nodiscard]] double theta_mean() const;
  [[nodiscard]] double theta_sd() const;
  [[nodiscard]] double rho_mean() const;
};

/// Run a PMMH chain for one calibration window, starting from the prior
/// mean. `init` is the shared initial checkpoint particles branch from.
[[nodiscard]] PmmhResult run_pmmh(const Simulator& sim,
                                  const Likelihood& likelihood,
                                  const BiasModel& bias,
                                  const ObservedData& data,
                                  const epi::Checkpoint& init,
                                  const PmmhConfig& config);

}  // namespace epismc::core
