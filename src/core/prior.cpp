#include "core/prior.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "stats/densities.hpp"

namespace epismc::core {

UniformPrior::UniformPrior(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("UniformPrior: hi must be > lo");
}

double UniformPrior::sample(rng::Engine& eng) const {
  return rng::uniform_range(eng, lo_, hi_);
}

double UniformPrior::logpdf(double x) const {
  return stats::uniform_logpdf(x, lo_, hi_);
}

std::string UniformPrior::describe() const {
  std::ostringstream os;
  os << "Uniform(" << lo_ << ", " << hi_ << ")";
  return os.str();
}

BetaPrior::BetaPrior(double a, double b) : a_(a), b_(b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("BetaPrior: a and b must be > 0");
  }
}

double BetaPrior::sample(rng::Engine& eng) const {
  return rng::beta(eng, a_, b_);
}

double BetaPrior::logpdf(double x) const {
  return stats::beta_logpdf(x, a_, b_);
}

std::string BetaPrior::describe() const {
  std::ostringstream os;
  os << "Beta(" << a_ << ", " << b_ << ")";
  return os.str();
}

double PointPrior::logpdf(double x) const {
  return x == value_ ? 0.0 : -std::numeric_limits<double>::infinity();
}

std::string PointPrior::describe() const {
  std::ostringstream os;
  os << "Point(" << value_ << ")";
  return os.str();
}

}  // namespace epismc::core
