#pragma once

// Reporting-bias models (paper §IV-A).
//
// The observation model is y_t = eta_obs_t(theta, s, rho) + eps_t with
// eta_obs_t ~ Binomial(eta_t, rho): every true case is independently
// reported with probability rho. A bias model maps the simulator's true
// counts to simulated *reported* counts; the SMC treats rho as an unknown
// to be inferred jointly with theta. IdentityBias deliberately ignores the
// bias (the E11 ablation shows what that does to the posterior).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "random/distributions.hpp"

namespace epismc::core {

class BiasModel {
 public:
  virtual ~BiasModel() = default;

  /// Map true counts to simulated reported counts given reporting
  /// probability rho, consuming randomness from `eng`.
  [[nodiscard]] virtual std::vector<double> apply(
      rng::Engine& eng, std::span<const double> true_counts,
      double rho) const = 0;

  /// Batched variant writing into a caller-owned row of equal length --
  /// the importance-sampling hot path applies bias straight onto
  /// EnsembleBuffer observation rows through this. Must consume randomness
  /// exactly as apply() does. The default copies through apply(), so
  /// external registry models keep working unchanged; the built-ins
  /// override it allocation-free.
  virtual void apply_into(rng::Engine& eng, std::span<const double> true_counts,
                          double rho, std::span<double> out) const;

  /// True when the model actually uses rho (drives prior handling).
  [[nodiscard]] virtual bool uses_rho() const noexcept = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// y_obs,t ~ Binomial(round(eta_t), rho).
class BinomialBias final : public BiasModel {
 public:
  [[nodiscard]] std::vector<double> apply(rng::Engine& eng,
                                          std::span<const double> true_counts,
                                          double rho) const override;
  void apply_into(rng::Engine& eng, std::span<const double> true_counts,
                  double rho, std::span<double> out) const override;
  [[nodiscard]] bool uses_rho() const noexcept override { return true; }
  [[nodiscard]] std::string name() const override { return "binomial"; }
};

/// Pass-through: pretends reporting is perfect.
class IdentityBias final : public BiasModel {
 public:
  [[nodiscard]] std::vector<double> apply(rng::Engine& eng,
                                          std::span<const double> true_counts,
                                          double rho) const override;
  void apply_into(rng::Engine& eng, std::span<const double> true_counts,
                  double rho, std::span<double> out) const override;
  [[nodiscard]] bool uses_rho() const noexcept override { return false; }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

/// Deterministic thinning: y_obs,t = rho * eta_t (expected-value variant,
/// no binomial noise). Ablation comparator isolating the stochastic part
/// of the bias model.
class DeterministicThinning final : public BiasModel {
 public:
  [[nodiscard]] std::vector<double> apply(rng::Engine& eng,
                                          std::span<const double> true_counts,
                                          double rho) const override;
  void apply_into(rng::Engine& eng, std::span<const double> true_counts,
                  double rho, std::span<double> out) const override;
  [[nodiscard]] bool uses_rho() const noexcept override { return true; }
  [[nodiscard]] std::string name() const override {
    return "deterministic-thinning";
  }
};

/// Resolve a bias model by registry name ("binomial", "identity",
/// "deterministic-thinning", plus anything registered at startup).
/// Delegates to api::bias_models(); kept for config-name resolution and
/// source compatibility.
[[nodiscard]] std::unique_ptr<BiasModel> make_bias_model(
    const std::string& name);

}  // namespace epismc::core
