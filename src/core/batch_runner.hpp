#pragma once

// Shared batch-propagation engine for checkpointable model types.
//
// All three built-in backends implement the same Checkpoint / restore /
// branch / run_until_day / trajectory contract, so their native run_batch
// overrides share this one engine. Per buffer range it:
//
//   1. parses every parent checkpoint exactly once into a prototype model
//      (the per-sim path re-deserializes the parent for every trajectory);
//   2. per sim, copy-assigns the prototype into a per-thread scratch model
//      -- reusing the event-ring / trajectory / agent-array capacity the
//      previous sim on that thread left behind, so the parallel loop does
//      not allocate in steady state -- then branch()es it to the sim's
//      (seed, stream, theta) columns and runs it through the window;
//   3. extracts the output series into per-thread scratch and stores the
//      window tail into the buffer rows via EnsembleBuffer::store_tail.
//
// Results are bit-identical to restore-per-sim: branch() reproduces the
// exact engine/schedule state restore(ckpt, {seed, stream, theta}) builds,
// and every trajectory's randomness is addressed purely by its columns.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/ensemble.hpp"
#include "epi/seir_model.hpp"
#include "epi/trajectory.hpp"
#include "parallel/parallel.hpp"

namespace epismc::core::detail {

template <typename Model>
void run_batch_copying(std::span<const epi::Checkpoint> parents,
                       std::int32_t to_day, EnsembleBuffer& buffer,
                       std::size_t first, std::size_t count,
                       std::span<epi::Checkpoint> end_states) {
  std::vector<Model> prototypes;
  prototypes.reserve(parents.size());
  for (const epi::Checkpoint& p : parents) {
    prototypes.push_back(Model::restore(p));
  }

  struct Workspace {
    std::unique_ptr<Model> model;
    std::vector<double> series;  // full branched series, trimmed on store
  };
  std::vector<Workspace> workspaces(
      static_cast<std::size_t>(parallel::max_threads()));

  parallel::parallel_for(count, [&](std::size_t i) {
    const std::size_t s = first + i;
    const Model& proto = prototypes[buffer.parent[s]];
    // Workspace selection by thread id is safe here: it only decides which
    // scratch memory is reused, never what is computed.
    Workspace& ws = workspaces[static_cast<std::size_t>(parallel::thread_id())];
    if (!ws.model) {
      ws.model = std::make_unique<Model>(proto);
    } else {
      *ws.model = proto;
    }
    Model& m = *ws.model;
    m.branch(buffer.seed[s], buffer.stream[s], buffer.theta[s]);
    const std::int32_t from_day = m.day() + 1;
    m.run_until_day(to_day);

    ws.series.resize(static_cast<std::size_t>(to_day - from_day + 1));
    m.trajectory().copy_series(&epi::DailyRecord::new_infections, from_day,
                               to_day, ws.series);
    buffer.store_tail(EnsembleBuffer::Series::kTrueCases, s, ws.series);
    m.trajectory().copy_series(&epi::DailyRecord::new_deaths, from_day, to_day,
                               ws.series);
    buffer.store_tail(EnsembleBuffer::Series::kDeaths, s, ws.series);
    if (!end_states.empty()) end_states[i] = m.make_checkpoint();
  });
}

}  // namespace epismc::core::detail
