#pragma once

// Shared fused batch-propagation engine for checkpointable model types.
//
// All three built-in backends implement the same restore / branch /
// run_until_day / trajectory / make_checkpoint contract, so their native
// run_batch overrides share this one kernel. Per buffer range it:
//
//   1. reads parent prototypes straight out of the typed ModelStatePool
//      (no per-window checkpoint parsing -- the pool holds the previous
//      window's end states as live model objects);
//   2. per sim, copy-assigns the prototype into a per-thread scratch model
//      -- reusing the event-ring / trajectory / agent-array capacity the
//      previous sim on that thread left behind, so the parallel loop does
//      not allocate in steady state -- then branch()es it to the sim's
//      (seed, stream, theta) columns and runs it through the window;
//   3. extracts the output series into the buffer rows, captures the end
//      state into the sink's pool slot (typed copy, no serialization), and
//      runs the sink's fused per-sim hook (bias + likelihood scoring) --
//      one sweep over the ensemble instead of three.
//
// Results are bit-identical to restore-per-sim: branch() reproduces the
// exact engine/schedule state restore(ckpt, {seed, stream, theta}) builds,
// and every trajectory's randomness is addressed purely by its columns.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/ensemble.hpp"
#include "core/simulator.hpp"
#include "core/state_pool.hpp"
#include "epi/seir_model.hpp"
#include "epi/trajectory.hpp"
#include "parallel/parallel.hpp"

namespace epismc::core::detail {

/// Downcast a type-erased pool to this backend's typed pool, with a
/// diagnosable error when a pool from another backend is passed in.
template <typename Model, typename Pool>
auto& typed_pool(Pool& pool, const std::string& backend, const char* role) {
  using Target =
      std::conditional_t<std::is_const_v<Pool>,
                         const ModelStatePool<Model>, ModelStatePool<Model>>;
  auto* typed = dynamic_cast<Target*>(&pool);
  if (typed == nullptr) {
    throw std::invalid_argument("run_batch(" + backend + "): " + role +
                                " pool is '" + pool.backend() +
                                "', not this backend's typed pool -- pools "
                                "must come from this simulator's make_pool()");
  }
  return *typed;
}

/// `prepare` runs on each scratch model right after it is copy-assigned
/// from its prototype and before branch()/propagation -- the hook backends
/// use to normalize per-model execution configuration that rides along in
/// checkpoints (the ABM forces its configured day-step engine here, so
/// cross-engine parent states are honored on the batch path exactly like
/// AbmSimulator::run_window does per sim).
template <typename Model, typename PrepareFn>
void run_batch_fused(const StatePool& parents_erased, std::int32_t to_day,
                     EnsembleBuffer& buffer, std::size_t first,
                     std::size_t count, const BatchSink& sink,
                     const std::string& backend, PrepareFn&& prepare) {
  const ModelStatePool<Model>& parents =
      typed_pool<Model>(parents_erased, backend, "parent");
  ModelStatePool<Model>* capture =
      sink.capture == nullptr
          ? nullptr
          : &typed_pool<Model>(*sink.capture, backend, "capture");

  struct Workspace {
    std::unique_ptr<Model> model;
    std::vector<double> series;  // full branched series, trimmed on store
  };
  std::vector<Workspace> workspaces(
      static_cast<std::size_t>(parallel::max_threads()));

  parallel::parallel_for(count, [&](std::size_t i) {
    const std::size_t s = first + i;
    const Model& proto = parents.at(buffer.parent[s]);
    // Workspace selection by thread id is safe here: it only decides which
    // scratch memory is reused, never what is computed. Under every
    // backend thread_id() is unique per concurrently-running body and
    // < max_threads() (pool lanes are single-occupancy; external
    // submitters serialize on lane 0 -- see parallel/task_pool.hpp).
    Workspace& ws = workspaces[static_cast<std::size_t>(parallel::thread_id())];
    if (!ws.model) {
      ws.model = std::make_unique<Model>(proto);
    } else {
      *ws.model = proto;
    }
    Model& m = *ws.model;
    prepare(m);
    m.branch(buffer.seed[s], buffer.stream[s], buffer.theta[s]);
    const std::int32_t from_day = m.day() + 1;
    m.run_until_day(to_day);

    ws.series.resize(static_cast<std::size_t>(to_day - from_day + 1));
    m.trajectory().copy_series(&epi::DailyRecord::new_infections, from_day,
                               to_day, ws.series);
    buffer.store_tail(EnsembleBuffer::Series::kTrueCases, s, ws.series);
    m.trajectory().copy_series(&epi::DailyRecord::new_deaths, from_day, to_day,
                               ws.series);
    buffer.store_tail(EnsembleBuffer::Series::kDeaths, s, ws.series);
    if (capture != nullptr) capture->set(s, m);
    if (sink.on_sim) sink.on_sim(s);
  });
}

template <typename Model>
void run_batch_fused(const StatePool& parents_erased, std::int32_t to_day,
                     EnsembleBuffer& buffer, std::size_t first,
                     std::size_t count, const BatchSink& sink,
                     const std::string& backend) {
  run_batch_fused<Model>(parents_erased, to_day, buffer, first, count, sink,
                         backend, [](Model&) {});
}

/// Checkpoint-span compatibility engine: pool the parents (one parse per
/// parent, exactly the old prototype step), run the fused kernel, and
/// serialize the capture pool back into `end_states`. Keeps the legacy
/// run_batch overload byte-for-byte equivalent to its historical
/// behaviour while sharing the single fused loop above.
template <typename Model, typename PrepareFn>
void run_batch_copying(std::span<const epi::Checkpoint> parents,
                       std::int32_t to_day, EnsembleBuffer& buffer,
                       std::size_t first, std::size_t count,
                       std::span<epi::Checkpoint> end_states,
                       const std::string& backend, PrepareFn&& prepare) {
  ModelStatePool<Model> pool;
  pool.resize(parents.size());
  for (std::size_t p = 0; p < parents.size(); ++p) {
    pool.set(p, Model::restore(parents[p]));
  }

  BatchSink sink;
  ModelStatePool<Model> capture;
  if (!end_states.empty()) {
    capture.resize(first + count);
    sink.capture = &capture;
  }
  run_batch_fused<Model>(pool, to_day, buffer, first, count, sink, backend,
                         std::forward<PrepareFn>(prepare));
  for (std::size_t i = 0; i < end_states.size(); ++i) {
    end_states[i] = capture.to_checkpoint(first + i);
  }
}

template <typename Model>
void run_batch_copying(std::span<const epi::Checkpoint> parents,
                       std::int32_t to_day, EnsembleBuffer& buffer,
                       std::size_t first, std::size_t count,
                       std::span<epi::Checkpoint> end_states,
                       const std::string& backend) {
  run_batch_copying<Model>(parents, to_day, buffer, first, count, end_states,
                           backend, [](Model&) {});
}

/// In-place streaming advance: unlike run_batch_fused there is no
/// copy-and-branch -- each pooled model keeps its own engine position and
/// trajectory and simply runs forward, so a sequence of advance_batch
/// calls reproduces one long run_until_day bit for bit. The buffer rows
/// receive the tail of the newly simulated days only.
template <typename Model, typename PrepareFn>
void advance_batch_inplace(StatePool& states_erased, std::int32_t to_day,
                           EnsembleBuffer& buffer, std::size_t first,
                           std::size_t count, const BatchSink& sink,
                           const std::string& backend, PrepareFn&& prepare) {
  ModelStatePool<Model>& states =
      typed_pool<Model>(states_erased, backend, "state");
  ModelStatePool<Model>* capture =
      sink.capture == nullptr
          ? nullptr
          : &typed_pool<Model>(*sink.capture, backend, "capture");
  if (first + count > buffer.size() || first + count > states.size()) {
    throw std::out_of_range(
        "advance_batch: sim range exceeds the buffer or state pool");
  }
  // Day-bound pre-pass outside the parallel region, so a stale slot fails
  // with a message instead of an exception racing out of the parallel
  // loop's capture machinery.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t s = first + i;
    if (to_day < states.at(s).day() + 1) {
      throw std::logic_error("advance_batch: slot " + std::to_string(s) +
                             " already sits at day " +
                             std::to_string(states.at(s).day()) +
                             ", cannot advance to day " +
                             std::to_string(to_day));
    }
  }

  struct Workspace {
    std::vector<double> series;  // newly simulated days, trimmed on store
  };
  std::vector<Workspace> workspaces(
      static_cast<std::size_t>(parallel::max_threads()));

  parallel::parallel_for(count, [&](std::size_t i) {
    const std::size_t s = first + i;
    Model& m = states.at(s);
    prepare(m);
    const std::int32_t from_day = m.day() + 1;
    m.run_until_day(to_day);

    Workspace& ws = workspaces[static_cast<std::size_t>(parallel::thread_id())];
    ws.series.resize(static_cast<std::size_t>(to_day - from_day + 1));
    m.trajectory().copy_series(&epi::DailyRecord::new_infections, from_day,
                               to_day, ws.series);
    buffer.store_tail(EnsembleBuffer::Series::kTrueCases, s, ws.series);
    m.trajectory().copy_series(&epi::DailyRecord::new_deaths, from_day, to_day,
                               ws.series);
    buffer.store_tail(EnsembleBuffer::Series::kDeaths, s, ws.series);
    if (capture != nullptr) capture->set(s, m);
    if (sink.on_sim) sink.on_sim(s);
  });
}

/// Streaming resample redistribution: replace the pool with copies of the
/// ancestor slots, then re-branch each copy onto its fresh (seed, stream,
/// theta) identity so duplicated particles diverge from the resample day
/// on, exactly like a copy-and-branch from a one-slot-per-particle parent
/// pool would.
template <typename Model, typename PrepareFn>
void resample_states_inplace(StatePool& states_erased,
                             std::span<const std::uint32_t> ancestors,
                             std::uint64_t seed,
                             std::span<const std::uint64_t> streams,
                             std::span<const double> thetas,
                             const std::string& backend, PrepareFn&& prepare) {
  ModelStatePool<Model>& states =
      typed_pool<Model>(states_erased, backend, "state");
  states.gather(ancestors);
  parallel::parallel_for(states.size(), [&](std::size_t i) {
    Model& m = states.at(i);
    prepare(m);
    m.branch(seed, streams[i], thetas[i]);
  });
}

}  // namespace epismc::core::detail
