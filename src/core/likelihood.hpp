#pragma once

// Window likelihoods (paper eq. 3).
//
// The paper scores simulated against observed series with an independent
// Gaussian on square-root transformed counts, sigma_t = sigma (a variance
// stabilizing transform for counts):
//   log l = sum_t log N( sqrt(y_t) | sqrt(eta_obs_t), sigma^2 ).
// A Poisson likelihood is provided as an alternative error model for the
// likelihood-robustness ablation.

#include <memory>
#include <span>
#include <string>

namespace epismc::core {

class Likelihood {
 public:
  virtual ~Likelihood() = default;

  /// Log-likelihood of `observed` given `simulated` (equal lengths).
  [[nodiscard]] virtual double logpdf(std::span<const double> observed,
                                      std::span<const double> simulated)
      const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Gaussian on sqrt-counts with constant sd (the paper's choice, sigma=1).
class GaussianSqrtLikelihood final : public Likelihood {
 public:
  explicit GaussianSqrtLikelihood(double sigma = 1.0);

  [[nodiscard]] double logpdf(std::span<const double> observed,
                              std::span<const double> simulated) const override;
  [[nodiscard]] std::string name() const override { return "gaussian-sqrt"; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double sigma_;
};

/// Independent Poisson error: y_t ~ Poisson(max(eta_obs_t, floor)).
class PoissonLikelihood final : public Likelihood {
 public:
  explicit PoissonLikelihood(double rate_floor = 0.5);

  [[nodiscard]] double logpdf(std::span<const double> observed,
                              std::span<const double> simulated) const override;
  [[nodiscard]] std::string name() const override { return "poisson"; }

 private:
  double rate_floor_;
};

/// Gaussian on sqrt-counts whose sd grows with the count magnitude the way
/// a negative-binomial observation's would: sd_t = 0.5 * sqrt(1 + eta_t/k)
/// where k is the NB dispersion. At window-1 magnitudes (counts of a few
/// hundred, k = 500) this matches the paper's sigma ~ 1; at the 30000+
/// counts of the final window it relaxes to sd ~ 4, which keeps the
/// ensemble from degenerating to a single trajectory (see EXPERIMENTS.md,
/// substitution note for Figs. 4/5).
class NegBinSqrtLikelihood final : public Likelihood {
 public:
  explicit NegBinSqrtLikelihood(double dispersion_k = 500.0);

  [[nodiscard]] double logpdf(std::span<const double> observed,
                              std::span<const double> simulated) const override;
  [[nodiscard]] std::string name() const override { return "nb-sqrt"; }
  [[nodiscard]] double dispersion() const noexcept { return k_; }

 private:
  double k_;
};

/// Gaussian on raw counts with sd proportional to sqrt(counts)
/// (overdispersion factor `phi`); another robustness comparator.
class GaussianCountLikelihood final : public Likelihood {
 public:
  explicit GaussianCountLikelihood(double phi = 1.0);

  [[nodiscard]] double logpdf(std::span<const double> observed,
                              std::span<const double> simulated) const override;
  [[nodiscard]] std::string name() const override { return "gaussian-count"; }

 private:
  double phi_;
};

/// Resolve a likelihood by registry name ("gaussian-sqrt", "nb-sqrt",
/// "poisson", "gaussian-count", plus anything registered at startup).
/// Delegates to api::likelihoods(); kept for config-name resolution and
/// source compatibility.
[[nodiscard]] std::unique_ptr<Likelihood> make_likelihood(
    const std::string& name, double parameter);

}  // namespace epismc::core
