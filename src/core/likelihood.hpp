#pragma once

// Window likelihoods (paper eq. 3).
//
// The paper scores simulated against observed series with an independent
// Gaussian on square-root transformed counts, sigma_t = sigma (a variance
// stabilizing transform for counts):
//   log l = sum_t log N( sqrt(y_t) | sqrt(eta_obs_t), sigma^2 ).
// A Poisson likelihood is provided as an alternative error model for the
// likelihood-robustness ablation.

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace epismc::core {

class Likelihood;

/// Per-window cache of observation-side likelihood constants.
///
/// A window scores the *same* observed series against every simulated
/// trajectory -- thousands per window, and for PMMH thousands of windows
/// over one series -- so everything that depends only on the observations
/// (sqrt transforms, lgamma(y+1) factorial terms, rounded counts) is
/// precomputed once by Likelihood::prepare and reused by the cached
/// logpdf overload. The cached path is arithmetic-order-identical to the
/// uncached one, so weights stay bit-for-bit reproducible either way.
struct ObservationCache {
  const Likelihood* owner = nullptr;  // likelihood that prepared the cache
  std::vector<double> observed;       // verbatim copy (generic fallback)
  std::vector<double> t0;             // first per-day transform (model-specific)
  std::vector<double> t1;             // second per-day transform
};

class Likelihood {
 public:
  virtual ~Likelihood() = default;

  /// Log-likelihood of `observed` given `simulated` (equal lengths).
  [[nodiscard]] virtual double logpdf(std::span<const double> observed,
                                      std::span<const double> simulated)
      const = 0;

  /// Precompute the observation-side constants for one window of observed
  /// counts. The default caches the series verbatim; built-ins override to
  /// hoist their transforms (see ObservationCache).
  [[nodiscard]] virtual ObservationCache prepare(
      std::span<const double> observed) const;

  /// Cached window score: bit-identical to logpdf(observed, simulated) for
  /// the series the cache was prepared from. Throws std::invalid_argument
  /// when the cache was prepared by a different likelihood instance.
  [[nodiscard]] double logpdf(const ObservationCache& cache,
                              std::span<const double> simulated) const;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Cached-path implementation; `cache` is guaranteed to come from this
  /// instance's prepare(). Default falls back to the uncached logpdf over
  /// the cached observed copy.
  [[nodiscard]] virtual double logpdf_cached(
      const ObservationCache& cache, std::span<const double> simulated) const;
};

/// Gaussian on sqrt-counts with constant sd (the paper's choice, sigma=1).
class GaussianSqrtLikelihood final : public Likelihood {
 public:
  explicit GaussianSqrtLikelihood(double sigma = 1.0);

  using Likelihood::logpdf;  // keep the cached overload visible

  [[nodiscard]] double logpdf(std::span<const double> observed,
                              std::span<const double> simulated) const override;
  /// Caches sqrt(max(y_t, 0)) per day.
  [[nodiscard]] ObservationCache prepare(
      std::span<const double> observed) const override;
  [[nodiscard]] std::string name() const override { return "gaussian-sqrt"; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 protected:
  [[nodiscard]] double logpdf_cached(
      const ObservationCache& cache,
      std::span<const double> simulated) const override;

 private:
  double sigma_;
};

/// Independent Poisson error: y_t ~ Poisson(max(eta_obs_t, floor)).
class PoissonLikelihood final : public Likelihood {
 public:
  explicit PoissonLikelihood(double rate_floor = 0.5);

  using Likelihood::logpdf;  // keep the cached overload visible

  [[nodiscard]] double logpdf(std::span<const double> observed,
                              std::span<const double> simulated) const override;
  /// Caches the rounded count and its lgamma(y+1) factorial term per day
  /// -- the lgamma is by far the most expensive part of the Poisson score.
  [[nodiscard]] ObservationCache prepare(
      std::span<const double> observed) const override;
  [[nodiscard]] std::string name() const override { return "poisson"; }

 protected:
  [[nodiscard]] double logpdf_cached(
      const ObservationCache& cache,
      std::span<const double> simulated) const override;

 private:
  double rate_floor_;
};

/// Gaussian on sqrt-counts whose sd grows with the count magnitude the way
/// a negative-binomial observation's would: sd_t = 0.5 * sqrt(1 + eta_t/k)
/// where k is the NB dispersion. At window-1 magnitudes (counts of a few
/// hundred, k = 500) this matches the paper's sigma ~ 1; at the 30000+
/// counts of the final window it relaxes to sd ~ 4, which keeps the
/// ensemble from degenerating to a single trajectory (see EXPERIMENTS.md,
/// substitution note for Figs. 4/5).
class NegBinSqrtLikelihood final : public Likelihood {
 public:
  explicit NegBinSqrtLikelihood(double dispersion_k = 500.0);

  using Likelihood::logpdf;  // keep the cached overload visible

  [[nodiscard]] double logpdf(std::span<const double> observed,
                              std::span<const double> simulated) const override;
  /// Caches sqrt(max(y_t, 0)) per day.
  [[nodiscard]] ObservationCache prepare(
      std::span<const double> observed) const override;
  [[nodiscard]] std::string name() const override { return "nb-sqrt"; }
  [[nodiscard]] double dispersion() const noexcept { return k_; }

 protected:
  [[nodiscard]] double logpdf_cached(
      const ObservationCache& cache,
      std::span<const double> simulated) const override;

 private:
  double k_;
};

/// Gaussian on raw counts with sd proportional to sqrt(counts)
/// (overdispersion factor `phi`); another robustness comparator.
class GaussianCountLikelihood final : public Likelihood {
 public:
  explicit GaussianCountLikelihood(double phi = 1.0);

  using Likelihood::logpdf;  // keep the cached overload visible

  [[nodiscard]] double logpdf(std::span<const double> observed,
                              std::span<const double> simulated) const override;
  [[nodiscard]] std::string name() const override { return "gaussian-count"; }

 private:
  double phi_;
};

/// Resolve a likelihood by registry name ("gaussian-sqrt", "nb-sqrt",
/// "poisson", "gaussian-count", plus anything registered at startup).
/// Delegates to api::likelihoods(); kept for config-name resolution and
/// source compatibility.
[[nodiscard]] std::unique_ptr<Likelihood> make_likelihood(
    const std::string& name, double parameter);

}  // namespace epismc::core
