#pragma once

// Simulator abstraction consumed by the SMC machinery.
//
// The calibration loop needs three things from a disease simulator:
//  (1) a common initial state at the calibration start (shared burn-in),
//  (2) "branch from this checkpointed state with a new (theta, seed) and
//      run through day T", returning the window's output series,
//  (3) optionally the end-of-window checkpoint for the next window.
//
// Anything meeting this contract can be calibrated -- the event-driven SEIR
// model, the chain-binomial baseline, and the agent-based model extension
// all implement it, which is the paper's claim that the approach "applies
// equally well to other stochastic simulation models".
//
// The hot path drives simulators through run_batch: one call propagates a
// contiguous range of an EnsembleBuffer (OpenMP-parallel inside), writing
// the window series straight into the buffer's day-major rows. The base
// class provides a reference implementation in terms of run_window, so a
// custom registry simulator only has to implement run_window; the built-in
// backends override run_batch with engines that parse each parent
// checkpoint once and branch per-thread scratch copies instead of
// re-deserializing state per trajectory.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/ensemble.hpp"
#include "epi/chain_binomial.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/seir_model.hpp"

namespace epismc::core {

/// Output of one branched window run.
struct WindowRun {
  std::vector<double> true_cases;  // daily new infections, window days
  std::vector<double> deaths;      // daily new deaths, window days
  epi::Checkpoint end_state;       // filled iff want_checkpoint
};

class Simulator {
 public:
  virtual ~Simulator() = default;

  /// Build the shared initial state: seed the epidemic, burn in to
  /// `day` (exclusive of the first calibration day) and checkpoint.
  [[nodiscard]] virtual epi::Checkpoint initial_state(
      std::int32_t day, std::uint64_t seed) const = 0;

  /// Branch from `state`: apply (theta from the next day, new RNG
  /// identity), simulate through `to_day` inclusive, extract the series
  /// for days [state.day + 1, to_day].
  [[nodiscard]] virtual WindowRun run_window(const epi::Checkpoint& state,
                                             double theta, std::uint64_t seed,
                                             std::uint64_t stream,
                                             std::int32_t to_day,
                                             bool want_checkpoint) const = 0;

  /// Propagate sims [first, first + count) of `buffer` through `to_day`:
  /// for each sim s, read its (parent, theta, seed, stream) columns, run
  /// the branched trajectory, and store the window tail of the true-case
  /// and death series into the buffer rows (EnsembleBuffer::store_tail).
  /// When `end_states` is non-empty it must have exactly `count` entries;
  /// end_states[i] then receives sim (first + i)'s end-of-window checkpoint
  /// (the replay pass regenerating survivor states).
  ///
  /// Parallel inside (OpenMP over the range); results are independent of
  /// the thread count because every trajectory's randomness is addressed by
  /// its (seed, stream) columns. run_window must therefore be thread-safe
  /// -- the same contract the per-sim particle loop has always imposed.
  /// The default implementation is the per-sim reference path: one
  /// run_window call per trajectory, so custom registry simulators work
  /// unchanged; built-in backends override it with batch engines.
  virtual void run_batch(std::span<const epi::Checkpoint> parents,
                         std::int32_t to_day, EnsembleBuffer& buffer,
                         std::size_t first, std::size_t count,
                         std::span<epi::Checkpoint> end_states = {}) const;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Throws unless the run_batch arguments are coherent: range within the
  /// buffer, parent columns within `parents`, end_states sized `count`.
  /// Backends call this before entering their parallel region so argument
  /// bugs surface as exceptions, not as racy out-of-bounds writes.
  void validate_batch_args(std::span<const epi::Checkpoint> parents,
                           const EnsembleBuffer& buffer, std::size_t first,
                           std::size_t count,
                           std::span<const epi::Checkpoint> end_states) const;
};

/// Adapter pinning run_batch to the base-class per-sim reference
/// implementation (one run_window per trajectory) regardless of any native
/// batch engine the wrapped backend has. The equivalence tests and the
/// ensemble benches compare native batch output and throughput against
/// exactly this path.
class PerSimReference final : public Simulator {
 public:
  explicit PerSimReference(const Simulator& inner) : inner_(inner) {}

  [[nodiscard]] epi::Checkpoint initial_state(
      std::int32_t day, std::uint64_t seed) const override {
    return inner_.initial_state(day, seed);
  }
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override {
    return inner_.run_window(state, theta, seed, stream, to_day,
                             want_checkpoint);
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

 private:
  const Simulator& inner_;
};

/// Shared configuration for the concrete epi-model simulators.
struct EpiSimulatorConfig {
  epi::DiseaseParameters params;
  double burnin_theta = 0.3;          // transmission during shared burn-in
  std::int64_t initial_exposed = 400; // seeding at day 0
};

/// Simulator backed by the event-driven SeirModel.
class SeirSimulator final : public Simulator {
 public:
  explicit SeirSimulator(EpiSimulatorConfig config) : config_(config) {
    config_.params.validate();
  }

  [[nodiscard]] epi::Checkpoint initial_state(std::int32_t day,
                                              std::uint64_t seed) const override;
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override;
  void run_batch(std::span<const epi::Checkpoint> parents, std::int32_t to_day,
                 EnsembleBuffer& buffer, std::size_t first, std::size_t count,
                 std::span<epi::Checkpoint> end_states = {}) const override;
  [[nodiscard]] std::string name() const override { return "seir-event"; }

 private:
  EpiSimulatorConfig config_;
};

/// Simulator backed by the memoryless chain-binomial baseline.
class ChainBinomialSimulator final : public Simulator {
 public:
  explicit ChainBinomialSimulator(EpiSimulatorConfig config) : config_(config) {
    config_.params.validate();
  }

  [[nodiscard]] epi::Checkpoint initial_state(std::int32_t day,
                                              std::uint64_t seed) const override;
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override;
  void run_batch(std::span<const epi::Checkpoint> parents, std::int32_t to_day,
                 EnsembleBuffer& buffer, std::size_t first, std::size_t count,
                 std::span<epi::Checkpoint> end_states = {}) const override;
  [[nodiscard]] std::string name() const override { return "chain-binomial"; }

 private:
  EpiSimulatorConfig config_;
};

}  // namespace epismc::core
