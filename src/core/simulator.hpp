#pragma once

// Simulator abstraction consumed by the SMC machinery.
//
// The calibration loop needs three things from a disease simulator:
//  (1) a common initial state at the calibration start (shared burn-in),
//  (2) "branch from this checkpointed state with a new (theta, seed) and
//      run through day T", returning the window's output series,
//  (3) optionally the end-of-window checkpoint for the next window.
//
// Anything meeting this contract can be calibrated -- the event-driven SEIR
// model, the chain-binomial baseline, and the agent-based model extension
// all implement it, which is the paper's claim that the approach "applies
// equally well to other stochastic simulation models".

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "epi/chain_binomial.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/seir_model.hpp"

namespace epismc::core {

/// Output of one branched window run.
struct WindowRun {
  std::vector<double> true_cases;  // daily new infections, window days
  std::vector<double> deaths;      // daily new deaths, window days
  epi::Checkpoint end_state;       // filled iff want_checkpoint
};

class Simulator {
 public:
  virtual ~Simulator() = default;

  /// Build the shared initial state: seed the epidemic, burn in to
  /// `day` (exclusive of the first calibration day) and checkpoint.
  [[nodiscard]] virtual epi::Checkpoint initial_state(
      std::int32_t day, std::uint64_t seed) const = 0;

  /// Branch from `state`: apply (theta from the next day, new RNG
  /// identity), simulate through `to_day` inclusive, extract the series
  /// for days [state.day + 1, to_day].
  [[nodiscard]] virtual WindowRun run_window(const epi::Checkpoint& state,
                                             double theta, std::uint64_t seed,
                                             std::uint64_t stream,
                                             std::int32_t to_day,
                                             bool want_checkpoint) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Shared configuration for the concrete epi-model simulators.
struct EpiSimulatorConfig {
  epi::DiseaseParameters params;
  double burnin_theta = 0.3;          // transmission during shared burn-in
  std::int64_t initial_exposed = 400; // seeding at day 0
};

/// Simulator backed by the event-driven SeirModel.
class SeirSimulator final : public Simulator {
 public:
  explicit SeirSimulator(EpiSimulatorConfig config) : config_(config) {
    config_.params.validate();
  }

  [[nodiscard]] epi::Checkpoint initial_state(std::int32_t day,
                                              std::uint64_t seed) const override;
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override;
  [[nodiscard]] std::string name() const override { return "seir-event"; }

 private:
  EpiSimulatorConfig config_;
};

/// Simulator backed by the memoryless chain-binomial baseline.
class ChainBinomialSimulator final : public Simulator {
 public:
  explicit ChainBinomialSimulator(EpiSimulatorConfig config) : config_(config) {
    config_.params.validate();
  }

  [[nodiscard]] epi::Checkpoint initial_state(std::int32_t day,
                                              std::uint64_t seed) const override;
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override;
  [[nodiscard]] std::string name() const override { return "chain-binomial"; }

 private:
  EpiSimulatorConfig config_;
};

}  // namespace epismc::core
