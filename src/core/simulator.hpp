#pragma once

// Simulator abstraction consumed by the SMC machinery.
//
// The calibration loop needs three things from a disease simulator:
//  (1) a common initial state at the calibration start (shared burn-in),
//  (2) "branch from this parent state with a new (theta, seed) and run
//      through day T", returning the window's output series,
//  (3) the end-of-window states that seed the next window.
//
// Anything meeting this contract can be calibrated -- the event-driven SEIR
// model, the chain-binomial baseline, and the agent-based model extension
// all implement it, which is the paper's claim that the approach "applies
// equally well to other stochastic simulation models".
//
// The hot path drives simulators through the pool-based run_batch: one call
// propagates a contiguous range of an EnsembleBuffer (OpenMP-parallel
// inside) from typed StatePool parents, writing the window series straight
// into the buffer's day-major rows. A BatchSink fuses the rest of the
// window into the same sweep: end states are captured into a typed pool
// and a per-sim hook (bias + likelihood in the importance sampler) runs as
// soon as a row is filled, so the ensemble is swept once. The base class
// bridges everything through run_window and epi::Checkpoint conversion, so
// a custom registry simulator only has to implement run_window; built-in
// backends override make_pool/run_batch with engines that copy-and-branch
// pooled prototype models with zero (de)serialization.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/ensemble.hpp"
#include "core/state_pool.hpp"
#include "epi/chain_binomial.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/seir_model.hpp"

namespace epismc::core {

/// Output of one branched window run.
struct WindowRun {
  std::vector<double> true_cases;  // daily new infections, window days
  std::vector<double> deaths;      // daily new deaths, window days
  epi::Checkpoint end_state;       // filled iff want_checkpoint
};

/// Fused per-sim outputs of a batched sweep. Everything is optional; the
/// default sink reproduces a plain propagate-only pass.
struct BatchSink {
  /// When non-null, sim s's end-of-window state is captured into pool
  /// slot s (the pool must already span the propagated range). Capture
  /// happens inside the parallel loop, straight from the just-propagated
  /// model -- the inline replacement for the old checkpoint-replay pass.
  StatePool* capture = nullptr;

  /// When set, called as on_sim(s) inside the parallel loop after sim s's
  /// buffer rows are final (and after capture). Must be thread-safe and
  /// depend only on s -- the same determinism contract as the loop body.
  /// The importance sampler folds bias + likelihood scoring in here.
  std::function<void(std::size_t)> on_sim;
};

class Simulator {
 public:
  virtual ~Simulator() = default;

  /// Build the shared initial state: seed the epidemic, burn in to
  /// `day` (exclusive of the first calibration day) and checkpoint.
  [[nodiscard]] virtual epi::Checkpoint initial_state(
      std::int32_t day, std::uint64_t seed) const = 0;

  /// Branch from `state`: apply (theta from the next day, new RNG
  /// identity), simulate through `to_day` inclusive, extract the series
  /// for days [state.day + 1, to_day].
  [[nodiscard]] virtual WindowRun run_window(const epi::Checkpoint& state,
                                             double theta, std::uint64_t seed,
                                             std::uint64_t stream,
                                             std::int32_t to_day,
                                             bool want_checkpoint) const = 0;

  /// An empty state pool of this backend's native representation. The
  /// default is the byte-blob CheckpointStatePool (custom simulators keep
  /// their historical cost model); built-in backends return typed
  /// ModelStatePool<Model> pools.
  [[nodiscard]] virtual std::unique_ptr<StatePool> make_pool() const;

  /// Single-pass batch kernel: propagate sims [first, first + count) of
  /// `buffer` through `to_day`. For each sim s, read its (parent, theta,
  /// seed, stream) columns -- `parent` indexes a slot of `parents` -- run
  /// the branched trajectory, store the window tail of the true-case and
  /// death series into the buffer rows, then apply the sink (end-state
  /// capture into a pool slot, fused per-sim hook).
  ///
  /// Parallel inside (OpenMP over the range); results are independent of
  /// the thread count because every trajectory's randomness is addressed
  /// by its (seed, stream) columns. The default implementation converts
  /// the parents across the pool's checkpoint io boundary (once per
  /// referenced parent) and dispatches through the virtual checkpoint-span
  /// overload below -- so custom registry simulators work unchanged,
  /// including any native span batch engine they implemented; built-in
  /// backends override this overload with fused engines that
  /// copy-and-branch typed pool prototypes.
  virtual void run_batch(const StatePool& parents, std::int32_t to_day,
                         EnsembleBuffer& buffer, std::size_t first,
                         std::size_t count, const BatchSink& sink = {}) const;

  /// Checkpoint-span compatibility overload: parents arrive as portable
  /// byte blobs (the io boundary) and end states leave the same way.
  /// Equivalent to pooling the parents and serializing the capture pool;
  /// the pool-based overload above is the hot path.
  virtual void run_batch(std::span<const epi::Checkpoint> parents,
                         std::int32_t to_day, EnsembleBuffer& buffer,
                         std::size_t first, std::size_t count,
                         std::span<epi::Checkpoint> end_states = {}) const;

  /// Streaming continuation kernel: advance the pooled live states
  /// [first, first + count) in place through `to_day` and store the tail
  /// of the newly simulated days into the buffer rows. Unlike run_batch
  /// there is no copy-and-branch: each slot keeps its model's own RNG
  /// position and trajectory, so a sequence of advance_batch calls is
  /// bit-identical to one run_batch over the union of the days. Every
  /// buffer parent column must reference the slot itself (parent[s] == s).
  ///
  /// The default implementation round-trips the slots across the
  /// checkpoint io boundary and re-branches through the span run_batch
  /// using the buffer's (seed, stream) columns -- distribution-correct for
  /// custom registry backends (each call consumes a fresh per-day stream),
  /// but only the typed overrides carry the bit-equality guarantee.
  virtual void advance_batch(StatePool& states, std::int32_t to_day,
                             EnsembleBuffer& buffer, std::size_t first,
                             std::size_t count,
                             const BatchSink& sink = {}) const;

  /// Streaming resample redistribution: states[i] becomes a copy of
  /// states[ancestors[i]] (duplicates allowed), re-branched onto its fresh
  /// (seed, streams[i], thetas[i]) identity so duplicated particles
  /// diverge from the next day on. The default implementation only
  /// gathers -- sound because the default advance_batch re-branches every
  /// call from the buffer's per-day stream columns anyway; typed backends
  /// re-seed the pooled models' own engines here.
  virtual void resample_states(StatePool& states,
                               std::span<const std::uint32_t> ancestors,
                               std::uint64_t seed,
                               std::span<const std::uint64_t> streams,
                               std::span<const double> thetas) const;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Throws unless the run_batch arguments are coherent: range within the
  /// buffer, parent columns within `parents`, end_states sized `count`.
  /// Backends call this before entering their parallel region so argument
  /// bugs surface as exceptions, not as racy out-of-bounds writes.
  void validate_batch_args(std::span<const epi::Checkpoint> parents,
                           const EnsembleBuffer& buffer, std::size_t first,
                           std::size_t count,
                           std::span<const epi::Checkpoint> end_states) const;

  /// Pool-flavoured variant: parent slots within the pool, capture pool
  /// (when present) spanning the propagated range.
  void validate_batch_args(const StatePool& parents,
                           const EnsembleBuffer& buffer, std::size_t first,
                           std::size_t count, const BatchSink& sink) const;
};

/// Adapter pinning run_batch to the base-class per-sim reference
/// implementation (one run_window per trajectory, parents and end states
/// crossing the checkpoint io boundary) regardless of any native batch
/// engine the wrapped backend has. The equivalence tests and the ensemble
/// benches compare native batch output and throughput against exactly this
/// path.
class PerSimReference final : public Simulator {
 public:
  explicit PerSimReference(const Simulator& inner) : inner_(inner) {}

  [[nodiscard]] epi::Checkpoint initial_state(
      std::int32_t day, std::uint64_t seed) const override {
    return inner_.initial_state(day, seed);
  }
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override {
    return inner_.run_window(state, theta, seed, stream, to_day,
                             want_checkpoint);
  }
  /// Same pool type as the wrapped backend, so reference and native runs
  /// produce directly comparable pools -- but run_batch stays the base
  /// bridge, which reaches the pool only through its checkpoint boundary.
  [[nodiscard]] std::unique_ptr<StatePool> make_pool() const override {
    return inner_.make_pool();
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

 private:
  const Simulator& inner_;
};

/// Shared configuration for the concrete epi-model simulators.
struct EpiSimulatorConfig {
  epi::DiseaseParameters params;
  double burnin_theta = 0.3;          // transmission during shared burn-in
  std::int64_t initial_exposed = 400; // seeding at day 0
};

/// Simulator backed by the event-driven SeirModel.
class SeirSimulator final : public Simulator {
 public:
  explicit SeirSimulator(EpiSimulatorConfig config) : config_(config) {
    config_.params.validate();
  }

  [[nodiscard]] epi::Checkpoint initial_state(std::int32_t day,
                                              std::uint64_t seed) const override;
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override;
  [[nodiscard]] std::unique_ptr<StatePool> make_pool() const override;
  void run_batch(const StatePool& parents, std::int32_t to_day,
                 EnsembleBuffer& buffer, std::size_t first, std::size_t count,
                 const BatchSink& sink = {}) const override;
  void run_batch(std::span<const epi::Checkpoint> parents, std::int32_t to_day,
                 EnsembleBuffer& buffer, std::size_t first, std::size_t count,
                 std::span<epi::Checkpoint> end_states = {}) const override;
  void advance_batch(StatePool& states, std::int32_t to_day,
                     EnsembleBuffer& buffer, std::size_t first,
                     std::size_t count,
                     const BatchSink& sink = {}) const override;
  void resample_states(StatePool& states,
                       std::span<const std::uint32_t> ancestors,
                       std::uint64_t seed,
                       std::span<const std::uint64_t> streams,
                       std::span<const double> thetas) const override;
  [[nodiscard]] std::string name() const override { return "seir-event"; }

 private:
  EpiSimulatorConfig config_;
};

/// Simulator backed by the memoryless chain-binomial baseline.
class ChainBinomialSimulator final : public Simulator {
 public:
  explicit ChainBinomialSimulator(EpiSimulatorConfig config) : config_(config) {
    config_.params.validate();
  }

  [[nodiscard]] epi::Checkpoint initial_state(std::int32_t day,
                                              std::uint64_t seed) const override;
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override;
  [[nodiscard]] std::unique_ptr<StatePool> make_pool() const override;
  void run_batch(const StatePool& parents, std::int32_t to_day,
                 EnsembleBuffer& buffer, std::size_t first, std::size_t count,
                 const BatchSink& sink = {}) const override;
  void run_batch(std::span<const epi::Checkpoint> parents, std::int32_t to_day,
                 EnsembleBuffer& buffer, std::size_t first, std::size_t count,
                 std::span<epi::Checkpoint> end_states = {}) const override;
  void advance_batch(StatePool& states, std::int32_t to_day,
                     EnsembleBuffer& buffer, std::size_t first,
                     std::size_t count,
                     const BatchSink& sink = {}) const override;
  void resample_states(StatePool& states,
                       std::span<const std::uint32_t> ancestors,
                       std::uint64_t seed,
                       std::span<const std::uint64_t> streams,
                       std::span<const double> thetas) const override;
  [[nodiscard]] std::string name() const override { return "chain-binomial"; }

 private:
  EpiSimulatorConfig config_;
};

}  // namespace epismc::core
