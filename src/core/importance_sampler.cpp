#include "core/importance_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "parallel/parallel.hpp"
#include "random/seeding.hpp"
#include "stats/weights.hpp"

namespace epismc::core {

namespace {

// Domain tags keeping the model / bias / proposal / resampling stream
// families disjoint within a window.
constexpr std::uint64_t kModelTag = 0x4D4F44454Cull;     // "MODEL"
constexpr std::uint64_t kBiasTag = 0x42494153ull;        // "BIAS"
constexpr std::uint64_t kProposalTag = 0x50524F50ull;    // "PROP"
constexpr std::uint64_t kResampleTag = 0x52455341ull;    // "RESA"

}  // namespace

const char* to_string(CapturePolicy policy) {
  switch (policy) {
    case CapturePolicy::kAuto: return "auto";
    case CapturePolicy::kInline: return "inline";
    case CapturePolicy::kDeferredReplay: return "deferred-replay";
  }
  return "unknown";
}

void WindowSpec::validate(const ObservedData* data) const {
  if (to_day < from_day) {
    throw std::invalid_argument(
        "WindowSpec: window [" + std::to_string(from_day) + ", " +
        std::to_string(to_day) + "] ends before it starts");
  }
  if (n_params == 0 || replicates == 0 || resample_size == 0) {
    throw std::invalid_argument("WindowSpec: zero-sized simulation budget");
  }
  if (data != nullptr) {
    if (data->first_day() > from_day || data->last_day() < to_day) {
      throw std::invalid_argument(
          "WindowSpec: observed data covers days [" +
          std::to_string(data->first_day()) + ", " +
          std::to_string(data->last_day()) + "] but the window needs [" +
          std::to_string(from_day) + ", " + std::to_string(to_day) + "]");
    }
    if (use_deaths && !data->has_deaths()) {
      throw std::invalid_argument(
          "WindowSpec: use_deaths set but the observed data has no death "
          "series");
    }
  }
}

WindowResult run_importance_window(const Simulator& sim,
                                   const Likelihood& case_likelihood,
                                   const Likelihood& death_likelihood,
                                   const BiasModel& bias,
                                   const ObservedData& data,
                                   const StatePool& parents,
                                   const WindowSpec& spec,
                                   const ParamProposal& propose) {
  spec.validate(&data);
  if (parents.empty()) {
    throw std::invalid_argument("run_importance_window: no parent states");
  }

  WindowResult result;
  result.from_day = spec.from_day;
  result.to_day = spec.to_day;

  // --- 1. Draw proposals (sequential: cheap, reproducible). --------------
  std::vector<ProposedParams> params(spec.n_params);
  for (std::uint32_t j = 0; j < spec.n_params; ++j) {
    auto eng = rng::make_engine(spec.seed,
                                {kProposalTag, spec.window_index, j});
    params[j] = propose(eng, j);
    if (params[j].parent >= parents.size()) {
      throw std::out_of_range("run_importance_window: bad parent index");
    }
  }

  // --- 2. Lay out the ensemble: columns first, then one fused sweep. -----
  const std::size_t n_sims = spec.n_params * spec.replicates;
  // Parent states may sit before the window (e.g. the day-0 state for
  // window 1, so each particle owns its whole early path); the stored rows
  // and the likelihood always cover exactly [from_day, to_day].
  const std::size_t window_len =
      static_cast<std::size_t>(spec.to_day - spec.from_day + 1);
  EnsembleBuffer& ens = result.ensemble;
  ens.resize(n_sims, window_len);
  for (std::size_t s = 0; s < n_sims; ++s) {
    const auto j = static_cast<std::uint32_t>(s / spec.replicates);
    const auto r = static_cast<std::uint32_t>(s % spec.replicates);
    const ProposedParams& pp = params[j];
    ens.param_index[s] = j;
    ens.replicate[s] = r;
    ens.parent[s] = pp.parent;
    ens.theta[s] = pp.theta;
    ens.rho[s] = pp.rho;
    // Common random numbers: the model/bias stream identity depends only
    // on the replicate (all thetas see the same noise realization);
    // otherwise it depends on (draw, replicate).
    ens.seed[s] = spec.seed;
    ens.stream[s] =
        spec.common_random_numbers
            ? rng::make_stream_id({kModelTag, spec.window_index, r}).key
            : rng::make_stream_id({kModelTag, spec.window_index, j, r}).key;
  }

  const std::vector<double> y_cases =
      data.cases_window(spec.from_day, spec.to_day);
  const std::vector<double> y_deaths =
      spec.use_deaths ? data.deaths_window(spec.from_day, spec.to_day)
                      : std::vector<double>{};
  // Observation-side constants (sqrt transforms, lgamma terms) hoisted out
  // of the per-sim scoring loop; bit-identical to uncached scoring.
  const ObservationCache case_cache = case_likelihood.prepare(y_cases);
  const ObservationCache death_cache =
      spec.use_deaths ? death_likelihood.prepare(y_deaths) : ObservationCache{};

  // Resolve the capture policy: inline when the peak transient cost of
  // holding every candidate's end state fits the budget.
  bool inline_capture = false;
  switch (spec.capture) {
    case CapturePolicy::kInline:
      inline_capture = true;
      break;
    case CapturePolicy::kDeferredReplay:
      inline_capture = false;
      break;
    case CapturePolicy::kAuto:
      inline_capture =
          parents.approx_state_bytes() * n_sims <= spec.inline_state_budget;
      break;
  }
  result.diag.inline_capture = inline_capture;

  std::shared_ptr<StatePool> capture = sim.make_pool();
  BatchSink sink;
  if (inline_capture) {
    capture->resize(n_sims);
    sink.capture = capture.get();
  }
  // Fused per-sim tail of the sweep: reporting bias onto the observation
  // row, then the window likelihood. The bias stream is addressed by the
  // same identity as before the batching refactor, so weights are
  // bit-identical to the per-sim path.
  sink.on_sim = [&](std::size_t s) {
    const std::uint32_t j = ens.param_index[s];
    const std::uint32_t r = ens.replicate[s];
    auto bias_eng =
        spec.common_random_numbers
            ? rng::make_engine(spec.seed, {kBiasTag, spec.window_index, r})
            : rng::make_engine(spec.seed, {kBiasTag, spec.window_index, j, r});
    bias.apply_into(bias_eng, ens.true_cases(s), ens.rho[s], ens.obs_cases(s));

    double logw = case_likelihood.logpdf(case_cache, ens.obs_cases(s));
    if (spec.use_deaths) {
      logw += death_likelihood.logpdf(death_cache, ens.deaths(s));
    }
    ens.log_weight[s] = logw;
  };

  parallel::Timer propagate_timer;
  // Propagate, bias, score and (inline) capture all n_params * replicates
  // trajectories in one batch call; the simulator backend owns the
  // parallel loop and fills the true-case / death rows in place.
  sim.run_batch(parents, spec.to_day, ens, 0, n_sims, sink);
  result.diag.propagate_seconds = propagate_timer.seconds();

  // --- 3. Normalize weights and compute diagnostics (one LSE pass). ------
  const double lse = stats::log_sum_exp(ens.log_weight);
  result.weights = stats::normalize_log_weights(ens.log_weight, lse);
  result.diag.n_sims = n_sims;
  result.diag.ess = stats::effective_sample_size(result.weights);
  result.diag.perplexity = stats::weight_perplexity(result.weights);
  result.diag.max_weight =
      *std::max_element(result.weights.begin(), result.weights.end());
  result.diag.log_marginal = lse - std::log(static_cast<double>(n_sims));

  // --- 4. Resample the posterior. ----------------------------------------
  auto resample_eng =
      rng::make_engine(spec.seed, {kResampleTag, spec.window_index});
  result.resampled = stats::resample(spec.scheme, resample_eng,
                                     result.weights, spec.resample_size);

  // --- 5. Keep end-of-window states for the unique survivors. ------------
  std::vector<std::uint32_t> unique(result.resampled.begin(),
                                    result.resampled.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  result.diag.unique_resampled = unique.size();

  result.sim_to_state.assign(n_sims, WindowResult::kNoState);
  for (std::size_t u = 0; u < unique.size(); ++u) {
    result.sim_to_state[unique[u]] = static_cast<std::uint32_t>(u);
  }

  parallel::Timer checkpoint_timer;
  if (inline_capture) {
    // The weighted pass already captured every candidate's end state;
    // keeping the survivors is O(survivors) pointer moves.
    capture->compact(unique);
  } else {
    // Deferred replay: a small ensemble over the survivors only, re-run
    // through the same batch entry point with capture. Counter-based
    // streams make the replay bit-identical to the weighted run.
    EnsembleBuffer replay(unique.size(), window_len);
    for (std::size_t u = 0; u < unique.size(); ++u) {
      const std::uint32_t s = unique[u];
      replay.param_index[u] = ens.param_index[s];
      replay.replicate[u] = ens.replicate[s];
      replay.parent[u] = ens.parent[s];
      replay.theta[u] = ens.theta[s];
      replay.rho[u] = ens.rho[s];
      replay.seed[u] = ens.seed[s];
      replay.stream[u] = ens.stream[s];
    }
    capture->resize(unique.size());
    BatchSink replay_sink;
    replay_sink.capture = capture.get();
    sim.run_batch(parents, spec.to_day, replay, 0, unique.size(), replay_sink);
    for (std::size_t u = 0; u < unique.size(); ++u) {
      // Cheap tail of the replay-determinism invariant (the full property
      // is covered in tests/).
      const auto a = replay.true_cases(u);
      const auto b = ens.true_cases(unique[u]);
      if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
        throw std::logic_error(
            "run_importance_window: non-deterministic replay of sim " +
            std::to_string(unique[u]) + "; stream discipline violated");
      }
    }
  }
  result.state_pool = std::move(capture);
  result.diag.checkpoint_seconds = checkpoint_timer.seconds();

  return result;
}

WindowResult run_importance_window(const Simulator& sim,
                                   const Likelihood& case_likelihood,
                                   const Likelihood& death_likelihood,
                                   const BiasModel& bias,
                                   const ObservedData& data,
                                   std::span<const epi::Checkpoint> parents,
                                   const WindowSpec& spec,
                                   const ParamProposal& propose) {
  const std::shared_ptr<StatePool> pool = sim.make_pool();
  for (const epi::Checkpoint& parent : parents) {
    pool->append_checkpoint(parent);
  }
  return run_importance_window(sim, case_likelihood, death_likelihood, bias,
                               data, *pool, spec, propose);
}

}  // namespace epismc::core
