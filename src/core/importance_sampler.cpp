#include "core/importance_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "parallel/parallel.hpp"
#include "random/seeding.hpp"

namespace epismc::core {

namespace {

// Domain tags keeping the model / bias / proposal / resampling / temper /
// rejuvenation stream families disjoint within a window.
constexpr std::uint64_t kModelTag = 0x4D4F44454Cull;     // "MODEL"
constexpr std::uint64_t kBiasTag = 0x42494153ull;        // "BIAS"
constexpr std::uint64_t kProposalTag = 0x50524F50ull;    // "PROP"
constexpr std::uint64_t kResampleTag = 0x52455341ull;    // "RESA"
constexpr std::uint64_t kTemperTag = 0x54454D50ull;      // "TEMP"
constexpr std::uint64_t kRejuvProposalTag = 0x524A5052ull;  // "RJPR"
constexpr std::uint64_t kRejuvModelTag = 0x524A4D44ull;  // "RJMD"
constexpr std::uint64_t kRejuvBiasTag = 0x524A4249ull;   // "RJBI"
constexpr std::uint64_t kRejuvAcceptTag = 0x524A4143ull; // "RJAC"

// Adaptive tempering ladder over the cached per-sim log-likelihoods: a
// pure re-weighting pass (no re-propagation). The population starts as
// every sim once; each rung raises the temperature by the largest step
// keeping the rung ESS at the target, then resamples the ancestor
// population. The final rung (phi = 1) draws the posterior sample.
void run_temper_ladder(const EnsembleBuffer& ens, const WindowSpec& spec,
                       WindowResult& result) {
  const std::size_t n_sims = ens.size();
  const double target_ess =
      spec.ess_threshold * static_cast<double>(n_sims);

  std::vector<std::uint32_t> ancestors(n_sims);
  std::iota(ancestors.begin(), ancestors.end(), 0u);
  std::vector<double> pop_ll(n_sims);
  std::vector<std::uint32_t> next(n_sims);
  ParticleSystem rung;
  double phi = 0.0;
  double log_marginal = 0.0;

  for (std::size_t stage = 1;; ++stage) {
    for (std::size_t i = 0; i < n_sims; ++i) {
      pop_ll[i] = ens.log_weight[ancestors[i]];
    }
    const double budget = 1.0 - phi;
    // The stage cap forces the last permitted rung to complete the ladder
    // whatever its ESS (the diagnostics make a forced finish visible).
    const double step = stage < spec.max_temper_stages
                            ? solve_temper_step(pop_ll, budget, target_ess)
                            : budget;

    rung.reset(n_sims);
    const std::span<double> lw = rung.log_weights();
    for (std::size_t i = 0; i < n_sims; ++i) lw[i] = step * pop_ll[i];
    rung.commit();

    SmcStage st;
    st.phi = phi + step;
    st.ess = rung.ess();
    st.log_marginal_increment = rung.log_marginal_increment();
    result.smc.stages.push_back(st);
    log_marginal += st.log_marginal_increment;
    phi += step;

    auto eng =
        rng::make_engine(spec.seed, {kTemperTag, spec.window_index, stage});
    if (phi >= 1.0 - 1e-12) {
      const std::vector<std::uint32_t> idx =
          rung.resample(spec.scheme, eng, spec.resample_size);
      result.resampled.resize(idx.size());
      for (std::size_t k = 0; k < idx.size(); ++k) {
        result.resampled[k] = ancestors[idx[k]];
      }
      result.smc.final_ess = st.ess;
      break;
    }
    const std::vector<std::uint32_t> idx =
        rung.resample(spec.scheme, eng, n_sims);
    for (std::size_t k = 0; k < n_sims; ++k) next[k] = ancestors[idx[k]];
    ancestors.swap(next);
  }
  // The ladder's product estimator replaces the single-stage evidence
  // increment: sum over rungs of log mean incremental weight.
  result.diag.log_marginal = log_marginal;
}

// PMMH-style rejuvenation of the final posterior draws: each draw
// receives an independence MH proposal from the window's own proposal
// distribution (fresh (theta, rho, parent) plus a fresh model stream), so
// the proposal density cancels and the acceptance ratio is exactly the
// window-likelihood ratio. Accepted draws adopt the proposal's
// parameters, output series and -- via a capture replay of the winning
// identities -- end-of-window state.
// `full_ll`, when non-empty, supplies the full-window log-likelihood per
// sim: the streaming driver's ensemble log-weight column only covers the
// tail after a mid-window resample, but the MH acceptance ratio needs the
// whole window on both sides.
void run_rejuvenation(const Simulator& sim, const Likelihood& case_likelihood,
                      const Likelihood& death_likelihood, const BiasModel& bias,
                      const StatePool& parents, const WindowSpec& spec,
                      const ParamProposal& propose,
                      const ObservationCache& case_cache,
                      const ObservationCache& death_cache,
                      std::span<const double> full_ll, WindowResult& result) {
  const EnsembleBuffer& ens = result.ensemble;
  const std::size_t n_draws = result.resampled.size();
  const std::size_t window_len = result.window_length();

  RejuvenatedDraws overlay;
  overlay.moved.assign(n_draws, 0);
  overlay.theta.resize(n_draws);
  overlay.rho.resize(n_draws);
  overlay.state_slot.assign(n_draws, WindowResult::kNoState);
  // Accepted series land in a full-width scratch first (a draw can move
  // again in a later round); only the moved rows are compacted into the
  // overlay that the window result retains.
  EnsembleBuffer scratch(n_draws, window_len);

  // Current particle of each draw: parameters, window log-likelihood, and
  // the RNG identity that regenerates its trajectory.
  std::vector<double> cur_ll(n_draws);
  std::vector<std::uint32_t> cur_parent(n_draws);
  std::vector<std::uint64_t> cur_stream(n_draws);
  for (std::size_t i = 0; i < n_draws; ++i) {
    const std::uint32_t s = result.resampled[i];
    overlay.theta[i] = ens.theta[s];
    overlay.rho[i] = ens.rho[s];
    overlay.state_slot[i] = result.sim_to_state[s];
    cur_ll[i] = full_ll.empty() ? ens.log_weight[s] : full_ll[s];
    cur_parent[i] = ens.parent[s];
    cur_stream[i] = ens.stream[s];
  }

  EnsembleBuffer prop(n_draws, window_len);
  for (std::uint64_t round = 1; round <= spec.rejuvenation_moves; ++round) {
    for (std::size_t i = 0; i < n_draws; ++i) {
      auto peng = rng::make_engine(
          spec.seed, {kRejuvProposalTag, spec.window_index, round, i});
      // Uniform mixture over the window's per-draw proposal components:
      // exactly the distribution the original cloud was drawn from, which
      // is what makes the MH ratio collapse to the likelihood ratio.
      const auto j =
          static_cast<std::uint32_t>(rng::uniform_int(peng, spec.n_params));
      const ProposedParams pp = propose(peng, j);
      if (pp.parent >= parents.size()) {
        throw std::out_of_range("run_rejuvenation: bad parent index");
      }
      prop.param_index[i] = static_cast<std::uint32_t>(i);
      prop.replicate[i] = static_cast<std::uint32_t>(round);
      prop.parent[i] = pp.parent;
      prop.theta[i] = pp.theta;
      prop.rho[i] = pp.rho;
      prop.seed[i] = spec.seed;
      prop.stream[i] =
          rng::make_stream_id({kRejuvModelTag, spec.window_index, round, i})
              .key;
    }
    BatchSink sink;
    sink.on_sim = [&](std::size_t i) {
      auto beng = rng::make_engine(
          spec.seed, {kRejuvBiasTag, spec.window_index, round, i});
      bias.apply_into(beng, prop.true_cases(i), prop.rho[i],
                      prop.obs_cases(i));
      double ll = case_likelihood.logpdf(case_cache, prop.obs_cases(i));
      if (spec.use_deaths) {
        ll += death_likelihood.logpdf(death_cache, prop.deaths(i));
      }
      prop.log_weight[i] = ll;
    };
    sim.run_batch(parents, spec.to_day, prop, 0, n_draws, sink);

    std::size_t accepted = 0;
    for (std::size_t i = 0; i < n_draws; ++i) {
      auto aeng = rng::make_engine(
          spec.seed, {kRejuvAcceptTag, spec.window_index, round, i});
      if (std::log(rng::uniform_double_oo(aeng)) <
          prop.log_weight[i] - cur_ll[i]) {
        overlay.moved[i] = 1;
        overlay.theta[i] = prop.theta[i];
        overlay.rho[i] = prop.rho[i];
        cur_ll[i] = prop.log_weight[i];
        cur_parent[i] = prop.parent[i];
        cur_stream[i] = prop.stream[i];
        for (const auto which :
             {EnsembleBuffer::Series::kTrueCases,
              EnsembleBuffer::Series::kObsCases,
              EnsembleBuffer::Series::kDeaths}) {
          const std::span<const double> src = prop.series(which, i);
          const std::span<double> dst = scratch.series(which, i);
          std::copy(src.begin(), src.end(), dst.begin());
        }
        ++accepted;
      }
    }
    result.smc.move_acceptance.push_back(
        static_cast<double>(accepted) / static_cast<double>(n_draws));
    result.smc.rejuvenation_proposed += n_draws;
    result.smc.rejuvenation_accepted += accepted;
  }

  // Capture end states for the moved draws by replaying their winning
  // identities through the batch kernel (bit-identical by stream
  // discipline) and folding the states into the window's survivor pool.
  std::vector<std::uint32_t> moved_ids;
  for (std::size_t i = 0; i < n_draws; ++i) {
    if (overlay.moved[i]) moved_ids.push_back(static_cast<std::uint32_t>(i));
  }
  overlay.series_row.assign(n_draws, RejuvenatedDraws::kNoRow);
  overlay.series.resize(moved_ids.size(), window_len);
  for (std::size_t k = 0; k < moved_ids.size(); ++k) {
    const std::uint32_t i = moved_ids[k];
    overlay.series_row[i] = static_cast<std::uint32_t>(k);
    for (const auto which :
         {EnsembleBuffer::Series::kTrueCases, EnsembleBuffer::Series::kObsCases,
          EnsembleBuffer::Series::kDeaths}) {
      const std::span<const double> src = scratch.series(which, i);
      const std::span<double> dst = overlay.series.series(which, k);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  if (!moved_ids.empty()) {
    EnsembleBuffer fin(moved_ids.size(), window_len);
    for (std::size_t k = 0; k < moved_ids.size(); ++k) {
      const std::uint32_t i = moved_ids[k];
      fin.param_index[k] = i;
      fin.replicate[k] = 0;
      fin.parent[k] = cur_parent[i];
      fin.theta[k] = overlay.theta[i];
      fin.rho[k] = overlay.rho[i];
      fin.seed[k] = spec.seed;
      fin.stream[k] = cur_stream[i];
    }
    const std::shared_ptr<StatePool> moved_pool = sim.make_pool();
    moved_pool->resize(moved_ids.size());
    BatchSink cap;
    cap.capture = moved_pool.get();
    sim.run_batch(parents, spec.to_day, fin, 0, moved_ids.size(), cap);
    for (std::size_t k = 0; k < moved_ids.size(); ++k) {
      const std::uint32_t i = moved_ids[k];
      const std::span<const double> a = fin.true_cases(k);
      const std::span<const double> b = overlay.series.true_cases(k);
      if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
        throw std::logic_error(
            "run_rejuvenation: non-deterministic replay of draw " +
            std::to_string(i) + "; stream discipline violated");
      }
      overlay.state_slot[i] = static_cast<std::uint32_t>(
          result.state_pool->append_from(*moved_pool, k));
    }
  }
  result.rejuvenated = std::move(overlay);
}

}  // namespace

const char* to_string(CapturePolicy policy) {
  switch (policy) {
    case CapturePolicy::kAuto: return "auto";
    case CapturePolicy::kInline: return "inline";
    case CapturePolicy::kDeferredReplay: return "deferred-replay";
  }
  return "unknown";
}

void WindowSpec::validate(const ObservedData* data) const {
  if (to_day < from_day) {
    throw std::invalid_argument(
        "WindowSpec: window [" + std::to_string(from_day) + ", " +
        std::to_string(to_day) + "] ends before it starts");
  }
  if (n_params == 0 || replicates == 0 || resample_size == 0) {
    throw std::invalid_argument("WindowSpec: zero-sized simulation budget");
  }
  if (!(ess_threshold > 0.0 && ess_threshold < 1.0)) {
    throw std::invalid_argument(
        "WindowSpec: ess_threshold must be a fraction of n_sims in (0, 1), "
        "got " + std::to_string(ess_threshold));
  }
  if (max_temper_stages == 0) {
    throw std::invalid_argument(
        "WindowSpec: max_temper_stages must be >= 1 (the ladder needs at "
        "least the final phi = 1 rung)");
  }
  if (inference == InferenceStrategy::kTemperedRejuvenate &&
      rejuvenation_moves == 0) {
    throw std::invalid_argument(
        "WindowSpec: the tempered+rejuvenate strategy needs "
        "rejuvenation_moves >= 1 (use \"tempered\" for ladder-only runs)");
  }
  if (data != nullptr) {
    if (data->first_day() > from_day || data->last_day() < to_day) {
      throw std::invalid_argument(
          "WindowSpec: observed data covers days [" +
          std::to_string(data->first_day()) + ", " +
          std::to_string(data->last_day()) + "] but the window needs [" +
          std::to_string(from_day) + ", " + std::to_string(to_day) + "]");
    }
    if (use_deaths && !data->has_deaths()) {
      throw std::invalid_argument(
          "WindowSpec: use_deaths set but the observed data has no death "
          "series");
    }
  }
}

namespace detail {

rng::PhiloxEngine proposal_engine(const WindowSpec& spec, std::uint32_t j) {
  return rng::make_engine(spec.seed, {kProposalTag, spec.window_index, j});
}

std::uint64_t model_stream_key(const WindowSpec& spec, std::uint32_t j,
                               std::uint32_t r) {
  return spec.common_random_numbers
             ? rng::make_stream_id({kModelTag, spec.window_index, r}).key
             : rng::make_stream_id({kModelTag, spec.window_index, j, r}).key;
}

rng::PhiloxEngine bias_engine(const WindowSpec& spec, std::uint32_t j,
                              std::uint32_t r) {
  return spec.common_random_numbers
             ? rng::make_engine(spec.seed, {kBiasTag, spec.window_index, r})
             : rng::make_engine(spec.seed, {kBiasTag, spec.window_index, j, r});
}

rng::PhiloxEngine resample_engine(const WindowSpec& spec) {
  return rng::make_engine(spec.seed, {kResampleTag, spec.window_index});
}

void layout_window_ensemble(const WindowSpec& spec, const StatePool& parents,
                            const ParamProposal& propose,
                            EnsembleBuffer& ens) {
  // --- 1. Draw proposals (sequential: cheap, reproducible). --------------
  std::vector<ProposedParams> params(spec.n_params);
  for (std::uint32_t j = 0; j < spec.n_params; ++j) {
    auto eng = proposal_engine(spec, j);
    params[j] = propose(eng, j);
    if (params[j].parent >= parents.size()) {
      throw std::out_of_range("run_importance_window: bad parent index");
    }
  }

  // --- 2. Lay out the ensemble: columns first, then one fused sweep. -----
  const std::size_t n_sims = spec.n_params * spec.replicates;
  if (ens.size() != n_sims) {
    throw std::invalid_argument(
        "layout_window_ensemble: buffer holds " + std::to_string(ens.size()) +
        " rows but the spec budgets " + std::to_string(n_sims) + " sims");
  }
  for (std::size_t s = 0; s < n_sims; ++s) {
    const auto j = static_cast<std::uint32_t>(s / spec.replicates);
    const auto r = static_cast<std::uint32_t>(s % spec.replicates);
    const ProposedParams& pp = params[j];
    ens.param_index[s] = j;
    ens.replicate[s] = r;
    ens.parent[s] = pp.parent;
    ens.theta[s] = pp.theta;
    ens.rho[s] = pp.rho;
    // Common random numbers: the model/bias stream identity depends only
    // on the replicate (all thetas see the same noise realization);
    // otherwise it depends on (draw, replicate).
    ens.seed[s] = spec.seed;
    ens.stream[s] = model_stream_key(spec, j, r);
  }
}

DegeneracyReport collect_degenerate(std::span<const std::uint8_t> flags) {
  DegeneracyReport report;
  for (std::size_t s = 0; s < flags.size(); ++s) {
    if (flags[s] != 0) {
      ++report.demoted;
      report.draws.push_back(static_cast<std::uint32_t>(s));
    }
  }
  return report;
}

void throw_degenerate(const std::string& where,
                      const DegeneracyReport& report) {
  std::string ids;
  const std::size_t shown = std::min<std::size_t>(report.draws.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i != 0) ids += ", ";
    ids += std::to_string(report.draws[i]);
  }
  if (report.draws.size() > shown) ids += ", ...";
  throw CalibrationError(
      where + ": " + std::to_string(report.demoted) +
      " draw(s) scored a non-finite log-likelihood (draw ids " + ids +
      ") under DegeneracyPolicy::kThrow; switch on_degenerate to "
      "'quarantine' to demote them to zero weight instead");
}

void resolve_window_posterior(const WindowPosteriorInputs& in,
                              std::shared_ptr<StatePool> capture,
                              bool inline_capture, WindowResult& result) {
  const WindowSpec& spec = in.spec;
  EnsembleBuffer& ens = result.ensemble;
  const std::size_t n_sims = ens.size();
  const std::size_t window_len = result.window_length();
  result.diag.inline_capture = inline_capture;

  // --- 3. Normalize weights and diagnostics: one log-sum-exp pass, owned
  // by the shared particle-system kernel (operation-for-operation the
  // historical inline code, so the single-stage path stays bit-identical).
  // The kernel commits over the ensemble's own log-weight column and the
  // normalized weights are moved out at the end -- no extra O(n_sims)
  // copies on the hot path.
  ParticleSystem ps;
  ps.commit(ens.log_weight);
  result.smc.degeneracy = in.degeneracy;
  if (!std::isfinite(ps.lse())) {
    // Every log-weight is -inf: there is no posterior to resample. Fail
    // here with the window named, instead of letting the stats layer
    // throw std::domain_error from deep inside the normalize.
    std::string msg = "calibration window " +
                      std::to_string(spec.window_index) + " (days " +
                      std::to_string(spec.from_day) + ".." +
                      std::to_string(spec.to_day) + "): all " +
                      std::to_string(n_sims) +
                      " draws carry zero posterior weight";
    if (in.degeneracy.any()) {
      msg += " (" + std::to_string(in.degeneracy.demoted) +
             " scored non-finite and were quarantined)";
    }
    msg +=
        "; widen the priors/jitter kernels or relax the likelihood -- a "
        "streaming session can instead resume from its last checkpoint";
    throw CalibrationError(msg);
  }
  result.diag.n_sims = n_sims;
  result.diag.ess = ps.ess();
  result.diag.perplexity = ps.perplexity();
  result.diag.max_weight = ps.max_weight();
  result.diag.log_marginal = ps.log_marginal_increment();

  result.smc.strategy = spec.inference;
  result.smc.ess_threshold =
      spec.inference == InferenceStrategy::kSingleStage ? 0.0
                                                        : spec.ess_threshold;
  result.smc.initial_ess = result.diag.ess;

  // --- 4. Resample the posterior: single stage, or the temper ladder when
  // an adaptive strategy sees the ESS trigger fire.
  const bool degenerate =
      spec.inference != InferenceStrategy::kSingleStage &&
      result.diag.ess < spec.ess_threshold * static_cast<double>(n_sims);
  if (degenerate) {
    result.smc.triggered = true;
    run_temper_ladder(ens, spec, result);
  } else {
    auto resample_eng = resample_engine(spec);
    result.resampled =
        ps.resample(spec.scheme, resample_eng, spec.resample_size);
    result.smc.stages.push_back(
        {1.0, result.diag.ess, result.diag.log_marginal});
    result.smc.final_ess = result.diag.ess;
  }
  result.weights = ps.take_weights();

  // --- 5. Keep end-of-window states for the unique survivors. ------------
  ParticleSystem::Survivors surv =
      ParticleSystem::survivors(result.resampled, n_sims);
  result.diag.unique_resampled = surv.unique.size();
  result.sim_to_state = std::move(surv.index_to_slot);

  parallel::Timer checkpoint_timer;
  if (inline_capture) {
    // The weighted pass already captured every candidate's end state;
    // keeping the survivors is O(survivors) pointer moves.
    capture->compact(surv.unique);
  } else {
    // Deferred replay: a small ensemble over the survivors only, re-run
    // through the same batch entry point with capture. Counter-based
    // streams make the replay bit-identical to the weighted run.
    EnsembleBuffer replay(surv.unique.size(), window_len);
    for (std::size_t u = 0; u < surv.unique.size(); ++u) {
      const std::uint32_t s = surv.unique[u];
      replay.param_index[u] = ens.param_index[s];
      replay.replicate[u] = ens.replicate[s];
      replay.parent[u] = ens.parent[s];
      replay.theta[u] = ens.theta[s];
      replay.rho[u] = ens.rho[s];
      replay.seed[u] = ens.seed[s];
      replay.stream[u] = ens.stream[s];
    }
    capture->resize(surv.unique.size());
    BatchSink replay_sink;
    replay_sink.capture = capture.get();
    in.sim.run_batch(in.parents, spec.to_day, replay, 0, surv.unique.size(),
                     replay_sink);
    for (std::size_t u = 0; u < surv.unique.size(); ++u) {
      // Cheap tail of the replay-determinism invariant (the full property
      // is covered in tests/).
      const auto a = replay.true_cases(u);
      const auto b = ens.true_cases(surv.unique[u]);
      if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
        throw std::logic_error(
            "run_importance_window: non-deterministic replay of sim " +
            std::to_string(surv.unique[u]) + "; stream discipline violated");
      }
    }
  }
  result.state_pool = std::move(capture);
  result.diag.checkpoint_seconds = checkpoint_timer.seconds();

  // --- 6. Rejuvenation moves (kTemperedRejuvenate, triggered windows
  // only): diversify the resampled duplicates with independence-MH moves
  // scored through the same fused batch kernel.
  if (spec.inference == InferenceStrategy::kTemperedRejuvenate && degenerate) {
    run_rejuvenation(in.sim, in.case_likelihood, in.death_likelihood, in.bias,
                     in.parents, spec, in.propose, in.case_cache,
                     in.death_cache, in.rejuvenation_loglik, result);
  }
}

}  // namespace detail

WindowResult run_importance_window(const Simulator& sim,
                                   const Likelihood& case_likelihood,
                                   const Likelihood& death_likelihood,
                                   const BiasModel& bias,
                                   const ObservedData& data,
                                   const StatePool& parents,
                                   const WindowSpec& spec,
                                   const ParamProposal& propose) {
  spec.validate(&data);
  if (parents.empty()) {
    throw std::invalid_argument("run_importance_window: no parent states");
  }

  WindowResult result;
  result.from_day = spec.from_day;
  result.to_day = spec.to_day;

  const std::size_t n_sims = spec.n_params * spec.replicates;
  // Parent states may sit before the window (e.g. the day-0 state for
  // window 1, so each particle owns its whole early path); the stored rows
  // and the likelihood always cover exactly [from_day, to_day].
  const std::size_t window_len =
      static_cast<std::size_t>(spec.to_day - spec.from_day + 1);
  EnsembleBuffer& ens = result.ensemble;
  ens.resize(n_sims, window_len);
  detail::layout_window_ensemble(spec, parents, propose, ens);

  const std::vector<double> y_cases =
      data.cases_window(spec.from_day, spec.to_day);
  const std::vector<double> y_deaths =
      spec.use_deaths ? data.deaths_window(spec.from_day, spec.to_day)
                      : std::vector<double>{};
  // Observation-side constants (sqrt transforms, lgamma terms) hoisted out
  // of the per-sim scoring loop; bit-identical to uncached scoring.
  const ObservationCache case_cache = case_likelihood.prepare(y_cases);
  const ObservationCache death_cache =
      spec.use_deaths ? death_likelihood.prepare(y_deaths) : ObservationCache{};

  // Resolve the capture policy: inline when the peak transient cost of
  // holding every candidate's end state fits the budget.
  bool inline_capture = false;
  switch (spec.capture) {
    case CapturePolicy::kInline:
      inline_capture = true;
      break;
    case CapturePolicy::kDeferredReplay:
      inline_capture = false;
      break;
    case CapturePolicy::kAuto:
      inline_capture =
          parents.approx_state_bytes() * n_sims <= spec.inline_state_budget;
      break;
  }

  std::shared_ptr<StatePool> capture = sim.make_pool();
  BatchSink sink;
  if (inline_capture) {
    capture->resize(n_sims);
    sink.capture = capture.get();
  }
  // Fused per-sim tail of the sweep: reporting bias onto the observation
  // row, then the window likelihood. The bias stream is addressed by the
  // same identity as before the batching refactor, so weights are
  // bit-identical to the per-sim path.
  // Per-slot quarantine flags: on_sim runs inside the backend's parallel
  // loop, so each sim writes only its own byte (no shared mutation).
  std::vector<std::uint8_t> degenerate_flag(n_sims, 0);
  sink.on_sim = [&](std::size_t s) {
    auto bias_eng = detail::bias_engine(spec, ens.param_index[s],
                                        ens.replicate[s]);
    bias.apply_into(bias_eng, ens.true_cases(s), ens.rho[s], ens.obs_cases(s));

    double logw = case_likelihood.logpdf(case_cache, ens.obs_cases(s));
    if (spec.use_deaths) {
      logw += death_likelihood.logpdf(death_cache, ens.deaths(s));
    }
    if (detail::nonfinite_score(logw)) {
      degenerate_flag[s] = 1;
      logw = -std::numeric_limits<double>::infinity();
    }
    ens.log_weight[s] = logw;
  };

  parallel::Timer propagate_timer;
  // Propagate, bias, score and (inline) capture all n_params * replicates
  // trajectories in one batch call; the simulator backend owns the
  // parallel loop and fills the true-case / death rows in place.
  sim.run_batch(parents, spec.to_day, ens, 0, n_sims, sink);
  result.diag.propagate_seconds = propagate_timer.seconds();

  DegeneracyReport degeneracy = detail::collect_degenerate(degenerate_flag);
  if (degeneracy.any() && spec.on_degenerate == DegeneracyPolicy::kThrow) {
    detail::throw_degenerate("calibration window " +
                                 std::to_string(spec.window_index) +
                                 " (days " + std::to_string(spec.from_day) +
                                 ".." + std::to_string(spec.to_day) + ")",
                             degeneracy);
  }

  // Stages 3-6 (normalize -> strategy dispatch -> survivor states ->
  // rejuvenation) live in the shared resolver so the streaming calibrator
  // lands on the same posterior bits.
  detail::WindowPosteriorInputs inputs{
      sim,        case_likelihood, death_likelihood, bias, parents,
      spec,       propose,         case_cache,       death_cache};
  inputs.degeneracy = std::move(degeneracy);
  detail::resolve_window_posterior(inputs, std::move(capture), inline_capture,
                                   result);

  return result;
}

WindowResult run_importance_window(const Simulator& sim,
                                   const Likelihood& case_likelihood,
                                   const Likelihood& death_likelihood,
                                   const BiasModel& bias,
                                   const ObservedData& data,
                                   std::span<const epi::Checkpoint> parents,
                                   const WindowSpec& spec,
                                   const ParamProposal& propose) {
  const std::shared_ptr<StatePool> pool = sim.make_pool();
  for (const epi::Checkpoint& parent : parents) {
    pool->append_checkpoint(parent);
  }
  return run_importance_window(sim, case_likelihood, death_likelihood, bias,
                               data, *pool, spec, propose);
}

}  // namespace epismc::core
