#include "core/importance_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "parallel/parallel.hpp"
#include "random/seeding.hpp"
#include "stats/weights.hpp"

namespace epismc::core {

namespace {

// Domain tags keeping the model / bias / proposal / resampling stream
// families disjoint within a window.
constexpr std::uint64_t kModelTag = 0x4D4F44454Cull;     // "MODEL"
constexpr std::uint64_t kBiasTag = 0x42494153ull;        // "BIAS"
constexpr std::uint64_t kProposalTag = 0x50524F50ull;    // "PROP"
constexpr std::uint64_t kResampleTag = 0x52455341ull;    // "RESA"

}  // namespace

void WindowSpec::validate(const ObservedData* data) const {
  if (to_day < from_day) {
    throw std::invalid_argument(
        "WindowSpec: window [" + std::to_string(from_day) + ", " +
        std::to_string(to_day) + "] ends before it starts");
  }
  if (n_params == 0 || replicates == 0 || resample_size == 0) {
    throw std::invalid_argument("WindowSpec: zero-sized simulation budget");
  }
  if (data != nullptr) {
    if (data->first_day() > from_day || data->last_day() < to_day) {
      throw std::invalid_argument(
          "WindowSpec: observed data covers days [" +
          std::to_string(data->first_day()) + ", " +
          std::to_string(data->last_day()) + "] but the window needs [" +
          std::to_string(from_day) + ", " + std::to_string(to_day) + "]");
    }
    if (use_deaths && !data->has_deaths()) {
      throw std::invalid_argument(
          "WindowSpec: use_deaths set but the observed data has no death "
          "series");
    }
  }
}

WindowResult run_importance_window(const Simulator& sim,
                                   const Likelihood& case_likelihood,
                                   const Likelihood& death_likelihood,
                                   const BiasModel& bias,
                                   const ObservedData& data,
                                   std::span<const epi::Checkpoint> parents,
                                   const WindowSpec& spec,
                                   const ParamProposal& propose) {
  spec.validate(&data);
  if (parents.empty()) {
    throw std::invalid_argument("run_importance_window: no parent states");
  }

  WindowResult result;
  result.from_day = spec.from_day;
  result.to_day = spec.to_day;

  // --- 1. Draw proposals (sequential: cheap, reproducible). --------------
  std::vector<ProposedParams> params(spec.n_params);
  for (std::uint32_t j = 0; j < spec.n_params; ++j) {
    auto eng = rng::make_engine(spec.seed,
                                {kProposalTag, spec.window_index, j});
    params[j] = propose(eng, j);
    if (params[j].parent >= parents.size()) {
      throw std::out_of_range("run_importance_window: bad parent index");
    }
  }

  // --- 2. Propagate all n_params * replicates trajectories. --------------
  const std::size_t n_sims = spec.n_params * spec.replicates;
  result.sims.assign(n_sims, SimRecord{});

  const std::vector<double> y_cases =
      data.cases_window(spec.from_day, spec.to_day);
  const std::vector<double> y_deaths =
      spec.use_deaths ? data.deaths_window(spec.from_day, spec.to_day)
                      : std::vector<double>{};

  // Parent states may sit before the window (e.g. the day-0 state for
  // window 1, so each particle owns its whole early path); the likelihood
  // and stored series always cover exactly [from_day, to_day].
  const std::size_t window_len =
      static_cast<std::size_t>(spec.to_day - spec.from_day + 1);
  const auto keep_window_tail = [window_len](std::vector<double>& v) {
    if (v.size() < window_len) {
      throw std::logic_error(
          "run_importance_window: parent state inside the window");
    }
    if (v.size() > window_len) {
      v.erase(v.begin(),
              v.end() - static_cast<std::ptrdiff_t>(window_len));
    }
  };

  parallel::Timer propagate_timer;
  parallel::parallel_for(n_sims, [&](std::size_t s) {
    const auto j = static_cast<std::uint32_t>(s / spec.replicates);
    const auto r = static_cast<std::uint32_t>(s % spec.replicates);
    const ProposedParams& pp = params[j];

    SimRecord& rec = result.sims[s];
    rec.param_index = j;
    rec.replicate = r;
    rec.parent = pp.parent;
    rec.theta = pp.theta;
    rec.rho = pp.rho;

    // Common random numbers: the model/bias stream identity depends only
    // on the replicate (all thetas see the same noise realization);
    // otherwise it depends on (draw, replicate).
    rec.seed = spec.seed;
    rec.stream = spec.common_random_numbers
                     ? rng::make_stream_id({kModelTag, spec.window_index, r}).key
                     : rng::make_stream_id(
                           {kModelTag, spec.window_index, j, r}).key;

    WindowRun run = sim.run_window(parents[pp.parent], pp.theta, rec.seed,
                                   rec.stream, spec.to_day,
                                   /*want_checkpoint=*/false);
    keep_window_tail(run.true_cases);
    keep_window_tail(run.deaths);
    rec.true_cases = std::move(run.true_cases);
    rec.deaths = std::move(run.deaths);

    auto bias_eng =
        spec.common_random_numbers
            ? rng::make_engine(spec.seed, {kBiasTag, spec.window_index, r})
            : rng::make_engine(spec.seed, {kBiasTag, spec.window_index, j, r});
    rec.obs_cases = bias.apply(bias_eng, rec.true_cases, rec.rho);

    double logw = case_likelihood.logpdf(y_cases, rec.obs_cases);
    if (spec.use_deaths) logw += death_likelihood.logpdf(y_deaths, rec.deaths);
    rec.log_weight = logw;
  });
  result.diag.propagate_seconds = propagate_timer.seconds();

  // --- 3. Normalize weights and compute diagnostics. ---------------------
  std::vector<double> log_weights(n_sims);
  for (std::size_t s = 0; s < n_sims; ++s) {
    log_weights[s] = result.sims[s].log_weight;
  }
  result.weights = stats::normalize_log_weights(log_weights);
  result.diag.n_sims = n_sims;
  result.diag.ess = stats::effective_sample_size(result.weights);
  result.diag.perplexity = stats::weight_perplexity(result.weights);
  result.diag.max_weight =
      *std::max_element(result.weights.begin(), result.weights.end());
  result.diag.log_marginal =
      stats::log_sum_exp(log_weights) -
      std::log(static_cast<double>(n_sims));

  // --- 4. Resample the posterior. ----------------------------------------
  auto resample_eng =
      rng::make_engine(spec.seed, {kResampleTag, spec.window_index});
  result.resampled = stats::resample(spec.scheme, resample_eng,
                                     result.weights, spec.resample_size);

  // --- 5. Regenerate end-of-window checkpoints for unique survivors. -----
  std::vector<std::uint32_t> unique(result.resampled.begin(),
                                    result.resampled.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  result.diag.unique_resampled = unique.size();

  result.sim_to_state.assign(n_sims, WindowResult::kNoState);
  result.states.resize(unique.size());
  for (std::size_t u = 0; u < unique.size(); ++u) {
    result.sim_to_state[unique[u]] = static_cast<std::uint32_t>(u);
  }

  parallel::Timer checkpoint_timer;
  parallel::parallel_for(unique.size(), [&](std::size_t u) {
    const SimRecord& rec = result.sims[unique[u]];
    WindowRun run =
        sim.run_window(parents[rec.parent], rec.theta, rec.seed, rec.stream,
                       spec.to_day, /*want_checkpoint=*/true);
    keep_window_tail(run.true_cases);
    // Counter-based streams make the re-run bit-identical to the weighted
    // run; this assert is the cheap tail of that invariant (the full
    // property is covered in tests/).
    if (run.true_cases != rec.true_cases) {
      throw std::logic_error(
          "run_importance_window: non-deterministic replay; stream discipline "
          "violated");
    }
    result.states[u] = std::move(run.end_state);
  });
  result.diag.checkpoint_seconds = checkpoint_timer.seconds();

  return result;
}

}  // namespace epismc::core
