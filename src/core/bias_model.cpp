#include "core/bias_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "api/components.hpp"
#include "simd/simd.hpp"

namespace epismc::core {

void BiasModel::apply_into(rng::Engine& eng,
                           std::span<const double> true_counts, double rho,
                           std::span<double> out) const {
  // Reference bridge for external models that only implement apply().
  const std::vector<double> obs = apply(eng, true_counts, rho);
  if (obs.size() != out.size()) {
    throw std::logic_error("BiasModel::apply_into: " + name() +
                           "::apply changed the series length");
  }
  std::copy(obs.begin(), obs.end(), out.begin());
}

std::vector<double> BinomialBias::apply(rng::Engine& eng,
                                        std::span<const double> true_counts,
                                        double rho) const {
  std::vector<double> out(true_counts.size());
  apply_into(eng, true_counts, rho, out);
  return out;
}

void BinomialBias::apply_into(rng::Engine& eng,
                              std::span<const double> true_counts, double rho,
                              std::span<double> out) const {
  if (!(rho >= 0.0 && rho <= 1.0)) {
    throw std::invalid_argument("BinomialBias: rho must be in [0, 1]");
  }
  if (out.size() != true_counts.size()) {
    throw std::invalid_argument("BinomialBias: output size mismatch");
  }
  const simd::KernelTable& kt = simd::active();
  if (kt.level != simd::SimdLevel::kScalar && !true_counts.empty()) {
    // Lane-parallel path: one counter segment per day, so the thinning of a
    // series is a pure function of (seed, stream, engine position, counts)
    // and identical at every vector dispatch level. The engine advances by
    // a fixed stride instead of its data-dependent sequential consumption.
    constexpr std::uint64_t kSegment = 64;
    constexpr std::size_t kChunk = 64;  // stack marshalling, no allocation
    const std::uint64_t base = eng.position();
    std::uint64_t seg[kChunk];
    std::int64_t n[kChunk];
    std::int64_t drawn[kChunk];
    double p[kChunk];
    for (std::size_t start = 0; start < true_counts.size(); start += kChunk) {
      const std::size_t len = std::min(kChunk, true_counts.size() - start);
      for (std::size_t i = 0; i < len; ++i) {
        seg[i] = base + (start + i) * kSegment;
        n[i] = static_cast<std::int64_t>(
            std::llround(std::max(true_counts[start + i], 0.0)));
        p[i] = rho;
      }
      kt.binomial_lanes(eng.seed_value(), eng.stream_value(), seg, n, p, len,
                        drawn);
      for (std::size_t i = 0; i < len; ++i) {
        out[start + i] = static_cast<double>(drawn[i]);
      }
    }
    eng.set_position(base + true_counts.size() * kSegment);
    return;
  }
  for (std::size_t i = 0; i < true_counts.size(); ++i) {
    const auto n = static_cast<std::int64_t>(
        std::llround(std::max(true_counts[i], 0.0)));
    out[i] = static_cast<double>(rng::binomial(eng, n, rho));
  }
}

std::vector<double> IdentityBias::apply(rng::Engine& eng,
                                        std::span<const double> true_counts,
                                        double rho) const {
  std::vector<double> out(true_counts.size());
  apply_into(eng, true_counts, rho, out);
  return out;
}

void IdentityBias::apply_into(rng::Engine& eng,
                              std::span<const double> true_counts,
                              double /*rho*/, std::span<double> out) const {
  (void)eng;
  if (out.size() != true_counts.size()) {
    throw std::invalid_argument("IdentityBias: output size mismatch");
  }
  std::copy(true_counts.begin(), true_counts.end(), out.begin());
}

std::vector<double> DeterministicThinning::apply(
    rng::Engine& eng, std::span<const double> true_counts, double rho) const {
  std::vector<double> out(true_counts.size());
  apply_into(eng, true_counts, rho, out);
  return out;
}

void DeterministicThinning::apply_into(rng::Engine& eng,
                                       std::span<const double> true_counts,
                                       double rho, std::span<double> out) const {
  (void)eng;
  if (!(rho >= 0.0 && rho <= 1.0)) {
    throw std::invalid_argument("DeterministicThinning: rho must be in [0, 1]");
  }
  if (out.size() != true_counts.size()) {
    throw std::invalid_argument("DeterministicThinning: output size mismatch");
  }
  for (std::size_t i = 0; i < true_counts.size(); ++i) {
    out[i] = rho * true_counts[i];
  }
}

std::unique_ptr<BiasModel> make_bias_model(const std::string& name) {
  // Resolution lives in the api-layer registry; see make_likelihood.
  return api::bias_models().create(name);
}

}  // namespace epismc::core
