#include "core/bias_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "api/components.hpp"

namespace epismc::core {

void BiasModel::apply_into(rng::Engine& eng,
                           std::span<const double> true_counts, double rho,
                           std::span<double> out) const {
  // Reference bridge for external models that only implement apply().
  const std::vector<double> obs = apply(eng, true_counts, rho);
  if (obs.size() != out.size()) {
    throw std::logic_error("BiasModel::apply_into: " + name() +
                           "::apply changed the series length");
  }
  std::copy(obs.begin(), obs.end(), out.begin());
}

std::vector<double> BinomialBias::apply(rng::Engine& eng,
                                        std::span<const double> true_counts,
                                        double rho) const {
  std::vector<double> out(true_counts.size());
  apply_into(eng, true_counts, rho, out);
  return out;
}

void BinomialBias::apply_into(rng::Engine& eng,
                              std::span<const double> true_counts, double rho,
                              std::span<double> out) const {
  if (!(rho >= 0.0 && rho <= 1.0)) {
    throw std::invalid_argument("BinomialBias: rho must be in [0, 1]");
  }
  if (out.size() != true_counts.size()) {
    throw std::invalid_argument("BinomialBias: output size mismatch");
  }
  for (std::size_t i = 0; i < true_counts.size(); ++i) {
    const auto n = static_cast<std::int64_t>(
        std::llround(std::max(true_counts[i], 0.0)));
    out[i] = static_cast<double>(rng::binomial(eng, n, rho));
  }
}

std::vector<double> IdentityBias::apply(rng::Engine& eng,
                                        std::span<const double> true_counts,
                                        double rho) const {
  std::vector<double> out(true_counts.size());
  apply_into(eng, true_counts, rho, out);
  return out;
}

void IdentityBias::apply_into(rng::Engine& eng,
                              std::span<const double> true_counts,
                              double /*rho*/, std::span<double> out) const {
  (void)eng;
  if (out.size() != true_counts.size()) {
    throw std::invalid_argument("IdentityBias: output size mismatch");
  }
  std::copy(true_counts.begin(), true_counts.end(), out.begin());
}

std::vector<double> DeterministicThinning::apply(
    rng::Engine& eng, std::span<const double> true_counts, double rho) const {
  std::vector<double> out(true_counts.size());
  apply_into(eng, true_counts, rho, out);
  return out;
}

void DeterministicThinning::apply_into(rng::Engine& eng,
                                       std::span<const double> true_counts,
                                       double rho, std::span<double> out) const {
  (void)eng;
  if (!(rho >= 0.0 && rho <= 1.0)) {
    throw std::invalid_argument("DeterministicThinning: rho must be in [0, 1]");
  }
  if (out.size() != true_counts.size()) {
    throw std::invalid_argument("DeterministicThinning: output size mismatch");
  }
  for (std::size_t i = 0; i < true_counts.size(); ++i) {
    out[i] = rho * true_counts[i];
  }
}

std::unique_ptr<BiasModel> make_bias_model(const std::string& name) {
  // Resolution lives in the api-layer registry; see make_likelihood.
  return api::bias_models().create(name);
}

}  // namespace epismc::core
