#include "core/bias_model.hpp"

#include <cmath>
#include <stdexcept>

#include "api/components.hpp"

namespace epismc::core {

std::vector<double> BinomialBias::apply(rng::Engine& eng,
                                        std::span<const double> true_counts,
                                        double rho) const {
  if (!(rho >= 0.0 && rho <= 1.0)) {
    throw std::invalid_argument("BinomialBias: rho must be in [0, 1]");
  }
  std::vector<double> out;
  out.reserve(true_counts.size());
  for (const double eta : true_counts) {
    const auto n = static_cast<std::int64_t>(std::llround(std::max(eta, 0.0)));
    out.push_back(static_cast<double>(rng::binomial(eng, n, rho)));
  }
  return out;
}

std::vector<double> IdentityBias::apply(rng::Engine& eng,
                                        std::span<const double> true_counts,
                                        double /*rho*/) const {
  (void)eng;
  return {true_counts.begin(), true_counts.end()};
}

std::vector<double> DeterministicThinning::apply(
    rng::Engine& eng, std::span<const double> true_counts, double rho) const {
  (void)eng;
  if (!(rho >= 0.0 && rho <= 1.0)) {
    throw std::invalid_argument("DeterministicThinning: rho must be in [0, 1]");
  }
  std::vector<double> out;
  out.reserve(true_counts.size());
  for (const double eta : true_counts) out.push_back(rho * eta);
  return out;
}

std::unique_ptr<BiasModel> make_bias_model(const std::string& name) {
  // Resolution lives in the api-layer registry; see make_likelihood.
  return api::bias_models().create(name);
}

}  // namespace epismc::core
