#pragma once

// core::ParticleSystem -- the weighted-particle bookkeeping kernel shared
// by every inference path.
//
// Before this kernel existed, the importance sampler, the sequential
// calibrator and the PMMH comparator each carried their own copy of the
// same bookkeeping: accumulate log-weights, normalize them through one
// log-sum-exp pass, read off ESS / perplexity / evidence increments,
// resample ancestors, and map the resampled indices onto compacted
// state-pool slots. ParticleSystem is the one implementation of that
// arithmetic; the adaptive window driver (ESS-triggered tempering,
// rejuvenation moves -- see core/importance_sampler.hpp) is built on top
// of it, and the single-stage path reproduces the historical results bit
// for bit because the kernel performs exactly the operations the inlined
// code used to.
//
// The file also defines the InferenceStrategy vocabulary and the
// SmcDiagnostics record (temper ladder, ESS trace, rejuvenation
// acceptance) that every window result carries.

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "random/engines.hpp"
#include "stats/resampling.hpp"

namespace epismc::io {
class BinaryWriter;
class BinaryReader;
}  // namespace epismc::io

namespace epismc::core {

/// How a window turns scored log-likelihoods into a posterior sample.
enum class InferenceStrategy : std::uint8_t {
  /// The paper's single importance-sampling stage: weight by the full
  /// window likelihood, resample once. Bit-identical to the historical
  /// path (the golden tests pin this).
  kSingleStage,
  /// When post-scoring ESS falls below `ess_threshold * n_sims`, re-score
  /// through an adaptive tempering ladder likelihood^phi, each phi chosen
  /// by bisection so the rung keeps ESS at the target. Pure re-weighting
  /// of the cached per-sim log-likelihoods -- no extra propagation.
  kTempered,
  /// kTempered plus PMMH-style rejuvenation: after the final rung, each
  /// posterior draw receives an independence Metropolis-Hastings proposal
  /// drawn from the window's own proposal distribution (so the proposal
  /// density cancels and the acceptance ratio is exactly the likelihood
  /// ratio), propagated and scored through the fused batch kernel.
  kTemperedRejuvenate,
};

[[nodiscard]] const char* to_string(InferenceStrategy strategy);

/// What a window does with a draw whose log-likelihood comes back
/// non-finite-and-not--inf (NaN or +inf -- a numerical failure, unlike
/// the legitimate "impossible trajectory" -inf).
enum class DegeneracyPolicy : std::uint8_t {
  /// Demote the draw's log-likelihood to -inf (zero posterior weight) and
  /// record it in the window's DegeneracyReport; the window proceeds with
  /// the surviving draws. The default: one pathological trajectory must
  /// not take down a long-lived streaming session.
  kQuarantine,
  /// Raise CalibrationError naming the offending draws; nothing is
  /// demoted. For batch runs that prefer loud failure over silent
  /// down-weighting.
  kThrow,
};

[[nodiscard]] const char* to_string(DegeneracyPolicy policy);
/// "quarantine" | "throw"; throws std::invalid_argument otherwise.
[[nodiscard]] DegeneracyPolicy degeneracy_policy_from_name(
    const std::string& name);

/// A calibration window that cannot produce a posterior -- every draw's
/// log-weight is -inf, or the DegeneracyPolicy is kThrow and a draw
/// scored non-finite. Unlike the std::domain_error the stats layer used
/// to leak, this is typed, names the window/day and the draws involved,
/// and leaves the session restorable from its last checkpoint.
class CalibrationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which draws were quarantined in a window (counts + draw ids); rides on
/// SmcDiagnostics, and per day on StreamDayRecord as a count.
struct DegeneracyReport {
  std::uint64_t demoted = 0;          // draws demoted to -inf
  std::vector<std::uint32_t> draws;   // their sim indices, ascending
  [[nodiscard]] bool any() const noexcept { return demoted != 0; }
};

/// One rung of the temper ladder (a single-stage window records exactly
/// one rung at phi = 1).
struct SmcStage {
  double phi = 1.0;                    // cumulative temperature after the rung
  double ess = 0.0;                    // ESS of the rung's incremental weights
  double log_marginal_increment = 0.0; // log mean incremental weight
};

/// Per-window adaptive-SMC diagnostics: the ESS trace through the temper
/// ladder plus rejuvenation acceptance. Serializes field by field through
/// the binary archive (no struct memcpy, so padding bytes never reach the
/// wire); bump kArchiveVersion when the layout changes.
struct SmcDiagnostics {
  static constexpr std::uint32_t kArchiveVersion = 2;

  InferenceStrategy strategy = InferenceStrategy::kSingleStage;
  /// True when the ESS trigger actually fired and a temper ladder ran --
  /// recorded explicitly (a stage cap of 1 can force a single-rung ladder,
  /// so the rung count alone cannot distinguish triggered from healthy).
  bool triggered = false;
  double ess_threshold = 0.0;  // configured trigger fraction (0: single-stage)
  double initial_ess = 0.0;    // ESS of the untempered (phi = 1) weights
  double final_ess = 0.0;      // ESS at the ladder's last rung
  std::vector<SmcStage> stages;
  /// Acceptance fraction of each rejuvenation round (empty: no moves ran).
  std::vector<double> move_acceptance;
  std::uint64_t rejuvenation_proposed = 0;
  std::uint64_t rejuvenation_accepted = 0;
  /// Draws whose non-finite log-likelihoods were quarantined to -inf
  /// (empty under healthy windows and under DegeneracyPolicy::kThrow).
  DegeneracyReport degeneracy;

  [[nodiscard]] bool tempered() const noexcept { return triggered; }
  /// Overall rejuvenation acceptance rate; -1 when no move was proposed.
  [[nodiscard]] double acceptance_rate() const noexcept;

  void serialize(io::BinaryWriter& out) const;
  [[nodiscard]] static SmcDiagnostics deserialize(io::BinaryReader& in);
};

/// A population of weighted particles in log space. Fill the log-weights,
/// commit() once (the single shared log-sum-exp pass), then read the
/// normalized weights and diagnostics or resample ancestors.
class ParticleSystem {
 public:
  ParticleSystem() = default;
  explicit ParticleSystem(std::size_t n) { reset(n); }

  /// Resize to `n` particles with all log-weights zero. Capacity is
  /// reused, so a system living across PMMH iterations never reallocates.
  void reset(std::size_t n);

  /// Copy external log-weights in (e.g. the ensemble's log_weight column).
  void assign(std::span<const double> log_weights);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Mutable storage; call commit() after writing.
  [[nodiscard]] std::span<double> log_weights() noexcept {
    committed_ = false;
    return log_weight_;
  }
  [[nodiscard]] std::span<const double> log_weights() const noexcept {
    return log_weight_;
  }

  /// The one log-sum-exp pass: caches the LSE and -- when any mass
  /// survives -- the normalized weights. A fully degenerate population
  /// (all log-weights -inf) commits with lse() == -inf; weights()/ess()
  /// then throw, but log_marginal_increment() stays readable, which is
  /// what the PMMH chain needs to reject an impossible proposal.
  void commit();

  /// Commit over caller-owned log-weights without copying them in (the
  /// importance window's log-weight column already lives in its ensemble;
  /// every post-commit query reads only the cached LSE and normalized
  /// weights, so the span need not outlive the call).
  void commit(std::span<const double> log_weights);

  /// Move the normalized weights out (the window result owns them from
  /// here on). Leaves the system uncommitted; query again after the next
  /// commit().
  [[nodiscard]] std::vector<double> take_weights();

  [[nodiscard]] bool committed() const noexcept { return committed_; }
  [[nodiscard]] double lse() const;
  /// log (1/N sum w): the evidence increment of this population.
  [[nodiscard]] double log_marginal_increment() const;
  /// Normalized linear weights (sum == 1); throws std::domain_error when
  /// the population is degenerate.
  [[nodiscard]] const std::vector<double>& weights() const;
  /// Kish ESS of the normalized weights (stats::effective_sample_size).
  [[nodiscard]] double ess() const;
  [[nodiscard]] double perplexity() const;
  [[nodiscard]] double max_weight() const;

  /// Draw `count` ancestor indices with P(i) proportional to weights()[i].
  [[nodiscard]] std::vector<std::uint32_t> resample(
      stats::ResamplingScheme scheme, rng::Engine& eng,
      std::size_t count) const;

  /// The compaction recipe every pool consumer shares: ascending unique
  /// ancestors of a resampled index vector plus the index -> compacted
  /// slot map (kNoSlot for indices that were never drawn).
  struct Survivors {
    static constexpr std::uint32_t kNoSlot =
        std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> unique;         // strictly increasing
    std::vector<std::uint32_t> index_to_slot;  // size n; kNoSlot if dropped
  };
  [[nodiscard]] static Survivors survivors(
      std::span<const std::uint32_t> resampled, std::size_t n);

 private:
  void require_committed(const char* what) const;

  std::vector<double> log_weight_;
  std::vector<double> weight_;  // normalized; empty when degenerate
  std::size_t n_ = 0;           // committed population size
  double lse_ = 0.0;
  bool committed_ = false;
};

/// Largest temperature step `delta` in (0, budget] whose incremental
/// weights {delta * loglik[i]} keep ESS at or above `target_ess`, found by
/// bisection (the population is assumed equally weighted, i.e. freshly
/// resampled). Returns `budget` outright when even the full remaining step
/// satisfies the target. The returned step is floored at a small fraction
/// of the budget so a pathological population (one particle dominating at
/// any positive phi) still makes ladder progress.
[[nodiscard]] double solve_temper_step(std::span<const double> loglik,
                                       double budget, double target_ess);

}  // namespace epismc::core
