#pragma once

// Typed in-memory state pools for the single-pass importance window.
//
// The SMC hot path used to move simulator states around as epi::Checkpoint
// byte blobs: every end-of-window state was serialized field by field and
// every restart re-parsed it. A StatePool instead keeps states in the
// backend's own typed representation -- for the built-in engines a pooled
// copy of the model object itself (census arrays, event ring, trajectory,
// RNG coordinates), copy-assigned slot by slot so buffer capacity is
// reused and nothing is byte-encoded. Byte serialization survives only at
// the io boundary: `to_checkpoint` / `set_from_checkpoint` convert a slot
// to and from the portable epi::Checkpoint format for on-disk save/load
// and for simulators that only speak the run_window contract.
//
// Pools are produced by Simulator::make_pool(), filled by the fused batch
// kernel (inline end-state capture during the weighted pass, or the
// deferred replay fallback -- see core/importance_sampler.hpp), compacted
// down to the unique resampled survivors, and consumed as the parent
// states of the next window, by posterior forecasts, and by the api layer.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "epi/seir_model.hpp"  // epi::Checkpoint

namespace epismc::core {

/// Type-erased pool of simulator states. One slot holds one complete
/// simulator state; slots are independent, so concurrent writes to
/// distinct slots from a parallel batch sweep are safe once the pool has
/// been resized. Concrete pools: ModelStatePool<Model> (typed, built-in
/// backends) and CheckpointStatePool (byte-blob fallback for custom
/// registry simulators).
class StatePool {
 public:
  virtual ~StatePool() = default;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Grow or shrink to `n_slots`. Surviving slots keep their states (and
  /// their heap capacity -- the point of pooling); new slots are empty
  /// until written.
  virtual void resize(std::size_t n_slots) = 0;
  void clear() { resize(0); }

  /// Day of the state in `slot`; throws std::logic_error on an empty slot.
  [[nodiscard]] virtual std::int32_t day(std::size_t slot) const = 0;

  /// Keep exactly the slots named by `keep` (strictly increasing old slot
  /// indices), moved down to positions [0, keep.size()). Everything else
  /// is dropped. O(survivors) pointer moves -- this is how an inline
  /// capture over the full ensemble shrinks to the unique resampled
  /// survivors without touching state bytes.
  virtual void compact(std::span<const std::uint32_t> keep) = 0;

  // --- io boundary: the only place byte serialization still exists. -------
  /// Serialize `slot` into the portable checkpoint format.
  [[nodiscard]] virtual epi::Checkpoint to_checkpoint(std::size_t slot) const = 0;
  /// Parse a portable checkpoint into `slot` (slot must exist).
  virtual void set_from_checkpoint(std::size_t slot,
                                   const epi::Checkpoint& ckpt) = 0;
  /// Append a parsed checkpoint as a new slot; returns its index.
  std::size_t append_checkpoint(const epi::Checkpoint& ckpt) {
    const std::size_t slot = size();
    resize(slot + 1);
    set_from_checkpoint(slot, ckpt);
    return slot;
  }

  /// Append the state held in `from`'s `slot` as a new slot of this pool,
  /// returning the new index. Pools of the same concrete type move the
  /// typed state across (no serialization; the donor slot is emptied);
  /// mismatched pools fall back to the checkpoint io boundary. This is how
  /// rejuvenation folds freshly captured particle states into a window's
  /// survivor pool.
  virtual std::size_t append_from(StatePool& from, std::size_t slot) {
    return append_checkpoint(from.to_checkpoint(slot));
  }

  /// Replace the pool's contents with copies of the named ancestor slots:
  /// slot i becomes a copy of old slot ancestors[i]. Unlike compact(),
  /// indices may repeat and appear in any order -- this is the streaming
  /// mid-window resample redistribution, where several particles adopt the
  /// same ancestor state. The default round-trips through the checkpoint
  /// io boundary; ModelStatePool copies typed states directly.
  virtual void gather(std::span<const std::uint32_t> ancestors);

  /// Rough in-memory footprint of one state, in bytes -- the input to the
  /// CapturePolicy::kAuto decision (inline capture of N states costs
  /// N * approx_state_bytes() of peak memory). Estimated from the first
  /// non-empty slot; 0 when the pool is empty.
  [[nodiscard]] virtual std::size_t approx_state_bytes() const = 0;

  /// Backend label for error messages ("seir-event", "checkpoint", ...).
  [[nodiscard]] virtual std::string backend() const = 0;

 protected:
  [[noreturn]] static void throw_empty_slot(std::size_t slot) {
    throw std::logic_error("StatePool: slot " + std::to_string(slot) +
                           " holds no state");
  }

  /// Shared compact() implementation over any slot container: move the
  /// named slots down to [0, keep.size()) and truncate. `keep` indices are
  /// strictly increasing, so every move targets a position at or below its
  /// source.
  template <typename Slot>
  static void compact_slots(std::vector<Slot>& slots,
                            std::span<const std::uint32_t> keep) {
    for (std::size_t i = 0; i < keep.size(); ++i) {
      if (keep[i] >= slots.size()) {
        throw std::out_of_range("StatePool::compact: slot " +
                                std::to_string(keep[i]) + " out of range");
      }
      if (keep[i] != i) slots[i] = std::move(slots[keep[i]]);
    }
    slots.resize(keep.size());
  }
};

/// Typed pool: each slot owns a full copy of the backend's model object.
/// Writing a slot copy-assigns into the existing model, so event rings,
/// trajectories and agent arrays reuse their heap capacity; reading a slot
/// hands the batch kernel a prototype to copy-and-branch from with zero
/// parsing. Model must provide make_checkpoint() / restore(ckpt) / day()
/// (the shared checkpointable-model contract).
template <typename Model>
class ModelStatePool final : public StatePool {
 public:
  [[nodiscard]] std::size_t size() const noexcept override {
    return slots_.size();
  }

  void resize(std::size_t n_slots) override { slots_.resize(n_slots); }

  [[nodiscard]] std::int32_t day(std::size_t slot) const override {
    return at(slot).day();
  }

  void compact(std::span<const std::uint32_t> keep) override {
    compact_slots(slots_, keep);
  }

  [[nodiscard]] epi::Checkpoint to_checkpoint(std::size_t slot) const override {
    return at(slot).make_checkpoint();
  }

  void set_from_checkpoint(std::size_t slot,
                           const epi::Checkpoint& ckpt) override {
    set(slot, Model::restore(ckpt));
  }

  std::size_t append_from(StatePool& from, std::size_t slot) override {
    if (auto* typed = dynamic_cast<ModelStatePool<Model>*>(&from)) {
      if (slot >= typed->slots_.size() || !typed->slots_[slot]) {
        throw_empty_slot(slot);
      }
      const std::size_t here = slots_.size();
      slots_.push_back(std::move(typed->slots_[slot]));
      return here;
    }
    return StatePool::append_from(from, slot);
  }

  [[nodiscard]] std::size_t approx_state_bytes() const override {
    // The serialized image tracks the dominant state arrays (census, event
    // queue, per-agent state, trajectory), so it is a usable stand-in for
    // the in-memory footprint; x2 covers headroom of pooled capacity.
    for (const auto& slot : slots_) {
      if (slot) return 2 * slot->make_checkpoint().bytes.size();
    }
    return 0;
  }

  [[nodiscard]] std::string backend() const override {
    return std::string("typed:") + typeid(Model).name();
  }

  void gather(std::span<const std::uint32_t> ancestors) override {
    std::vector<std::unique_ptr<Model>> next(ancestors.size());
    for (std::size_t i = 0; i < ancestors.size(); ++i) {
      if (ancestors[i] >= slots_.size() || !slots_[ancestors[i]]) {
        throw_empty_slot(ancestors[i]);
      }
      next[i] = std::make_unique<Model>(*slots_[ancestors[i]]);
    }
    slots_ = std::move(next);
  }

  // --- Typed access for the batch kernel. ---------------------------------
  /// Prototype view of `slot` for copy-and-branch propagation.
  [[nodiscard]] const Model& at(std::size_t slot) const {
    if (slot >= slots_.size() || !slots_[slot]) throw_empty_slot(slot);
    return *slots_[slot];
  }

  /// Mutable slot view for in-place advancement (the streaming path keeps
  /// each particle's live model here and steps it day by day).
  [[nodiscard]] Model& at(std::size_t slot) {
    if (slot >= slots_.size() || !slots_[slot]) throw_empty_slot(slot);
    return *slots_[slot];
  }

  /// Copy `model` into `slot` (end-of-window capture). Thread-safe across
  /// distinct slots; reuses the slot's existing heap capacity.
  void set(std::size_t slot, const Model& model) {
    auto& p = slots_.at(slot);
    if (p) {
      *p = model;
    } else {
      p = std::make_unique<Model>(model);
    }
  }
  void set(std::size_t slot, Model&& model) {
    auto& p = slots_.at(slot);
    if (p) {
      *p = std::move(model);
    } else {
      p = std::make_unique<Model>(std::move(model));
    }
  }

 private:
  std::vector<std::unique_ptr<Model>> slots_;
};

/// Byte-blob fallback pool for simulators outside the typed contract: each
/// slot is a stored epi::Checkpoint, so custom registry simulators keep
/// exactly their historical behaviour (run_window in, checkpoint out) while
/// speaking the same pool interface as the typed backends.
class CheckpointStatePool final : public StatePool {
 public:
  [[nodiscard]] std::size_t size() const noexcept override;
  void resize(std::size_t n_slots) override;
  [[nodiscard]] std::int32_t day(std::size_t slot) const override;
  void compact(std::span<const std::uint32_t> keep) override;
  [[nodiscard]] epi::Checkpoint to_checkpoint(std::size_t slot) const override;
  void set_from_checkpoint(std::size_t slot,
                           const epi::Checkpoint& ckpt) override;
  [[nodiscard]] std::size_t approx_state_bytes() const override;
  [[nodiscard]] std::string backend() const override { return "checkpoint"; }

 private:
  [[nodiscard]] const epi::Checkpoint& at(std::size_t slot) const;

  // A slot is occupied once its checkpoint has bytes (every serialized
  // model state has a non-empty payload).
  std::vector<epi::Checkpoint> slots_;
};

}  // namespace epismc::core
