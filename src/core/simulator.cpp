#include "core/simulator.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "parallel/parallel.hpp"

namespace epismc::core {

namespace {

/// Extract the window output series [from_day, to_day] from a model
/// trajectory after the run.
template <typename Model>
WindowRun extract_window(const Model& model, std::int32_t from_day,
                         std::int32_t to_day, bool want_checkpoint) {
  WindowRun run;
  run.true_cases = model.trajectory().new_infections(from_day, to_day);
  run.deaths = model.trajectory().new_deaths(from_day, to_day);
  if (want_checkpoint) run.end_state = model.make_checkpoint();
  return run;
}

}  // namespace

void Simulator::validate_batch_args(
    std::span<const epi::Checkpoint> parents, const EnsembleBuffer& buffer,
    std::size_t first, std::size_t count,
    std::span<const epi::Checkpoint> end_states) const {
  if (first + count > buffer.size()) {
    throw std::out_of_range("run_batch: sim range [" + std::to_string(first) +
                            ", " + std::to_string(first + count) +
                            ") exceeds the buffer (" +
                            std::to_string(buffer.size()) + " sims)");
  }
  if (!end_states.empty() && end_states.size() != count) {
    throw std::invalid_argument(
        "run_batch: end_states must be empty or match the sim count");
  }
  for (std::size_t s = first; s < first + count; ++s) {
    if (buffer.parent[s] >= parents.size()) {
      throw std::out_of_range("run_batch: sim " + std::to_string(s) +
                              " references parent " +
                              std::to_string(buffer.parent[s]) + " of " +
                              std::to_string(parents.size()));
    }
  }
}

void Simulator::validate_batch_args(const StatePool& parents,
                                    const EnsembleBuffer& buffer,
                                    std::size_t first, std::size_t count,
                                    const BatchSink& sink) const {
  if (first + count > buffer.size()) {
    throw std::out_of_range("run_batch: sim range [" + std::to_string(first) +
                            ", " + std::to_string(first + count) +
                            ") exceeds the buffer (" +
                            std::to_string(buffer.size()) + " sims)");
  }
  if (sink.capture != nullptr && sink.capture->size() < first + count) {
    throw std::invalid_argument(
        "run_batch: capture pool has " + std::to_string(sink.capture->size()) +
        " slots but the range needs " + std::to_string(first + count));
  }
  for (std::size_t s = first; s < first + count; ++s) {
    if (buffer.parent[s] >= parents.size()) {
      throw std::out_of_range("run_batch: sim " + std::to_string(s) +
                              " references parent " +
                              std::to_string(buffer.parent[s]) + " of " +
                              std::to_string(parents.size()));
    }
  }
}

std::unique_ptr<StatePool> Simulator::make_pool() const {
  return std::make_unique<CheckpointStatePool>();
}

void Simulator::run_batch(const StatePool& parents, std::int32_t to_day,
                          EnsembleBuffer& buffer, std::size_t first,
                          std::size_t count, const BatchSink& sink) const {
  // Generic bridge: convert the pool parents across the checkpoint io
  // boundary (once per referenced parent) and dispatch through the
  // *virtual* checkpoint-span run_batch, so a custom simulator's native
  // span batch engine keeps being honored on the pool-driven hot path;
  // simulators with neither override fall through to the per-sim
  // run_window reference loop. Capture and the fused hook are applied
  // after the span batch returns -- same per-sim values, one extra sweep,
  // only on this compatibility path.
  validate_batch_args(parents, buffer, first, count, sink);
  std::vector<epi::Checkpoint> parent_ckpts(parents.size());
  std::vector<char> referenced(parents.size(), 0);
  for (std::size_t s = first; s < first + count; ++s) {
    referenced[buffer.parent[s]] = 1;
  }
  for (std::size_t p = 0; p < parents.size(); ++p) {
    if (referenced[p]) parent_ckpts[p] = parents.to_checkpoint(p);
  }

  std::vector<epi::Checkpoint> end_states(
      sink.capture != nullptr ? count : 0);
  run_batch(parent_ckpts, to_day, buffer, first, count, end_states);
  if (sink.capture != nullptr) {
    parallel::parallel_for(count, [&](std::size_t i) {
      sink.capture->set_from_checkpoint(first + i, end_states[i]);
    });
  }
  if (sink.on_sim) {
    parallel::parallel_for(count, [&](std::size_t i) { sink.on_sim(first + i); });
  }
}

void Simulator::run_batch(std::span<const epi::Checkpoint> parents,
                          std::int32_t to_day, EnsembleBuffer& buffer,
                          std::size_t first, std::size_t count,
                          std::span<epi::Checkpoint> end_states) const {
  // Per-sim reference path: one run_window per trajectory. Exactly the
  // pre-batching particle loop, so simulators that only implement
  // run_window behave as they always have.
  validate_batch_args(parents, buffer, first, count, end_states);
  parallel::parallel_for(count, [&](std::size_t i) {
    const std::size_t s = first + i;
    WindowRun run =
        run_window(parents[buffer.parent[s]], buffer.theta[s], buffer.seed[s],
                   buffer.stream[s], to_day, !end_states.empty());
    buffer.store_tail(EnsembleBuffer::Series::kTrueCases, s, run.true_cases);
    buffer.store_tail(EnsembleBuffer::Series::kDeaths, s, run.deaths);
    if (!end_states.empty()) end_states[i] = std::move(run.end_state);
  });
}

void Simulator::advance_batch(StatePool& states, std::int32_t to_day,
                              EnsembleBuffer& buffer, std::size_t first,
                              std::size_t count, const BatchSink& sink) const {
  // io-boundary bridge: serialize the live slots, branch-and-run through
  // the virtual span run_batch (each call consumes the buffer's fresh
  // per-day streams, so this path is distribution-correct rather than
  // bit-identical to a single long run), then write the advanced states
  // back into the pool.
  validate_batch_args(states, buffer, first, count, sink);
  for (std::size_t s = first; s < first + count; ++s) {
    if (buffer.parent[s] != s) {
      throw std::invalid_argument(
          "advance_batch: buffer parent columns must be self-referential "
          "(parent[s] == s), sim " + std::to_string(s) + " references " +
          std::to_string(buffer.parent[s]));
    }
  }
  std::vector<epi::Checkpoint> parent_ckpts(first + count);
  for (std::size_t s = first; s < first + count; ++s) {
    parent_ckpts[s] = states.to_checkpoint(s);
  }
  std::vector<epi::Checkpoint> end_states(count);
  run_batch(parent_ckpts, to_day, buffer, first, count, end_states);
  parallel::parallel_for(count, [&](std::size_t i) {
    states.set_from_checkpoint(first + i, end_states[i]);
  });
  if (sink.capture != nullptr) {
    parallel::parallel_for(count, [&](std::size_t i) {
      sink.capture->set_from_checkpoint(first + i, end_states[i]);
    });
  }
  if (sink.on_sim) {
    parallel::parallel_for(count, [&](std::size_t i) { sink.on_sim(first + i); });
  }
}

void Simulator::resample_states(StatePool& states,
                                std::span<const std::uint32_t> ancestors,
                                std::uint64_t /*seed*/,
                                std::span<const std::uint64_t> streams,
                                std::span<const double> thetas) const {
  if (ancestors.size() != streams.size() || ancestors.size() != thetas.size()) {
    throw std::invalid_argument(
        "resample_states: ancestors, streams and thetas must align");
  }
  // Gather only: the default advance_batch re-branches each call from the
  // buffer's per-day (seed, stream, theta) columns, which is where the
  // duplicated copies diverge.
  states.gather(ancestors);
}

epi::Checkpoint SeirSimulator::initial_state(std::int32_t day,
                                             std::uint64_t seed) const {
  epi::SeirModel model(config_.params,
                       epi::PiecewiseSchedule(config_.burnin_theta), seed,
                       /*stream=*/0);
  model.seed_exposed(config_.initial_exposed);
  model.run_until_day(day);
  return model.make_checkpoint();
}

WindowRun SeirSimulator::run_window(const epi::Checkpoint& state, double theta,
                                    std::uint64_t seed, std::uint64_t stream,
                                    std::int32_t to_day,
                                    bool want_checkpoint) const {
  epi::RestartOverrides ovr;
  ovr.seed = seed;
  ovr.stream = stream;
  ovr.transmission_rate = theta;
  epi::SeirModel model = epi::SeirModel::restore(state, ovr);
  const std::int32_t from_day = model.day() + 1;
  if (to_day < from_day) {
    throw std::invalid_argument("run_window: to_day before checkpoint day");
  }
  model.run_until_day(to_day);
  return extract_window(model, from_day, to_day, want_checkpoint);
}

std::unique_ptr<StatePool> SeirSimulator::make_pool() const {
  return std::make_unique<ModelStatePool<epi::SeirModel>>();
}

void SeirSimulator::run_batch(const StatePool& parents, std::int32_t to_day,
                              EnsembleBuffer& buffer, std::size_t first,
                              std::size_t count, const BatchSink& sink) const {
  validate_batch_args(parents, buffer, first, count, sink);
  detail::run_batch_fused<epi::SeirModel>(parents, to_day, buffer, first,
                                          count, sink, name());
}

void SeirSimulator::run_batch(std::span<const epi::Checkpoint> parents,
                              std::int32_t to_day, EnsembleBuffer& buffer,
                              std::size_t first, std::size_t count,
                              std::span<epi::Checkpoint> end_states) const {
  validate_batch_args(parents, buffer, first, count, end_states);
  detail::run_batch_copying<epi::SeirModel>(parents, to_day, buffer, first,
                                            count, end_states, name());
}

void SeirSimulator::advance_batch(StatePool& states, std::int32_t to_day,
                                  EnsembleBuffer& buffer, std::size_t first,
                                  std::size_t count,
                                  const BatchSink& sink) const {
  detail::advance_batch_inplace<epi::SeirModel>(
      states, to_day, buffer, first, count, sink, name(),
      [](epi::SeirModel&) {});
}

void SeirSimulator::resample_states(StatePool& states,
                                    std::span<const std::uint32_t> ancestors,
                                    std::uint64_t seed,
                                    std::span<const std::uint64_t> streams,
                                    std::span<const double> thetas) const {
  if (ancestors.size() != streams.size() || ancestors.size() != thetas.size()) {
    throw std::invalid_argument(
        "resample_states: ancestors, streams and thetas must align");
  }
  detail::resample_states_inplace<epi::SeirModel>(
      states, ancestors, seed, streams, thetas, name(), [](epi::SeirModel&) {});
}

epi::Checkpoint ChainBinomialSimulator::initial_state(std::int32_t day,
                                                      std::uint64_t seed) const {
  epi::ChainBinomialModel model(config_.params,
                                epi::PiecewiseSchedule(config_.burnin_theta),
                                seed, /*stream=*/0);
  model.seed_exposed(config_.initial_exposed);
  model.run_until_day(day);
  return model.make_checkpoint();
}

WindowRun ChainBinomialSimulator::run_window(const epi::Checkpoint& state,
                                             double theta, std::uint64_t seed,
                                             std::uint64_t stream,
                                             std::int32_t to_day,
                                             bool want_checkpoint) const {
  epi::RestartOverrides ovr;
  ovr.seed = seed;
  ovr.stream = stream;
  ovr.transmission_rate = theta;
  epi::ChainBinomialModel model = epi::ChainBinomialModel::restore(state, ovr);
  const std::int32_t from_day = model.day() + 1;
  if (to_day < from_day) {
    throw std::invalid_argument("run_window: to_day before checkpoint day");
  }
  model.run_until_day(to_day);
  return extract_window(model, from_day, to_day, want_checkpoint);
}

std::unique_ptr<StatePool> ChainBinomialSimulator::make_pool() const {
  return std::make_unique<ModelStatePool<epi::ChainBinomialModel>>();
}

void ChainBinomialSimulator::run_batch(const StatePool& parents,
                                       std::int32_t to_day,
                                       EnsembleBuffer& buffer,
                                       std::size_t first, std::size_t count,
                                       const BatchSink& sink) const {
  validate_batch_args(parents, buffer, first, count, sink);
  detail::run_batch_fused<epi::ChainBinomialModel>(parents, to_day, buffer,
                                                   first, count, sink, name());
}

void ChainBinomialSimulator::run_batch(
    std::span<const epi::Checkpoint> parents, std::int32_t to_day,
    EnsembleBuffer& buffer, std::size_t first, std::size_t count,
    std::span<epi::Checkpoint> end_states) const {
  validate_batch_args(parents, buffer, first, count, end_states);
  detail::run_batch_copying<epi::ChainBinomialModel>(
      parents, to_day, buffer, first, count, end_states, name());
}

void ChainBinomialSimulator::advance_batch(StatePool& states,
                                           std::int32_t to_day,
                                           EnsembleBuffer& buffer,
                                           std::size_t first, std::size_t count,
                                           const BatchSink& sink) const {
  detail::advance_batch_inplace<epi::ChainBinomialModel>(
      states, to_day, buffer, first, count, sink, name(),
      [](epi::ChainBinomialModel&) {});
}

void ChainBinomialSimulator::resample_states(
    StatePool& states, std::span<const std::uint32_t> ancestors,
    std::uint64_t seed, std::span<const std::uint64_t> streams,
    std::span<const double> thetas) const {
  if (ancestors.size() != streams.size() || ancestors.size() != thetas.size()) {
    throw std::invalid_argument(
        "resample_states: ancestors, streams and thetas must align");
  }
  detail::resample_states_inplace<epi::ChainBinomialModel>(
      states, ancestors, seed, streams, thetas, name(),
      [](epi::ChainBinomialModel&) {});
}

}  // namespace epismc::core
