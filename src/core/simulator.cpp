#include "core/simulator.hpp"

#include <stdexcept>

namespace epismc::core {

namespace {

/// Extract the window output series [from_day, to_day] from a model
/// trajectory after the run.
template <typename Model>
WindowRun extract_window(const Model& model, std::int32_t from_day,
                         std::int32_t to_day, bool want_checkpoint) {
  WindowRun run;
  run.true_cases = model.trajectory().new_infections(from_day, to_day);
  run.deaths = model.trajectory().new_deaths(from_day, to_day);
  if (want_checkpoint) run.end_state = model.make_checkpoint();
  return run;
}

}  // namespace

epi::Checkpoint SeirSimulator::initial_state(std::int32_t day,
                                             std::uint64_t seed) const {
  epi::SeirModel model(config_.params,
                       epi::PiecewiseSchedule(config_.burnin_theta), seed,
                       /*stream=*/0);
  model.seed_exposed(config_.initial_exposed);
  model.run_until_day(day);
  return model.make_checkpoint();
}

WindowRun SeirSimulator::run_window(const epi::Checkpoint& state, double theta,
                                    std::uint64_t seed, std::uint64_t stream,
                                    std::int32_t to_day,
                                    bool want_checkpoint) const {
  epi::RestartOverrides ovr;
  ovr.seed = seed;
  ovr.stream = stream;
  ovr.transmission_rate = theta;
  epi::SeirModel model = epi::SeirModel::restore(state, ovr);
  const std::int32_t from_day = model.day() + 1;
  if (to_day < from_day) {
    throw std::invalid_argument("run_window: to_day before checkpoint day");
  }
  model.run_until_day(to_day);
  return extract_window(model, from_day, to_day, want_checkpoint);
}

epi::Checkpoint ChainBinomialSimulator::initial_state(std::int32_t day,
                                                      std::uint64_t seed) const {
  epi::ChainBinomialModel model(config_.params,
                                epi::PiecewiseSchedule(config_.burnin_theta),
                                seed, /*stream=*/0);
  model.seed_exposed(config_.initial_exposed);
  model.run_until_day(day);
  return model.make_checkpoint();
}

WindowRun ChainBinomialSimulator::run_window(const epi::Checkpoint& state,
                                             double theta, std::uint64_t seed,
                                             std::uint64_t stream,
                                             std::int32_t to_day,
                                             bool want_checkpoint) const {
  epi::RestartOverrides ovr;
  ovr.seed = seed;
  ovr.stream = stream;
  ovr.transmission_rate = theta;
  epi::ChainBinomialModel model = epi::ChainBinomialModel::restore(state, ovr);
  const std::int32_t from_day = model.day() + 1;
  if (to_day < from_day) {
    throw std::invalid_argument("run_window: to_day before checkpoint day");
  }
  model.run_until_day(to_day);
  return extract_window(model, from_day, to_day, want_checkpoint);
}

}  // namespace epismc::core
