#include "core/posterior.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "random/seeding.hpp"

namespace epismc::core {

ParameterSummary summarize_parameter(const std::vector<double>& draws) {
  if (draws.size() < 2) {
    throw std::invalid_argument("summarize_parameter: need >= 2 draws");
  }
  ParameterSummary s;
  s.mean = stats::mean(draws);
  s.sd = stats::std_dev(draws);
  s.median = stats::quantile(draws, 0.5);
  s.ci50 = stats::credible_interval(draws, 0.5);
  s.ci90 = stats::credible_interval(draws, 0.9);
  return s;
}

WindowPosteriorSummary summarize_window(const WindowResult& window) {
  WindowPosteriorSummary s;
  s.from_day = window.from_day;
  s.to_day = window.to_day;
  s.theta = summarize_parameter(window.posterior_thetas());
  s.rho = summarize_parameter(window.posterior_rhos());
  return s;
}

stats::Kde2dResult joint_posterior_kde(const WindowResult& window,
                                       double theta_lo, double theta_hi,
                                       double rho_lo, double rho_hi,
                                       std::size_t grid) {
  const auto thetas = window.posterior_thetas();
  const auto rhos = window.posterior_rhos();
  // Floor the bandwidths at one grid cell: a (near-)degenerate posterior
  // otherwise produces a kernel narrower than the grid spacing and the
  // density surface evaluates to zero everywhere.
  const double cell_x = (theta_hi - theta_lo) / static_cast<double>(grid);
  const double cell_y = (rho_hi - rho_lo) / static_cast<double>(grid);
  const double bw_x =
      std::max(stats::silverman_bandwidth(thetas, {}), cell_x);
  const double bw_y = std::max(stats::silverman_bandwidth(rhos, {}), cell_y);
  return stats::kde_2d(thetas, rhos, {}, theta_lo, theta_hi, grid, rho_lo,
                       rho_hi, grid, bw_x, bw_y);
}

Ribbon posterior_ribbon(const WindowResult& window,
                        WindowResult::Series series, double level) {
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("posterior_ribbon: level must be in (0,1)");
  }
  const double alpha = (1.0 - level) / 2.0;
  Ribbon r;
  r.lo = window.posterior_quantile(series, alpha);
  r.mid = window.posterior_quantile(series, 0.5);
  r.hi = window.posterior_quantile(series, 1.0 - alpha);
  return r;
}

Forecast posterior_forecast(const Simulator& sim, const WindowResult& window,
                            std::int32_t horizon_day, std::size_t n_draws,
                            std::uint64_t seed,
                            std::optional<double> theta_override) {
  if (window.resampled.empty() || !window.state_pool ||
      window.state_pool->empty()) {
    throw std::invalid_argument("posterior_forecast: window has no posterior");
  }
  if (horizon_day <= window.to_day) {
    throw std::invalid_argument("posterior_forecast: horizon inside window");
  }
  constexpr std::uint64_t kForecastTag = 0x464F5245ull;  // "FORE"

  Forecast fc;
  fc.from_day = window.to_day + 1;
  fc.to_day = horizon_day;
  fc.true_cases.assign(n_draws, {});
  fc.deaths.assign(n_draws, {});

  // One batched sweep straight off the window's pooled end states: each
  // draw branches its typed parent state with a fresh forecast stream (no
  // checkpoint parsing per draw).
  const auto horizon_len =
      static_cast<std::size_t>(horizon_day - window.to_day);
  EnsembleBuffer buf(n_draws, horizon_len);
  for (std::size_t i = 0; i < n_draws; ++i) {
    // Cycle over posterior draws (the draw-level view also covers
    // particles replaced by rejuvenation moves); fresh seeds branch new
    // futures.
    const std::size_t draw = i % window.n_draws();
    buf.param_index[i] = static_cast<std::uint32_t>(draw);
    buf.replicate[i] = static_cast<std::uint32_t>(i);
    buf.parent[i] = window.draw_state_slot(draw);
    buf.theta[i] = theta_override.value_or(window.draw_theta(draw));
    buf.rho[i] = window.draw_rho(draw);
    buf.seed[i] = seed;
    buf.stream[i] = rng::make_stream_id({kForecastTag, i}).key;
  }
  sim.run_batch(*window.state_pool, horizon_day, buf, 0, n_draws);
  for (std::size_t i = 0; i < n_draws; ++i) {
    const auto cases = buf.true_cases(i);
    fc.true_cases[i].assign(cases.begin(), cases.end());
    const auto deaths = buf.deaths(i);
    fc.deaths[i].assign(deaths.begin(), deaths.end());
  }
  return fc;
}

Ribbon Forecast::case_ribbon(double level) const {
  if (true_cases.empty()) {
    throw std::logic_error("Forecast: empty");
  }
  const double alpha = (1.0 - level) / 2.0;
  const std::size_t days = true_cases.front().size();
  Ribbon r;
  r.lo.resize(days);
  r.mid.resize(days);
  r.hi.resize(days);
  std::vector<double> column(true_cases.size());
  for (std::size_t d = 0; d < days; ++d) {
    for (std::size_t i = 0; i < true_cases.size(); ++i) {
      column[i] = true_cases[i][d];
    }
    r.lo[d] = stats::quantile(column, alpha);
    r.mid[d] = stats::quantile(column, 0.5);
    r.hi[d] = stats::quantile(column, 1.0 - alpha);
  }
  return r;
}

}  // namespace epismc::core
