#pragma once

// Observed data streams used for calibration.
//
// Day-indexed series of reported cases and deaths (paper notation y^c, y^d).
// Days are absolute simulation days; window extraction is by inclusive day
// range to match the paper's calibration windows [t_{m-1}+1, t_m].

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace epismc::core {

class ObservedData {
 public:
  ObservedData() = default;

  /// `first_day` is the day of cases[0]; series must have equal length
  /// (deaths may be empty when only cases are observed).
  ObservedData(std::int32_t first_day, std::vector<double> cases,
               std::vector<double> deaths);

  [[nodiscard]] std::int32_t first_day() const noexcept { return first_day_; }
  [[nodiscard]] std::int32_t last_day() const noexcept {
    return first_day_ + static_cast<std::int32_t>(cases_.size()) - 1;
  }
  [[nodiscard]] bool has_deaths() const noexcept { return !deaths_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return cases_.size(); }

  [[nodiscard]] double cases_at(std::int32_t day) const {
    return cases_[checked_offset(day)];
  }
  [[nodiscard]] double deaths_at(std::int32_t day) const;

  /// Inclusive-range slices used by window likelihoods.
  [[nodiscard]] std::vector<double> cases_window(std::int32_t from_day,
                                                 std::int32_t to_day) const;
  [[nodiscard]] std::vector<double> deaths_window(std::int32_t from_day,
                                                  std::int32_t to_day) const;

  [[nodiscard]] std::span<const double> cases() const noexcept {
    return cases_;
  }
  [[nodiscard]] std::span<const double> deaths() const noexcept {
    return deaths_;
  }

 private:
  [[nodiscard]] std::size_t checked_offset(std::int32_t day) const;

  std::int32_t first_day_ = 1;
  std::vector<double> cases_;
  std::vector<double> deaths_;
};

}  // namespace epismc::core
