#pragma once

// Particle bookkeeping for one calibration window.
//
// A "particle" is the paper's (theta, s, rho) tuple: transmission rate,
// random seed, reporting probability. Each unique (theta, rho) draw is
// replicated over R seeds (with common random numbers across draws, as in
// §V-B), so a window propagates n_params * R simulated trajectories. The
// trajectories live in a batched structure-of-arrays EnsembleBuffer (see
// core/ensemble.hpp) rather than per-sim records: one flat day-major
// matrix per output series plus flat identity/parameter/weight columns.

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/ensemble.hpp"
#include "core/state_pool.hpp"
#include "epi/seir_model.hpp"

namespace epismc::core {

/// Health metrics of one importance-sampling window.
struct WindowDiagnostics {
  double ess = 0.0;             // Kish effective sample size
  double perplexity = 0.0;      // exp(entropy)/N in (0, 1]
  double max_weight = 0.0;      // largest normalized weight
  double log_marginal = 0.0;    // log (1/N sum w): evidence increment
  std::size_t unique_resampled = 0;
  std::size_t n_sims = 0;
  /// Wall time of the fused batched sweep: propagate + bias + likelihood
  /// (+ inline end-state capture when inline_capture is set).
  double propagate_seconds = 0.0;
  /// Wall time of the deferred end-state replay pass; ~0 under inline
  /// capture, where end states fall out of the weighted sweep itself.
  double checkpoint_seconds = 0.0;
  /// True when end states were captured inline during the weighted pass
  /// (CapturePolicy resolution; false means the deferred-replay fallback).
  bool inline_capture = false;
};

/// Everything produced by calibrating one window.
struct WindowResult {
  std::int32_t from_day = 0;
  std::int32_t to_day = 0;

  /// All propagated trajectories: series rows + identity/parameter/weight
  /// columns, indexed by sim (sim = param_index * replicates + replicate).
  EnsembleBuffer ensemble;
  std::vector<double> weights;      // normalized importance weights per sim
  std::vector<std::uint32_t> resampled;  // posterior draws: sim indices

  /// End-of-window states of the *unique* resampled sims, held in the
  /// backend's typed state pool (slot u = u-th unique survivor in sim
  /// order). No byte serialization: the next window, forecasts and the
  /// api layer branch straight from the pooled typed states; use
  /// state_checkpoint() to cross the io boundary.
  std::shared_ptr<StatePool> state_pool;
  static constexpr std::uint32_t kNoState =
      std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> sim_to_state;  // sim index -> pool slot

  WindowDiagnostics diag;

  [[nodiscard]] std::size_t n_sims() const noexcept { return ensemble.size(); }

  /// Number of kept end-of-window states (== diag.unique_resampled).
  [[nodiscard]] std::size_t state_count() const noexcept {
    return state_pool ? state_pool->size() : 0;
  }

  /// Serialize sim `s`'s end-of-window state into the portable checkpoint
  /// format (io boundary). Throws std::logic_error when `s` was not a
  /// resampled survivor (no state was kept for it).
  [[nodiscard]] epi::Checkpoint state_checkpoint(std::uint32_t s) const;

  /// Posterior parameter samples, expanded over the resampled draws.
  [[nodiscard]] std::vector<double> posterior_thetas() const;
  [[nodiscard]] std::vector<double> posterior_rhos() const;

  /// Per-day posterior quantile band over a resampled output series.
  /// `field` selects which matrix of the ensemble to summarize.
  using Series = EnsembleBuffer::Series;
  [[nodiscard]] std::vector<double> posterior_quantile(Series field,
                                                       double q) const;

  [[nodiscard]] std::size_t window_length() const {
    return static_cast<std::size_t>(to_day - from_day + 1);
  }
};

}  // namespace epismc::core
