#pragma once

// Particle bookkeeping for one calibration window.
//
// A "particle" is the paper's (theta, s, rho) tuple: transmission rate,
// random seed, reporting probability. Each unique (theta, rho) draw is
// replicated over R seeds (with common random numbers across draws, as in
// §V-B), so a window propagates n_params * R simulated trajectories.

#include <cstdint>
#include <limits>
#include <vector>

#include "epi/seir_model.hpp"

namespace epismc::core {

/// One simulated trajectory within a window.
struct SimRecord {
  std::uint32_t param_index = 0;  // which (theta, rho) draw
  std::uint32_t replicate = 0;    // which replicate seed
  std::uint32_t parent = 0;       // index into the parent-state vector
  double theta = 0.0;
  double rho = 1.0;
  std::uint64_t seed = 0;    // RNG identity used for the model run
  std::uint64_t stream = 0;
  double log_weight = 0.0;
  std::vector<double> true_cases;  // simulated daily infections in window
  std::vector<double> obs_cases;   // after the reporting-bias model
  std::vector<double> deaths;      // simulated daily deaths in window
};

/// Health metrics of one importance-sampling window.
struct WindowDiagnostics {
  double ess = 0.0;             // Kish effective sample size
  double perplexity = 0.0;      // exp(entropy)/N in (0, 1]
  double max_weight = 0.0;      // largest normalized weight
  double log_marginal = 0.0;    // log (1/N sum w): evidence increment
  std::size_t unique_resampled = 0;
  std::size_t n_sims = 0;
  double propagate_seconds = 0.0;   // wall time of the parallel sweep
  double checkpoint_seconds = 0.0;  // wall time regenerating end states
};

/// Everything produced by calibrating one window.
struct WindowResult {
  std::int32_t from_day = 0;
  std::int32_t to_day = 0;

  std::vector<SimRecord> sims;      // all propagated trajectories
  std::vector<double> weights;      // normalized importance weights per sim
  std::vector<std::uint32_t> resampled;  // posterior draws: sim indices

  /// End-of-window checkpoints for the *unique* resampled sims
  /// (regenerated deterministically; see importance_sampler.cpp).
  std::vector<epi::Checkpoint> states;
  static constexpr std::uint32_t kNoState =
      std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> sim_to_state;  // sim index -> slot in states

  WindowDiagnostics diag;

  /// Posterior parameter samples, expanded over the resampled draws.
  [[nodiscard]] std::vector<double> posterior_thetas() const;
  [[nodiscard]] std::vector<double> posterior_rhos() const;

  /// Per-day posterior quantile band over a resampled output series.
  /// `field` selects which series of SimRecord to summarize.
  enum class Series { kTrueCases, kObsCases, kDeaths };
  [[nodiscard]] std::vector<double> posterior_quantile(Series field,
                                                       double q) const;

  [[nodiscard]] std::size_t window_length() const {
    return static_cast<std::size_t>(to_day - from_day + 1);
  }
};

}  // namespace epismc::core
