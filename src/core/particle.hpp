#pragma once

// Particle bookkeeping for one calibration window.
//
// A "particle" is the paper's (theta, s, rho) tuple: transmission rate,
// random seed, reporting probability. Each unique (theta, rho) draw is
// replicated over R seeds (with common random numbers across draws, as in
// §V-B), so a window propagates n_params * R simulated trajectories. The
// trajectories live in a batched structure-of-arrays EnsembleBuffer (see
// core/ensemble.hpp) rather than per-sim records: one flat day-major
// matrix per output series plus flat identity/parameter/weight columns.

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/ensemble.hpp"
#include "core/particle_system.hpp"
#include "core/state_pool.hpp"
#include "epi/seir_model.hpp"

namespace epismc::core {

/// Health metrics of one importance-sampling window.
struct WindowDiagnostics {
  double ess = 0.0;             // Kish effective sample size
  double perplexity = 0.0;      // exp(entropy)/N in (0, 1]
  double max_weight = 0.0;      // largest normalized weight
  double log_marginal = 0.0;    // log (1/N sum w): evidence increment
  std::size_t unique_resampled = 0;
  std::size_t n_sims = 0;
  /// Wall time of the fused batched sweep: propagate + bias + likelihood
  /// (+ inline end-state capture when inline_capture is set).
  double propagate_seconds = 0.0;
  /// Wall time of the deferred end-state replay pass; ~0 under inline
  /// capture, where end states fall out of the weighted sweep itself.
  double checkpoint_seconds = 0.0;
  /// True when end states were captured inline during the weighted pass
  /// (CapturePolicy resolution; false means the deferred-replay fallback).
  bool inline_capture = false;
};

/// Post-rejuvenation overlay: when the window's inference strategy ran
/// PMMH-style rejuvenation moves, some posterior draws were replaced by
/// freshly propagated particles that have no row in the weighted ensemble.
/// The overlay carries the final per-draw parameters, the per-draw state
/// slot, and the moved draws' output series, so every consumer reads the
/// posterior through the draw_* accessors below and never notices whether
/// a draw is an original sim or a moved particle.
struct RejuvenatedDraws {
  std::vector<std::uint8_t> moved;       // per draw: 1 if an MH move landed
  std::vector<double> theta;             // final per-draw parameters
  std::vector<double> rho;
  std::vector<std::uint32_t> state_slot; // per draw -> state_pool slot
  /// Output series of the moved draws only (one row per accepted move;
  /// un-moved draws keep reading the weighted ensemble), addressed through
  /// series_row: draw -> row of `series`, kNoRow where not moved.
  EnsembleBuffer series;
  static constexpr std::uint32_t kNoRow =
      std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> series_row;
};

/// Everything produced by calibrating one window.
struct WindowResult {
  std::int32_t from_day = 0;
  std::int32_t to_day = 0;

  /// All propagated trajectories: series rows + identity/parameter/weight
  /// columns, indexed by sim (sim = param_index * replicates + replicate).
  EnsembleBuffer ensemble;
  std::vector<double> weights;      // normalized importance weights per sim
  std::vector<std::uint32_t> resampled;  // posterior draws: sim indices

  /// End-of-window states of the *unique* resampled sims, held in the
  /// backend's typed state pool (slot u = u-th unique survivor in sim
  /// order). No byte serialization: the next window, forecasts and the
  /// api layer branch straight from the pooled typed states; use
  /// state_checkpoint() to cross the io boundary.
  std::shared_ptr<StatePool> state_pool;
  static constexpr std::uint32_t kNoState =
      std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> sim_to_state;  // sim index -> pool slot

  /// Present only when rejuvenation moves ran (see RejuvenatedDraws).
  std::optional<RejuvenatedDraws> rejuvenated;

  WindowDiagnostics diag;
  /// Adaptive-SMC trace: temper ladder, ESS recovery, move acceptance.
  SmcDiagnostics smc;

  [[nodiscard]] std::size_t n_sims() const noexcept { return ensemble.size(); }

  // --- Draw-level posterior view. ------------------------------------------
  // Draw i of the final posterior sample: an original ensemble sim
  // (resampled[i]) unless a rejuvenation move replaced it. All posterior
  // consumers (summaries, forecasts, the next window's proposal) go
  // through these accessors so the strategies stay interchangeable.
  [[nodiscard]] std::size_t n_draws() const noexcept {
    return resampled.size();
  }
  [[nodiscard]] double draw_theta(std::size_t i) const;
  [[nodiscard]] double draw_rho(std::size_t i) const;
  /// Pool slot of draw i's end-of-window state; throws std::logic_error
  /// when no state was kept for it.
  [[nodiscard]] std::uint32_t draw_state_slot(std::size_t i) const;
  /// Output-series row backing draw i (moved draws read the overlay).
  [[nodiscard]] std::span<const double> draw_series(EnsembleBuffer::Series s,
                                                    std::size_t i) const;

  /// Number of kept end-of-window states: the unique resampled survivors
  /// (== diag.unique_resampled) plus, after rejuvenation moves, one state
  /// per accepted move.
  [[nodiscard]] std::size_t state_count() const noexcept {
    return state_pool ? state_pool->size() : 0;
  }

  /// Serialize sim `s`'s end-of-window state into the portable checkpoint
  /// format (io boundary). Throws std::logic_error when `s` was not a
  /// resampled survivor (no state was kept for it).
  [[nodiscard]] epi::Checkpoint state_checkpoint(std::uint32_t s) const;

  /// Posterior parameter samples, expanded over the resampled draws.
  [[nodiscard]] std::vector<double> posterior_thetas() const;
  [[nodiscard]] std::vector<double> posterior_rhos() const;

  /// Per-day posterior quantile band over a resampled output series.
  /// `field` selects which matrix of the ensemble to summarize.
  using Series = EnsembleBuffer::Series;
  [[nodiscard]] std::vector<double> posterior_quantile(Series field,
                                                       double q) const;

  [[nodiscard]] std::size_t window_length() const {
    return static_cast<std::size_t>(to_day - from_day + 1);
  }
};

/// Dump the adaptive-SMC diagnostics of completed windows as CSV, one row
/// per ladder rung plus one row per rejuvenation round:
///   window,from_day,to_day,strategy,kind,index,phi,ess,
///   log_marginal_increment,acceptance_rate
/// kind is "stage" (acceptance_rate empty) or "move" (phi/ess are the
/// final rung's values, acceptance_rate is the round's fraction).
void write_smc_diagnostics_csv(std::ostream& os,
                               std::span<const WindowResult> windows);

}  // namespace epismc::core
