#include "core/particle_system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "io/binary_archive.hpp"
#include "stats/weights.hpp"

namespace epismc::core {

const char* to_string(InferenceStrategy strategy) {
  switch (strategy) {
    case InferenceStrategy::kSingleStage: return "single-stage";
    case InferenceStrategy::kTempered: return "tempered";
    case InferenceStrategy::kTemperedRejuvenate: return "tempered+rejuvenate";
  }
  return "unknown";
}

const char* to_string(DegeneracyPolicy policy) {
  switch (policy) {
    case DegeneracyPolicy::kQuarantine: return "quarantine";
    case DegeneracyPolicy::kThrow: return "throw";
  }
  return "unknown";
}

DegeneracyPolicy degeneracy_policy_from_name(const std::string& name) {
  if (name == "quarantine") return DegeneracyPolicy::kQuarantine;
  if (name == "throw") return DegeneracyPolicy::kThrow;
  throw std::invalid_argument(
      "degeneracy_policy_from_name: unknown policy '" + name +
      "' (known: quarantine, throw)");
}

double SmcDiagnostics::acceptance_rate() const noexcept {
  if (rejuvenation_proposed == 0) return -1.0;
  return static_cast<double>(rejuvenation_accepted) /
         static_cast<double>(rejuvenation_proposed);
}

void SmcDiagnostics::serialize(io::BinaryWriter& out) const {
  out.write(static_cast<std::uint8_t>(strategy));
  out.write(static_cast<std::uint8_t>(triggered));
  out.write(ess_threshold);
  out.write(initial_ess);
  out.write(final_ess);
  out.write(static_cast<std::uint64_t>(stages.size()));
  for (const SmcStage& s : stages) {
    out.write(s.phi);
    out.write(s.ess);
    out.write(s.log_marginal_increment);
  }
  out.write_vector(move_acceptance);
  out.write(rejuvenation_proposed);
  out.write(rejuvenation_accepted);
  out.write(degeneracy.demoted);
  out.write_vector(degeneracy.draws);
}

SmcDiagnostics SmcDiagnostics::deserialize(io::BinaryReader& in) {
  SmcDiagnostics d;
  const auto tag = in.read<std::uint8_t>();
  if (tag > static_cast<std::uint8_t>(InferenceStrategy::kTemperedRejuvenate)) {
    throw io::ArchiveError("SmcDiagnostics: unknown strategy tag " +
                           std::to_string(tag));
  }
  d.strategy = static_cast<InferenceStrategy>(tag);
  d.triggered = in.read<std::uint8_t>() != 0;
  d.ess_threshold = in.read<double>();
  d.initial_ess = in.read<double>();
  d.final_ess = in.read<double>();
  const auto n_stages = in.read<std::uint64_t>();
  d.stages.resize(n_stages);
  for (SmcStage& s : d.stages) {
    s.phi = in.read<double>();
    s.ess = in.read<double>();
    s.log_marginal_increment = in.read<double>();
  }
  d.move_acceptance = in.read_vector<double>();
  d.rejuvenation_proposed = in.read<std::uint64_t>();
  d.rejuvenation_accepted = in.read<std::uint64_t>();
  d.degeneracy.demoted = in.read<std::uint64_t>();
  d.degeneracy.draws = in.read_vector<std::uint32_t>();
  return d;
}

void ParticleSystem::reset(std::size_t n) {
  log_weight_.assign(n, 0.0);
  weight_.clear();
  n_ = n;
  committed_ = false;
}

void ParticleSystem::assign(std::span<const double> log_weights) {
  log_weight_.assign(log_weights.begin(), log_weights.end());
  weight_.clear();
  n_ = log_weight_.size();
  committed_ = false;
}

void ParticleSystem::commit() { commit(log_weight_); }

void ParticleSystem::commit(std::span<const double> log_weights) {
  n_ = log_weights.size();
  lse_ = stats::log_sum_exp(log_weights);
  if (std::isfinite(lse_)) {
    weight_ = stats::normalize_log_weights(log_weights, lse_);
  } else {
    weight_.clear();
  }
  committed_ = true;
}

std::vector<double> ParticleSystem::take_weights() {
  require_committed("take_weights");
  committed_ = false;
  return std::move(weight_);
}

void ParticleSystem::require_committed(const char* what) const {
  if (!committed_) {
    throw std::logic_error(std::string("ParticleSystem::") + what +
                           ": commit() the log-weights first");
  }
}

double ParticleSystem::lse() const {
  require_committed("lse");
  return lse_;
}

double ParticleSystem::log_marginal_increment() const {
  require_committed("log_marginal_increment");
  return lse_ - std::log(static_cast<double>(n_));
}

const std::vector<double>& ParticleSystem::weights() const {
  require_committed("weights");
  if (weight_.empty()) {
    throw std::domain_error(
        "ParticleSystem: population is degenerate (zero total weight)");
  }
  return weight_;
}

double ParticleSystem::ess() const {
  return stats::effective_sample_size(weights());
}

double ParticleSystem::perplexity() const {
  return stats::weight_perplexity(weights());
}

double ParticleSystem::max_weight() const {
  const std::vector<double>& w = weights();
  return *std::max_element(w.begin(), w.end());
}

std::vector<std::uint32_t> ParticleSystem::resample(
    stats::ResamplingScheme scheme, rng::Engine& eng, std::size_t count) const {
  return stats::resample(scheme, eng, weights(), count);
}

ParticleSystem::Survivors ParticleSystem::survivors(
    std::span<const std::uint32_t> resampled, std::size_t n) {
  Survivors out;
  out.unique.assign(resampled.begin(), resampled.end());
  std::sort(out.unique.begin(), out.unique.end());
  out.unique.erase(std::unique(out.unique.begin(), out.unique.end()),
                   out.unique.end());
  if (!out.unique.empty() && out.unique.back() >= n) {
    throw std::out_of_range("ParticleSystem::survivors: index " +
                            std::to_string(out.unique.back()) +
                            " outside population of " + std::to_string(n));
  }
  out.index_to_slot.assign(n, Survivors::kNoSlot);
  for (std::size_t u = 0; u < out.unique.size(); ++u) {
    out.index_to_slot[out.unique[u]] = static_cast<std::uint32_t>(u);
  }
  return out;
}

double solve_temper_step(std::span<const double> loglik, double budget,
                         double target_ess) {
  if (!(budget > 0.0)) {
    throw std::invalid_argument("solve_temper_step: budget must be > 0");
  }
  if (stats::effective_sample_size_log(loglik, budget) >= target_ess) {
    return budget;
  }
  // ESS(delta -> 0) == N >= target, ESS(budget) < target: bisect the
  // boundary. ESS is not guaranteed strictly monotone in delta, but the
  // invariant "lo satisfies the target" is maintained exactly.
  double lo = 0.0;
  double hi = budget;
  for (int it = 0; it < 60 && (hi - lo) > 1e-12; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (stats::effective_sample_size_log(loglik, mid) >= target_ess) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Floor at a sliver of the budget: when one particle dominates at any
  // positive temperature the bisection collapses toward zero, and a zero
  // step would stall the ladder (the stage cap still bounds the run).
  return std::max(lo, budget * 1e-6);
}

}  // namespace epismc::core
