#include "core/pmmh.hpp"

#include <cmath>
#include <stdexcept>

#include "core/particle_system.hpp"
#include "random/seeding.hpp"
#include "stats/descriptive.hpp"

namespace epismc::core {

namespace {
constexpr std::uint64_t kChainTag = 0x504D4D48ull;  // "PMMH"
constexpr std::uint64_t kEstimateTag = 0x45535449ull;
constexpr std::uint64_t kBiasTag = 0x42ull;
}  // namespace

void PmmhConfig::validate() const {
  if (to_day < from_day) throw std::invalid_argument("PmmhConfig: bad window");
  if (iterations == 0 || replicates == 0) {
    throw std::invalid_argument("PmmhConfig: zero iterations or replicates");
  }
  if (burnin >= iterations) {
    throw std::invalid_argument("PmmhConfig: burnin >= iterations");
  }
  if (!(theta_step > 0.0) || !(rho_step > 0.0)) {
    throw std::invalid_argument("PmmhConfig: step sizes must be > 0");
  }
  if (!theta_prior || !rho_prior) {
    throw std::invalid_argument("PmmhConfig: null prior");
  }
}

double PmmhResult::theta_mean() const { return stats::mean(theta_chain); }
double PmmhResult::theta_sd() const { return stats::std_dev(theta_chain); }
double PmmhResult::rho_mean() const { return stats::mean(rho_chain); }

PmmhResult run_pmmh(const Simulator& sim, const Likelihood& likelihood,
                    const BiasModel& bias, const ObservedData& data,
                    const epi::Checkpoint& init, const PmmhConfig& config) {
  config.validate();
  const std::vector<double> y_cases =
      data.cases_window(config.from_day, config.to_day);
  const std::vector<double> y_deaths =
      config.use_deaths ? data.deaths_window(config.from_day, config.to_day)
                        : std::vector<double>{};
  const auto window_len = y_cases.size();

  // Unbiased likelihood estimate: (1/R) sum_r exp(loglik_r) over replicate
  // trajectories, each with its own (iteration, replicate)-addressed
  // stream. Replicates propagate, bias and score through one fused batched
  // sweep into a buffer that lives across iterations (no per-estimate
  // allocation); the chain itself is inherently sequential -- that
  // asymmetry is the point of the comparison. The initial state is pooled
  // once for the whole chain (the old path re-parsed its checkpoint every
  // iteration) and the observed window's likelihood constants are
  // precomputed once -- PMMH re-scores the same window thousands of times.
  const std::shared_ptr<StatePool> parents = sim.make_pool();
  parents->append_checkpoint(init);
  const ObservationCache case_cache = likelihood.prepare(y_cases);
  const ObservationCache death_cache =
      config.use_deaths ? likelihood.prepare(y_deaths) : ObservationCache{};
  EnsembleBuffer buf(config.replicates, window_len);
  // The replicate population is a ParticleSystem: log-weights in, one
  // log-sum-exp pass out. log_marginal_increment() is exactly the
  // pseudo-marginal estimate log((1/R) sum exp(loglik_r)), and a fully
  // impossible proposal (all replicates at -inf) stays readable as -inf
  // instead of throwing, which is what the accept step needs.
  ParticleSystem replicates_ps;
  std::size_t sims_used = 0;
  const auto estimate_loglik = [&](double theta, double rho,
                                   std::uint64_t iteration) {
    replicates_ps.reset(config.replicates);
    const std::span<double> logliks = replicates_ps.log_weights();
    for (std::size_t r = 0; r < config.replicates; ++r) {
      buf.param_index[r] = static_cast<std::uint32_t>(iteration);
      buf.replicate[r] = static_cast<std::uint32_t>(r);
      buf.parent[r] = 0;
      buf.theta[r] = theta;
      buf.rho[r] = rho;
      buf.seed[r] = config.seed;
      buf.stream[r] = rng::make_stream_id({kEstimateTag, iteration, r}).key;
    }
    // Fused per-sim tail: bias and likelihood on the window-tail rows
    // (init may sit before the window; run_batch stores exactly the tail).
    BatchSink sink;
    sink.on_sim = [&](std::size_t r) {
      auto bias_eng = rng::make_engine(config.seed, {kBiasTag, iteration, r});
      bias.apply_into(bias_eng, buf.true_cases(r), rho, buf.obs_cases(r));
      double ll = likelihood.logpdf(case_cache, buf.obs_cases(r));
      if (config.use_deaths) {
        ll += likelihood.logpdf(death_cache, buf.deaths(r));
      }
      logliks[r] = ll;
    };
    sim.run_batch(*parents, config.to_day, buf, 0, config.replicates, sink);
    sims_used += config.replicates;
    replicates_ps.commit();
    return replicates_ps.log_marginal_increment();
  };

  auto chain_eng = rng::make_engine(config.seed, {kChainTag});
  const Prior& theta_prior = *config.theta_prior;
  const Prior& rho_prior = *config.rho_prior;

  // Start at a prior draw with a finite likelihood estimate.
  double theta = theta_prior.sample(chain_eng);
  double rho = rho_prior.sample(chain_eng);
  double log_post = estimate_loglik(theta, rho, 0) + theta_prior.logpdf(theta) +
                    rho_prior.logpdf(rho);

  PmmhResult result;
  result.theta_chain.reserve(config.iterations - config.burnin);
  result.rho_chain.reserve(config.iterations - config.burnin);
  result.loglik_chain.reserve(config.iterations - config.burnin);
  std::size_t accepted = 0;

  for (std::size_t it = 1; it <= config.iterations; ++it) {
    const double theta_prop =
        theta + config.theta_step * rng::normal(chain_eng);
    const double rho_prop = rho + config.rho_step * rng::normal(chain_eng);

    double log_post_prop = -std::numeric_limits<double>::infinity();
    const double prior_prop =
        theta_prior.logpdf(theta_prop) + rho_prior.logpdf(rho_prop);
    if (std::isfinite(prior_prop)) {
      log_post_prop = estimate_loglik(theta_prop, rho_prop, it) + prior_prop;
    }

    const double log_alpha = log_post_prop - log_post;
    if (std::log(rng::uniform_double_oo(chain_eng)) < log_alpha) {
      theta = theta_prop;
      rho = rho_prop;
      log_post = log_post_prop;
      ++accepted;
    }
    if (it > config.burnin) {
      result.theta_chain.push_back(theta);
      result.rho_chain.push_back(rho);
      result.loglik_chain.push_back(log_post);
    }
  }
  result.acceptance_rate =
      static_cast<double>(accepted) / static_cast<double>(config.iterations);
  result.simulations_used = sims_used;
  return result;
}

}  // namespace epismc::core
