#include "core/ensemble.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace epismc::core {

void EnsembleBuffer::resize(std::size_t n_sims, std::size_t window_len) {
  n_sims_ = n_sims;
  window_len_ = window_len;
  const std::size_t cells = n_sims * window_len;
  true_cases_.resize(cells);
  obs_cases_.resize(cells);
  deaths_.resize(cells);
  param_index.resize(n_sims);
  replicate.resize(n_sims);
  parent.resize(n_sims);
  theta.resize(n_sims);
  rho.resize(n_sims);
  seed.resize(n_sims);
  stream.resize(n_sims);
  log_weight.resize(n_sims);
}

std::span<const double> EnsembleBuffer::series(Series which,
                                               std::size_t s) const {
  switch (which) {
    case Series::kTrueCases: return true_cases(s);
    case Series::kObsCases: return obs_cases(s);
    case Series::kDeaths: return deaths(s);
  }
  throw std::logic_error("EnsembleBuffer::series: bad series");
}

std::span<double> EnsembleBuffer::series(Series which, std::size_t s) {
  switch (which) {
    case Series::kTrueCases: return true_cases(s);
    case Series::kObsCases: return obs_cases(s);
    case Series::kDeaths: return deaths(s);
  }
  throw std::logic_error("EnsembleBuffer::series: bad series");
}

void EnsembleBuffer::store_tail(Series which, std::size_t s,
                                std::span<const double> full_series) {
  if (full_series.size() < window_len_) {
    throw std::logic_error(
        "EnsembleBuffer::store_tail: parent state of sim " +
        std::to_string(s) + " sits inside the window (series covers " +
        std::to_string(full_series.size()) + " days, window needs " +
        std::to_string(window_len_) + ")");
  }
  const std::span<const double> tail =
      full_series.subspan(full_series.size() - window_len_);
  std::copy(tail.begin(), tail.end(), series(which, s).begin());
}

}  // namespace epismc::core
