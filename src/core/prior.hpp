#pragma once

// Priors and posterior-jitter proposals for the (theta, rho) parameters.
//
// Window 1 samples from fixed priors: theta ~ Uniform(0.1, 0.5), rho ~
// Beta(4, 1) in the paper. Later windows sample "a uniform distribution
// centered around each posterior value" -- a jitter kernel, symmetric for
// theta and asymmetric (upward-shifted) for rho to encode improving case
// ascertainment.

#include <memory>
#include <string>

#include "random/distributions.hpp"

namespace epismc::core {

class Prior {
 public:
  virtual ~Prior() = default;
  [[nodiscard]] virtual double sample(rng::Engine& eng) const = 0;
  [[nodiscard]] virtual double logpdf(double x) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

class UniformPrior final : public Prior {
 public:
  UniformPrior(double lo, double hi);
  [[nodiscard]] double sample(rng::Engine& eng) const override;
  [[nodiscard]] double logpdf(double x) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

 private:
  double lo_;
  double hi_;
};

class BetaPrior final : public Prior {
 public:
  BetaPrior(double a, double b);
  [[nodiscard]] double sample(rng::Engine& eng) const override;
  [[nodiscard]] double logpdf(double x) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double a_;
  double b_;
};

class PointPrior final : public Prior {
 public:
  explicit PointPrior(double value) : value_(value) {}
  [[nodiscard]] double sample(rng::Engine&) const override { return value_; }
  [[nodiscard]] double logpdf(double x) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double value_;
};

/// Uniform jitter window applied to a posterior draw: the proposal for
/// window m > 1. `down`/`up` are the half-widths below/above the center;
/// results are clamped to [lo, hi].
struct JitterKernel {
  double down = 0.05;
  double up = 0.05;
  double lo = 0.0;
  double hi = 1.0;

  [[nodiscard]] double sample(rng::Engine& eng, double center) const {
    const double x = rng::uniform_range(eng, center - down, center + up);
    return std::min(std::max(x, lo), hi);
  }
  [[nodiscard]] bool symmetric() const noexcept { return down == up; }
};

}  // namespace epismc::core
