#include "core/likelihood.hpp"

#include <cmath>
#include <stdexcept>

#include "api/components.hpp"
#include "simd/simd.hpp"
#include "stats/densities.hpp"

namespace epismc::core {

namespace {
void check_lengths(std::size_t a, std::size_t b) {
  if (a != b || a == 0) {
    throw std::invalid_argument("Likelihood: series length mismatch or empty");
  }
}
}  // namespace

ObservationCache Likelihood::prepare(std::span<const double> observed) const {
  ObservationCache cache;
  cache.owner = this;
  cache.observed.assign(observed.begin(), observed.end());
  return cache;
}

double Likelihood::logpdf(const ObservationCache& cache,
                          std::span<const double> simulated) const {
  if (cache.owner != this) {
    throw std::invalid_argument(
        "Likelihood::logpdf: observation cache was prepared by a different "
        "likelihood instance");
  }
  return logpdf_cached(cache, simulated);
}

double Likelihood::logpdf_cached(const ObservationCache& cache,
                                 std::span<const double> simulated) const {
  return logpdf(cache.observed, simulated);
}

GaussianSqrtLikelihood::GaussianSqrtLikelihood(double sigma) : sigma_(sigma) {
  if (!(sigma > 0.0)) {
    throw std::invalid_argument("GaussianSqrtLikelihood: sigma must be > 0");
  }
}

double GaussianSqrtLikelihood::logpdf(std::span<const double> observed,
                                      std::span<const double> simulated) const {
  check_lengths(observed.size(), simulated.size());
  double acc = 0.0;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    const double y = std::sqrt(std::max(observed[t], 0.0));
    const double eta = std::sqrt(std::max(simulated[t], 0.0));
    acc += stats::normal_logpdf(y, eta, sigma_);
  }
  return acc;
}

ObservationCache GaussianSqrtLikelihood::prepare(
    std::span<const double> observed) const {
  ObservationCache cache;
  cache.owner = this;
  cache.t0.resize(observed.size());
  for (std::size_t t = 0; t < observed.size(); ++t) {
    cache.t0[t] = std::sqrt(std::max(observed[t], 0.0));
  }
  return cache;
}

double GaussianSqrtLikelihood::logpdf_cached(
    const ObservationCache& cache, std::span<const double> simulated) const {
  // Same per-day expression as logpdf() with the sqrt(y) transform hoisted
  // into cache.t0; identical operation order keeps the result bit-equal.
  // Vector dispatch levels score through the fused SIMD kernel instead
  // (same sum to rounding; the normalization constant is hoisted out of
  // the per-day loop, so the result differs from this path in the last
  // ulps -- which is why scalar level keeps the historical loop).
  check_lengths(cache.t0.size(), simulated.size());
  const simd::KernelTable& kt = simd::active();
  if (kt.level != simd::SimdLevel::kScalar) {
    return kt.score_gaussian_sqrt(cache.t0.data(), simulated.data(),
                                  simulated.size(), sigma_);
  }
  double acc = 0.0;
  for (std::size_t t = 0; t < cache.t0.size(); ++t) {
    const double eta = std::sqrt(std::max(simulated[t], 0.0));
    acc += stats::normal_logpdf(cache.t0[t], eta, sigma_);
  }
  return acc;
}

PoissonLikelihood::PoissonLikelihood(double rate_floor)
    : rate_floor_(rate_floor) {
  if (!(rate_floor > 0.0)) {
    throw std::invalid_argument("PoissonLikelihood: rate_floor must be > 0");
  }
}

double PoissonLikelihood::logpdf(std::span<const double> observed,
                                 std::span<const double> simulated) const {
  check_lengths(observed.size(), simulated.size());
  double acc = 0.0;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    const auto y = static_cast<std::int64_t>(
        std::llround(std::max(observed[t], 0.0)));
    const double rate = std::max(simulated[t], rate_floor_);
    acc += stats::poisson_logpmf(y, rate);
  }
  return acc;
}

ObservationCache PoissonLikelihood::prepare(
    std::span<const double> observed) const {
  ObservationCache cache;
  cache.owner = this;
  cache.t0.resize(observed.size());
  cache.t1.resize(observed.size());
  for (std::size_t t = 0; t < observed.size(); ++t) {
    const auto y = static_cast<std::int64_t>(
        std::llround(std::max(observed[t], 0.0)));
    cache.t0[t] = static_cast<double>(y);
    cache.t1[t] = std::lgamma(static_cast<double>(y) + 1.0);
  }
  return cache;
}

double PoissonLikelihood::logpdf_cached(
    const ObservationCache& cache, std::span<const double> simulated) const {
  // poisson_logpmf(y, rate) = y*log(rate) - rate - lgamma(y+1) with y >= 0
  // and rate >= rate_floor_ > 0, so the pmf's edge branches never fire;
  // the lgamma term lives in cache.t1 and the remaining expression keeps
  // the uncached operation order (bit-equal scores).
  check_lengths(cache.t0.size(), simulated.size());
  const simd::KernelTable& kt = simd::active();
  if (kt.level != simd::SimdLevel::kScalar) {
    return kt.score_poisson(cache.t0.data(), cache.t1.data(), simulated.data(),
                            simulated.size(), rate_floor_);
  }
  double acc = 0.0;
  for (std::size_t t = 0; t < cache.t0.size(); ++t) {
    const double rate = std::max(simulated[t], rate_floor_);
    acc += cache.t0[t] * std::log(rate) - rate - cache.t1[t];
  }
  return acc;
}

NegBinSqrtLikelihood::NegBinSqrtLikelihood(double dispersion_k)
    : k_(dispersion_k) {
  if (!(dispersion_k > 0.0)) {
    throw std::invalid_argument("NegBinSqrtLikelihood: k must be > 0");
  }
}

double NegBinSqrtLikelihood::logpdf(std::span<const double> observed,
                                    std::span<const double> simulated) const {
  check_lengths(observed.size(), simulated.size());
  double acc = 0.0;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    const double eta = std::max(simulated[t], 0.0);
    const double sd = 0.5 * std::sqrt(1.0 + eta / k_);
    acc += stats::normal_logpdf(std::sqrt(std::max(observed[t], 0.0)),
                                std::sqrt(eta), sd);
  }
  return acc;
}

ObservationCache NegBinSqrtLikelihood::prepare(
    std::span<const double> observed) const {
  ObservationCache cache;
  cache.owner = this;
  cache.t0.resize(observed.size());
  for (std::size_t t = 0; t < observed.size(); ++t) {
    cache.t0[t] = std::sqrt(std::max(observed[t], 0.0));
  }
  return cache;
}

double NegBinSqrtLikelihood::logpdf_cached(
    const ObservationCache& cache, std::span<const double> simulated) const {
  check_lengths(cache.t0.size(), simulated.size());
  const simd::KernelTable& kt = simd::active();
  if (kt.level != simd::SimdLevel::kScalar) {
    return kt.score_nb_sqrt(cache.t0.data(), simulated.data(),
                            simulated.size(), k_);
  }
  double acc = 0.0;
  for (std::size_t t = 0; t < cache.t0.size(); ++t) {
    const double eta = std::max(simulated[t], 0.0);
    const double sd = 0.5 * std::sqrt(1.0 + eta / k_);
    acc += stats::normal_logpdf(cache.t0[t], std::sqrt(eta), sd);
  }
  return acc;
}

GaussianCountLikelihood::GaussianCountLikelihood(double phi) : phi_(phi) {
  if (!(phi > 0.0)) {
    throw std::invalid_argument("GaussianCountLikelihood: phi must be > 0");
  }
}

double GaussianCountLikelihood::logpdf(std::span<const double> observed,
                                       std::span<const double> simulated) const {
  check_lengths(observed.size(), simulated.size());
  double acc = 0.0;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    const double sd = phi_ * std::sqrt(std::max(simulated[t], 1.0));
    acc += stats::normal_logpdf(observed[t], simulated[t], sd);
  }
  return acc;
}

std::unique_ptr<Likelihood> make_likelihood(const std::string& name,
                                            double parameter) {
  // The api-layer registry is the single source of truth for named
  // likelihoods: components registered there (including user-defined ones)
  // are reachable through CalibrationConfig names with no change here.
  return api::likelihoods().create(name, parameter);
}

}  // namespace epismc::core
