#pragma once

// Batched structure-of-arrays storage for one window's simulated ensemble.
//
// The importance-sampling hot path propagates n_params * replicates
// trajectories per window. Storing each trajectory as its own heap object
// (the pre-refactor SimRecord with three per-record std::vector series)
// cost 3 allocations per sim and scattered the ensemble across the heap.
// An EnsembleBuffer instead owns one flat day-major matrix per output
// series -- true cases, biased observations, deaths -- of shape
// (n_sims, window_len) in a single allocation each, plus flat columns for
// the per-sim identity (param draw, replicate, parent), parameters
// (theta, rho), RNG addressing (seed, stream) and log-weights. Row views
// are std::span, so likelihood and bias evaluation read/write the matrix
// in place and simulator batch backends fill rows without intermediate
// copies. The layout is also the substrate later scaling work (sharding,
// SIMD/GPU batch kernels, SMC^2) operates on.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace epismc::core {

class EnsembleBuffer {
 public:
  /// Which day-major output matrix a row view refers to.
  enum class Series { kTrueCases, kObsCases, kDeaths };

  EnsembleBuffer() = default;
  EnsembleBuffer(std::size_t n_sims, std::size_t window_len) {
    resize(n_sims, window_len);
  }

  /// (Re)shape to `n_sims` rows of `window_len` days. Existing contents are
  /// not preserved; capacity is reused, so resizing a long-lived buffer
  /// between windows (or PMMH iterations) does not reallocate.
  void resize(std::size_t n_sims, std::size_t window_len);

  [[nodiscard]] std::size_t size() const noexcept { return n_sims_; }
  [[nodiscard]] bool empty() const noexcept { return n_sims_ == 0; }
  [[nodiscard]] std::size_t window_len() const noexcept { return window_len_; }

  // --- Day-major row views (row s covers the window's days). --------------
  [[nodiscard]] std::span<double> true_cases(std::size_t s) noexcept {
    return row(true_cases_, s);
  }
  [[nodiscard]] std::span<const double> true_cases(std::size_t s) const noexcept {
    return row(true_cases_, s);
  }
  [[nodiscard]] std::span<double> obs_cases(std::size_t s) noexcept {
    return row(obs_cases_, s);
  }
  [[nodiscard]] std::span<const double> obs_cases(std::size_t s) const noexcept {
    return row(obs_cases_, s);
  }
  [[nodiscard]] std::span<double> deaths(std::size_t s) noexcept {
    return row(deaths_, s);
  }
  [[nodiscard]] std::span<const double> deaths(std::size_t s) const noexcept {
    return row(deaths_, s);
  }
  [[nodiscard]] std::span<const double> series(Series which,
                                               std::size_t s) const;
  [[nodiscard]] std::span<double> series(Series which, std::size_t s);

  /// Store the trailing window_len() days of `full_series` into row `s` of
  /// matrix `which`. A branched run may start before the window (the parent
  /// checkpoint can sit at day 0), so the leading days are dropped; a series
  /// *shorter* than the window means the parent state sits inside the
  /// window, which is a wiring bug -- throws std::logic_error naming the
  /// offending sim. This is the single shared "keep the window tail" helper
  /// used by the weighted pass, the checkpoint-replay pass, and every
  /// run_batch implementation.
  void store_tail(Series which, std::size_t s,
                  std::span<const double> full_series);

  // --- Flat per-sim columns (all sized size() by resize()). ----------------
  std::vector<std::uint32_t> param_index;  // which (theta, rho) draw
  std::vector<std::uint32_t> replicate;    // which replicate seed
  std::vector<std::uint32_t> parent;       // index into the parent states
  std::vector<double> theta;
  std::vector<double> rho;
  std::vector<std::uint64_t> seed;    // RNG identity of the model run
  std::vector<std::uint64_t> stream;  // companion stream id
  std::vector<double> log_weight;

 private:
  [[nodiscard]] std::span<double> row(std::vector<double>& m,
                                      std::size_t s) noexcept {
    return {m.data() + s * window_len_, window_len_};
  }
  [[nodiscard]] std::span<const double> row(const std::vector<double>& m,
                                            std::size_t s) const noexcept {
    return {m.data() + s * window_len_, window_len_};
  }

  std::size_t n_sims_ = 0;
  std::size_t window_len_ = 0;
  std::vector<double> true_cases_;  // n_sims x window_len, day-major
  std::vector<double> obs_cases_;
  std::vector<double> deaths_;
};

}  // namespace epismc::core
