#pragma once

// Sequential calibration across time windows (paper §IV-C).
//
// Window 1 draws (theta, rho) from fixed priors and weights trajectories
// branched from a shared burn-in checkpoint. Every later window m uses the
// posterior draws of window m-1 as its proposal -- each draw is jittered by
// a uniform kernel (symmetric for theta, asymmetric/upward for rho) and the
// simulation restarts from that draw's *checkpointed end state*, never from
// day zero. This is the paper's computational-savings mechanism: window m
// costs O(window length), not O(t_m).

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/bias_model.hpp"
#include "core/data.hpp"
#include "core/importance_sampler.hpp"
#include "core/likelihood.hpp"
#include "core/particle.hpp"
#include "core/prior.hpp"
#include "core/progress.hpp"
#include "core/simulator.hpp"

namespace epismc::core {

struct CalibrationConfig {
  /// Inclusive [from, to] day ranges; must be contiguous and increasing.
  std::vector<std::pair<std::int32_t, std::int32_t>> windows = {
      {20, 33}, {34, 47}, {48, 61}, {62, 75}};

  std::size_t n_params = 1250;
  std::size_t replicates = 10;
  std::size_t resample_size = 2500;
  bool common_random_numbers = true;
  bool use_deaths = false;
  stats::ResamplingScheme scheme = stats::ResamplingScheme::kSystematic;
  std::uint64_t seed = 20240306;

  std::string likelihood_name = "gaussian-sqrt";
  double likelihood_parameter = 1.0;  // sigma for gaussian-sqrt
  /// Error model for the death stream (paper: "a Gaussian error model on
  /// the square-root counts similar to reported case counts").
  std::string death_likelihood_name = "gaussian-sqrt";
  double death_likelihood_parameter = 1.0;
  std::string bias_name = "binomial";

  /// Day of the shared initial checkpoint from which window-1 particles
  /// branch. The default 0 means each particle simulates its own full
  /// early path (matching the wide pre-window trajectory spread in the
  /// paper's Fig. 3); setting it to first_window_start - 1 makes all
  /// particles share one burn-in realization (cheaper, but any burn-in
  /// noise is then absorbed into the rho estimate).
  std::int32_t burnin_day = 0;

  /// Window-1 priors (defaults are the paper's).
  std::shared_ptr<const Prior> theta_prior =
      std::make_shared<UniformPrior>(0.1, 0.5);
  std::shared_ptr<const Prior> rho_prior = std::make_shared<BetaPrior>(4.0, 1.0);

  /// Posterior-jitter kernels for windows m > 1. Theta: symmetric. Rho:
  /// asymmetric with more mass above the center ("reflecting the reduced
  /// reporting error in later epidemic stages", §V-B).
  JitterKernel theta_jitter{0.10, 0.10, 0.02, 0.65};
  JitterKernel rho_jitter{0.08, 0.12, 0.05, 1.0};

  /// Defensive mixture: this fraction of each later window's proposals is
  /// drawn from the window-1 priors instead of the jitter kernel. Keeps
  /// regime shifts larger than the jitter width (the paper's day-62 jump
  /// from theta 0.25 to 0.40) reachable, at a small efficiency cost --
  /// the standard remedy for the degeneracy risk §VI discusses.
  double defensive_fraction = 0.10;

  /// End-state capture strategy per window (see core::CapturePolicy):
  /// inline single-pass capture by default, with the deferred replay
  /// fallback when states are too large to hold for every candidate.
  CapturePolicy capture = CapturePolicy::kAuto;
  std::size_t inline_state_budget = std::size_t{512} << 20;  // kAuto ceiling

  /// Inference strategy per window (see core::InferenceStrategy):
  /// single-stage (the paper's scheme, bit-identical to the historical
  /// path), or the adaptive variants whose temper ladder engages whenever
  /// a window's ESS collapses below ess_threshold * n_sims.
  InferenceStrategy inference = InferenceStrategy::kSingleStage;
  double ess_threshold = 0.5;        // trigger/target fraction, in (0, 1)
  std::size_t max_temper_stages = 12;
  std::size_t rejuvenation_moves = 1;  // rounds (tempered+rejuvenate)

  /// What a window does with draws whose log-likelihood scores non-finite
  /// (NaN / +inf): quarantine to -inf with a DegeneracyReport (default --
  /// one pathological trajectory must not take down a session), or throw
  /// CalibrationError. See core::DegeneracyPolicy.
  DegeneracyPolicy on_degenerate = DegeneracyPolicy::kQuarantine;

  /// Fail-fast validation in the WindowSpec::validate style: precise
  /// messages for inverted/overlapping windows, zero budgets, a
  /// non-positive defensive mixture (a zero fraction silently disables
  /// the paper's regime-shift safeguard, so it is rejected rather than
  /// accepted), out-of-range ESS thresholds, and unknown component names.
  void validate() const;
};

/// Draw-level view of a completed window's posterior: the proposal inputs
/// of the next window (jitter centers plus parent state slots), detached
/// from the full WindowResult so a streaming checkpoint can carry it
/// across processes. Slot i indexes the producing window's state pool.
struct PosteriorDraws {
  std::vector<double> theta;
  std::vector<double> rho;
  std::vector<std::uint32_t> parent_slot;

  [[nodiscard]] std::size_t size() const noexcept { return theta.size(); }
  /// Identical to indexing the window through draw_theta/draw_rho/
  /// draw_state_slot (rejuvenation overlays included).
  [[nodiscard]] static PosteriorDraws from_window(const WindowResult& w);
};

/// First-window proposal: fresh (theta, rho) from the configured priors,
/// branching from parent slot 0 (the shared burn-in state). `needs_rho`
/// is BiasModel::uses_rho() -- a bias model that ignores rho must not
/// consume a prior draw for it.
[[nodiscard]] ParamProposal make_prior_proposal(const CalibrationConfig& config,
                                                bool needs_rho);

/// Window-(m > 1) proposal: jittered draws centered on the previous
/// posterior plus the defensive prior mixture. `draws` is captured by
/// shared_ptr so the proposal outlives the caller's frame (end-of-window
/// rejuvenation re-invokes it).
[[nodiscard]] ParamProposal make_posterior_proposal(
    const CalibrationConfig& config,
    std::shared_ptr<const PosteriorDraws> draws, bool needs_rho);

/// The WindowSpec of window m under a calibration config -- the single
/// mapping both the batch and the streaming calibrators use, so their
/// windows share every knob and the per-window seed hash_combine(seed, m).
[[nodiscard]] WindowSpec make_window_spec(const CalibrationConfig& config,
                                          std::size_t m);

class SequentialCalibrator {
 public:
  SequentialCalibrator(const Simulator& sim, ObservedData data,
                       CalibrationConfig config);

  /// Calibrate the next window; returns its result.
  const WindowResult& run_next_window();

  /// Calibrate all remaining windows.
  void run_all();

  [[nodiscard]] const std::vector<WindowResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] std::size_t windows_completed() const noexcept {
    return results_.size();
  }
  [[nodiscard]] bool finished() const noexcept {
    return results_.size() == config_.windows.size();
  }
  [[nodiscard]] const CalibrationConfig& config() const noexcept {
    return config_;
  }
  /// Shared burn-in checkpoint (valid after the first window has run).
  [[nodiscard]] const epi::Checkpoint& initial_state() const;

  /// Liveness hook, beaten once after every completed window (the
  /// supervision layer's stall detector rides this; see core/progress.hpp).
  void set_progress(ProgressReporter progress) {
    progress_ = std::move(progress);
  }

 private:
  const Simulator& sim_;
  ObservedData data_;
  CalibrationConfig config_;
  std::unique_ptr<Likelihood> likelihood_;
  std::unique_ptr<Likelihood> death_likelihood_;
  std::unique_ptr<BiasModel> bias_;
  epi::Checkpoint initial_ckpt_;           // io-boundary copy (initial_state())
  std::shared_ptr<StatePool> initial_pool_;  // pooled shared burn-in state
  std::vector<WindowResult> results_;
  ProgressReporter progress_;
};

}  // namespace epismc::core
