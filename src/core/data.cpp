#include "core/data.hpp"

namespace epismc::core {

ObservedData::ObservedData(std::int32_t first_day, std::vector<double> cases,
                           std::vector<double> deaths)
    : first_day_(first_day),
      cases_(std::move(cases)),
      deaths_(std::move(deaths)) {
  if (cases_.empty()) {
    throw std::invalid_argument("ObservedData: empty case series");
  }
  if (!deaths_.empty() && deaths_.size() != cases_.size()) {
    throw std::invalid_argument(
        "ObservedData: deaths must be empty or match cases length");
  }
}

std::size_t ObservedData::checked_offset(std::int32_t day) const {
  const std::int64_t off = day - first_day_;
  if (off < 0 || off >= static_cast<std::int64_t>(cases_.size())) {
    throw std::out_of_range("ObservedData: day out of range");
  }
  return static_cast<std::size_t>(off);
}

double ObservedData::deaths_at(std::int32_t day) const {
  if (deaths_.empty()) {
    throw std::logic_error("ObservedData: no death series");
  }
  return deaths_[checked_offset(day)];
}

std::vector<double> ObservedData::cases_window(std::int32_t from_day,
                                               std::int32_t to_day) const {
  if (to_day < from_day) {
    throw std::invalid_argument("ObservedData: to_day < from_day");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(to_day - from_day + 1));
  for (std::int32_t d = from_day; d <= to_day; ++d) {
    out.push_back(cases_at(d));
  }
  return out;
}

std::vector<double> ObservedData::deaths_window(std::int32_t from_day,
                                                std::int32_t to_day) const {
  if (to_day < from_day) {
    throw std::invalid_argument("ObservedData: to_day < from_day");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(to_day - from_day + 1));
  for (std::int32_t d = from_day; d <= to_day; ++d) {
    out.push_back(deaths_at(d));
  }
  return out;
}

}  // namespace epismc::core
