#include "core/state_pool.hpp"

namespace epismc::core {

void StatePool::gather(std::span<const std::uint32_t> ancestors) {
  std::vector<epi::Checkpoint> picked(ancestors.size());
  for (std::size_t i = 0; i < ancestors.size(); ++i) {
    picked[i] = to_checkpoint(ancestors[i]);  // throws on bad/empty slot
  }
  resize(ancestors.size());
  for (std::size_t i = 0; i < ancestors.size(); ++i) {
    set_from_checkpoint(i, picked[i]);
  }
}

std::size_t CheckpointStatePool::size() const noexcept { return slots_.size(); }

void CheckpointStatePool::resize(std::size_t n_slots) {
  slots_.resize(n_slots);
}

const epi::Checkpoint& CheckpointStatePool::at(std::size_t slot) const {
  if (slot >= slots_.size() || slots_[slot].bytes.empty()) {
    throw_empty_slot(slot);
  }
  return slots_[slot];
}

std::int32_t CheckpointStatePool::day(std::size_t slot) const {
  return at(slot).day;
}

void CheckpointStatePool::compact(std::span<const std::uint32_t> keep) {
  compact_slots(slots_, keep);
}

epi::Checkpoint CheckpointStatePool::to_checkpoint(std::size_t slot) const {
  return at(slot);
}

void CheckpointStatePool::set_from_checkpoint(std::size_t slot,
                                              const epi::Checkpoint& ckpt) {
  slots_.at(slot) = ckpt;
}

std::size_t CheckpointStatePool::approx_state_bytes() const {
  for (const auto& slot : slots_) {
    if (!slot.bytes.empty()) return slot.bytes.size();
  }
  return 0;
}

}  // namespace epismc::core
