#include "core/scenario.hpp"

#include "epi/chain_binomial.hpp"
#include "epi/seir_model.hpp"
#include "random/seeding.hpp"

namespace epismc::core {

namespace {

constexpr std::uint64_t kTruthTag = 0x54525554ull;  // "TRUT"
constexpr std::uint64_t kThinTag = 0x5448494Eull;   // "THIN"

template <typename Model>
GroundTruth run_truth(Model model, const ScenarioConfig& config,
                      epi::PiecewiseSchedule theta,
                      epi::PiecewiseSchedule rho) {
  model.seed_exposed(config.initial_exposed);
  model.run_until_day(config.total_days);

  GroundTruth truth;
  truth.trajectory = model.trajectory();
  truth.theta = std::move(theta);
  truth.rho = std::move(rho);
  truth.true_cases = truth.trajectory.new_infections(1, config.total_days);
  truth.deaths = truth.trajectory.new_deaths(1, config.total_days);

  // Binomial thinning of true cases with the day's reporting probability.
  auto thin_eng = rng::make_engine(config.seed, {kThinTag});
  truth.observed_cases.reserve(truth.true_cases.size());
  for (std::size_t i = 0; i < truth.true_cases.size(); ++i) {
    const auto day = static_cast<std::int32_t>(i) + 1;
    const auto n = static_cast<std::int64_t>(truth.true_cases[i]);
    const double p = truth.rho.value_at(day);
    truth.observed_cases.push_back(
        static_cast<double>(rng::binomial(thin_eng, n, p)));
  }
  return truth;
}

}  // namespace

GroundTruth simulate_ground_truth(const ScenarioConfig& config) {
  epi::PiecewiseSchedule theta(config.theta_segments);
  epi::PiecewiseSchedule rho(config.rho_segments);
  const auto seed = rng::hash_combine(config.seed, kTruthTag);
  if (config.use_chain_binomial) {
    return run_truth(
        epi::ChainBinomialModel(config.params, theta, seed), config, theta,
        rho);
  }
  return run_truth(epi::SeirModel(config.params, theta, seed), config, theta,
                   rho);
}

}  // namespace epismc::core
