#include "core/scenario.hpp"

#include "epi/chain_binomial.hpp"
#include "epi/seir_model.hpp"

namespace epismc::core {

namespace {
constexpr std::uint64_t kTruthTag = 0x54525554ull;  // "TRUT"
}  // namespace

std::uint64_t truth_seed(const ScenarioConfig& config) {
  return rng::hash_combine(config.seed, kTruthTag);
}

GroundTruth simulate_ground_truth(const ScenarioConfig& config) {
  epi::PiecewiseSchedule theta(config.theta_segments);
  epi::PiecewiseSchedule rho(config.rho_segments);
  const auto seed = truth_seed(config);
  if (config.use_chain_binomial) {
    return ground_truth_from_model(
        epi::ChainBinomialModel(config.params, theta, seed), config, theta,
        rho);
  }
  return ground_truth_from_model(epi::SeirModel(config.params, theta, seed),
                                 config, theta, rho);
}

}  // namespace epismc::core
