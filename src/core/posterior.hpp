#pragma once

// Posterior summaries across calibration windows.
//
// Helpers that turn WindowResults into the quantities the paper reports:
// marginal (theta, rho) summaries per window, credible ribbons over output
// series, joint KDEs for the contour panels, and posterior-predictive
// forecasts branched from posterior checkpoints.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/particle.hpp"
#include "core/simulator.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"

namespace epismc::core {

/// Marginal posterior summary of one scalar parameter in one window.
struct ParameterSummary {
  double mean = 0.0;
  double sd = 0.0;
  double median = 0.0;
  stats::Interval ci50;
  stats::Interval ci90;
};

[[nodiscard]] ParameterSummary summarize_parameter(
    const std::vector<double>& draws);

/// Both parameters of one window.
struct WindowPosteriorSummary {
  std::int32_t from_day = 0;
  std::int32_t to_day = 0;
  ParameterSummary theta;
  ParameterSummary rho;
};

[[nodiscard]] WindowPosteriorSummary summarize_window(
    const WindowResult& window);

/// Joint (theta, rho) KDE over the resampled posterior of a window,
/// evaluated on a regular grid (the Fig 4b / 5b contour input).
[[nodiscard]] stats::Kde2dResult joint_posterior_kde(
    const WindowResult& window, double theta_lo, double theta_hi,
    double rho_lo, double rho_hi, std::size_t grid = 64);

/// Credible ribbon over a posterior output series: lower/median/upper per
/// day for the given central mass (e.g. 0.9 -> 5% and 95% quantiles).
struct Ribbon {
  std::vector<double> lo;
  std::vector<double> mid;
  std::vector<double> hi;
};

[[nodiscard]] Ribbon posterior_ribbon(const WindowResult& window,
                                      WindowResult::Series series,
                                      double level);

/// Posterior-predictive forecast: branch fresh-seed runs from the
/// posterior end states of `window` and simulate through `horizon_day`.
/// Returns the per-day forecast matrix (row per run).
struct Forecast {
  std::int32_t from_day = 0;
  std::int32_t to_day = 0;
  std::vector<std::vector<double>> true_cases;  // one row per sampled run
  std::vector<std::vector<double>> deaths;

  [[nodiscard]] Ribbon case_ribbon(double level) const;
};

/// Each draw keeps its own posterior theta unless `theta_override` is set,
/// in which case every branch runs under that rate (intervention what-ifs).
/// Overridden and non-overridden forecasts with the same seed share random
/// streams, so intervention effects are common-random-number paired.
[[nodiscard]] Forecast posterior_forecast(
    const Simulator& sim, const WindowResult& window, std::int32_t horizon_day,
    std::size_t n_draws, std::uint64_t seed,
    std::optional<double> theta_override = std::nullopt);

}  // namespace epismc::core
