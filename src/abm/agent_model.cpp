#include "abm/agent_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "random/sampling.hpp"

namespace epismc::abm {

namespace {
// v203: engine tag, hot-household set and calendar ring (drain order is
// part of the RNG contract, so both round-trip verbatim); the household
// pressure table stays derived and is rebuilt on restore.
constexpr std::uint32_t kAbmCheckpointVersion = 203;
constexpr std::int32_t kNever = std::numeric_limits<std::int32_t>::max();
constexpr std::uint32_t kNoIndex = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint64_t kNetworkTag = 0x4E455457ull;  // "NETW"
constexpr std::size_t kHazardMemoSlots = 4096;  // power of two (mask index)
}  // namespace

std::string_view to_string(AbmEngine engine) noexcept {
  switch (engine) {
    case AbmEngine::kFast: return "fast";
    case AbmEngine::kReference: return "reference";
  }
  return "?";
}

AbmEngine engine_from_name(std::string_view name) {
  if (name == "fast") return AbmEngine::kFast;
  if (name == "reference") return AbmEngine::kReference;
  throw std::invalid_argument("unknown ABM engine '" + std::string(name) +
                              "' (expected: fast, reference)");
}

void AbmConfig::validate() const {
  disease.validate();
  if (!(mean_household_size >= 1.0 && mean_household_size <= 20.0)) {
    throw std::invalid_argument("AbmConfig: mean_household_size out of range");
  }
  if (!(household_share >= 0.0 && household_share <= 1.0)) {
    throw std::invalid_argument("AbmConfig: household_share must be in [0, 1]");
  }
  if (engine != AbmEngine::kFast && engine != AbmEngine::kReference) {
    throw std::invalid_argument("AbmConfig: unknown engine");
  }
}

AgentBasedModel::AgentBasedModel(AbmConfig config,
                                 epi::PiecewiseSchedule transmission,
                                 std::uint64_t seed, std::uint64_t stream)
    : config_(config),
      transmission_(std::move(transmission)),
      eng_(seed, stream) {
  config_.validate();
  const auto n = static_cast<std::size_t>(config_.disease.population);
  state_.assign(n, static_cast<std::uint8_t>(epi::Compartment::kS));
  next_state_.assign(n, static_cast<std::uint8_t>(epi::Compartment::kS));
  next_day_.assign(n, kNever);
  counts_[epi::index(epi::Compartment::kS)] = config_.disease.population;
  build_households();
  acquire_delay_tables();
  hh_state_.assign(household_count(), HouseholdState{});
  for (std::size_t hh = 0; hh < household_count(); ++hh) {
    hh_state_[hh].susceptible = static_cast<std::uint16_t>(
        household_offsets_[hh + 1] - household_offsets_[hh]);
  }
  hot_pos_.assign(household_count(), kNoIndex);
  rebuild_calendar();
}

void AgentBasedModel::build_households() {
  const auto n = static_cast<std::size_t>(config_.disease.population);
  household_.assign(n, 0);
  household_offsets_.clear();
  household_offsets_.push_back(0);

  // Sizes ~ 1 + Poisson(mean - 1); topology derived from network_seed only,
  // so restarts and replicas reconstruct the identical network. Members are
  // assigned consecutively: household hh holds exactly the agents
  // [offsets[hh], offsets[hh+1]).
  auto net_eng = rng::PhiloxEngine(config_.network_seed, kNetworkTag);
  std::size_t assigned = 0;
  std::uint32_t hh = 0;
  while (assigned < n) {
    const auto size = static_cast<std::size_t>(
        1 + rng::poisson(net_eng, config_.mean_household_size - 1.0));
    const std::size_t take = std::min(size, n - assigned);
    for (std::size_t k = 0; k < take; ++k) {
      household_[assigned] = hh;
      ++assigned;
    }
    household_offsets_.push_back(static_cast<std::uint32_t>(assigned));
    ++hh;
  }
}

void AgentBasedModel::acquire_delay_tables() {
  const auto& p = config_.disease;
  const int k = p.erlang_shape;
  const int md = p.max_delay;
  auto tables = std::make_shared<epi::DelayTables>();
  tables->latent = epi::DelayDistribution(p.latent_period, k, md);
  tables->presym = epi::DelayDistribution(p.presymptomatic_period, k, md);
  tables->asym = epi::DelayDistribution(p.asymptomatic_period, k, md);
  tables->mild = epi::DelayDistribution(p.mild_period, k, md);
  tables->severe = epi::DelayDistribution(p.severe_period, k, md);
  tables->hosp = epi::DelayDistribution(p.hospital_period, k, md);
  tables->hosp_icu = epi::DelayDistribution(p.hospital_to_icu, k, md);
  tables->icu = epi::DelayDistribution(p.icu_period, k, md);
  tables->posticu = epi::DelayDistribution(p.post_icu_period, k, md);
  delays_ = std::move(tables);
}

void AgentBasedModel::rebuild_population_index() {
  const std::size_t n = state_.size();
  // Household pressure classes are derived: one scan of the state array.
  hh_state_.assign(household_count(), HouseholdState{});
  std::size_t hot_count = 0;
  for (std::size_t a = 0; a < n; ++a) {
    const auto c = static_cast<epi::Compartment>(state_[a]);
    if (c == epi::Compartment::kS) {
      hh_state_[household_[a]].susceptible += 1;
      continue;
    }
    const int cls = epi::infectiousness_class(c);
    if (cls < 0) continue;
    HouseholdState& hs = hh_state_[household_[a]];
    hs.cls[static_cast<std::size_t>(cls)] += 1;
    if (hs.infectious++ == 0) ++hot_count;
  }
  // The hot set itself comes from the archive (its order is drained
  // verbatim by the fast engine); check it against the derived counts.
  hot_pos_.assign(household_count(), kNoIndex);
  if (hot_households_.size() != hot_count) {
    throw io::ArchiveError(
        io::ArchiveErrorKind::kCorrupt,
        "AgentBasedModel::restore: hot-household set does not match state");
  }
  for (std::size_t i = 0; i < hot_households_.size(); ++i) {
    const std::uint32_t hh = hot_households_[i];
    if (hh >= household_count() || hot_pos_[hh] != kNoIndex ||
        hh_state_[hh].infectious == 0) {
      throw io::ArchiveError(
          io::ArchiveErrorKind::kCorrupt,
          "AgentBasedModel::restore: corrupt hot-household set");
    }
    hot_pos_[hh] = static_cast<std::uint32_t>(i);
  }
}

std::size_t AgentBasedModel::calendar_length() const noexcept {
  // Sized past the longest schedulable delay (sojourn draws are truncated
  // at max_delay; detection takes detection_delay) so a push during the
  // drain of today's bucket can never wrap into that same bucket.
  return static_cast<std::size_t>(
      std::max(config_.disease.max_delay, config_.disease.detection_delay) + 2);
}

void AgentBasedModel::validate_restored_calendar() const {
  if (ring_.size() != calendar_length()) {
    throw io::ArchiveError(
        io::ArchiveErrorKind::kCorrupt,
        "AgentBasedModel::restore: calendar ring length does not match the "
        "disease parameters");
  }
  for (const auto& bucket : ring_) {
    for (const std::uint32_t a : bucket) {
      if (a >= state_.size()) {
        throw io::ArchiveError(
            io::ArchiveErrorKind::kCorrupt,
            "AgentBasedModel::restore: calendar entry out of range");
      }
    }
  }
}

void AgentBasedModel::rebuild_calendar() {
  ring_.assign(calendar_length(), {});
  if (config_.engine != AbmEngine::kFast) return;
  for (std::size_t a = 0; a < next_day_.size(); ++a) {
    if (next_day_[a] != kNever) {
      ring_[ring_slot(next_day_[a])].push_back(static_cast<std::uint32_t>(a));
    }
  }
}

void AgentBasedModel::set_engine(AbmEngine engine) {
  if (engine != AbmEngine::kFast && engine != AbmEngine::kReference) {
    throw std::invalid_argument("AgentBasedModel::set_engine: unknown engine");
  }
  if (engine == config_.engine) return;
  config_.engine = engine;
  rebuild_calendar();
}

double AgentBasedModel::weight_of(epi::Compartment c) const noexcept {
  return epi::infectiousness_weight(
      c, config_.disease.asymptomatic_infectiousness,
      config_.disease.detected_infectiousness);
}

double AgentBasedModel::effective_infectious() const noexcept {
  double w = 0.0;
  for (std::size_t c = 0; c < epi::kCompartmentCount; ++c) {
    w += weight_of(static_cast<epi::Compartment>(c)) *
         static_cast<double>(counts_[c]);
  }
  return w;
}

void AgentBasedModel::exit_compartment(std::size_t a, epi::Compartment c) {
  counts_[epi::index(c)] -= 1;
  const int cls = epi::infectiousness_class(c);
  if (cls < 0) return;
  const std::uint32_t hh = household_[a];
  HouseholdState& hs = hh_state_[hh];
  hs.cls[static_cast<std::size_t>(cls)] -= 1;
  if (--hs.infectious == 0) {
    // Swap-pop the household out of the hot set.
    const std::uint32_t pos = hot_pos_[hh];
    const std::uint32_t last = hot_households_.back();
    hot_households_[pos] = last;
    hot_pos_[last] = pos;
    hot_households_.pop_back();
    hot_pos_[hh] = kNoIndex;
  }
}

void AgentBasedModel::infect(std::size_t a) {
  counts_[epi::index(epi::Compartment::kS)] -= 1;
  hh_state_[household_[a]].susceptible -= 1;
  enter(a, epi::Compartment::kE);
}

void AgentBasedModel::infect_random_susceptibles(std::int64_t k, bool record) {
  if (k <= 0) return;
  const std::int64_t s_count = counts_[epi::index(epi::Compartment::kS)];
  const auto n = static_cast<std::uint64_t>(state_.size());
  // Branch on expected rejection work, not on how scarce susceptibles are
  // relative to the population: the i-th pick expects n/(S-i) draws, so
  // the whole call expects at most k*n/(S-k+1) -- with S >= 5k that is
  // <= n/4, a quarter of what the scan path costs. Late-epidemic days
  // with small k therefore stay O(k * n/S) instead of degrading to a full
  // O(population) scan; only draws that consume a sizable share of the
  // remaining pool (seeding, epidemic blow-ups) pay for the index build.
  if (s_count >= 5 * k) {
    // Rejection over agent ids. Infecting as we go moves victims out of
    // kS, so duplicates reject themselves and each accepted pick is
    // uniform over the susceptibles remaining -- exactly a uniform
    // k-subset.
    for (std::int64_t i = 0; i < k; ++i) {
      std::size_t a;
      do {
        a = static_cast<std::size_t>(rng::uniform_int(eng_, n));
      } while (static_cast<epi::Compartment>(state_[a]) !=
               epi::Compartment::kS);
      infect(a);
      if (record) today_new_infections_ += 1;
    }
    return;
  }
  // Scarce susceptibles (the regime where accept/reject degenerates):
  // one sequential scan builds the susceptible index, a partial
  // Fisher-Yates picks the k victims. infect() never touches the scratch
  // index, so the picked prefix can be consumed in place.
  scratch_susceptibles_.clear();
  for (std::size_t a = 0; a < state_.size(); ++a) {
    if (static_cast<epi::Compartment>(state_[a]) == epi::Compartment::kS) {
      scratch_susceptibles_.push_back(static_cast<std::uint32_t>(a));
    }
  }
  rng::partial_fisher_yates(
      eng_, std::span<std::uint32_t>(scratch_susceptibles_),
      static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    infect(scratch_susceptibles_[static_cast<std::size_t>(i)]);
    if (record) today_new_infections_ += 1;
  }
}

void AgentBasedModel::enter(std::size_t a, epi::Compartment c) {
  using C = epi::Compartment;
  const epi::DiseaseParameters& p = config_.disease;
  state_[a] = static_cast<std::uint8_t>(c);
  counts_[epi::index(c)] += 1;
  if (c == C::kDu || c == C::kDd) today_new_deaths_ += 1;
  const int cls = epi::infectiousness_class(c);
  if (cls >= 0) {
    const std::uint32_t hh = household_[a];
    HouseholdState& hs = hh_state_[hh];
    hs.cls[static_cast<std::size_t>(cls)] += 1;
    if (hs.infectious++ == 0) {
      hot_pos_[hh] = static_cast<std::uint32_t>(hot_households_.size());
      hot_households_.push_back(hh);
    }
  }

  const auto go = [&](C to, int delay) {
    next_state_[a] = static_cast<std::uint8_t>(to);
    next_day_[a] = day_ + std::max(delay, 1);
  };
  const auto terminal = [&] { next_day_[a] = kNever; };

  switch (c) {
    case C::kE:
      go(rng::bernoulli(eng_, p.fraction_symptomatic) ? C::kPu : C::kAu,
         delays_->latent.sample_one(eng_));
      break;
    case C::kAu:
      if (rng::bernoulli(eng_, p.detect_asymptomatic)) {
        go(C::kAd, p.detection_delay);
      } else {
        go(C::kRu, delays_->asym.sample_one(eng_));
      }
      break;
    case C::kAd:
      go(C::kRd, delays_->asym.sample_one(eng_));
      break;
    case C::kPu:
      if (rng::bernoulli(eng_, p.detect_presymptomatic)) {
        go(C::kPd, p.detection_delay);
      } else {
        go(rng::bernoulli(eng_, p.fraction_mild) ? C::kSmU : C::kSsU,
           delays_->presym.sample_one(eng_));
      }
      break;
    case C::kPd:
      go(rng::bernoulli(eng_, p.fraction_mild) ? C::kSmD : C::kSsD,
         delays_->presym.sample_one(eng_));
      break;
    case C::kSmU:
      if (rng::bernoulli(eng_, p.detect_mild)) {
        go(C::kSmD, p.detection_delay);
      } else {
        go(C::kRu, delays_->mild.sample_one(eng_));
      }
      break;
    case C::kSmD:
      go(C::kRd, delays_->mild.sample_one(eng_));
      break;
    case C::kSsU:
      if (rng::bernoulli(eng_, p.detect_severe)) {
        go(C::kSsD, p.detection_delay);
      } else {
        go(C::kHu, delays_->severe.sample_one(eng_));
      }
      break;
    case C::kSsD:
      go(C::kHd, delays_->severe.sample_one(eng_));
      break;
    case C::kHu:
    case C::kHd: {
      const bool undetected = c == C::kHu;
      if (rng::bernoulli(eng_, p.fraction_critical)) {
        go(undetected ? C::kCu : C::kCd, delays_->hosp_icu.sample_one(eng_));
      } else {
        go(undetected ? C::kRu : C::kRd, delays_->hosp.sample_one(eng_));
      }
      break;
    }
    case C::kCu:
    case C::kCd: {
      const bool undetected = c == C::kCu;
      if (rng::bernoulli(eng_, p.fraction_death)) {
        go(undetected ? C::kDu : C::kDd, delays_->icu.sample_one(eng_));
      } else {
        go(undetected ? C::kHpU : C::kHpD, delays_->icu.sample_one(eng_));
      }
      break;
    }
    case C::kHpU:
      go(C::kRu, delays_->posticu.sample_one(eng_));
      break;
    case C::kHpD:
      go(C::kRd, delays_->posticu.sample_one(eng_));
      break;
    default:
      terminal();
      break;
  }

  if (config_.engine == AbmEngine::kFast && next_day_[a] != kNever) {
    ring_[ring_slot(next_day_[a])].push_back(static_cast<std::uint32_t>(a));
  }
}

void AgentBasedModel::seed_exposed(std::int64_t n) {
  if (n < 0 || n > counts_[epi::index(epi::Compartment::kS)]) {
    throw std::invalid_argument("seed_exposed: count exceeds susceptibles");
  }
  infect_random_susceptibles(n, /*record=*/false);
}

void AgentBasedModel::step() {
  ++day_;
  today_new_infections_ = 0;
  today_new_detected_ = 0;
  today_new_deaths_ = 0;
  if (config_.engine == AbmEngine::kFast) {
    step_transitions_fast();
    step_infections_fast();
  } else {
    step_transitions_reference();
    step_infections_reference();
  }
  record_day();
}

void AgentBasedModel::step_transitions_reference() {
  using C = epi::Compartment;
  for (std::size_t a = 0; a < state_.size(); ++a) {
    if (next_day_[a] != day_) continue;
    const auto from = static_cast<C>(state_[a]);
    const auto to = static_cast<C>(next_state_[a]);
    exit_compartment(a, from);
    if (!epi::is_detected(from) && epi::is_detected(to)) {
      today_new_detected_ += 1;
    }
    enter(a, to);
  }
}

void AgentBasedModel::step_infections_reference() {
  // Two-level mixing, per-agent: community pressure is homogeneous;
  // household pressure is the infectiousness inside the agent's household
  // normalized by household size. One bernoulli per susceptible per day --
  // O(population), the cost profile the fast engine exists to avoid.
  using C = epi::Compartment;
  const double w_comm = effective_infectious();
  if (w_comm <= 0.0) return;
  std::vector<double> hh_weight(household_count(), 0.0);
  for (std::size_t a = 0; a < state_.size(); ++a) {
    const double w = weight_of(static_cast<C>(state_[a]));
    if (w > 0.0) hh_weight[household_[a]] += w;
  }
  const double theta = transmission_.value_at(day_);
  const double share = config_.household_share;
  const double comm_hazard = theta * (1.0 - share) * w_comm /
                             static_cast<double>(config_.disease.population);
  const double p_comm = 1.0 - std::exp(-comm_hazard);
  for (std::size_t a = 0; a < state_.size(); ++a) {
    if (static_cast<C>(state_[a]) != C::kS) continue;
    const std::uint32_t hh = household_[a];
    double p_inf = p_comm;
    if (hh_weight[hh] > 0.0) {
      const double size = household_offsets_[hh + 1] - household_offsets_[hh];
      const double hazard = comm_hazard + theta * share * hh_weight[hh] / size;
      p_inf = 1.0 - std::exp(-hazard);
    }
    if (rng::uniform_double(eng_) < p_inf) {
      infect(a);
      today_new_infections_ += 1;
    }
  }
}

void AgentBasedModel::step_transitions_fast() {
  using C = epi::Compartment;
  auto& bucket = ring_[ring_slot(day_)];
  // Bucket entries drain in scheduling order. That order is part of the
  // serialized state (the checkpoint stores the ring verbatim), so resume
  // replays bit-identically without a per-day canonicalizing sort -- at
  // epidemic peak the sort, not the epidemiology, dominated the step.
  for (const std::uint32_t a : bucket) {
    if (next_day_[a] != day_) continue;  // defensive; entries are never stale
    const auto from = static_cast<C>(state_[a]);
    const auto to = static_cast<C>(next_state_[a]);
    exit_compartment(a, from);
    if (!epi::is_detected(from) && epi::is_detected(to)) {
      today_new_detected_ += 1;
    }
    enter(a, to);
  }
  bucket.clear();
}

void AgentBasedModel::step_infections_fast() {
  using C = epi::Compartment;
  const double w_comm = effective_infectious();
  if (w_comm <= 0.0) return;
  const double theta = transmission_.value_at(day_);
  const double share = config_.household_share;
  const double comm_hazard = theta * (1.0 - share) * w_comm /
                             static_cast<double>(config_.disease.population);
  const double p_comm = 1.0 - std::exp(-comm_hazard);

  // The reference engine draws one bernoulli per susceptible with the
  // combined hazard 1 - exp(-(comm + hh)). Hazards factorize --
  // 1 - exp(-(a+b)) = 1 - (1-p_a)(1-p_b) -- so infection decomposes into
  // two independent events per agent: a homogeneous community event
  // (probability p_comm for *every* susceptible) and, for members of
  // households with infectious pressure, a household event. The decomposed
  // process samples the identical distribution while letting each part use
  // the cheapest mechanism available.

  // Community: every susceptible shares p_comm, so the day's community
  // infection count is one aggregated Binomial(S, p_comm) draw (O(1) via
  // BTPE) and the victims a uniform k-subset pick -- O(k) expected, not
  // O(population).
  infect_random_susceptibles(
      rng::binomial(eng_,
                    counts_[epi::index(epi::Compartment::kS)], p_comm),
      /*record=*/true);

  // Household pass: per-agent bernoullis survive only for susceptibles in
  // "hot" households (infectious pressure > 0). Iterating the live hot set
  // is safe -- infections create exposed (non-infectious) agents, so the
  // set cannot mutate under the loop -- and its order is part of the
  // serialized state, so no per-day canonicalizing sort is needed for
  // checkpoint exactness. Agents the community draw already infected are
  // no longer kS and are skipped, exactly the OR-combination above.
  const auto class_weights = epi::infectiousness_class_weights(
      config_.disease.asymptomatic_infectiousness,
      config_.disease.detected_infectiousness);
  if (hazard_memo_.empty()) hazard_memo_.resize(kHazardMemoSlots);
  const auto household_probability = [&](const HouseholdState& hs,
                                         std::uint32_t size) -> double {
    std::uint32_t packed = 0;
    static_assert(sizeof(hs.cls) == sizeof(packed));
    std::memcpy(&packed, hs.cls.data(), sizeof(packed));
    const std::uint64_t key =
        packed | (static_cast<std::uint64_t>(size) << 32);
    HazardMemo& memo = hazard_memo_[
        (key * 0x9E3779B97F4A7C15ull) >> 52];  // top bits index 4096 slots
    if (memo.day == day_ && memo.key == key) return memo.p_hh;
    double pressure = 0.0;
    for (std::size_t cls = 0; cls < class_weights.size(); ++cls) {
      pressure += class_weights[cls] * static_cast<double>(hs.cls[cls]);
    }
    const double p_hh =
        pressure > 0.0
            ? 1.0 - std::exp(-theta * share * pressure /
                             static_cast<double>(size))
            : 0.0;
    memo = {key, day_, p_hh};
    return p_hh;
  };
  const auto visit_household = [&](std::uint32_t hh) {
    const HouseholdState& hs = hh_state_[hh];
    // Saturated households (no susceptible members left) are common late
    // in an epidemic; skip them before touching pressure or exp().
    if (hs.susceptible == 0) return;
    const std::uint32_t begin = household_offsets_[hh];
    const std::uint32_t end = household_offsets_[hh + 1];
    const double p_hh = household_probability(hs, end - begin);
    if (p_hh <= 0.0) return;  // zero-weight classes: community only
    for (std::uint32_t a = begin; a < end; ++a) {
      if (static_cast<C>(state_[a]) != C::kS) continue;
      if (rng::bernoulli(eng_, p_hh)) {
        infect(a);
        today_new_infections_ += 1;
      }
    }
  };
  // Small hot sets walk the (insertion-ordered, serialized) list: cost is
  // O(hot households), independent of population. Once the hot set covers
  // a sizable share of all households, an ascending full scan wins -- the
  // list's scattered order costs a cache miss per household, while the
  // scan streams the household-state/offset/agent arrays in memory order.
  // The switch depends only on serialized state, so replays stay bit-exact.
  if (hot_households_.size() * 16 >= household_count()) {
    for (std::uint32_t hh = 0; hh < household_count(); ++hh) {
      if (hh_state_[hh].infectious != 0) visit_household(hh);
    }
  } else {
    for (const std::uint32_t hh : hot_households_) visit_household(hh);
  }
}

void AgentBasedModel::record_day() {
  using C = epi::Compartment;
  epi::DailyRecord rec;
  rec.day = day_;
  rec.new_infections = today_new_infections_;
  rec.new_detected_cases = today_new_detected_;
  rec.new_deaths = today_new_deaths_;
  rec.hospital_census = count(C::kHu) + count(C::kHd) + count(C::kHpU) +
                        count(C::kHpD);
  rec.icu_census = count(C::kCu) + count(C::kCd);
  double infectious = 0.0;
  for (std::size_t c = 0; c < epi::kCompartmentCount; ++c) {
    if (epi::is_infectious(static_cast<C>(c))) {
      infectious += static_cast<double>(counts_[c]);
    }
  }
  rec.infectious_census = static_cast<std::int64_t>(infectious);
  rec.susceptible = count(C::kS);
  trajectory_.append(rec);
}

void AgentBasedModel::run_until_day(std::int32_t day) {
  if (day < day_) {
    throw std::invalid_argument("run_until_day: target is in the past");
  }
  while (day_ < day) step();
}

std::int64_t AgentBasedModel::total_individuals() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t c : counts_) total += c;
  return total;
}

epi::Checkpoint AgentBasedModel::make_checkpoint() const {
  io::BinaryWriter out(kAbmCheckpointVersion);
  config_.disease.serialize(out);
  out.write(config_.mean_household_size);
  out.write(config_.household_share);
  out.write(config_.network_seed);
  out.write(static_cast<std::uint8_t>(config_.engine));
  transmission_.serialize(out);
  out.write(day_);
  out.write(counts_);
  out.write_vector(state_);
  out.write_vector(next_state_);
  out.write_vector(next_day_);
  // Hot-set and calendar order are part of the RNG contract (the fast
  // engine drains them in stored order, sort-free), so both round-trip
  // verbatim; household *contents* (class counts) stay derived.
  out.write_vector(hot_households_);
  out.write(static_cast<std::uint32_t>(ring_.size()));
  for (const auto& bucket : ring_) out.write_vector(bucket);
  out.write(eng_.seed_value());
  out.write(eng_.stream_value());
  out.write(eng_.position());
  trajectory_.serialize(out);

  epi::Checkpoint ckpt;
  ckpt.bytes = out.bytes();
  ckpt.day = day_;
  return ckpt;
}

AgentBasedModel AgentBasedModel::restore(const epi::Checkpoint& ckpt,
                                         const epi::RestartOverrides& ovr) {
  io::BinaryReader in{ckpt.bytes};
  if (in.version() != kAbmCheckpointVersion) {
    throw io::ArchiveError(
        io::ArchiveErrorKind::kVersion,
        "AgentBasedModel::restore: unsupported checkpoint version");
  }
  AgentBasedModel m;
  m.config_.disease = epi::DiseaseParameters::deserialize(in);
  m.config_.mean_household_size = in.read<double>();
  m.config_.household_share = in.read<double>();
  m.config_.network_seed = in.read<std::uint64_t>();
  const auto engine_tag = in.read<std::uint8_t>();
  if (engine_tag > static_cast<std::uint8_t>(AbmEngine::kReference)) {
    throw io::ArchiveError(io::ArchiveErrorKind::kCorrupt,
                           "AgentBasedModel::restore: unknown engine tag");
  }
  m.config_.engine = static_cast<AbmEngine>(engine_tag);
  m.transmission_ = epi::PiecewiseSchedule::deserialize(in);
  m.day_ = in.read<std::int32_t>();
  m.counts_ = in.read<epi::Census>();
  m.state_ = in.read_vector<std::uint8_t>();
  m.next_state_ = in.read_vector<std::uint8_t>();
  m.next_day_ = in.read_vector<std::int32_t>();
  m.hot_households_ = in.read_vector<std::uint32_t>();
  const auto ring_len = in.read<std::uint32_t>();
  m.ring_.resize(ring_len);
  for (auto& bucket : m.ring_) bucket = in.read_vector<std::uint32_t>();
  const auto seed = in.read<std::uint64_t>();
  const auto stream = in.read<std::uint64_t>();
  const auto position = in.read<std::uint64_t>();
  m.trajectory_ = epi::Trajectory::deserialize(in);

  if (ovr.reseeds()) {
    m.eng_.reseed(ovr.seed.value_or(seed), ovr.stream.value_or(stream));
  } else {
    m.eng_.reseed(seed, stream);
    m.eng_.set_position(position);
  }
  if (ovr.fraction_symptomatic) {
    m.config_.disease.fraction_symptomatic = *ovr.fraction_symptomatic;
  }
  if (ovr.fraction_mild) m.config_.disease.fraction_mild = *ovr.fraction_mild;
  if (ovr.asymptomatic_infectiousness) {
    m.config_.disease.asymptomatic_infectiousness =
        *ovr.asymptomatic_infectiousness;
  }
  if (ovr.detected_infectiousness) {
    m.config_.disease.detected_infectiousness = *ovr.detected_infectiousness;
  }
  if (ovr.transmission_rate) {
    m.transmission_.override_from(m.day_ + 1, *ovr.transmission_rate);
  }
  m.config_.validate();
  m.build_households();
  m.acquire_delay_tables();
  m.rebuild_population_index();
  m.validate_restored_calendar();
  return m;
}

}  // namespace epismc::abm
