#include "abm/agent_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace epismc::abm {

namespace {
constexpr std::uint32_t kAbmCheckpointVersion = 202;  // v202: padding-free layout
constexpr std::int32_t kNever = std::numeric_limits<std::int32_t>::max();
constexpr std::uint64_t kNetworkTag = 0x4E455457ull;  // "NETW"
}  // namespace

void AbmConfig::validate() const {
  disease.validate();
  if (!(mean_household_size >= 1.0 && mean_household_size <= 20.0)) {
    throw std::invalid_argument("AbmConfig: mean_household_size out of range");
  }
  if (!(household_share >= 0.0 && household_share <= 1.0)) {
    throw std::invalid_argument("AbmConfig: household_share must be in [0, 1]");
  }
}

AgentBasedModel::AgentBasedModel(AbmConfig config,
                                 epi::PiecewiseSchedule transmission,
                                 std::uint64_t seed, std::uint64_t stream)
    : config_(config),
      transmission_(std::move(transmission)),
      eng_(seed, stream) {
  config_.validate();
  const auto n = static_cast<std::size_t>(config_.disease.population);
  state_.assign(n, static_cast<std::uint8_t>(epi::Compartment::kS));
  next_state_.assign(n, static_cast<std::uint8_t>(epi::Compartment::kS));
  next_day_.assign(n, kNever);
  counts_[epi::index(epi::Compartment::kS)] = config_.disease.population;
  build_households();
  acquire_delay_tables();
}

void AgentBasedModel::build_households() {
  const auto n = static_cast<std::size_t>(config_.disease.population);
  household_.assign(n, 0);
  household_offsets_.clear();
  household_members_.clear();
  household_members_.reserve(n);
  household_offsets_.push_back(0);

  // Sizes ~ 1 + Poisson(mean - 1); topology derived from network_seed only,
  // so restarts and replicas reconstruct the identical network.
  auto net_eng = rng::PhiloxEngine(config_.network_seed, kNetworkTag);
  std::size_t assigned = 0;
  std::uint32_t hh = 0;
  while (assigned < n) {
    const auto size = static_cast<std::size_t>(
        1 + rng::poisson(net_eng, config_.mean_household_size - 1.0));
    const std::size_t take = std::min(size, n - assigned);
    for (std::size_t k = 0; k < take; ++k) {
      household_[assigned] = hh;
      household_members_.push_back(static_cast<std::uint32_t>(assigned));
      ++assigned;
    }
    household_offsets_.push_back(static_cast<std::uint32_t>(assigned));
    ++hh;
  }
}

void AgentBasedModel::acquire_delay_tables() {
  const auto& p = config_.disease;
  const int k = p.erlang_shape;
  const int md = p.max_delay;
  auto tables = std::make_shared<epi::DelayTables>();
  tables->latent = epi::DelayDistribution(p.latent_period, k, md);
  tables->presym = epi::DelayDistribution(p.presymptomatic_period, k, md);
  tables->asym = epi::DelayDistribution(p.asymptomatic_period, k, md);
  tables->mild = epi::DelayDistribution(p.mild_period, k, md);
  tables->severe = epi::DelayDistribution(p.severe_period, k, md);
  tables->hosp = epi::DelayDistribution(p.hospital_period, k, md);
  tables->hosp_icu = epi::DelayDistribution(p.hospital_to_icu, k, md);
  tables->icu = epi::DelayDistribution(p.icu_period, k, md);
  tables->posticu = epi::DelayDistribution(p.post_icu_period, k, md);
  delays_ = std::move(tables);
}

double AgentBasedModel::weight_of(epi::Compartment c) const noexcept {
  using C = epi::Compartment;
  const double asym = config_.disease.asymptomatic_infectiousness;
  const double det = config_.disease.detected_infectiousness;
  switch (c) {
    case C::kAu: return asym;
    case C::kAd: return asym * det;
    case C::kPu: case C::kSmU: case C::kSsU: return 1.0;
    case C::kPd: case C::kSmD: case C::kSsD: return det;
    default: return 0.0;
  }
}

double AgentBasedModel::effective_infectious() const noexcept {
  double w = 0.0;
  for (std::size_t c = 0; c < epi::kCompartmentCount; ++c) {
    w += weight_of(static_cast<epi::Compartment>(c)) *
         static_cast<double>(counts_[c]);
  }
  return w;
}

void AgentBasedModel::enter(std::size_t a, epi::Compartment c) {
  using C = epi::Compartment;
  const epi::DiseaseParameters& p = config_.disease;
  state_[a] = static_cast<std::uint8_t>(c);
  counts_[epi::index(c)] += 1;
  if (c == C::kDu || c == C::kDd) today_new_deaths_ += 1;

  const auto go = [&](C to, int delay) {
    next_state_[a] = static_cast<std::uint8_t>(to);
    next_day_[a] = day_ + std::max(delay, 1);
  };
  const auto terminal = [&] { next_day_[a] = kNever; };

  switch (c) {
    case C::kE:
      go(rng::bernoulli(eng_, p.fraction_symptomatic) ? C::kPu : C::kAu,
         delays_->latent.sample_one(eng_));
      break;
    case C::kAu:
      if (rng::bernoulli(eng_, p.detect_asymptomatic)) {
        go(C::kAd, p.detection_delay);
      } else {
        go(C::kRu, delays_->asym.sample_one(eng_));
      }
      break;
    case C::kAd:
      go(C::kRd, delays_->asym.sample_one(eng_));
      break;
    case C::kPu:
      if (rng::bernoulli(eng_, p.detect_presymptomatic)) {
        go(C::kPd, p.detection_delay);
      } else {
        go(rng::bernoulli(eng_, p.fraction_mild) ? C::kSmU : C::kSsU,
           delays_->presym.sample_one(eng_));
      }
      break;
    case C::kPd:
      go(rng::bernoulli(eng_, p.fraction_mild) ? C::kSmD : C::kSsD,
         delays_->presym.sample_one(eng_));
      break;
    case C::kSmU:
      if (rng::bernoulli(eng_, p.detect_mild)) {
        go(C::kSmD, p.detection_delay);
      } else {
        go(C::kRu, delays_->mild.sample_one(eng_));
      }
      break;
    case C::kSmD:
      go(C::kRd, delays_->mild.sample_one(eng_));
      break;
    case C::kSsU:
      if (rng::bernoulli(eng_, p.detect_severe)) {
        go(C::kSsD, p.detection_delay);
      } else {
        go(C::kHu, delays_->severe.sample_one(eng_));
      }
      break;
    case C::kSsD:
      go(C::kHd, delays_->severe.sample_one(eng_));
      break;
    case C::kHu:
    case C::kHd: {
      const bool undetected = c == C::kHu;
      if (rng::bernoulli(eng_, p.fraction_critical)) {
        go(undetected ? C::kCu : C::kCd, delays_->hosp_icu.sample_one(eng_));
      } else {
        go(undetected ? C::kRu : C::kRd, delays_->hosp.sample_one(eng_));
      }
      break;
    }
    case C::kCu:
    case C::kCd: {
      const bool undetected = c == C::kCu;
      if (rng::bernoulli(eng_, p.fraction_death)) {
        go(undetected ? C::kDu : C::kDd, delays_->icu.sample_one(eng_));
      } else {
        go(undetected ? C::kHpU : C::kHpD, delays_->icu.sample_one(eng_));
      }
      break;
    }
    case C::kHpU:
      go(C::kRu, delays_->posticu.sample_one(eng_));
      break;
    case C::kHpD:
      go(C::kRd, delays_->posticu.sample_one(eng_));
      break;
    default:
      terminal();
      break;
  }
}

void AgentBasedModel::seed_exposed(std::int64_t n) {
  if (n < 0 || n > counts_[epi::index(epi::Compartment::kS)]) {
    throw std::invalid_argument("seed_exposed: count exceeds susceptibles");
  }
  std::int64_t seeded = 0;
  while (seeded < n) {
    const auto a = static_cast<std::size_t>(
        rng::uniform_int(eng_, static_cast<std::uint64_t>(state_.size())));
    if (static_cast<epi::Compartment>(state_[a]) != epi::Compartment::kS) {
      continue;
    }
    counts_[epi::index(epi::Compartment::kS)] -= 1;
    enter(a, epi::Compartment::kE);
    ++seeded;
  }
}

void AgentBasedModel::step() {
  using C = epi::Compartment;
  ++day_;
  today_new_infections_ = 0;
  today_new_detected_ = 0;
  today_new_deaths_ = 0;

  // 1. Apply due transitions.
  for (std::size_t a = 0; a < state_.size(); ++a) {
    if (next_day_[a] != day_) continue;
    const auto from = static_cast<C>(state_[a]);
    const auto to = static_cast<C>(next_state_[a]);
    counts_[epi::index(from)] -= 1;
    if (!epi::is_detected(from) && epi::is_detected(to)) {
      today_new_detected_ += 1;
    }
    enter(a, to);
  }

  // 2. Infections: two-level mixing. Community pressure is homogeneous;
  // household pressure is the infectiousness inside the agent's household
  // normalized by household size.
  const double w_comm = effective_infectious();
  if (w_comm > 0.0) {
    std::vector<double> hh_weight(household_count(), 0.0);
    for (std::size_t a = 0; a < state_.size(); ++a) {
      const double w = weight_of(static_cast<C>(state_[a]));
      if (w > 0.0) hh_weight[household_[a]] += w;
    }
    const double theta = transmission_.value_at(day_);
    const double share = config_.household_share;
    const double comm_hazard =
        theta * (1.0 - share) * w_comm /
        static_cast<double>(config_.disease.population);
    const double p_comm = 1.0 - std::exp(-comm_hazard);
    for (std::size_t a = 0; a < state_.size(); ++a) {
      if (static_cast<C>(state_[a]) != C::kS) continue;
      const std::uint32_t hh = household_[a];
      double p_inf = p_comm;
      if (hh_weight[hh] > 0.0) {
        const double size = household_offsets_[hh + 1] - household_offsets_[hh];
        const double hazard =
            comm_hazard + theta * share * hh_weight[hh] / size;
        p_inf = 1.0 - std::exp(-hazard);
      }
      if (rng::uniform_double(eng_) < p_inf) {
        counts_[epi::index(C::kS)] -= 1;
        enter(a, C::kE);
        today_new_infections_ += 1;
      }
    }
  }

  // 3. Record the day.
  epi::DailyRecord rec;
  rec.day = day_;
  rec.new_infections = today_new_infections_;
  rec.new_detected_cases = today_new_detected_;
  rec.new_deaths = today_new_deaths_;
  rec.hospital_census = count(C::kHu) + count(C::kHd) + count(C::kHpU) +
                        count(C::kHpD);
  rec.icu_census = count(C::kCu) + count(C::kCd);
  double infectious = 0.0;
  for (std::size_t c = 0; c < epi::kCompartmentCount; ++c) {
    if (epi::is_infectious(static_cast<C>(c))) {
      infectious += static_cast<double>(counts_[c]);
    }
  }
  rec.infectious_census = static_cast<std::int64_t>(infectious);
  rec.susceptible = count(C::kS);
  trajectory_.append(rec);
}

void AgentBasedModel::run_until_day(std::int32_t day) {
  if (day < day_) {
    throw std::invalid_argument("run_until_day: target is in the past");
  }
  while (day_ < day) step();
}

std::int64_t AgentBasedModel::total_individuals() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t c : counts_) total += c;
  return total;
}

epi::Checkpoint AgentBasedModel::make_checkpoint() const {
  io::BinaryWriter out(kAbmCheckpointVersion);
  config_.disease.serialize(out);
  out.write(config_.mean_household_size);
  out.write(config_.household_share);
  out.write(config_.network_seed);
  transmission_.serialize(out);
  out.write(day_);
  out.write(counts_);
  out.write_vector(state_);
  out.write_vector(next_state_);
  out.write_vector(next_day_);
  out.write(eng_.seed_value());
  out.write(eng_.stream_value());
  out.write(eng_.position());
  trajectory_.serialize(out);

  epi::Checkpoint ckpt;
  ckpt.bytes = out.bytes();
  ckpt.day = day_;
  return ckpt;
}

AgentBasedModel AgentBasedModel::restore(const epi::Checkpoint& ckpt,
                                         const epi::RestartOverrides& ovr) {
  io::BinaryReader in{ckpt.bytes};
  if (in.version() != kAbmCheckpointVersion) {
    throw io::ArchiveError(
        "AgentBasedModel::restore: unsupported checkpoint version");
  }
  AgentBasedModel m;
  m.config_.disease = epi::DiseaseParameters::deserialize(in);
  m.config_.mean_household_size = in.read<double>();
  m.config_.household_share = in.read<double>();
  m.config_.network_seed = in.read<std::uint64_t>();
  m.transmission_ = epi::PiecewiseSchedule::deserialize(in);
  m.day_ = in.read<std::int32_t>();
  m.counts_ = in.read<epi::Census>();
  m.state_ = in.read_vector<std::uint8_t>();
  m.next_state_ = in.read_vector<std::uint8_t>();
  m.next_day_ = in.read_vector<std::int32_t>();
  const auto seed = in.read<std::uint64_t>();
  const auto stream = in.read<std::uint64_t>();
  const auto position = in.read<std::uint64_t>();
  m.trajectory_ = epi::Trajectory::deserialize(in);

  if (ovr.reseeds()) {
    m.eng_.reseed(ovr.seed.value_or(seed), ovr.stream.value_or(stream));
  } else {
    m.eng_.reseed(seed, stream);
    m.eng_.set_position(position);
  }
  if (ovr.fraction_symptomatic) {
    m.config_.disease.fraction_symptomatic = *ovr.fraction_symptomatic;
  }
  if (ovr.fraction_mild) m.config_.disease.fraction_mild = *ovr.fraction_mild;
  if (ovr.asymptomatic_infectiousness) {
    m.config_.disease.asymptomatic_infectiousness =
        *ovr.asymptomatic_infectiousness;
  }
  if (ovr.detected_infectiousness) {
    m.config_.disease.detected_infectiousness = *ovr.detected_infectiousness;
  }
  if (ovr.transmission_rate) {
    m.transmission_.override_from(m.day_ + 1, *ovr.transmission_rate);
  }
  m.config_.validate();
  m.build_households();
  m.acquire_delay_tables();
  return m;
}

}  // namespace epismc::abm
