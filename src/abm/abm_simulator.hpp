#pragma once

// core::Simulator adapter for the agent-based model: the SMC machinery
// calibrates the ABM through exactly the interface it uses for the
// compartmental engines -- the paper's simulator-agnosticism claim, made
// compilable.

#include "abm/agent_model.hpp"
#include "core/simulator.hpp"

namespace epismc::abm {

struct AbmSimulatorConfig {
  AbmConfig abm;
  double burnin_theta = 0.3;
  std::int64_t initial_exposed = 50;
};

class AbmSimulator final : public core::Simulator {
 public:
  explicit AbmSimulator(AbmSimulatorConfig config) : config_(config) {
    config_.abm.validate();
  }

  [[nodiscard]] epi::Checkpoint initial_state(std::int32_t day,
                                              std::uint64_t seed) const override;
  /// Propagates under this simulator's configured day-step engine
  /// (AbmConfig::engine) regardless of which engine wrote the checkpoint --
  /// restoring a reference-engine state into the fast engine is the
  /// supported cross-engine A/B path.
  [[nodiscard]] core::WindowRun run_window(const epi::Checkpoint& state,
                                           double theta, std::uint64_t seed,
                                           std::uint64_t stream,
                                           std::int32_t to_day,
                                           bool want_checkpoint) const override;
  /// Typed pool of full AgentBasedModel copies. Agent arrays are large, so
  /// windows over big populations usually capture end states through the
  /// deferred-replay fallback (CapturePolicy::kAuto sizes this via the
  /// pool's approx_state_bytes()); the pool type is the same either way.
  [[nodiscard]] std::unique_ptr<core::StatePool> make_pool() const override;
  /// Native fused batch engine: parent prototypes come straight out of the
  /// typed pool (agent arrays live, household topology built), per-thread
  /// scratch copies are branched per sim -- the dominant per-sim overhead
  /// of the ABM restore path -- and the sink captures/scores in the same
  /// sweep.
  void run_batch(const core::StatePool& parents, std::int32_t to_day,
                 core::EnsembleBuffer& buffer, std::size_t first,
                 std::size_t count,
                 const core::BatchSink& sink = {}) const override;
  void run_batch(std::span<const epi::Checkpoint> parents, std::int32_t to_day,
                 core::EnsembleBuffer& buffer, std::size_t first,
                 std::size_t count,
                 std::span<epi::Checkpoint> end_states = {}) const override;
  void advance_batch(core::StatePool& states, std::int32_t to_day,
                     core::EnsembleBuffer& buffer, std::size_t first,
                     std::size_t count,
                     const core::BatchSink& sink = {}) const override;
  void resample_states(core::StatePool& states,
                       std::span<const std::uint32_t> ancestors,
                       std::uint64_t seed,
                       std::span<const std::uint64_t> streams,
                       std::span<const double> thetas) const override;
  [[nodiscard]] std::string name() const override { return "agent-based"; }

 private:
  AbmSimulatorConfig config_;
};

}  // namespace epismc::abm
