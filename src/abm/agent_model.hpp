#pragma once

// Agent-based SEIR model -- the §VI extension.
//
// The paper argues its SMC framework "applies equally well to other
// stochastic simulation models, such as ABMs", whose individual-level
// "coordinate system" maps more readily to targeted interventions. This
// module makes that concrete: an individual-based model with the same
// disease natural history as the compartmental simulator (identical
// DiseaseParameters, identical compartment labels), plus two-level mixing
// (households + community), implementing the same trajectory, checkpoint
// and restart-override contracts. The SMC core calibrates it unchanged.
//
// State per agent: current compartment and the pre-sampled next transition
// (destination + due day) -- the agent-granular version of the cohort
// model's future-event queue, which is what makes the state exactly
// checkpointable.

#include <cstdint>
#include <vector>

#include "epi/compartments.hpp"
#include "epi/delay.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/seir_model.hpp"  // Checkpoint, RestartOverrides
#include "epi/trajectory.hpp"
#include "random/distributions.hpp"

namespace epismc::abm {

struct AbmConfig {
  epi::DiseaseParameters disease;   // natural history, shared with epi::
  double mean_household_size = 2.5; // household sizes ~ 1 + Poisson(mean-1)
  /// Share of the transmission rate acting within households; the rest is
  /// homogeneous community mixing.
  double household_share = 0.3;
  /// Seed for the (static) household topology. Not a calibration
  /// parameter: the network is part of the model definition, so restarts
  /// rebuild it deterministically instead of serializing it.
  std::uint64_t network_seed = 17;

  void validate() const;
};

class AgentBasedModel {
 public:
  AgentBasedModel(AbmConfig config, epi::PiecewiseSchedule transmission,
                  std::uint64_t seed, std::uint64_t stream = 0);

  /// Expose `count` randomly chosen susceptible agents to infection.
  void seed_exposed(std::int64_t count);

  void step();
  void run_until_day(std::int32_t day);

  [[nodiscard]] std::int32_t day() const noexcept { return day_; }
  [[nodiscard]] const epi::Trajectory& trajectory() const noexcept {
    return trajectory_;
  }
  [[nodiscard]] std::int64_t count(epi::Compartment c) const noexcept {
    return counts_[epi::index(c)];
  }
  [[nodiscard]] const epi::Census& census() const noexcept { return counts_; }
  [[nodiscard]] std::int64_t population() const noexcept {
    return config_.disease.population;
  }
  [[nodiscard]] const AbmConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::int64_t total_individuals() const noexcept;
  [[nodiscard]] std::size_t household_count() const noexcept {
    return household_offsets_.size() - 1;
  }
  [[nodiscard]] double effective_infectious() const noexcept;

  [[nodiscard]] epi::Checkpoint make_checkpoint() const;
  [[nodiscard]] static AgentBasedModel restore(const epi::Checkpoint& ckpt,
                                               const epi::RestartOverrides& ovr = {});

  /// Re-aim this model (a copy of a restored prototype) at a new branch;
  /// see epi::SeirModel::branch for the contract. Copy + branch skips both
  /// the per-agent state parse and the deterministic household rebuild,
  /// which is what makes the batched ABM path cheaper than per-sim restore.
  void branch(std::uint64_t seed, std::uint64_t stream, double theta) {
    eng_.reseed(seed, stream);
    transmission_.override_from(day_ + 1, theta);
  }

 private:
  AgentBasedModel() = default;

  void build_households();
  void acquire_delay_tables();

  /// Move agent a into compartment c and pre-sample its next transition.
  void enter(std::size_t a, epi::Compartment c);

  /// Infectiousness weight of an agent's current state (0 if not
  /// infectious).
  [[nodiscard]] double weight_of(epi::Compartment c) const noexcept;

  AbmConfig config_;
  epi::PiecewiseSchedule transmission_;
  rng::Engine eng_;
  std::int32_t day_ = 0;
  epi::Census counts_{};
  epi::Trajectory trajectory_;

  // Agent state (structure-of-arrays).
  std::vector<std::uint8_t> state_;       // Compartment per agent
  std::vector<std::uint8_t> next_state_;  // pre-sampled destination
  std::vector<std::int32_t> next_day_;    // due day (INT32_MAX = terminal)
  std::vector<std::uint32_t> household_;  // household id per agent

  // Static topology (rebuilt from network_seed, never serialized).
  std::vector<std::uint32_t> household_offsets_;  // CSR into members
  std::vector<std::uint32_t> household_members_;

  std::int64_t today_new_infections_ = 0;
  std::int64_t today_new_detected_ = 0;
  std::int64_t today_new_deaths_ = 0;

  std::shared_ptr<const epi::DelayTables> delays_;
};

}  // namespace epismc::abm
