#pragma once

// Agent-based SEIR model -- the §VI extension.
//
// The paper argues its SMC framework "applies equally well to other
// stochastic simulation models, such as ABMs", whose individual-level
// "coordinate system" maps more readily to targeted interventions. This
// module makes that concrete: an individual-based model with the same
// disease natural history as the compartmental simulator (identical
// DiseaseParameters, identical compartment labels), plus two-level mixing
// (households + community), implementing the same trajectory, checkpoint
// and restart-override contracts. The SMC core calibrates it unchanged.
//
// State per agent: current compartment and the pre-sampled next transition
// (destination + due day) -- the agent-granular version of the cohort
// model's future-event queue, which is what makes the state exactly
// checkpointable.
//
// Two day-step engines share that state:
//
//   kFast (default)  event-driven: a calendar queue (bucket ring indexed
//                    by due day) delivers exactly the agents transitioning
//                    today; an incrementally maintained infectious-set /
//                    per-household pressure table drives force-of-infection
//                    without scanning the population; and the homogeneous
//                    community force draws the day's infection count as
//                    one aggregated Binomial(S, p_comm), victims picked
//                    uniformly without replacement. Day cost is
//                    O(epidemic activity), not O(population).
//   kReference       the historical three-scan engine: every agent is
//                    visited every day. O(population) per day, but the
//                    per-agent draw sequence is the original one -- kept
//                    selectable as the statistical-equivalence baseline.
//
// The engines consume different RNG draw sequences (the fast engine
// aggregates draws), so they produce different realizations from the same
// seed; they sample the *same distribution* (tests/abm_engine_test.cpp pins
// the fast engine to the reference across hundreds of paired seeds). Each
// engine on its own is bit-deterministic and checkpoint-exact.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "epi/compartments.hpp"
#include "epi/delay.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/seir_model.hpp"  // Checkpoint, RestartOverrides
#include "epi/trajectory.hpp"
#include "random/distributions.hpp"

namespace epismc::abm {

/// Day-step engine selector; see the header comment. Serialized into
/// checkpoints so a restored model keeps stepping the way it was stepping.
enum class AbmEngine : std::uint8_t {
  kFast = 0,
  kReference = 1,
};

[[nodiscard]] std::string_view to_string(AbmEngine engine) noexcept;
/// Parse "fast" / "reference"; throws std::invalid_argument otherwise.
[[nodiscard]] AbmEngine engine_from_name(std::string_view name);

struct AbmConfig {
  epi::DiseaseParameters disease;   // natural history, shared with epi::
  double mean_household_size = 2.5; // household sizes ~ 1 + Poisson(mean-1)
  /// Share of the transmission rate acting within households; the rest is
  /// homogeneous community mixing.
  double household_share = 0.3;
  /// Seed for the (static) household topology. Not a calibration
  /// parameter: the network is part of the model definition, so restarts
  /// rebuild it deterministically instead of serializing it.
  std::uint64_t network_seed = 17;
  /// Day-step engine. kFast is the production engine; kReference keeps the
  /// original per-agent scans selectable for A/B equivalence runs.
  AbmEngine engine = AbmEngine::kFast;

  void validate() const;
};

class AgentBasedModel {
 public:
  AgentBasedModel(AbmConfig config, epi::PiecewiseSchedule transmission,
                  std::uint64_t seed, std::uint64_t stream = 0);

  /// Expose `count` randomly chosen susceptible agents to infection.
  /// O(count) expected work even when susceptibles are scarce (scarce
  /// populations fall back to a scan-built susceptible index and a partial
  /// Fisher-Yates pick instead of unbounded accept/reject).
  void seed_exposed(std::int64_t count);

  void step();
  void run_until_day(std::int32_t day);

  [[nodiscard]] std::int32_t day() const noexcept { return day_; }
  [[nodiscard]] const epi::Trajectory& trajectory() const noexcept {
    return trajectory_;
  }
  [[nodiscard]] std::int64_t count(epi::Compartment c) const noexcept {
    return counts_[epi::index(c)];
  }
  [[nodiscard]] const epi::Census& census() const noexcept { return counts_; }
  [[nodiscard]] std::int64_t population() const noexcept {
    return config_.disease.population;
  }
  [[nodiscard]] const AbmConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::int64_t total_individuals() const noexcept;
  [[nodiscard]] std::size_t household_count() const noexcept {
    return household_offsets_.size() - 1;
  }
  [[nodiscard]] double effective_infectious() const noexcept;
  [[nodiscard]] AbmEngine engine() const noexcept { return config_.engine; }
  /// Households currently holding at least one infectious member -- the
  /// "hot" set whose susceptibles get per-agent infection draws.
  [[nodiscard]] std::size_t hot_household_count() const noexcept {
    return hot_households_.size();
  }

  /// Switch the day-step engine in place (rebuilds the calendar queue; all
  /// epidemiological state is engine-agnostic). Restoring a
  /// reference-engine checkpoint and calling set_engine(kFast) is the
  /// supported cross-engine migration path.
  void set_engine(AbmEngine engine);

  [[nodiscard]] epi::Checkpoint make_checkpoint() const;
  [[nodiscard]] static AgentBasedModel restore(const epi::Checkpoint& ckpt,
                                               const epi::RestartOverrides& ovr = {});

  /// Re-aim this model (a copy of a restored prototype) at a new branch;
  /// see epi::SeirModel::branch for the contract. Copy + branch skips both
  /// the per-agent state parse and the deterministic household rebuild,
  /// which is what makes the batched ABM path cheaper than per-sim restore.
  void branch(std::uint64_t seed, std::uint64_t stream, double theta) {
    eng_.reseed(seed, stream);
    transmission_.override_from(day_ + 1, theta);
  }

 private:
  AgentBasedModel() = default;

  void build_households();
  void acquire_delay_tables();
  /// Restore-time: index the archived susceptible list and hot set, and
  /// rebuild the household pressure classes from the state arrays.
  void rebuild_population_index();
  /// Bucket count of the calendar ring implied by the disease parameters.
  [[nodiscard]] std::size_t calendar_length() const noexcept;
  /// Restore-time sanity checks on the archived calendar ring.
  void validate_restored_calendar() const;
  /// Rebuild the calendar queue from next_day_ in ascending-agent order
  /// (fresh models and engine switches; restores keep the archived ring).
  void rebuild_calendar();

  /// Move agent a into compartment c and pre-sample its next transition.
  void enter(std::size_t a, epi::Compartment c);
  /// Bookkeeping for agent a leaving compartment c (census + pressure).
  void exit_compartment(std::size_t a, epi::Compartment c);
  /// Infect susceptible agent a (move it to kE). Does not touch the daily
  /// infection counter.
  void infect(std::size_t a);
  /// Infect a uniform k-subset of the current susceptibles. Rejection
  /// draws over agent ids while the expected rejection work stays below a
  /// quarter population scan (S >= 5k); otherwise one scan-built index
  /// plus a partial Fisher-Yates pick -- never the unbounded accept/reject
  /// walk the old seeding path degenerated into. `record` adds the victims
  /// to the daily infection counter.
  void infect_random_susceptibles(std::int64_t k, bool record);

  void step_transitions_reference();
  void step_infections_reference();
  void step_transitions_fast();
  void step_infections_fast();
  void record_day();

  /// Infectiousness weight of an agent's current state (0 if not
  /// infectious).
  [[nodiscard]] double weight_of(epi::Compartment c) const noexcept;
  [[nodiscard]] std::size_t ring_slot(std::int32_t day) const noexcept {
    return static_cast<std::size_t>(day) % ring_.size();
  }

  AbmConfig config_;
  epi::PiecewiseSchedule transmission_;
  rng::Engine eng_;
  std::int32_t day_ = 0;
  epi::Census counts_{};
  epi::Trajectory trajectory_;

  // Agent state (structure-of-arrays). This block plus the hot set and
  // calendar ring is the serialized state; the rest is derived.
  std::vector<std::uint8_t> state_;       // Compartment per agent
  std::vector<std::uint8_t> next_state_;  // pre-sampled destination
  std::vector<std::int32_t> next_day_;    // due day (INT32_MAX = terminal)
  std::vector<std::uint32_t> household_;  // household id per agent

  // Static topology (rebuilt from network_seed, never serialized).
  // Households are assigned consecutive agent ids at construction, so
  // household hh's members are exactly the agents [offsets[hh],
  // offsets[hh+1]) -- no member-index indirection needed.
  std::vector<std::uint32_t> household_offsets_;

  // Incremental force-of-infection bookkeeping, one cache-line-friendly
  // 8-byte record per household: infectious member counts by weight class
  // (integral, so entering and leaving agents cancel exactly, with none of
  // the drift an incrementally-updated double would accumulate), the
  // infectious total, and the remaining susceptibles. Derived state,
  // rebuilt on restore. The swap-pop "hot" household set's *order* is
  // drained verbatim by the fast engine, so it is serialized.
  struct HouseholdState {
    // Class counts are uint8: household sizes are 1 + Poisson(mean - 1)
    // with mean <= 20, which cannot reach 255 members in any feasible run.
    std::array<std::uint8_t, epi::kInfectiousnessClassCount> cls;
    std::uint16_t infectious;
    std::uint16_t susceptible;
  };
  static_assert(sizeof(HouseholdState) == 8);
  std::vector<HouseholdState> hh_state_;
  std::vector<std::uint32_t> hot_households_;  // hot set, insertion-ordered
  std::vector<std::uint32_t> hot_pos_;         // slot per household / kNoIndex

  // Calendar queue: bucket ring indexed by due day modulo the ring length,
  // sized past the longest schedulable delay so a push can never land in
  // the bucket being drained. Buckets drain in push order, which is part
  // of the serialized state (sort-free steps); only the fast engine pushes
  // to it -- under kReference the buckets stay empty.
  std::vector<std::vector<std::uint32_t>> ring_;

  // Per-day scratch, reused across days (capacity survives clear()).
  std::vector<std::uint32_t> scratch_susceptibles_;

  // Memo of household infection probabilities keyed by (packed class
  // counts, household size), day-stamped so schedule changes invalidate
  // it. Hot households overwhelmingly share a handful of signatures
  // ((0,0,1,0) in a 2-person household, ...), so this removes one exp()
  // per hot household per day. Pure cache: contents never influence
  // results (the value is a function of the key), so it is not serialized
  // and restores start cold.
  struct HazardMemo {
    std::uint64_t key = 0;  // packed class counts | household size << 32
    std::int32_t day = -1;
    double p_hh = 0.0;
  };
  std::vector<HazardMemo> hazard_memo_;

  std::int64_t today_new_infections_ = 0;
  std::int64_t today_new_detected_ = 0;
  std::int64_t today_new_deaths_ = 0;

  std::shared_ptr<const epi::DelayTables> delays_;
};

}  // namespace epismc::abm
