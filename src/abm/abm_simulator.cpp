#include "abm/abm_simulator.hpp"

#include <stdexcept>

#include "core/batch_runner.hpp"

namespace epismc::abm {

epi::Checkpoint AbmSimulator::initial_state(std::int32_t day,
                                            std::uint64_t seed) const {
  AgentBasedModel model(config_.abm,
                        epi::PiecewiseSchedule(config_.burnin_theta), seed,
                        /*stream=*/0);
  model.seed_exposed(config_.initial_exposed);
  model.run_until_day(day);
  return model.make_checkpoint();
}

core::WindowRun AbmSimulator::run_window(const epi::Checkpoint& state,
                                         double theta, std::uint64_t seed,
                                         std::uint64_t stream,
                                         std::int32_t to_day,
                                         bool want_checkpoint) const {
  epi::RestartOverrides ovr;
  ovr.seed = seed;
  ovr.stream = stream;
  ovr.transmission_rate = theta;
  AgentBasedModel model = AgentBasedModel::restore(state, ovr);
  // The simulator's configured engine wins over the checkpoint's: restoring
  // a reference-engine checkpoint through a fast-engine simulator (or vice
  // versa) is the supported cross-engine A/B path. No-op when they agree.
  model.set_engine(config_.abm.engine);
  const std::int32_t from_day = model.day() + 1;
  if (to_day < from_day) {
    throw std::invalid_argument("run_window: to_day before checkpoint day");
  }
  model.run_until_day(to_day);

  core::WindowRun run;
  run.true_cases = model.trajectory().new_infections(from_day, to_day);
  run.deaths = model.trajectory().new_deaths(from_day, to_day);
  if (want_checkpoint) run.end_state = model.make_checkpoint();
  return run;
}

std::unique_ptr<core::StatePool> AbmSimulator::make_pool() const {
  return std::make_unique<core::ModelStatePool<AgentBasedModel>>();
}

void AbmSimulator::run_batch(const core::StatePool& parents,
                             std::int32_t to_day, core::EnsembleBuffer& buffer,
                             std::size_t first, std::size_t count,
                             const core::BatchSink& sink) const {
  validate_batch_args(parents, buffer, first, count, sink);
  // The prepare hook forces this simulator's configured day-step engine on
  // every scratch model, so cross-engine parent states are honored on the
  // batch path exactly like run_window does per sim (no-op when the
  // checkpoint already carries the configured engine).
  const AbmEngine engine = config_.abm.engine;
  core::detail::run_batch_fused<AgentBasedModel>(
      parents, to_day, buffer, first, count, sink, name(),
      [engine](AgentBasedModel& m) { m.set_engine(engine); });
}

void AbmSimulator::run_batch(std::span<const epi::Checkpoint> parents,
                             std::int32_t to_day, core::EnsembleBuffer& buffer,
                             std::size_t first, std::size_t count,
                             std::span<epi::Checkpoint> end_states) const {
  validate_batch_args(parents, buffer, first, count, end_states);
  const AbmEngine engine = config_.abm.engine;
  core::detail::run_batch_copying<AgentBasedModel>(
      parents, to_day, buffer, first, count, end_states, name(),
      [engine](AgentBasedModel& m) { m.set_engine(engine); });
}

void AbmSimulator::advance_batch(core::StatePool& states, std::int32_t to_day,
                                 core::EnsembleBuffer& buffer,
                                 std::size_t first, std::size_t count,
                                 const core::BatchSink& sink) const {
  const AbmEngine engine = config_.abm.engine;
  core::detail::advance_batch_inplace<AgentBasedModel>(
      states, to_day, buffer, first, count, sink, name(),
      [engine](AgentBasedModel& m) { m.set_engine(engine); });
}

void AbmSimulator::resample_states(core::StatePool& states,
                                   std::span<const std::uint32_t> ancestors,
                                   std::uint64_t seed,
                                   std::span<const std::uint64_t> streams,
                                   std::span<const double> thetas) const {
  if (ancestors.size() != streams.size() || ancestors.size() != thetas.size()) {
    throw std::invalid_argument(
        "resample_states: ancestors, streams and thetas must align");
  }
  const AbmEngine engine = config_.abm.engine;
  core::detail::resample_states_inplace<AgentBasedModel>(
      states, ancestors, seed, streams, thetas, name(),
      [engine](AgentBasedModel& m) { m.set_engine(engine); });
}

}  // namespace epismc::abm
