#pragma once

// Threading layer for the particle-parallel hot paths.
//
// The SMC workload is embarrassingly parallel over particles; these helpers
// keep the threading surface small and auditable: an indexed parallel_for
// over one of three interchangeable backends, thread introspection, and a
// scoped wall-clock timer for the scaling benches.
//
// Backends (PoolBackend):
//   pool    work-stealing TaskPool (task_pool.hpp) -- the default; lazy
//           worker spawn, hierarchical nesting, fork-safe via prepare_fork
//   omp     OpenMP parallel-for with dynamic scheduling (only when the
//           build has OpenMP; otherwise requests clamp to serial)
//   serial  plain loop on the calling thread
// Selection order: set_backend() > EPISMC_POOL env var > the compile-time
// default (CMake option EPISMC_DEFAULT_POOL). The backend only decides
// WHERE iterations execute, never what they compute.
//
// Determinism contract: loop bodies receive only the index; any randomness
// must come from a stream derived from that index (see random/seeding.hpp),
// never from thread id. All library code follows this rule, which is what
// makes results bit-identical across thread counts AND across backends
// (tests/parallel_test.cpp pins a full calibration window to that claim).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "parallel/task_pool.hpp"

namespace epismc::parallel {

/// Which engine parallel_for routes through. Numeric values are stable
/// (they appear in bench JSON stamps via backend_name()).
enum class PoolBackend { kSerial = 0, kOmp = 1, kPool = 2 };

/// Current backend. First call resolves EPISMC_POOL (unknown values are
/// ignored in favor of the compile-time default; use
/// refresh_backend_from_env() to get strict parsing).
[[nodiscard]] PoolBackend backend() noexcept;

/// Select a backend; returns what actually took effect (requesting omp in
/// a build without OpenMP clamps to serial, mirroring the old behavior of
/// the #else branch).
PoolBackend set_backend(PoolBackend b) noexcept;

/// Name form of set_backend: "serial" | "omp" | "pool".
/// Throws std::invalid_argument on anything else.
PoolBackend set_backend(const std::string& name);

/// Parse a backend name; throws std::invalid_argument on unknown names.
[[nodiscard]] PoolBackend parse_backend(const std::string& name);

/// Stable lower-case name for stamps and logs.
[[nodiscard]] const char* backend_name(PoolBackend b) noexcept;

/// Re-read EPISMC_POOL and apply it; throws std::invalid_argument when the
/// variable is set to an unknown value. No-op when unset.
void refresh_backend_from_env();

/// Tear down pool workers so the process can fork safely; parent and
/// child respawn lazily on their next parallel_for. Harmless when no
/// workers are alive (serial/omp backends, or pool never used).
void prepare_fork();

/// Observability snapshot of the work-stealing pool (zeros until the pool
/// backend has run something).
[[nodiscard]] inline PoolStats pool_stats() { return TaskPool::instance().stats(); }

/// How many lanes/threads a parallel_for may use under the current
/// backend. This is also the exclusive upper bound of thread_id(), which
/// is what sizes the per-thread scratch arrays in core/batch_runner.hpp.
[[nodiscard]] inline int max_threads() noexcept {
  switch (backend()) {
    case PoolBackend::kSerial:
      return 1;
    case PoolBackend::kPool:
      return TaskPool::instance().lanes();
    case PoolBackend::kOmp:
#ifdef _OPENMP
      return omp_get_max_threads();
#else
      return 1;
#endif
  }
  return 1;
}

/// Id of the calling thread inside a parallel_for body: the pool lane id
/// when running on the pool, the OpenMP thread number under omp, else 0.
/// Always in [0, max_threads()).
[[nodiscard]] inline int thread_id() noexcept {
  const int lane = TaskPool::current_lane();
  if (lane >= 0) return lane;
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Set the thread budget for every backend at once: the OpenMP team size
/// and the pool lane target (pool workers are torn down and respawn
/// lazily at the new width). Values < 1 are ignored.
inline void set_threads(int n) noexcept {
  if (n <= 0) return;
#ifdef _OPENMP
  omp_set_num_threads(n);
#endif
  TaskPool::instance().set_lanes(n);
}

/// Dynamic-schedule chunk size for a loop of `count` iterations: a quarter
/// of an even split per thread, clamped to at least 1. Small loops stay
/// fine-grained enough that every thread gets work; large loops amortize
/// the scheduling overhead instead of paying it every 16 iterations
/// (the previous fixed default, which penalized ensemble-sized counts).
/// The same heuristic feeds OpenMP's dynamic chunk and the pool's grain.
[[nodiscard]] inline int default_chunk(std::size_t count) noexcept {
  const std::size_t per = count / (4 * static_cast<std::size_t>(max_threads()));
  return per < 1 ? 1 : static_cast<int>(per);
}

namespace detail {

/// Pool trampoline: per-index try/catch with first-exception capture, so
/// the pool itself never sees a throwing task (its RangeFn contract).
/// Matches the OpenMP path's contract: remaining iterations still run,
/// one of the captured exceptions is rethrown at the join point.
template <typename Body>
void pool_for(std::size_t count, int chunk, Body& body) {
  struct Ctx {
    Body* body;
    std::mutex mu;
    std::exception_ptr first;
  } ctx{&body, {}, nullptr};
  const auto trampoline = +[](void* p, std::size_t begin, std::size_t end) {
    auto* c = static_cast<Ctx*>(p);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*c->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(c->mu);
        if (!c->first) c->first = std::current_exception();
      }
    }
  };
  const std::size_t grain = chunk <= 0 ? static_cast<std::size_t>(default_chunk(count))
                                       : static_cast<std::size_t>(chunk);
  TaskPool::instance().run(count, grain, trampoline, &ctx);
  if (ctx.first) std::rethrow_exception(ctx.first);
}

}  // namespace detail

/// Parallel loop over [0, count) with dynamic chunking on the selected
/// backend. `body` must be thread-safe and index-deterministic (see header
/// comment). `chunk` <= 0 selects the default_chunk(count) heuristic.
///
/// Exception contract (identical across backends): body exceptions are
/// captured per index, remaining iterations still run, and the first
/// captured exception is rethrown at the join point. Which exception wins
/// under concurrent failures is unspecified, but these are terminal wiring
/// errors -- results never depend on it.
///
/// Nesting: under the pool backend a parallel_for issued from inside a
/// parallel_for body schedules hierarchically on the same lanes (no
/// oversubscription). Under omp the inner loop runs serially on its
/// calling thread (nested OpenMP stays disabled).
template <typename Body>
void parallel_for(std::size_t count, Body&& body, int chunk = 0) {
  const PoolBackend be = backend();
  // Serial fast path when only one thread would run: skips the parallel
  // machinery entirely, which also keeps single-threaded work safe inside
  // a freshly forked child before the pool notices the pid change. Same
  // exception contract as the threaded paths: capture per index, finish
  // the loop, rethrow the first.
  if (count <= 1 || be == PoolBackend::kSerial || max_threads() <= 1) {
    std::exception_ptr error = nullptr;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
#ifdef _OPENMP
  if (be == PoolBackend::kOmp) {
    // An exception escaping an OpenMP structured block calls
    // std::terminate, so capture inside the region, rethrow after.
    if (chunk <= 0) chunk = default_chunk(count);
    std::exception_ptr error = nullptr;
#pragma omp parallel for schedule(dynamic, chunk)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
      try {
        body(static_cast<std::size_t>(i));
      } catch (...) {
#pragma omp critical(epismc_parallel_for_error)
        {
          if (!error) error = std::current_exception();
        }
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
#endif
  detail::pool_for(count, chunk, body);
}

/// Scoped backend override for tests and benches; restores the previous
/// backend on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(PoolBackend b) : prev_(backend()) { set_backend(b); }
  explicit ScopedBackend(const std::string& name) : prev_(backend()) {
    set_backend(name);
  }
  ~ScopedBackend() { set_backend(prev_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  PoolBackend prev_;
};

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace epismc::parallel
