#pragma once

// OpenMP utilities for the particle-parallel hot paths.
//
// The SMC workload is embarrassingly parallel over particles; these helpers
// keep the OpenMP surface small and auditable: an indexed parallel_for with
// dynamic scheduling (particle costs vary with rejection sampling), thread
// introspection, and a scoped wall-clock timer for the scaling benches.
//
// Determinism contract: loop bodies receive only the index; any randomness
// must come from a stream derived from that index (see random/seeding.hpp),
// never from thread id. All library code follows this rule, which is what
// makes results independent of the thread count.

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace epismc::parallel {

[[nodiscard]] inline int max_threads() noexcept {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

[[nodiscard]] inline int thread_id() noexcept {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline void set_threads(int n) noexcept {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Dynamic-schedule chunk size for a loop of `count` iterations: a quarter
/// of an even split per thread, clamped to at least 1. Small loops stay
/// fine-grained enough that every thread gets work; large loops amortize
/// the dynamic-queue overhead instead of paying it every 16 iterations
/// (the previous fixed default, which penalized ensemble-sized counts).
[[nodiscard]] inline int default_chunk(std::size_t count) noexcept {
  const std::size_t per = count / (4 * static_cast<std::size_t>(max_threads()));
  return per < 1 ? 1 : static_cast<int>(per);
}

/// Parallel loop over [0, count) with dynamic chunking. `body` must be
/// thread-safe and index-deterministic (see header comment). `chunk` <= 0
/// selects the default_chunk(count) heuristic.
///
/// Exception contract: an exception escaping an OpenMP structured block
/// calls std::terminate, so body exceptions are captured inside the region
/// and one of them is rethrown afterwards (remaining iterations still run;
/// which exception wins under concurrent failures is unspecified, but
/// these are terminal wiring errors -- results never depend on it).
template <typename Body>
void parallel_for(std::size_t count, Body&& body, int chunk = 0) {
#ifdef _OPENMP
  // Serial fast path when only one thread would run: skips the OpenMP
  // region entirely, which also makes single-threaded work fork-safe --
  // a supervised child forked from an OpenMP-initialized parent must not
  // re-enter the runtime (its worker-thread state did not survive fork).
  if (max_threads() == 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  if (chunk <= 0) chunk = default_chunk(count);
  std::exception_ptr error = nullptr;
#pragma omp parallel for schedule(dynamic, chunk)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
    try {
      body(static_cast<std::size_t>(i));
    } catch (...) {
#pragma omp critical(epismc_parallel_for_error)
      {
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
#else
  (void)chunk;
  for (std::size_t i = 0; i < count; ++i) body(i);
#endif
}

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace epismc::parallel
