#include "parallel/task_pool.hpp"

#include <array>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "parallel/parallel.hpp"

namespace epismc::parallel {

namespace {

/// Shared state of one parallel_for while it drains. Lives on the
/// submitter's stack; thieves never touch it after their final
/// remaining.fetch_sub, and the submitter returns only once remaining
/// reaches zero (the acquire load synchronizes with the whole release
/// sequence of decrements), so the lifetime is airtight.
struct RunState {
  TaskPool::RangeFn fn;
  void* ctx;
  std::size_t grain;
  std::atomic<std::size_t> remaining;
};

/// Lane id of this OS thread while it participates in pool execution.
thread_local int tl_lane = -1;
/// Nested-execution depth: the active-lane gauge counts a lane once even
/// when an outer task is suspended on a nested parallel_for.
thread_local int tl_depth = 0;

constexpr std::size_t kDequeCapacity = 2048;  // power of two
constexpr std::size_t kDequeMask = kDequeCapacity - 1;

}  // namespace

/// Bounded Chase-Lev work-stealing deque plus this lane's counters and
/// (for lanes >= 1) its worker thread. top/bottom are seq_cst -- the
/// owner's pop needs StoreLoad ordering against thieves, and seq_cst on
/// the accesses themselves (rather than standalone fences) is the form
/// ThreadSanitizer models exactly. Slots are relaxed atomics published
/// by the bottom store and guarded by the top CAS.
struct TaskPool::Lane {
  struct Slot {
    std::atomic<void*> run{nullptr};
    std::atomic<std::size_t> begin{0};
    std::atomic<std::size_t> end{0};
  };

  alignas(64) std::atomic<std::int64_t> top{0};
  alignas(64) std::atomic<std::int64_t> bottom{0};
  std::array<Slot, kDequeCapacity> ring;

  alignas(64) std::atomic<std::uint64_t> tasks_run{0};
  std::atomic<std::uint64_t> iterations_run{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> steal_failures{0};
  std::atomic<std::uint64_t> idle_wakeups{0};

  std::thread thread;  // default-constructed (empty) for lane 0

  /// Owner-side push. Returns false when the deque is full -- the
  /// caller then stops splitting and runs the chunk inline, which is
  /// also what keeps size <= capacity (the invariant that makes slot
  /// reuse safe against in-flight steals: a slot is only overwritten
  /// once top has moved past it, and any thief still holding the old
  /// top value loses its CAS).
  bool push(const Task& t) {
    const std::int64_t b = bottom.load(std::memory_order_relaxed);
    const std::int64_t tp = top.load(std::memory_order_seq_cst);
    if (b - tp >= static_cast<std::int64_t>(kDequeCapacity)) return false;
    Slot& s = ring[static_cast<std::size_t>(b) & kDequeMask];
    s.run.store(t.run, std::memory_order_relaxed);
    s.begin.store(t.begin, std::memory_order_relaxed);
    s.end.store(t.end, std::memory_order_relaxed);
    bottom.store(b + 1, std::memory_order_seq_cst);  // publish
    return true;
  }

  /// Owner-side pop (LIFO end). Arbitration for the last element goes
  /// through the top CAS, same as a steal.
  bool pop(Task& out) {
    const std::int64_t b = bottom.load(std::memory_order_relaxed) - 1;
    bottom.store(b, std::memory_order_seq_cst);
    std::int64_t t = top.load(std::memory_order_seq_cst);
    if (t > b) {  // empty
      bottom.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    Slot& s = ring[static_cast<std::size_t>(b) & kDequeMask];
    out.run = s.run.load(std::memory_order_relaxed);
    out.begin = s.begin.load(std::memory_order_relaxed);
    out.end = s.end.load(std::memory_order_relaxed);
    if (t == b) {  // last element: race any thief for it
      const bool won = top.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Thief-side steal (FIFO end = the largest outstanding chunk).
  /// 1 = stolen, 0 = empty, -1 = lost the CAS race (worth retrying).
  int steal(Task& out) {
    std::int64_t t = top.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom.load(std::memory_order_seq_cst);
    if (t >= b) return 0;
    Slot& s = ring[static_cast<std::size_t>(t) & kDequeMask];
    out.run = s.run.load(std::memory_order_relaxed);
    out.begin = s.begin.load(std::memory_order_relaxed);
    out.end = s.end.load(std::memory_order_relaxed);
    if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
      return -1;  // raced; the values read may be stale -- discarded
    }
    return 1;
  }
};

struct TaskPool::Sync {
  std::mutex structure;  // spawn / teardown / resize / stats
  std::mutex root;       // single-occupancy of lane 0 by external callers
  std::mutex sleep;
  std::condition_variable cv;
  /// Folded counters of torn-down worker generations, by lane id, so
  /// stats() stays monotonic across resize/fork cycles.
  std::vector<LaneStats> retired;
};

LaneStats PoolStats::totals() const noexcept {
  LaneStats sum;
  for (const LaneStats& l : lane) {
    sum.tasks_run += l.tasks_run;
    sum.iterations_run += l.iterations_run;
    sum.steals += l.steals;
    sum.steal_failures += l.steal_failures;
    sum.idle_wakeups += l.idle_wakeups;
  }
  return sum;
}

std::string PoolStats::summary() const {
  const LaneStats t = totals();
  std::ostringstream os;
  os << "lanes=" << lanes << " workers=" << spawned_workers
     << " peak_active=" << peak_active << " tasks=" << t.tasks_run
     << " iterations=" << t.iterations_run << " steals=" << t.steals
     << " steal_failures=" << t.steal_failures
     << " idle_wakeups=" << t.idle_wakeups;
  return os.str();
}

TaskPool& TaskPool::instance() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool()
    : lanes_target_(static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()))),
      sync_(new Sync) {}

TaskPool::~TaskPool() {
  teardown_workers();
  delete sync_;
}

int TaskPool::current_lane() noexcept { return tl_lane; }

void TaskPool::set_lanes(int n) {
  if (n < 1) n = 1;
  if (n == lanes_target_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(sync_->structure);
  teardown_workers_locked();
  lanes_target_.store(n, std::memory_order_relaxed);
}

void TaskPool::prepare_fork() { teardown_workers(); }

void TaskPool::teardown_workers() {
  std::lock_guard<std::mutex> lock(sync_->structure);
  teardown_workers_locked();
}

void TaskPool::teardown_workers_locked() {
  if (lanes_.empty()) return;
  const bool same_process =
      spawn_pid_.load(std::memory_order_relaxed) ==
      static_cast<long>(::getpid());
  stop_.store(true, std::memory_order_seq_cst);
  if (same_process) {
    {
      std::lock_guard<std::mutex> sleep_lock(sync_->sleep);
      sync_->cv.notify_all();
    }
    for (Lane* l : lanes_) {
      if (l->thread.joinable()) l->thread.join();
    }
  }
  if (sync_->retired.size() < lanes_.size()) {
    sync_->retired.resize(lanes_.size());
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    LaneStats& r = sync_->retired[i];
    r.tasks_run += lanes_[i]->tasks_run.load(std::memory_order_relaxed);
    r.iterations_run +=
        lanes_[i]->iterations_run.load(std::memory_order_relaxed);
    r.steals += lanes_[i]->steals.load(std::memory_order_relaxed);
    r.steal_failures +=
        lanes_[i]->steal_failures.load(std::memory_order_relaxed);
    r.idle_wakeups += lanes_[i]->idle_wakeups.load(std::memory_order_relaxed);
    if (same_process) {
      delete lanes_[i];
    }
    // A fork that skipped prepare_fork left us thread handles for
    // pthreads that do not exist in this process: deliberately leak the
    // Lane (joining or destroying a joinable std::thread would abort).
  }
  lanes_.clear();
  spawned_workers_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_seq_cst);
}

void TaskPool::ensure_workers() {
  const int target = lanes_target_.load(std::memory_order_relaxed);
  const long pid = static_cast<long>(::getpid());
  if (static_cast<int>(lanes_.size()) == target &&
      spawn_pid_.load(std::memory_order_relaxed) == pid) {
    return;
  }
  std::lock_guard<std::mutex> lock(sync_->structure);
  if (static_cast<int>(lanes_.size()) == target &&
      spawn_pid_.load(std::memory_order_relaxed) == pid) {
    return;
  }
  teardown_workers_locked();  // stale generation (resize or fork)
  lanes_.reserve(static_cast<std::size_t>(target));
  for (int i = 0; i < target; ++i) lanes_.push_back(new Lane);
  spawn_pid_.store(pid, std::memory_order_relaxed);
  for (int i = 1; i < target; ++i) {
    lanes_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_main(i); });
  }
  spawned_workers_.store(target - 1, std::memory_order_relaxed);
}

void TaskPool::wake_one() {
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(sync_->sleep);
    sync_->cv.notify_one();
  }
}

void TaskPool::note_active(int delta) noexcept {
  if (delta > 0) {
    const int now = active_.fetch_add(1, std::memory_order_relaxed) + 1;
    int peak = peak_active_.load(std::memory_order_relaxed);
    while (now > peak && !peak_active_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  } else {
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void TaskPool::execute(Lane& lane, const Task& task) {
  RunState* rs = static_cast<RunState*>(task.run);
  std::size_t begin = task.begin;
  std::size_t end = task.end;
  // Binary split: push the upper half (which becomes the oldest --
  // biggest -- steal target) and keep the lower. A full deque stops the
  // splitting and runs the remainder inline.
  while (end - begin > rs->grain) {
    const std::size_t mid = begin + (end - begin) / 2;
    if (!lane.push(Task{rs, mid, end})) break;
    signal_epoch_.fetch_add(1, std::memory_order_seq_cst);
    wake_one();
    end = mid;
  }
  if (++tl_depth == 1) note_active(+1);
  rs->fn(rs->ctx, begin, end);
  if (--tl_depth == 0) note_active(-1);
  lane.tasks_run.fetch_add(1, std::memory_order_relaxed);
  lane.iterations_run.fetch_add(end - begin, std::memory_order_relaxed);
  rs->remaining.fetch_sub(end - begin, std::memory_order_release);
}

bool TaskPool::try_steal(int thief_lane, Task& out) {
  const int n = static_cast<int>(lanes_.size());
  bool contended = true;
  for (int round = 0; round < 2 && contended; ++round) {
    contended = false;
    for (int k = 1; k < n; ++k) {
      Lane& victim = *lanes_[static_cast<std::size_t>((thief_lane + k) % n)];
      const int r = victim.steal(out);
      if (r == 1) {
        lanes_[static_cast<std::size_t>(thief_lane)]->steals.fetch_add(
            1, std::memory_order_relaxed);
        return true;
      }
      if (r == -1) contended = true;
    }
  }
  lanes_[static_cast<std::size_t>(thief_lane)]->steal_failures.fetch_add(
      1, std::memory_order_relaxed);
  return false;
}

void TaskPool::worker_main(int lane_id) {
  tl_lane = lane_id;
  Lane& me = *lanes_[static_cast<std::size_t>(lane_id)];
  Task task;
  int dry_sweeps = 0;
  while (!stop_.load(std::memory_order_seq_cst)) {
    if (me.pop(task) || try_steal(lane_id, task)) {
      execute(me, task);
      dry_sweeps = 0;
      continue;
    }
    // Idle backoff: a few yielding re-sweeps, then sleep until a push
    // signals (epoch check under the sleep mutex closes the lost-wakeup
    // window; the timeout is only insurance).
    if (++dry_sweeps < 4) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t epoch = signal_epoch_.load(std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(sync_->sleep);
      if (signal_epoch_.load(std::memory_order_seq_cst) == epoch &&
          !stop_.load(std::memory_order_seq_cst)) {
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        sync_->cv.wait_for(lock, std::chrono::milliseconds(50));
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        me.idle_wakeups.fetch_add(1, std::memory_order_relaxed);
      }
    }
    dry_sweeps = 0;
  }
  tl_lane = -1;
}

void TaskPool::run(std::size_t count, std::size_t grain, RangeFn fn,
                   void* ctx) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  RunState rs{fn, ctx, grain, {count}};

  const int target = lanes_target_.load(std::memory_order_relaxed);
  const int caller_lane = tl_lane;
  if (target <= 1 && caller_lane < 0) {
    // Degenerate single-lane pool, no workers to spawn: run inline.
    fn(ctx, 0, count);
    return;
  }

  ensure_workers();

  const bool external = caller_lane < 0;
  std::unique_lock<std::mutex> root_lock;
  if (external) {
    // Lane 0 is single-occupancy: concurrent external submitters
    // serialize here, which keeps thread_id() unique per in-flight run
    // (the scratch-workspace contract in core/batch_runner.hpp).
    root_lock = std::unique_lock<std::mutex>(sync_->root);
    tl_lane = 0;
  }
  const int my_lane = external ? 0 : caller_lane;
  Lane& lane = *lanes_[static_cast<std::size_t>(my_lane)];

  execute(lane, Task{&rs, 0, count});

  // Help until the run drains: own deque first (this run's splits),
  // then steal -- possibly chunks of other in-flight runs, which is
  // what lets two scheduling levels share one set of lanes.
  Task task;
  int idle_spins = 0;
  while (rs.remaining.load(std::memory_order_acquire) != 0) {
    if (lane.pop(task) || try_steal(my_lane, task)) {
      execute(lane, task);
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 16) {
      std::this_thread::yield();
    } else {
      // Everything left is in flight on other lanes; nap briefly
      // instead of burning the core they need.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  if (external) {
    tl_lane = -1;
  }
}

PoolStats TaskPool::stats() const {
  std::lock_guard<std::mutex> lock(sync_->structure);
  PoolStats out;
  out.lanes = lanes_target_.load(std::memory_order_relaxed);
  out.spawned_workers = spawned_workers_.load(std::memory_order_relaxed);
  out.peak_active = peak_active_.load(std::memory_order_relaxed);
  const std::size_t n =
      std::max(sync_->retired.size(),
               std::max(lanes_.size(), static_cast<std::size_t>(out.lanes)));
  out.lane.resize(n);
  for (std::size_t i = 0; i < sync_->retired.size(); ++i) {
    out.lane[i] = sync_->retired[i];
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    out.lane[i].tasks_run +=
        lanes_[i]->tasks_run.load(std::memory_order_relaxed);
    out.lane[i].iterations_run +=
        lanes_[i]->iterations_run.load(std::memory_order_relaxed);
    out.lane[i].steals += lanes_[i]->steals.load(std::memory_order_relaxed);
    out.lane[i].steal_failures +=
        lanes_[i]->steal_failures.load(std::memory_order_relaxed);
    out.lane[i].idle_wakeups +=
        lanes_[i]->idle_wakeups.load(std::memory_order_relaxed);
  }
  return out;
}

void TaskPool::reset_peak() noexcept {
  peak_active_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Backend selection (parallel.hpp's PoolBackend surface).
// ---------------------------------------------------------------------------

namespace {

/// Compile-time default backend, overridable per build via the CMake cache
/// string EPISMC_DEFAULT_POOL (stamped as a compile definition on this TU).
#ifndef EPISMC_DEFAULT_POOL_BACKEND
#define EPISMC_DEFAULT_POOL_BACKEND "pool"
#endif

/// Requesting omp in a build without OpenMP degrades to serial -- the same
/// behavior the old #else branch of parallel_for had.
PoolBackend clamp_backend(PoolBackend b) noexcept {
#ifndef _OPENMP
  if (b == PoolBackend::kOmp) return PoolBackend::kSerial;
#endif
  return b;
}

std::atomic<int> g_backend{-1};  // -1 = not resolved yet

PoolBackend resolve_initial_backend() noexcept {
  PoolBackend b = PoolBackend::kPool;
  try {
    b = parse_backend(EPISMC_DEFAULT_POOL_BACKEND);
  } catch (...) {
    // Malformed cache value baked into the build; keep the pool default.
  }
  if (const char* env = std::getenv("EPISMC_POOL")) {
    try {
      b = parse_backend(env);
    } catch (...) {
      // Lazy resolution must not throw from noexcept callers; unknown env
      // values keep the compile default. refresh_backend_from_env() is the
      // strict entry point.
    }
  }
  return clamp_backend(b);
}

}  // namespace

PoolBackend backend() noexcept {
  int v = g_backend.load(std::memory_order_acquire);
  if (v < 0) {
    const PoolBackend resolved = resolve_initial_backend();
    int expected = -1;
    if (g_backend.compare_exchange_strong(expected, static_cast<int>(resolved),
                                          std::memory_order_acq_rel)) {
      return resolved;
    }
    v = expected;  // another thread resolved first
  }
  return static_cast<PoolBackend>(v);
}

PoolBackend set_backend(PoolBackend b) noexcept {
  const PoolBackend effective = clamp_backend(b);
  g_backend.store(static_cast<int>(effective), std::memory_order_release);
  return effective;
}

PoolBackend set_backend(const std::string& name) {
  return set_backend(parse_backend(name));
}

PoolBackend parse_backend(const std::string& name) {
  if (name == "serial") return PoolBackend::kSerial;
  if (name == "omp") return PoolBackend::kOmp;
  if (name == "pool") return PoolBackend::kPool;
  throw std::invalid_argument("unknown pool backend '" + name +
                              "' (expected serial|omp|pool)");
}

const char* backend_name(PoolBackend b) noexcept {
  switch (b) {
    case PoolBackend::kSerial:
      return "serial";
    case PoolBackend::kOmp:
      return "omp";
    case PoolBackend::kPool:
      return "pool";
  }
  return "serial";
}

void refresh_backend_from_env() {
  if (const char* env = std::getenv("EPISMC_POOL")) {
    set_backend(parse_backend(env));
  }
}

void prepare_fork() { TaskPool::instance().prepare_fork(); }

}  // namespace epismc::parallel
