#pragma once

// Persistent work-stealing task pool: the thread backend behind
// parallel::parallel_for when EPISMC_POOL=pool (the default build).
//
// Layout. The pool is a set of `lanes` execution lanes. Lane 0 is the
// submitting (external) thread; lanes 1..lanes-1 are worker threads,
// spawned lazily on the first run() that can use them. Every lane owns a
// bounded Chase-Lev deque: the owner pushes and pops at the bottom
// (LIFO, cache-warm), thieves steal from the top (FIFO, oldest first).
//
// Steal-half policy. A parallel_for submits ONE root descriptor covering
// [0, count). Whoever executes a descriptor splits it binarily while it
// is wider than the grain, pushing the upper half and keeping the lower:
// the oldest entry in any deque is therefore always the largest
// outstanding chunk -- roughly half the victim's remaining iterations --
// so one successful steal rebalances half the victim's work, without the
// multi-element-CAS hazards of stealing k entries at once.
//
// Hierarchical scheduling. run() is re-entrant: a worker executing an
// outer task (a ScenarioSweep cell) that submits an inner parallel_for
// pushes onto its *own* deque and helps until the inner loop drains, so
// both levels share one set of lanes -- nesting never oversubscribes the
// machine (peak_active in the stats proves it). While waiting, a lane
// steals whatever is available, including other runs' descriptors.
// External (non-lane) submitters serialize on a root mutex so lane 0 is
// never claimed by two OS threads at once -- which is what keeps the
// lane-id-indexed scratch workspaces in core/batch_runner.hpp race-free.
//
// Determinism. The pool decides only *where* a chunk executes, never
// what it computes: bodies receive the index alone, so results are
// bit-identical across 1/4/8/16 lanes and across the serial/omp/pool
// backends (tests/parallel_test.cpp locks a full calibration window).
//
// Fork safety. prepare_fork() joins and discards every worker; parent
// and child then respawn lazily on their next run(). A fork that skipped
// prepare_fork is still survivable: the pool notices the pid change and
// abandons the inherited (nonexistent-in-the-child) thread handles
// rather than joining them. src/supervise/ calls prepare_fork() before
// every child spawn, which is what lifted the old "parents must stay
// OpenMP-virgin" restriction for the pool backend.
//
// Memory model / TSan. top and bottom are seq_cst (the owner's
// pop-vs-steal arbitration needs a StoreLoad order that relaxed+fence
// idioms provide but ThreadSanitizer cannot model -- standalone fences
// are invisible to it); deque slots are relaxed atomics published by the
// bottom store. The deque is bounded: a push into a full deque simply
// stops splitting and runs the chunk inline, so slot reuse can never
// outrun the size <= capacity invariant the steal proof relies on.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace epismc::parallel {

/// Per-lane observability counters, sampled via TaskPool::stats().
struct LaneStats {
  std::uint64_t tasks_run = 0;        // descriptors executed
  std::uint64_t iterations_run = 0;   // loop indices executed
  std::uint64_t steals = 0;           // successful steals BY this lane
  std::uint64_t steal_failures = 0;   // full failed victim sweeps
  std::uint64_t idle_wakeups = 0;     // worker returns from idle sleep
};

/// Snapshot of the pool's observability state.
struct PoolStats {
  int lanes = 1;             // configured lane count (callers + workers)
  int spawned_workers = 0;   // worker threads currently alive
  int peak_active = 0;       // max lanes ever executing chunks at once
  std::vector<LaneStats> lane;  // one entry per lane, index == lane id

  [[nodiscard]] LaneStats totals() const noexcept;
  /// One-line "lanes=4 workers=3 peak=4 tasks=96 steals=17 ..." form for
  /// bench JSONs and the SupervisionReport.
  [[nodiscard]] std::string summary() const;
};

class TaskPool {
 public:
  /// Chunk executor: body over [begin, end). Must not throw -- the
  /// parallel_for trampoline catches per index and records the first
  /// exception itself.
  using RangeFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  /// The process-wide pool (workers are a per-process resource, like the
  /// OpenMP runtime's team).
  [[nodiscard]] static TaskPool& instance();

  /// Target lane count (>= 1). Takes effect lazily: live workers are
  /// torn down when the count changes and respawn on the next run().
  /// Not safe concurrently with run() -- same contract as
  /// omp_set_num_threads.
  void set_lanes(int n);
  [[nodiscard]] int lanes() const noexcept {
    return lanes_target_.load(std::memory_order_relaxed);
  }

  /// Execute fn over [0, count) with chunks no finer than grain,
  /// blocking until every index ran. Re-entrant from inside tasks
  /// (hierarchical submit); concurrent external callers serialize.
  void run(std::size_t count, std::size_t grain, RangeFn fn, void* ctx);

  /// Lane id of the calling thread while it executes pool work (or
  /// submits a run), -1 outside the pool. parallel::thread_id() builds
  /// on this; ids are always < lanes().
  [[nodiscard]] static int current_lane() noexcept;

  /// Join and discard all workers. Call in the parent before fork();
  /// both sides respawn lazily. Idempotent; not safe while a run() is
  /// in flight on another thread.
  void prepare_fork();

  /// Counter snapshot (monotonic since process start, except
  /// peak_active which reset_peak() rewinds).
  [[nodiscard]] PoolStats stats() const;
  void reset_peak() noexcept;

  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

 private:
  TaskPool();

  struct Lane;
  struct Task {
    void* run = nullptr;  // RunState*
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void ensure_workers();
  void teardown_workers();
  void teardown_workers_locked();
  void worker_main(int lane_id);
  void execute(Lane& lane, const Task& task);
  /// One sweep over all other lanes; returns true with a stolen task.
  bool try_steal(int thief_lane, Task& out);
  void wake_one();
  void note_active(int delta) noexcept;

  std::vector<Lane*> lanes_;  // fixed per spawn generation; index == id
  std::atomic<int> lanes_target_;
  std::atomic<int> spawned_workers_{0};
  std::atomic<int> active_{0};
  std::atomic<int> peak_active_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> signal_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<long> spawn_pid_{0};

  // Serializes external submitters (lane 0 is single-occupancy) and
  // structural changes (spawn/teardown/resize).
  struct Sync;
  Sync* sync_;
};

}  // namespace epismc::parallel
