#include "api/session.hpp"

#include <stdexcept>

#include "parallel/parallel.hpp"
#include "simd/simd.hpp"

namespace epismc::api {

void CalibrationSession::require_unbuilt(const char* call) const {
  if (calibrator_ || streamed_) {
    throw std::logic_error(std::string("CalibrationSession::") + call +
                           ": session already materialized; configure before "
                           "the first run_*/stream()/results call");
  }
}

CalibrationSession& CalibrationSession::with_simulator(std::string name) {
  require_unbuilt("with_simulator");
  // Eager: a typo'd backend name must fail here, not after the scenario's
  // ground truth (possibly a full agent-based run) has been simulated.
  if (!simulators().contains(name)) {
    throw UnknownComponentError(simulators().kind(), name,
                                simulators().names());
  }
  simulator_name_ = std::move(name);
  return *this;
}

CalibrationSession& CalibrationSession::with_simulator(std::string name,
                                                       SimulatorSpec spec) {
  with_simulator(std::move(name));
  spec_override_ = spec;
  return *this;
}

CalibrationSession& CalibrationSession::with_scenario(
    const std::string& preset_name) {
  return with_scenario(scenarios().create(preset_name));
}

CalibrationSession& CalibrationSession::with_scenario(ScenarioPreset preset) {
  require_unbuilt("with_scenario");
  preset_ = std::move(preset);
  return *this;
}

CalibrationSession& CalibrationSession::with_data(core::ObservedData data) {
  require_unbuilt("with_data");
  data_ = std::move(data);
  return *this;
}

CalibrationSession& CalibrationSession::with_abm_engine(
    const std::string& engine_name) {
  return with_abm_engine(abm::engine_from_name(engine_name));
}

CalibrationSession& CalibrationSession::with_abm_engine(abm::AbmEngine engine) {
  require_unbuilt("with_abm_engine");
  abm_engine_ = engine;
  return *this;
}

CalibrationSession& CalibrationSession::with_windows(
    std::vector<std::pair<std::int32_t, std::int32_t>> windows) {
  require_unbuilt("with_windows");
  config_.windows = std::move(windows);
  return *this;
}

CalibrationSession& CalibrationSession::with_budget(std::size_t n_params,
                                                    std::size_t replicates,
                                                    std::size_t resample_size) {
  require_unbuilt("with_budget");
  config_.n_params = n_params;
  config_.replicates = replicates;
  config_.resample_size = resample_size;
  return *this;
}

CalibrationSession& CalibrationSession::with_likelihood(const std::string& name,
                                                        double parameter) {
  require_unbuilt("with_likelihood");
  config_.likelihood_name = name;
  config_.likelihood_parameter = parameter;
  return *this;
}

CalibrationSession& CalibrationSession::with_death_likelihood(
    const std::string& name, double parameter) {
  require_unbuilt("with_death_likelihood");
  config_.death_likelihood_name = name;
  config_.death_likelihood_parameter = parameter;
  return *this;
}

CalibrationSession& CalibrationSession::with_bias(const std::string& name) {
  require_unbuilt("with_bias");
  config_.bias_name = name;
  return *this;
}

CalibrationSession& CalibrationSession::with_deaths(bool use) {
  require_unbuilt("with_deaths");
  config_.use_deaths = use;
  return *this;
}

CalibrationSession& CalibrationSession::with_seed(std::uint64_t seed) {
  require_unbuilt("with_seed");
  config_.seed = seed;
  return *this;
}

CalibrationSession& CalibrationSession::with_resampling(
    stats::ResamplingScheme scheme) {
  require_unbuilt("with_resampling");
  config_.scheme = scheme;
  return *this;
}

CalibrationSession& CalibrationSession::with_capture_policy(
    core::CapturePolicy policy, std::size_t budget_bytes) {
  require_unbuilt("with_capture_policy");
  config_.capture = policy;
  if (budget_bytes != 0) config_.inline_state_budget = budget_bytes;
  return *this;
}

CalibrationSession& CalibrationSession::with_inference(
    const std::string& policy_name) {
  return with_inference(inference_strategies().create(policy_name));
}

CalibrationSession& CalibrationSession::with_inference(InferencePolicy policy) {
  require_unbuilt("with_inference");
  config_.inference = policy.strategy;
  config_.ess_threshold = policy.ess_threshold;
  config_.max_temper_stages = policy.max_temper_stages;
  config_.rejuvenation_moves = policy.rejuvenation_moves;
  return *this;
}

CalibrationSession& CalibrationSession::with_inference(
    core::InferenceStrategy strategy) {
  require_unbuilt("with_inference");
  config_.inference = strategy;
  return *this;
}

CalibrationSession& CalibrationSession::with_ess_threshold(double fraction) {
  require_unbuilt("with_ess_threshold");
  config_.ess_threshold = fraction;
  return *this;
}

CalibrationSession& CalibrationSession::with_rejuvenation_moves(
    std::size_t rounds) {
  require_unbuilt("with_rejuvenation_moves");
  config_.rejuvenation_moves = rounds;
  return *this;
}

CalibrationSession& CalibrationSession::with_on_degenerate(
    const std::string& policy_name) {
  return with_on_degenerate(core::degeneracy_policy_from_name(policy_name));
}

CalibrationSession& CalibrationSession::with_on_degenerate(
    core::DegeneracyPolicy policy) {
  require_unbuilt("with_on_degenerate");
  config_.on_degenerate = policy;
  return *this;
}

CalibrationSession& CalibrationSession::with_common_random_numbers(bool crn) {
  require_unbuilt("with_common_random_numbers");
  config_.common_random_numbers = crn;
  return *this;
}

CalibrationSession& CalibrationSession::with_defensive_fraction(
    double fraction) {
  require_unbuilt("with_defensive_fraction");
  config_.defensive_fraction = fraction;
  return *this;
}

CalibrationSession& CalibrationSession::with_jitter(
    const std::string& policy_name) {
  require_unbuilt("with_jitter");
  const JitterPolicy policy = jitter_policies().create(policy_name);
  config_.theta_jitter = policy.theta;
  config_.rho_jitter = policy.rho;
  return *this;
}

CalibrationSession& CalibrationSession::with_jitter(core::JitterKernel theta,
                                                    core::JitterKernel rho) {
  require_unbuilt("with_jitter");
  config_.theta_jitter = theta;
  config_.rho_jitter = rho;
  return *this;
}

CalibrationSession& CalibrationSession::with_burnin_day(std::int32_t day) {
  require_unbuilt("with_burnin_day");
  config_.burnin_day = day;
  return *this;
}

CalibrationSession& CalibrationSession::with_simd_level(
    const std::string& level_name) {
  require_unbuilt("with_simd_level");
  // Takes effect immediately (the dispatcher is process-global); the
  // unbuilt guard keeps the fluent contract uniform -- all with_* calls
  // precede the first run.
  simd::set_level(level_name);
  return *this;
}

CalibrationSession& CalibrationSession::with_pool_backend(
    const std::string& backend_name) {
  require_unbuilt("with_pool_backend");
  // Same shape as with_simd_level: process-global engine selection, no
  // effect on results (backends are bit-identical by contract).
  parallel::set_backend(backend_name);
  return *this;
}

CalibrationSession& CalibrationSession::with_priors(
    std::shared_ptr<const core::Prior> theta,
    std::shared_ptr<const core::Prior> rho) {
  require_unbuilt("with_priors");
  config_.theta_prior = std::move(theta);
  config_.rho_prior = std::move(rho);
  return *this;
}

CalibrationSession& CalibrationSession::with_config(
    core::CalibrationConfig config) {
  require_unbuilt("with_config");
  config_ = std::move(config);
  return *this;
}

CalibrationSession& CalibrationSession::with_progress(
    core::ProgressReporter progress) {
  // Deliberately allowed after build(): a progress hook changes no
  // result, so late attachment is harmless (and supervised children
  // attach theirs after materialization).
  progress_ = std::move(progress);
  if (calibrator_) calibrator_->set_progress(progress_);
  return *this;
}

void CalibrationSession::build() {
  if (calibrator_) return;
  // Validate the staged config (windows, budget, component names) before
  // simulating any ground truth: a typo'd likelihood must not cost a full
  // agent-based truth run first. SequentialCalibrator validates again on
  // construction; the duplicate check is cheap.
  config_.validate();
  if (preset_ && !data_) {
    truth_ = preset_->make_truth();
    data_ = truth_->observed();
  }
  if (!data_) {
    throw std::logic_error(
        "CalibrationSession: no data -- call with_scenario() or with_data() "
        "before running");
  }
  SimulatorSpec spec = spec_override_ ? *spec_override_
                       : preset_      ? preset_->simulator_spec()
                                      : SimulatorSpec{};
  if (abm_engine_) spec.abm.engine = *abm_engine_;
  simulator_ = simulators().create(simulator_name_, spec);
  calibrator_ = std::make_unique<core::SequentialCalibrator>(*simulator_,
                                                             *data_, config_);
  calibrator_->set_progress(progress_);
}

stream::StreamingCalibrator CalibrationSession::stream(StreamOptions options) {
  config_.validate();
  if (!simulator_) {
    // Identical simulator resolution to build(): explicit spec override
    // first, then the scenario preset's, then defaults.
    SimulatorSpec spec = spec_override_ ? *spec_override_
                         : preset_      ? preset_->simulator_spec()
                                        : SimulatorSpec{};
    if (abm_engine_) spec.abm.engine = *abm_engine_;
    simulator_ = simulators().create(simulator_name_, spec);
  }
  streamed_ = true;
  stream::StreamConfig stream_config;
  stream_config.calibration = config_;
  stream_config.checkpoint_every = options.checkpoint_every;
  stream_config.checkpoint_path = std::move(options.checkpoint_path);
  stream_config.resample_mid_window = options.resample_mid_window;
  stream::StreamingCalibrator calibrator(*simulator_,
                                         std::move(stream_config));
  calibrator.set_progress(progress_);
  if (options.resume_latest) calibrator.resume_latest();
  return calibrator;
}

supervise::SupervisionReport CalibrationSession::supervised(
    StreamOptions options, supervise::SupervisorOptions sup) {
  config_.validate();
  if (options.checkpoint_path.empty() || options.checkpoint_every <= 0) {
    throw std::invalid_argument(
        "CalibrationSession::supervised: checkpoint_every > 0 and a "
        "checkpoint_path are required (retries resume from the rotated "
        "slots)");
  }
  // Materialize the feed in the parent: every attempt's forked child
  // inherits the same observations copy-on-write instead of re-simulating
  // ground truth per retry.
  if (preset_ && !data_) {
    truth_ = preset_->make_truth();
    data_ = truth_->observed();
  }
  if (!data_) {
    throw std::logic_error(
        "CalibrationSession::supervised: no data -- call with_scenario() or "
        "with_data() first");
  }
  if (sup.report_path.empty()) {
    sup.report_path = options.checkpoint_path.string() + ".supervision";
  }

  supervise::SupervisedTask task;
  task.name = "stream:" + options.checkpoint_path.filename().string();
  task.kind = "stream";
  task.checkpoint_base = options.checkpoint_path;
  task.body = [this, options](supervise::TaskContext& ctx) -> int {
    // Runs in the forked child: `this` is the child's COW copy of the
    // session, so mutating it (stream() marks it streamed) never leaks
    // back into the parent.
    StreamOptions o = options;
    // Attempt 0 with empty slots starts fresh (resume_latest returns
    // nullopt); any attempt after a checkpointed crash resumes.
    o.resume_latest = true;
    stream::StreamingCalibrator calibrator = stream(o);
    if (calibrator.last_recovery()) {
      ctx.report_recovery(*calibrator.last_recovery());
    }
    calibrator.set_progress(
        core::ProgressReporter::chain(progress_, ctx.progress()));
    const core::ObservedData& feed = *data_;
    while (!calibrator.finished()) {
      stream::DailyObservation obs;
      obs.day = calibrator.next_expected_day();
      obs.cases = feed.cases_at(obs.day);
      if (config_.use_deaths) obs.deaths = feed.deaths_at(obs.day);
      calibrator.ingest(obs);
    }
    // The final state must be durable even when the feed length is not a
    // multiple of the checkpoint cadence -- it is what the parent loads.
    calibrator.checkpoint_now();
    return 0;
  };

  supervise::Supervisor supervisor(std::move(sup));
  supervisor.add_task(std::move(task));
  return supervisor.run_all();
}

const core::WindowResult& CalibrationSession::run_next_window() {
  build();
  return calibrator_->run_next_window();
}

CalibrationSession& CalibrationSession::run_all() {
  build();
  calibrator_->run_all();
  return *this;
}

bool CalibrationSession::finished() {
  build();
  return calibrator_->finished();
}

core::SequentialCalibrator& CalibrationSession::calibrator() {
  build();
  return *calibrator_;
}

const core::Simulator& CalibrationSession::simulator() {
  build();
  return *simulator_;
}

const std::vector<core::WindowResult>& CalibrationSession::results() {
  build();
  return calibrator_->results();
}

const core::EnsembleBuffer& CalibrationSession::ensemble(std::size_t window) {
  const auto& all = results();
  if (window >= all.size()) {
    throw std::out_of_range("CalibrationSession: window " +
                            std::to_string(window) + " has not run (" +
                            std::to_string(all.size()) + " completed)");
  }
  return all[window].ensemble;
}

core::WindowPosteriorSummary CalibrationSession::posterior_summary(
    std::size_t window) {
  const auto& all = results();
  if (window >= all.size()) {
    throw std::out_of_range("CalibrationSession: window " +
                            std::to_string(window) + " has not run (" +
                            std::to_string(all.size()) + " completed)");
  }
  return core::summarize_window(all[window]);
}

std::vector<core::WindowPosteriorSummary>
CalibrationSession::posterior_summaries() {
  std::vector<core::WindowPosteriorSummary> out;
  for (const auto& w : results()) out.push_back(core::summarize_window(w));
  return out;
}

const epi::Checkpoint& CalibrationSession::initial_state() {
  build();
  return calibrator_->initial_state();
}

const core::GroundTruth& CalibrationSession::truth() {
  build();
  if (!truth_) {
    throw std::logic_error(
        "CalibrationSession: no ground truth -- session was built from user "
        "data, not a scenario preset");
  }
  return *truth_;
}

bool CalibrationSession::has_truth() {
  build();
  return truth_.has_value();
}

const core::ObservedData& CalibrationSession::data() {
  build();
  return *data_;
}

core::Forecast CalibrationSession::forecast(std::int32_t horizon_day,
                                            std::size_t n_draws,
                                            std::uint64_t seed) {
  build();
  if (calibrator_->results().empty()) {
    throw std::logic_error("CalibrationSession::forecast: no window has run");
  }
  return core::posterior_forecast(*simulator_, calibrator_->results().back(),
                                  horizon_day, n_draws, seed);
}

core::Forecast CalibrationSession::forecast_with_theta(double theta,
                                                       std::int32_t horizon_day,
                                                       std::size_t n_draws,
                                                       std::uint64_t seed) {
  build();
  if (calibrator_->results().empty()) {
    throw std::logic_error(
        "CalibrationSession::forecast_with_theta: no window has run");
  }
  // Shares forecast() streams, so (status quo, intervention) pairs with the
  // same seed are common-random-number comparisons.
  return core::posterior_forecast(*simulator_, calibrator_->results().back(),
                                  horizon_day, n_draws, seed, theta);
}

}  // namespace epismc::api
