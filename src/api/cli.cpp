#include "api/cli.hpp"

#include <ostream>
#include <stdexcept>
#include <string>

#include "api/scenarios.hpp"
#include "parallel/parallel.hpp"
#include "simd/simd.hpp"

namespace epismc::api {

void apply_threads_flag(const io::Args& args) {
  const std::string threads = args.get_string("threads", "");
  // Digits-only and short enough to fit an int: anything else (tab1's
  // comma list, absurd magnitudes) is deliberately ignored, not fatal.
  if (!threads.empty() && threads.size() <= 6 &&
      threads.find_first_not_of("0123456789") == std::string::npos) {
    const int n = std::stoi(threads);
    if (n > 0) parallel::set_threads(n);
  }
}

void apply_simd_flag(const io::Args& args) {
  const std::string level = args.get_string("simd", "");
  if (!level.empty()) simd::set_level(level);
}

void apply_pool_flag(const io::Args& args) {
  const std::string backend = args.get_string("pool", "");
  if (!backend.empty()) parallel::set_backend(backend);
}

void configure_session_from_args(CalibrationSession& session,
                                 const io::Args& args,
                                 const CliDefaults& defaults) {
  apply_threads_flag(args);
  apply_simd_flag(args);
  apply_pool_flag(args);

  session.with_simulator(args.get_string("simulator", defaults.simulator));
  session.with_scenario(args.get_string("scenario", defaults.scenario));
  if (args.has("abm-engine")) {
    session.with_abm_engine(args.get_string("abm-engine", "fast"));
  }
  session.with_likelihood(
      args.get_string("likelihood", defaults.likelihood),
      args.get_double("likelihood-param", defaults.likelihood_parameter));
  if (args.has("bias")) {
    session.with_bias(args.get_string("bias", "binomial"));
  }
  if (args.has("jitter")) {
    session.with_jitter(args.get_string("jitter", "paper-default"));
  }
  if (args.has("inference")) {
    session.with_inference(args.get_string("inference", "single-stage"));
  }
  if (args.has("ess-threshold")) {
    session.with_ess_threshold(args.get_double("ess-threshold", 0.5));
  }
  if (args.has("rejuvenation-moves")) {
    const std::int64_t moves = args.get_int("rejuvenation-moves", 1);
    if (moves < 0) {
      // Casting a negative straight to std::size_t would wrap to ~2^64 and
      // sail past validation as an effectively infinite move loop.
      throw std::invalid_argument(
          "--rejuvenation-moves must be >= 0, got " + std::to_string(moves));
    }
    session.with_rejuvenation_moves(static_cast<std::size_t>(moves));
  }
  if (args.has("on-degenerate")) {
    session.with_on_degenerate(args.get_string("on-degenerate", "quarantine"));
  }
  const auto n_params = static_cast<std::size_t>(args.get_int(
      "n-params", static_cast<std::int64_t>(defaults.n_params)));
  const std::size_t resample_default =
      defaults.resample != 0 ? defaults.resample : 2 * n_params;
  session.with_budget(
      n_params,
      static_cast<std::size_t>(args.get_int(
          "replicates", static_cast<std::int64_t>(defaults.replicates))),
      static_cast<std::size_t>(args.get_int(
          "resample", static_cast<std::int64_t>(resample_default))));
  if (args.has("seed")) {
    session.with_seed(static_cast<std::uint64_t>(args.get_int("seed", 0)));
  }
  if (args.has("use-deaths")) {
    session.with_deaths(args.get_flag("use-deaths"));
  }
}

void print_registries(std::ostream& os) {
  const auto list = [&os](const std::string& label,
                          const std::vector<std::string>& names) {
    os << label << ":";
    for (const auto& n : names) os << " " << n;
    os << "\n";
  };
  list("simulators", simulators().names());
  list("scenarios", scenarios().names());
  list("likelihoods", likelihoods().names());
  list("bias-models", bias_models().names());
  list("jitter-policies", jitter_policies().names());
  list("inference-strategies", inference_strategies().names());
}

bool handle_list_flag(const io::Args& args, std::ostream& os) {
  if (!args.get_flag("list")) return false;
  print_registries(os);
  return true;
}

SuperviseFlags query_supervise_flags(const io::Args& args) {
  SuperviseFlags flags;
  flags.enabled = args.get_flag("supervise");
  const std::int64_t retries =
      args.get_int("max-retries", flags.options.max_retries);
  if (retries < 0) {
    throw std::invalid_argument("--max-retries must be >= 0");
  }
  flags.options.max_retries = static_cast<std::uint32_t>(retries);
  flags.options.task_deadline_seconds =
      args.get_double("task-deadline", flags.options.task_deadline_seconds);
  flags.options.stall_timeout_seconds =
      args.get_double("stall-timeout", flags.options.stall_timeout_seconds);
  if (flags.options.task_deadline_seconds < 0.0 ||
      flags.options.stall_timeout_seconds < 0.0) {
    throw std::invalid_argument(
        "--task-deadline / --stall-timeout must be >= 0 (0 disables)");
  }
  flags.report_csv = args.get_string("report-csv", "");
  return flags;
}

}  // namespace epismc::api
