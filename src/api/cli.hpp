#pragma once

// Standard CLI wiring for api-driven binaries.
//
// Every example/bench selects components by registry name; this helper
// centralizes the flag vocabulary so binaries stay one-liner thin:
//
//   --simulator=NAME    simulator backend      (simulators() registry)
//   --scenario=NAME     ground-truth preset    (scenarios() registry)
//   --likelihood=NAME   window likelihood      (likelihoods() registry)
//   --likelihood-param=X  likelihood parameter (sigma / dispersion / phi)
//   --bias=NAME         reporting-bias model   (bias_models() registry)
//   --jitter=NAME       posterior-jitter preset (jitter_policies() registry)
//   --inference=NAME    window inference strategy: single-stage | tempered |
//                       tempered+rejuvenate (inference_strategies() registry)
//   --ess-threshold=X   temper trigger/target, a fraction of n_sims in (0,1)
//   --rejuvenation-moves=N  MH move rounds for tempered+rejuvenate
//   --on-degenerate=P   non-finite log-likelihood policy: quarantine
//                       (demote to -inf, keep going -- default) | throw
//   --abm-engine=NAME   agent-based day-step engine: fast | reference
//   --threads=N         thread budget: pool lanes + OpenMP team
//                       (parallel::set_threads)
//   --pool=BACKEND      parallel_for backend: serial | omp | pool
//                       (overrides the EPISMC_POOL environment variable;
//                       results are bit-identical across backends)
//   --simd=LEVEL        SIMD dispatch level: scalar | sse41 | avx2 |
//                       avx512 | auto (clamped to binary/host support;
//                       overrides the EPISMC_SIMD environment variable)
//   --n-params / --replicates / --resample     simulation budget
//   --use-deaths        add the death stream (paper eq. 4)
//   --seed=N            base randomness identity
//
// Supervised-execution flags (see src/supervise/):
//   --supervise         run the work under process supervision
//   --max-retries=N     retry budget per task (default 2)
//   --task-deadline=S   hard per-attempt wall clock in seconds (0 = off)
//   --stall-timeout=S   kill a task with no heartbeat for S seconds
//   --report-csv=PATH   dump the SupervisionReport as CSV
//
// Unknown registry names fail with the registry's listing; `--list`
// prints every registry's names and returns true (caller should exit 0).

#include <iosfwd>
#include <string>

#include "api/session.hpp"
#include "io/args.hpp"
#include "supervise/supervisor.hpp"

namespace epismc::api {

/// Query the standard flags (so Args::check_unused accepts them), apply
/// --threads, and stage them onto `session`. The core selections --
/// simulator, scenario, likelihood, budget -- always apply, falling back
/// to `defaults` when the flag is absent; the optional overrides (--bias,
/// --jitter, --seed, --use-deaths) apply only when passed, so values the
/// caller staged for those beforehand survive.
struct CliDefaults {
  std::string simulator = "seir-event";
  std::string scenario = "paper-baseline";
  std::string likelihood = "gaussian-sqrt";
  double likelihood_parameter = 1.0;
  std::size_t n_params = 1000;
  std::size_t replicates = 10;
  /// 0 means "2 * n_params" (the pre-facade examples' coupling), so
  /// scaling --n-params scales the posterior sample with it.
  std::size_t resample = 0;
};

void configure_session_from_args(CalibrationSession& session,
                                 const io::Args& args,
                                 const CliDefaults& defaults = {});

/// Apply --threads=N via parallel::set_threads. Values that are not a
/// plain positive integer are ignored (tab1_scaling reuses the flag as a
/// comma-separated sweep list and manages threads itself).
void apply_threads_flag(const io::Args& args);

/// Apply --simd=LEVEL via simd::set_level. Unknown level names are fatal
/// (std::invalid_argument listing the accepted names); absent flag leaves
/// the dispatcher at its EPISMC_SIMD/default state.
void apply_simd_flag(const io::Args& args);

/// Apply --pool=BACKEND via parallel::set_backend. Unknown names are
/// fatal (std::invalid_argument); absent flag leaves the backend at its
/// EPISMC_POOL/compile-default state.
void apply_pool_flag(const io::Args& args);

/// Print every registry's names (simulators, scenarios, likelihoods, bias
/// models, jitter policies) -- the `--list` flag.
void print_registries(std::ostream& os);

/// True when --list was passed (after printing); callers exit early.
[[nodiscard]] bool handle_list_flag(const io::Args& args, std::ostream& os);

/// The supervised-execution flag set, queried in one shot (so
/// check_unused accepts the flags even on unsupervised runs).
struct SuperviseFlags {
  bool enabled = false;
  supervise::SupervisorOptions options;
  /// --report-csv destination; empty when the flag is absent.
  std::filesystem::path report_csv;
};

/// Query --supervise / --max-retries / --task-deadline / --stall-timeout /
/// --report-csv. Negative durations are rejected (std::invalid_argument);
/// defaults come from SupervisorOptions.
[[nodiscard]] SuperviseFlags query_supervise_flags(const io::Args& args);

}  // namespace epismc::api
