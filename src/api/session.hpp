#pragma once

// CalibrationSession: the fluent single entry point for calibration runs.
//
// A session owns the whole wiring that call sites used to assemble by hand
// -- simulator backend, ground-truth scenario (or user data), calibration
// config, and the SequentialCalibrator -- behind registry names:
//
//   auto session = api::CalibrationSession()
//                      .with_simulator("seir-event")
//                      .with_scenario("paper-baseline")
//                      .with_windows({{20, 33}, {34, 47}})
//                      .with_likelihood("gaussian-sqrt", 1.0)
//                      .with_budget(1000, 10, 2000);
//   session.run_all();
//   for (const auto& s : session.posterior_summaries()) ...
//
// Builder calls stage configuration; the first call that needs results
// (run_*, calibrator(), simulator(), results(), ...) materializes the
// simulator and calibrator. After that point further with_* calls throw --
// a session is one run, not a mutable sweep (ScenarioSweep does sweeps).
//
// Wiring is value-identical to hand construction: a session with the same
// config and seed reproduces a hand-wired SequentialCalibrator bit for bit
// (api_session_test locks this in).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/components.hpp"
#include "api/scenarios.hpp"
#include "core/data.hpp"
#include "core/posterior.hpp"
#include "core/scenario.hpp"
#include "core/sequential_calibrator.hpp"
#include "core/simulator.hpp"
#include "stream/streaming_calibrator.hpp"
#include "supervise/supervisor.hpp"

namespace epismc::api {

/// Streaming-only knobs of CalibrationSession::stream() (the calibration
/// knobs come from the session's staged config; see stream::StreamConfig).
struct StreamOptions {
  std::int64_t checkpoint_every = 0;
  std::filesystem::path checkpoint_path;
  bool resample_mid_window = true;
  /// Crash recovery on start-up: before the calibrator is returned it
  /// restores the newest CRC-passing rotated slot of checkpoint_path
  /// (falling back to the older slot on corruption; see
  /// StreamingCalibrator::resume_latest). A fresh session -- no slot on
  /// disk yet -- starts clean; inspect last_recovery() for what happened.
  bool resume_latest = false;
};

class CalibrationSession {
 public:
  CalibrationSession() = default;
  CalibrationSession(const CalibrationSession&) = delete;
  CalibrationSession& operator=(const CalibrationSession&) = delete;
  CalibrationSession(CalibrationSession&&) = default;
  CalibrationSession& operator=(CalibrationSession&&) = default;

  // --- Component selection (registry names). -------------------------------
  CalibrationSession& with_simulator(std::string name);
  CalibrationSession& with_simulator(std::string name, SimulatorSpec spec);
  /// Generate ground truth from a named preset; the observed data and
  /// (unless overridden) the simulator spec come from the preset.
  CalibrationSession& with_scenario(const std::string& preset_name);
  CalibrationSession& with_scenario(ScenarioPreset preset);
  /// Calibrate against user-provided data instead of a synthetic scenario.
  CalibrationSession& with_data(core::ObservedData data);
  /// Agent-based day-step engine ("fast" | "reference"); applied on top of
  /// whatever SimulatorSpec the session ends up with (explicit spec or
  /// scenario-derived). Ignored by the compartmental backends.
  CalibrationSession& with_abm_engine(const std::string& engine_name);
  CalibrationSession& with_abm_engine(abm::AbmEngine engine);

  // --- Calibration knobs (mirror core::CalibrationConfig). -----------------
  CalibrationSession& with_windows(
      std::vector<std::pair<std::int32_t, std::int32_t>> windows);
  CalibrationSession& with_budget(std::size_t n_params, std::size_t replicates,
                                  std::size_t resample_size);
  CalibrationSession& with_likelihood(const std::string& name,
                                      double parameter);
  CalibrationSession& with_death_likelihood(const std::string& name,
                                            double parameter);
  CalibrationSession& with_bias(const std::string& name);
  CalibrationSession& with_deaths(bool use = true);
  CalibrationSession& with_seed(std::uint64_t seed);
  CalibrationSession& with_resampling(stats::ResamplingScheme scheme);
  /// End-state capture strategy: inline single-pass capture (default via
  /// kAuto), or the deferred two-pass replay fallback. `budget_bytes`
  /// bounds kAuto's inline peak memory (0 keeps the config default).
  CalibrationSession& with_capture_policy(core::CapturePolicy policy,
                                          std::size_t budget_bytes = 0);
  /// Window inference strategy by registry name ("single-stage" |
  /// "tempered" | "tempered+rejuvenate"): applies the policy's strategy
  /// and adaptive defaults. Call with_ess_threshold /
  /// with_rejuvenation_moves afterwards to override individual knobs.
  CalibrationSession& with_inference(const std::string& policy_name);
  CalibrationSession& with_inference(InferencePolicy policy);
  CalibrationSession& with_inference(core::InferenceStrategy strategy);
  /// Temper trigger/target as a fraction of n_sims, in (0, 1).
  CalibrationSession& with_ess_threshold(double fraction);
  CalibrationSession& with_rejuvenation_moves(std::size_t rounds);
  /// Non-finite log-likelihood policy by name ("quarantine" | "throw");
  /// see core::DegeneracyPolicy.
  CalibrationSession& with_on_degenerate(const std::string& policy_name);
  CalibrationSession& with_on_degenerate(core::DegeneracyPolicy policy);
  CalibrationSession& with_common_random_numbers(bool crn);
  CalibrationSession& with_defensive_fraction(double fraction);
  CalibrationSession& with_jitter(const std::string& policy_name);
  CalibrationSession& with_jitter(core::JitterKernel theta,
                                  core::JitterKernel rho);
  CalibrationSession& with_burnin_day(std::int32_t day);
  /// SIMD dispatch level for the vectorized kernels ("scalar" | "sse41" |
  /// "avx2" | "avx512" | "auto"). Applied process-wide immediately (the
  /// dispatcher is global state, like OpenMP's thread count); levels above
  /// what the binary/host supports clamp down rather than fail. The
  /// default is the scalar reference path -- see docs/API.md "SIMD kernels
  /// & ISA dispatch" for the determinism contract.
  CalibrationSession& with_simd_level(const std::string& level_name);
  /// parallel_for backend ("serial" | "omp" | "pool"). Applied
  /// process-wide immediately, same global-state caveat as
  /// with_simd_level; "omp" in a build without OpenMP clamps to serial.
  /// Results are bit-identical across backends -- this selects the engine,
  /// not the answer. See docs/API.md "Task pool & thread scaling".
  CalibrationSession& with_pool_backend(const std::string& backend_name);
  CalibrationSession& with_priors(std::shared_ptr<const core::Prior> theta,
                                  std::shared_ptr<const core::Prior> rho);
  /// Wholesale config replacement (escape hatch for ported call sites).
  CalibrationSession& with_config(core::CalibrationConfig config);
  /// Liveness/progress hook, beaten per window (batch) or per day
  /// (streaming). Composes with the supervision heartbeat when the
  /// session runs under supervised().
  CalibrationSession& with_progress(core::ProgressReporter progress);

  // --- Running. ------------------------------------------------------------
  /// Online streaming calibration: materialize the simulator from the
  /// staged config (exactly like build(), minus data/calibrator -- the
  /// observations arrive through ingest()) and hand back a
  /// StreamingCalibrator over it. The session must outlive the returned
  /// calibrator (it owns the simulator), and like the batch path a
  /// session is one run: further with_* calls throw after stream().
  [[nodiscard]] stream::StreamingCalibrator stream(StreamOptions options = {});
  /// Hands-off streaming run under process supervision: the whole feed
  /// (the session's scenario/user data) is assimilated day by day inside
  /// a forked worker that heartbeats per day; a crash, hang or stall is
  /// killed, backed off, and retried from the newest CRC-passing
  /// checkpoint slot (resume_latest) up to the retry budget. Requires
  /// checkpoint_every > 0 and a checkpoint_path. The parent session
  /// stays un-streamed: after a successful report, load the final state
  /// with stream({.checkpoint_path = ..., .resume_latest = true}).
  supervise::SupervisionReport supervised(
      StreamOptions options, supervise::SupervisorOptions sup = {});
  /// Calibrate the next window (materializes the pipeline on first call).
  const core::WindowResult& run_next_window();
  /// Calibrate all remaining windows.
  CalibrationSession& run_all();
  [[nodiscard]] bool finished();

  // --- Results and introspection. ------------------------------------------
  [[nodiscard]] core::SequentialCalibrator& calibrator();
  [[nodiscard]] const core::Simulator& simulator();
  [[nodiscard]] const core::CalibrationConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<core::WindowResult>& results();
  /// Structure-of-arrays ensemble of a completed window: day-major series
  /// rows plus flat identity/parameter/weight columns (the execution
  /// engine's native layout; see docs/API.md "Execution engine").
  [[nodiscard]] const core::EnsembleBuffer& ensemble(std::size_t window);
  [[nodiscard]] core::WindowPosteriorSummary posterior_summary(
      std::size_t window);
  [[nodiscard]] std::vector<core::WindowPosteriorSummary>
  posterior_summaries();
  /// Shared burn-in checkpoint (valid once the first window has run).
  [[nodiscard]] const epi::Checkpoint& initial_state();

  /// Ground truth backing the session; throws std::logic_error when the
  /// session was fed user data instead of a scenario.
  [[nodiscard]] const core::GroundTruth& truth();
  [[nodiscard]] bool has_truth();
  [[nodiscard]] const core::ObservedData& data();

  // --- Posterior-predictive forecasting. -----------------------------------
  /// Branch the last completed window's posterior ensemble through
  /// `horizon_day`, each draw keeping its own theta.
  [[nodiscard]] core::Forecast forecast(std::int32_t horizon_day,
                                        std::size_t n_draws,
                                        std::uint64_t seed);
  /// Same, but every branch runs under `theta` -- intervention what-ifs.
  [[nodiscard]] core::Forecast forecast_with_theta(double theta,
                                                   std::int32_t horizon_day,
                                                   std::size_t n_draws,
                                                   std::uint64_t seed);

 private:
  void require_unbuilt(const char* call) const;
  void build();  // idempotent

  std::string simulator_name_ = "seir-event";
  std::optional<SimulatorSpec> spec_override_;
  std::optional<abm::AbmEngine> abm_engine_;
  std::optional<ScenarioPreset> preset_;
  std::optional<core::GroundTruth> truth_;
  std::optional<core::ObservedData> data_;
  core::CalibrationConfig config_;
  std::unique_ptr<core::Simulator> simulator_;
  std::unique_ptr<core::SequentialCalibrator> calibrator_;
  core::ProgressReporter progress_;
  bool streamed_ = false;
};

}  // namespace epismc::api
