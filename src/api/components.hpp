#pragma once

// The global component registries of the epismc::api facade.
//
// Five registries cover the pluggable pieces of a calibration run:
//
//   simulators()      "seir-event" | "chain-binomial" | "abm" ("agent-based")
//   likelihoods()     "gaussian-sqrt" | "nb-sqrt" | "poisson" | "gaussian-count"
//   bias_models()     "binomial" | "identity" | "deterministic-thinning"
//   jitter_policies() "paper-default" | "tight" | "wide"
//   inference_strategies()
//                     "single-stage" | "tempered" | "tempered+rejuvenate"
//
// The likelihood and bias registries are the single source of truth:
// core::make_likelihood / core::make_bias_model delegate here, so a
// component registered once is reachable from CalibrationConfig names,
// CLI flags, and direct api calls alike. Simulators get the same factory
// treatment (they previously had none): every backend is constructed from
// a common SimulatorSpec, so swapping "seir-event" for "abm" is a string
// change, which is the paper's "applies equally well to other stochastic
// simulation models" claim turned into an interface.

#include <cstdint>
#include <memory>

#include "abm/agent_model.hpp"
#include "api/registry.hpp"
#include "core/bias_model.hpp"
#include "core/likelihood.hpp"
#include "core/particle_system.hpp"
#include "core/prior.hpp"
#include "core/simulator.hpp"
#include "epi/parameters.hpp"

namespace epismc::api {

/// Agent-based-model knobs (two-level mixing topology plus the day-step
/// engine); shared between SimulatorSpec and ScenarioPreset so the
/// calibration setup and the truth-generation setup cannot silently
/// diverge. Defaults come from abm::AbmConfig itself, so retuning the abm
/// layer propagates here.
struct AbmTopology {
  double mean_household_size = abm::AbmConfig{}.mean_household_size;
  double household_share = abm::AbmConfig{}.household_share;
  std::uint64_t network_seed = abm::AbmConfig{}.network_seed;
  /// Day-step engine: "fast" (event-driven, default) or "reference" (the
  /// original per-agent scans, kept selectable for A/B equivalence runs);
  /// see abm::AbmEngine.
  abm::AbmEngine engine = abm::AbmConfig{}.engine;
};

/// Backend-agnostic simulator construction parameters. Compartmental
/// backends read params/burnin_theta/initial_exposed; the agent-based
/// backend additionally reads the topology knobs.
struct SimulatorSpec {
  epi::DiseaseParameters params;
  double burnin_theta = 0.3;           // transmission during shared burn-in
  std::int64_t initial_exposed = 400;  // seeding at day 0
  AbmTopology abm;  // ignored by the compartmental backends
};

/// The one mapping from (disease parameters, topology) to the abm layer's
/// config -- used by both the "abm" simulator factory and the agent-based
/// truth generator, so calibration and truth always share a network.
[[nodiscard]] inline abm::AbmConfig make_abm_config(
    const epi::DiseaseParameters& params, const AbmTopology& topology) {
  abm::AbmConfig cfg;
  cfg.disease = params;
  cfg.mean_household_size = topology.mean_household_size;
  cfg.household_share = topology.household_share;
  cfg.network_seed = topology.network_seed;
  cfg.engine = topology.engine;
  return cfg;
}

/// Posterior-jitter kernels for both calibrated parameters -- the window
/// m > 1 proposal (paper §IV-C), selectable by name.
struct JitterPolicy {
  core::JitterKernel theta;
  core::JitterKernel rho;
};

/// A named inference configuration: the window strategy plus its adaptive
/// knobs (core::CalibrationConfig defaults). CalibrationSession applies
/// the whole policy; with_ess_threshold / with_rejuvenation_moves then
/// override individual knobs.
struct InferencePolicy {
  core::InferenceStrategy strategy = core::InferenceStrategy::kSingleStage;
  double ess_threshold = 0.5;
  std::size_t max_temper_stages = 12;
  std::size_t rejuvenation_moves = 1;
};

using SimulatorRegistry =
    Registry<std::unique_ptr<core::Simulator>, const SimulatorSpec&>;
using LikelihoodRegistry = Registry<std::unique_ptr<core::Likelihood>, double>;
using BiasModelRegistry = Registry<std::unique_ptr<core::BiasModel>>;
using JitterRegistry = Registry<JitterPolicy>;
using InferenceRegistry = Registry<InferencePolicy>;

/// Global registries; built-ins are registered on first access. Safe for
/// concurrent create()/contains() once registration has finished.
[[nodiscard]] SimulatorRegistry& simulators();
[[nodiscard]] LikelihoodRegistry& likelihoods();
[[nodiscard]] BiasModelRegistry& bias_models();
[[nodiscard]] JitterRegistry& jitter_policies();
[[nodiscard]] InferenceRegistry& inference_strategies();

}  // namespace epismc::api
