#include "api/sweep.hpp"

#include <exception>

#include "parallel/parallel.hpp"
#include "random/seeding.hpp"

namespace epismc::api {

ScenarioSweep& ScenarioSweep::add_scenario(const std::string& preset_name) {
  if (!scenarios().contains(preset_name)) {
    throw UnknownComponentError(scenarios().kind(), preset_name,
                                scenarios().names());
  }
  scenario_names_.push_back(preset_name);
  return *this;
}

ScenarioSweep& ScenarioSweep::add_scenarios(
    const std::vector<std::string>& preset_names) {
  for (const auto& name : preset_names) add_scenario(name);
  return *this;
}

ScenarioSweep& ScenarioSweep::add_simulator(const std::string& name) {
  if (!simulators().contains(name)) {
    throw UnknownComponentError(simulators().kind(), name,
                                simulators().names());
  }
  simulator_names_.push_back(name);
  return *this;
}

ScenarioSweep& ScenarioSweep::add_simulators(
    const std::vector<std::string>& names) {
  for (const auto& name : names) add_simulator(name);
  return *this;
}

ScenarioSweep& ScenarioSweep::with_windows(
    std::vector<std::pair<std::int32_t, std::int32_t>> windows) {
  windows_ = std::move(windows);
  return *this;
}

ScenarioSweep& ScenarioSweep::with_budget(std::size_t n_params,
                                          std::size_t replicates,
                                          std::size_t resample_size) {
  n_params_ = n_params;
  replicates_ = replicates;
  resample_size_ = resample_size;
  return *this;
}

ScenarioSweep& ScenarioSweep::with_likelihood(const std::string& name,
                                              double parameter) {
  likelihood_name_ = name;
  likelihood_parameter_ = parameter;
  return *this;
}

ScenarioSweep& ScenarioSweep::with_deaths(bool use) {
  use_deaths_ = use;
  return *this;
}

ScenarioSweep& ScenarioSweep::with_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

ScenarioSweep& ScenarioSweep::with_session_setup(
    std::function<void(CalibrationSession&)> hook) {
  session_setup_ = std::move(hook);
  return *this;
}

std::vector<SweepRun> ScenarioSweep::run_all() const {
  if (scenario_names_.empty() || simulator_names_.empty()) {
    throw std::logic_error(
        "ScenarioSweep: need at least one scenario and one simulator");
  }

  // Ground truths once per scenario, shared read-only by every backend cell.
  struct ScenarioTruth {
    ScenarioPreset preset;
    core::GroundTruth truth;
  };
  std::vector<ScenarioTruth> truths;
  truths.reserve(scenario_names_.size());
  for (const auto& name : scenario_names_) {
    ScenarioPreset preset = scenarios().create(name);
    core::GroundTruth truth = preset.make_truth();
    truths.push_back({std::move(preset), std::move(truth)});
  }

  const std::size_t n_sims = simulator_names_.size();
  std::vector<SweepRun> runs(cell_count());

  // One cell per (scenario, simulator), scenario-major. Seeds derive from
  // (sweep seed, scenario *name*), never from list position or thread id,
  // so reordering scenarios or simulators reproduces every cell exactly
  // and the same backend sees the same randomness in every scenario.
  //
  // Parallelism placement: with fewer cells than threads, an outer
  // parallel region would leave cores idle *and* (OpenMP nesting being off
  // by default) serialize each calibrator's inner particle loop -- so run
  // the cells sequentially and let the particle sweep own the machine.
  // With many cells, parallelize across them instead. Either placement
  // yields identical results: both loops are index-deterministic.
  const bool parallel_over_cells =
      runs.size() >= static_cast<std::size_t>(parallel::max_threads());
  const auto scenario_seed = [this](std::size_t si) {
    std::uint64_t h = seed_;
    for (const char c : scenario_names_[si]) {
      h = rng::hash_combine(h, static_cast<std::uint64_t>(c));
    }
    return h;
  };
  const auto run_cell = [&](std::size_t cell) {
        const std::size_t si = cell / n_sims;   // scenario index
        const std::size_t bi = cell % n_sims;   // backend index
        const ScenarioTruth& st = truths[si];
        SweepRun& out = runs[cell];
        out.scenario = scenario_names_[si];
        out.simulator = simulator_names_[bi];

        parallel::Timer timer;
        try {
          CalibrationSession session;
          session.with_simulator(simulator_names_[bi], st.preset.simulator_spec())
              .with_data(st.truth.observed())
              .with_windows(windows_)
              .with_budget(n_params_, replicates_, resample_size_)
              .with_likelihood(likelihood_name_, likelihood_parameter_)
              .with_deaths(use_deaths_)
              .with_seed(scenario_seed(si));
          if (session_setup_) session_setup_(session);
          session.run_all();

          for (const auto& w : session.results()) {
            out.windows.push_back(core::summarize_window(w));
            out.diagnostics.push_back(w.diag);
            out.truth_theta.push_back(st.truth.theta_at(w.from_day));
            out.truth_rho.push_back(st.truth.rho_at(w.from_day));
          }
        } catch (const std::exception& e) {
          out.error = e.what();
        }
        out.wall_seconds = timer.seconds();
  };

  if (parallel_over_cells) {
    parallel::parallel_for(runs.size(), run_cell, /*chunk=*/1);
  } else {
    for (std::size_t cell = 0; cell < runs.size(); ++cell) run_cell(cell);
  }

  return runs;
}

}  // namespace epismc::api
