#include "api/sweep.hpp"

#include <exception>
#include <filesystem>
#include <system_error>

#include <unistd.h>

#include "io/binary_archive.hpp"
#include "parallel/parallel.hpp"
#include "random/seeding.hpp"

namespace epismc::api {

namespace {

// Durable per-cell result interchange for run_supervised: a supervised
// cell computes in a forked child, so its SweepRun crosses back to the
// parent through a sealed archive file (same footer/CRC protocol as the
// checkpoints -- a child killed mid-write must not hand the parent a
// torn result).
constexpr std::uint32_t kCellArchiveVersion = 1;
constexpr const char* kCellArchiveTag = "epismc-sweep-cell";

void write_summary(io::BinaryWriter& out, const core::ParameterSummary& s) {
  out.write(s.mean);
  out.write(s.sd);
  out.write(s.median);
  out.write(s.ci50.lo);
  out.write(s.ci50.hi);
  out.write(s.ci90.lo);
  out.write(s.ci90.hi);
}

core::ParameterSummary read_summary(io::BinaryReader& in) {
  core::ParameterSummary s;
  s.mean = in.read<double>();
  s.sd = in.read<double>();
  s.median = in.read<double>();
  s.ci50.lo = in.read<double>();
  s.ci50.hi = in.read<double>();
  s.ci90.lo = in.read<double>();
  s.ci90.hi = in.read<double>();
  return s;
}

void write_sweep_run(const SweepRun& run, const std::filesystem::path& path) {
  io::BinaryWriter out(kCellArchiveVersion);
  out.write_string(kCellArchiveTag);
  out.write_string(run.scenario);
  out.write_string(run.simulator);
  out.write(static_cast<std::uint64_t>(run.windows.size()));
  for (const core::WindowPosteriorSummary& w : run.windows) {
    out.write(w.from_day);
    out.write(w.to_day);
    write_summary(out, w.theta);
    write_summary(out, w.rho);
  }
  out.write(static_cast<std::uint64_t>(run.diagnostics.size()));
  for (const core::WindowDiagnostics& d : run.diagnostics) {
    out.write(d.ess);
    out.write(d.perplexity);
    out.write(d.max_weight);
    out.write(d.log_marginal);
    out.write(static_cast<std::uint64_t>(d.unique_resampled));
    out.write(static_cast<std::uint64_t>(d.n_sims));
    out.write(d.propagate_seconds);
    out.write(d.checkpoint_seconds);
    out.write(static_cast<std::uint8_t>(d.inline_capture ? 1 : 0));
  }
  out.write_vector(run.truth_theta);
  out.write_vector(run.truth_rho);
  out.write(run.wall_seconds);
  out.write_string(run.error);
  out.save(path);
}

SweepRun read_sweep_run(const std::filesystem::path& path) {
  io::BinaryReader in = io::BinaryReader::load(path);
  if (in.version() != kCellArchiveVersion) {
    throw io::ArchiveError(io::ArchiveErrorKind::kVersion,
                           "sweep cell result: version " +
                               std::to_string(in.version()) +
                               ", this build reads " +
                               std::to_string(kCellArchiveVersion));
  }
  const std::string tag = in.read_string();
  if (tag != kCellArchiveTag) {
    throw io::ArchiveError(io::ArchiveErrorKind::kForeignTag,
                           "sweep cell result: archive tagged '" + tag + "'");
  }
  SweepRun run;
  run.scenario = in.read_string();
  run.simulator = in.read_string();
  const auto n_windows = in.read<std::uint64_t>();
  run.windows.reserve(n_windows);
  for (std::uint64_t i = 0; i < n_windows; ++i) {
    core::WindowPosteriorSummary w;
    w.from_day = in.read<std::int32_t>();
    w.to_day = in.read<std::int32_t>();
    w.theta = read_summary(in);
    w.rho = read_summary(in);
    run.windows.push_back(w);
  }
  const auto n_diag = in.read<std::uint64_t>();
  run.diagnostics.reserve(n_diag);
  for (std::uint64_t i = 0; i < n_diag; ++i) {
    core::WindowDiagnostics d;
    d.ess = in.read<double>();
    d.perplexity = in.read<double>();
    d.max_weight = in.read<double>();
    d.log_marginal = in.read<double>();
    d.unique_resampled = static_cast<std::size_t>(in.read<std::uint64_t>());
    d.n_sims = static_cast<std::size_t>(in.read<std::uint64_t>());
    d.propagate_seconds = in.read<double>();
    d.checkpoint_seconds = in.read<double>();
    d.inline_capture = in.read<std::uint8_t>() != 0;
    run.diagnostics.push_back(d);
  }
  run.truth_theta = in.read_vector<double>();
  run.truth_rho = in.read_vector<double>();
  run.wall_seconds = in.read<double>();
  run.error = in.read_string();
  return run;
}

}  // namespace

ScenarioSweep& ScenarioSweep::add_scenario(const std::string& preset_name) {
  if (!scenarios().contains(preset_name)) {
    throw UnknownComponentError(scenarios().kind(), preset_name,
                                scenarios().names());
  }
  scenario_names_.push_back(preset_name);
  return *this;
}

ScenarioSweep& ScenarioSweep::add_scenarios(
    const std::vector<std::string>& preset_names) {
  for (const auto& name : preset_names) add_scenario(name);
  return *this;
}

ScenarioSweep& ScenarioSweep::add_simulator(const std::string& name) {
  if (!simulators().contains(name)) {
    throw UnknownComponentError(simulators().kind(), name,
                                simulators().names());
  }
  simulator_names_.push_back(name);
  return *this;
}

ScenarioSweep& ScenarioSweep::add_simulators(
    const std::vector<std::string>& names) {
  for (const auto& name : names) add_simulator(name);
  return *this;
}

ScenarioSweep& ScenarioSweep::with_windows(
    std::vector<std::pair<std::int32_t, std::int32_t>> windows) {
  windows_ = std::move(windows);
  return *this;
}

ScenarioSweep& ScenarioSweep::with_budget(std::size_t n_params,
                                          std::size_t replicates,
                                          std::size_t resample_size) {
  n_params_ = n_params;
  replicates_ = replicates;
  resample_size_ = resample_size;
  return *this;
}

ScenarioSweep& ScenarioSweep::with_likelihood(const std::string& name,
                                              double parameter) {
  likelihood_name_ = name;
  likelihood_parameter_ = parameter;
  return *this;
}

ScenarioSweep& ScenarioSweep::with_deaths(bool use) {
  use_deaths_ = use;
  return *this;
}

ScenarioSweep& ScenarioSweep::with_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

ScenarioSweep& ScenarioSweep::with_session_setup(
    std::function<void(CalibrationSession&)> hook) {
  session_setup_ = std::move(hook);
  return *this;
}

ScenarioSweep& ScenarioSweep::with_progress(core::ProgressReporter progress) {
  progress_ = std::move(progress);
  return *this;
}

std::vector<SweepRun> ScenarioSweep::run_all() const {
  if (scenario_names_.empty() || simulator_names_.empty()) {
    throw std::logic_error(
        "ScenarioSweep: need at least one scenario and one simulator");
  }

  // Ground truths once per scenario, shared read-only by every backend cell.
  struct ScenarioTruth {
    ScenarioPreset preset;
    core::GroundTruth truth;
  };
  std::vector<ScenarioTruth> truths;
  truths.reserve(scenario_names_.size());
  for (const auto& name : scenario_names_) {
    ScenarioPreset preset = scenarios().create(name);
    core::GroundTruth truth = preset.make_truth();
    truths.push_back({std::move(preset), std::move(truth)});
  }

  const std::size_t n_sims = simulator_names_.size();
  std::vector<SweepRun> runs(cell_count());

  // One cell per (scenario, simulator), scenario-major. Seeds derive from
  // (sweep seed, scenario *name*), never from list position or thread id,
  // so reordering scenarios or simulators reproduces every cell exactly
  // and the same backend sees the same randomness in every scenario.
  //
  // Parallelism placement. Under the work-stealing pool both levels go
  // through hierarchical submit: the outer cell loop runs on the pool and
  // each cell's inner particle loops nest onto the same lanes, so cells
  // and particles share one set of workers without oversubscription
  // (tests/api_sweep_test.cpp asserts peak_active never exceeds the
  // configured lane count). Under OpenMP nesting is off, so keep the old
  // placement heuristic: with fewer cells than threads an outer region
  // would leave cores idle *and* serialize each calibrator's inner
  // particle loop -- run cells sequentially and let the particle sweep
  // own the machine; with many cells, parallelize across them. Either
  // placement yields identical results: both loops are
  // index-deterministic.
  const bool parallel_over_cells =
      parallel::backend() == parallel::PoolBackend::kPool
          ? runs.size() > 1
          : runs.size() >= static_cast<std::size_t>(parallel::max_threads());
  const auto scenario_seed = [this](std::size_t si) {
    std::uint64_t h = seed_;
    for (const char c : scenario_names_[si]) {
      h = rng::hash_combine(h, static_cast<std::uint64_t>(c));
    }
    return h;
  };
  const auto run_cell = [&](std::size_t cell) {
        const std::size_t si = cell / n_sims;   // scenario index
        const std::size_t bi = cell % n_sims;   // backend index
        const ScenarioTruth& st = truths[si];
        SweepRun& out = runs[cell];
        out.scenario = scenario_names_[si];
        out.simulator = simulator_names_[bi];

        parallel::Timer timer;
        try {
          CalibrationSession session;
          session.with_simulator(simulator_names_[bi], st.preset.simulator_spec())
              .with_data(st.truth.observed())
              .with_windows(windows_)
              .with_budget(n_params_, replicates_, resample_size_)
              .with_likelihood(likelihood_name_, likelihood_parameter_)
              .with_deaths(use_deaths_)
              .with_seed(scenario_seed(si));
          if (session_setup_) session_setup_(session);
          session.with_progress(progress_);
          session.run_all();

          for (const auto& w : session.results()) {
            out.windows.push_back(core::summarize_window(w));
            out.diagnostics.push_back(w.diag);
            out.truth_theta.push_back(st.truth.theta_at(w.from_day));
            out.truth_rho.push_back(st.truth.rho_at(w.from_day));
          }
        } catch (const std::exception& e) {
          out.error = e.what();
        }
        out.wall_seconds = timer.seconds();
  };

  if (parallel_over_cells) {
    parallel::parallel_for(runs.size(), run_cell, /*chunk=*/1);
  } else {
    for (std::size_t cell = 0; cell < runs.size(); ++cell) run_cell(cell);
  }

  return runs;
}

ScenarioSweep::SupervisedSweep ScenarioSweep::run_supervised(
    supervise::SupervisorOptions sup) const {
  if (scenario_names_.empty() || simulator_names_.empty()) {
    throw std::logic_error(
        "ScenarioSweep: need at least one scenario and one simulator");
  }

  // Ground truths once, in the parent, serially: every child inherits
  // them copy-on-write. (The parent no longer has to stay out of parallel
  // regions: the supervisor tears pool workers down before each fork and
  // both sides respawn lazily -- see parallel::prepare_fork.)
  struct ScenarioTruth {
    ScenarioPreset preset;
    core::GroundTruth truth;
  };
  std::vector<ScenarioTruth> truths;
  truths.reserve(scenario_names_.size());
  for (const auto& name : scenario_names_) {
    ScenarioPreset preset = scenarios().create(name);
    core::GroundTruth truth = preset.make_truth();
    truths.push_back({std::move(preset), std::move(truth)});
  }

  // Cell results cross the process boundary through sealed archives in a
  // directory that outlives the supervisor's own scratch space.
  const std::filesystem::path cells_dir =
      sup.report_path.empty()
          ? std::filesystem::temp_directory_path() /
                ("epismc-sweep." + std::to_string(::getpid()))
          : std::filesystem::path(sup.report_path.string() + ".cells");
  std::error_code dir_ec;
  std::filesystem::create_directories(cells_dir, dir_ec);

  const std::size_t n_sims = simulator_names_.size();
  const auto scenario_seed = [this](std::size_t si) {
    std::uint64_t h = seed_;
    for (const char c : scenario_names_[si]) {
      h = rng::hash_combine(h, static_cast<std::uint64_t>(c));
    }
    return h;
  };

  supervise::Supervisor supervisor(std::move(sup));
  for (std::size_t cell = 0; cell < cell_count(); ++cell) {
    const std::size_t si = cell / n_sims;
    const std::size_t bi = cell % n_sims;
    const std::filesystem::path result_path =
        cells_dir / ("cell" + std::to_string(cell) + ".result");

    supervise::SupervisedTask task;
    task.name = "cell:" + scenario_names_[si] + "/" + simulator_names_[bi];
    task.kind = "sweep-cell";
    task.body = [this, &truths, si, bi, cell, scenario_seed,
                 result_path](supervise::TaskContext& ctx) -> int {
      const ScenarioTruth& st = truths[si];
      SweepRun out;
      out.scenario = scenario_names_[si];
      out.simulator = simulator_names_[bi];

      parallel::Timer timer;
      CalibrationSession session;
      session
          .with_simulator(simulator_names_[bi], st.preset.simulator_spec())
          .with_data(st.truth.observed())
          .with_windows(windows_)
          .with_budget(n_params_, replicates_, resample_size_)
          .with_likelihood(likelihood_name_, likelihood_parameter_)
          .with_deaths(use_deaths_)
          .with_seed(scenario_seed(si));
      if (session_setup_) session_setup_(session);
      session.with_progress(
          core::ProgressReporter::chain(progress_, ctx.progress()));
      session.run_all();

      for (const auto& w : session.results()) {
        out.windows.push_back(core::summarize_window(w));
        out.diagnostics.push_back(w.diag);
        out.truth_theta.push_back(st.truth.theta_at(w.from_day));
        out.truth_rho.push_back(st.truth.rho_at(w.from_day));
      }
      out.wall_seconds = timer.seconds();
      write_sweep_run(out, result_path);
      (void)cell;
      return 0;
    };
    supervisor.add_task(std::move(task));
  }

  SupervisedSweep result;
  result.report = supervisor.run_all();

  result.runs.resize(cell_count());
  for (std::size_t cell = 0; cell < cell_count(); ++cell) {
    const std::size_t si = cell / n_sims;
    const std::size_t bi = cell % n_sims;
    SweepRun& out = result.runs[cell];
    const supervise::TaskReport& task = result.report.tasks[cell];
    if (task.ok()) {
      try {
        out = read_sweep_run(cells_dir /
                             ("cell" + std::to_string(cell) + ".result"));
        continue;
      } catch (const io::ArchiveError& e) {
        out.error = std::string("supervision: result archive unreadable (") +
                    e.what() + ")";
      }
    } else {
      out.error = "supervision: " + std::string(to_string(task.outcome)) +
                  " after " + std::to_string(task.attempts.size()) +
                  " attempt(s)";
    }
    out.scenario = scenario_names_[si];
    out.simulator = simulator_names_[bi];
    out.wall_seconds = task.wall_seconds;
  }

  std::error_code cleanup_ec;
  std::filesystem::remove_all(cells_dir, cleanup_ec);
  return result;
}

}  // namespace epismc::api
