#pragma once

// Generic string-keyed component registry -- the backbone of the epismc::api
// facade.
//
// Every pluggable piece of the calibration pipeline (simulator backend,
// window likelihood, reporting-bias model, jitter policy, scenario preset)
// is published under a stable string name so that examples, benches, CLI
// flags and config files all select components the same way, and adding a
// backend means registering one factory instead of editing an if/else
// chain at every call site.
//
// A Registry<Product, MakeArgs...> maps name -> factory(MakeArgs...) ->
// Product. Product is typically std::unique_ptr<Interface> for polymorphic
// components and a plain value type for presets. Built-ins are registered
// lazily inside the accessor functions (api/components.cpp,
// api/scenarios.cpp), which sidesteps the static-initialization-order and
// dead-code-stripping hazards of self-registering translation units in
// static libraries; user code may add further factories at startup through
// the same accessors.
//
// Thread-safety: registration must happen before concurrent use (startup);
// lookups and create() are const and safe to call concurrently -- the
// ScenarioSweep runner does exactly that from its OpenMP cell loop.

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace epismc::api {

/// Thrown by Registry::create for a name nobody registered. The message
/// lists the known names so a CLI typo is self-diagnosing.
class UnknownComponentError : public std::invalid_argument {
 public:
  UnknownComponentError(const std::string& kind, const std::string& name,
                        const std::vector<std::string>& known)
      : std::invalid_argument(format(kind, name, known)) {}

 private:
  static std::string format(const std::string& kind, const std::string& name,
                            const std::vector<std::string>& known) {
    std::string msg = kind + ": unknown name '" + name + "' (registered: ";
    for (std::size_t i = 0; i < known.size(); ++i) {
      msg += (i ? ", " : "") + known[i];
    }
    return msg + ")";
  }
};

template <typename Product, typename... MakeArgs>
class Registry {
 public:
  using Factory = std::function<Product(MakeArgs...)>;

  /// `kind` is a human-readable label used in error messages
  /// (e.g. "simulator registry").
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Publish `factory` under `name`. Throws on duplicate names: silently
  /// replacing a component is how two libraries end up disagreeing about
  /// what "gaussian-sqrt" means.
  Registry& add(const std::string& name, Factory factory) {
    if (!factory) {
      throw std::invalid_argument(kind_ + ": null factory for '" + name + "'");
    }
    const auto [it, inserted] = factories_.emplace(name, std::move(factory));
    (void)it;
    if (!inserted) {
      throw std::invalid_argument(kind_ + ": '" + name +
                                  "' is already registered");
    }
    return *this;
  }

  /// Re-publish an existing factory under a second name.
  Registry& alias(const std::string& name, const std::string& target) {
    const auto it = factories_.find(target);
    if (it == factories_.end()) {
      throw UnknownComponentError(kind_, target, names());
    }
    return add(name, it->second);
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return factories_.find(name) != factories_.end();
  }

  /// Build the component registered under `name`; UnknownComponentError if
  /// absent. Parameter errors (e.g. sigma <= 0) propagate from the factory.
  [[nodiscard]] Product create(const std::string& name,
                               MakeArgs... args) const {
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      throw UnknownComponentError(kind_, name, names());
    }
    return it->second(std::forward<MakeArgs>(args)...);
  }

  /// Registered names in sorted order (std::map iteration order).
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return factories_.size(); }
  [[nodiscard]] const std::string& kind() const noexcept { return kind_; }

 private:
  std::string kind_;
  std::map<std::string, Factory> factories_;
};

}  // namespace epismc::api
