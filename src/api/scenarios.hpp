#pragma once

// Named scenario presets: synthetic ground truths the facade can fan
// calibration runs across.
//
// A preset bundles a core::ScenarioConfig (schedules, population, horizon)
// with the engine that generates the truth realization -- including the
// agent-based model, which core::simulate_ground_truth does not cover --
// and knows how to derive the matching SimulatorSpec so a calibration
// session against that truth starts from consistent disease parameters.
//
// Built-in presets (scenarios() registry):
//   "paper-baseline"        the paper's §V-A schedule (theta 0.30/0.27/
//                           0.25/0.40, rho 0.60/0.70/0.85/0.80, days 100)
//   "sharp-jump"            regime shift at day 62 to theta 0.48 -- beyond
//                           the jitter-kernel reach, stressing the
//                           defensive mixture
//   "low-reporting"         rho stuck in the 0.35-0.45 band: weak case
//                           signal, the regime where the death stream earns
//                           its keep
//   "sharp-likelihood"      rho 0.95 flat: observed counts track the truth
//                           closely, so window likelihoods are sharp and
//                           single-stage weights degenerate -- the regime
//                           the tempered inference strategies recover
//   "chain-binomial-truth"  baseline engine generates the truth (model
//                           mis-specification when calibrating seir-event)
//   "abm-truth"             agent-based truth over a town-scale population
//                           (model-family generality, paper §VI)

#include <string>

#include "api/components.hpp"
#include "api/registry.hpp"
#include "core/scenario.hpp"

namespace epismc::api {

struct ScenarioPreset {
  /// Engine that generates the ground-truth realization.
  enum class TruthEngine { kSeirEvent, kChainBinomial, kAgentBased };

  std::string name;
  std::string summary;
  core::ScenarioConfig scenario;
  TruthEngine truth_engine = TruthEngine::kSeirEvent;

  /// Agent-based truth topology (only read when truth_engine ==
  /// kAgentBased); forwarded into simulator_spec() so calibration always
  /// runs on the truth's network.
  AbmTopology abm;

  /// Simulate the preset's ground truth (observed cases are a binomial
  /// thinning of true cases under the preset's rho schedule; deaths are
  /// observed without bias), whatever the engine.
  [[nodiscard]] core::GroundTruth make_truth() const;

  /// SimulatorSpec consistent with this truth: same disease parameters,
  /// same seeding, and -- for the agent-based engine -- same topology.
  [[nodiscard]] SimulatorSpec simulator_spec(double burnin_theta = 0.3) const;
};

using ScenarioRegistry = Registry<ScenarioPreset>;

/// Global scenario-preset registry; built-ins registered on first access.
[[nodiscard]] ScenarioRegistry& scenarios();

}  // namespace epismc::api
