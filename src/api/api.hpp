#pragma once

// Umbrella header for the epismc::api facade -- the public entry point for
// calibration runs. Call sites outside src/ (examples, benches, user code)
// should include this and work through:
//
//   registries     api::simulators() / likelihoods() / bias_models() /
//                  jitter_policies() / scenarios()
//   one run        api::CalibrationSession (fluent builder)
//   many runs      api::ScenarioSweep (presets x backends, OpenMP-parallel)
//   supervised     session.supervised() / sweep.run_supervised() (forked
//                  workers, heartbeats, retry/backoff; src/supervise/)
//   CLI            api::configure_session_from_args (standard flags)
//
// Result types (WindowResult, WindowPosteriorSummary, Forecast, Ribbon,
// GroundTruth) come from core and are re-exported transitively.

#include "api/cli.hpp"        // IWYU pragma: export
#include "api/components.hpp" // IWYU pragma: export
#include "api/registry.hpp"   // IWYU pragma: export
#include "api/scenarios.hpp"  // IWYU pragma: export
#include "api/session.hpp"    // IWYU pragma: export
#include "api/sweep.hpp"      // IWYU pragma: export
