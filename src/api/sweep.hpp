#pragma once

// ScenarioSweep: fan named scenario presets across simulator backends in
// one call.
//
// The ROADMAP asks for "as many scenarios as you can imagine"; a sweep is
// the cartesian product {scenario preset} x {simulator backend}, each cell
// a full sequential calibration, run OpenMP-parallel over cells:
//
//   auto runs = api::ScenarioSweep()
//                   .add_scenarios({"paper-baseline", "sharp-jump",
//                                   "low-reporting", "chain-binomial-truth"})
//                   .add_simulator("seir-event")
//                   .add_simulator("chain-binomial")
//                   .with_windows({{20, 33}, {34, 47}})
//                   .with_budget(200, 5, 400)
//                   .run_all();
//
// Determinism contract: every cell derives its randomness from
// (sweep seed, preset), never from thread id or schedule order, and the
// per-cell calibrator is itself thread-count invariant -- so run_all()
// returns byte-identical results whatever parallel::set_threads says.
// Ground truths are simulated once per scenario and shared across the
// backends calibrating against them.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "core/particle.hpp"
#include "core/posterior.hpp"
#include "supervise/supervisor.hpp"

namespace epismc::api {

/// Outcome of one (scenario, simulator) cell.
struct SweepRun {
  std::string scenario;
  std::string simulator;
  std::vector<core::WindowPosteriorSummary> windows;  // one per window
  std::vector<core::WindowDiagnostics> diagnostics;   // one per window
  std::vector<double> truth_theta;  // schedule truth at each window start
  std::vector<double> truth_rho;
  double wall_seconds = 0.0;
  std::string error;  // non-empty when the cell threw

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

class ScenarioSweep {
 public:
  /// Names are validated against the registries eagerly, so a typo fails
  /// at sweep construction, not inside the parallel region.
  ScenarioSweep& add_scenario(const std::string& preset_name);
  ScenarioSweep& add_scenarios(const std::vector<std::string>& preset_names);
  ScenarioSweep& add_simulator(const std::string& name);
  ScenarioSweep& add_simulators(const std::vector<std::string>& names);

  ScenarioSweep& with_windows(
      std::vector<std::pair<std::int32_t, std::int32_t>> windows);
  ScenarioSweep& with_budget(std::size_t n_params, std::size_t replicates,
                             std::size_t resample_size);
  ScenarioSweep& with_likelihood(const std::string& name, double parameter);
  ScenarioSweep& with_deaths(bool use = true);
  ScenarioSweep& with_seed(std::uint64_t seed);
  /// Extra per-cell session configuration applied after the sweep-level
  /// knobs (e.g. `s.with_bias("identity")`).
  ScenarioSweep& with_session_setup(
      std::function<void(CalibrationSession&)> hook);

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return scenario_names_.size() * simulator_names_.size();
  }

  /// Run every (scenario, simulator) cell; results ordered scenario-major,
  /// identical regardless of thread count.
  [[nodiscard]] std::vector<SweepRun> run_all() const;

  /// A supervised sweep: the cell results (same order and, for surviving
  /// cells, same values as run_all) plus the per-task attempt record.
  struct SupervisedSweep {
    std::vector<SweepRun> runs;
    supervise::SupervisionReport report;

    [[nodiscard]] bool all_ok() const noexcept { return report.all_ok(); }
  };

  /// Liveness hook threaded into every cell's session (per-window beats).
  /// run_supervised composes it with the supervision heartbeat.
  ScenarioSweep& with_progress(core::ProgressReporter progress);

  /// Run every cell in its own forked, heartbeat-monitored child process:
  /// a crashed, hung or stalled cell is killed and retried with backoff up
  /// to sup.max_retries, and a cell whose budget is exhausted fails alone
  /// -- its SweepRun carries the supervision error while every surviving
  /// cell completes normally. Cells that succeed first try are
  /// bit-identical to run_all() (same per-cell seeds; the fork changes no
  /// stream). Ground truths are still simulated once, in the parent, and
  /// inherited copy-on-write by every child.
  [[nodiscard]] SupervisedSweep run_supervised(
      supervise::SupervisorOptions sup = {}) const;

 private:
  std::vector<std::string> scenario_names_;
  std::vector<std::string> simulator_names_;
  std::vector<std::pair<std::int32_t, std::int32_t>> windows_ = {
      {20, 33}, {34, 47}, {48, 61}, {62, 75}};
  std::size_t n_params_ = 400;
  std::size_t replicates_ = 5;
  std::size_t resample_size_ = 800;
  std::string likelihood_name_ = "nb-sqrt";
  double likelihood_parameter_ = 500.0;
  bool use_deaths_ = false;
  std::uint64_t seed_ = 20240306;
  std::function<void(CalibrationSession&)> session_setup_;
  core::ProgressReporter progress_;
};

}  // namespace epismc::api
