#include "api/components.hpp"

#include "abm/abm_simulator.hpp"

namespace epismc::api {

namespace {

core::EpiSimulatorConfig epi_config(const SimulatorSpec& spec) {
  return core::EpiSimulatorConfig{spec.params, spec.burnin_theta,
                                  spec.initial_exposed};
}

abm::AbmSimulatorConfig abm_config(const SimulatorSpec& spec) {
  abm::AbmSimulatorConfig cfg;
  cfg.abm = make_abm_config(spec.params, spec.abm);
  cfg.burnin_theta = spec.burnin_theta;
  cfg.initial_exposed = spec.initial_exposed;
  return cfg;
}

}  // namespace

SimulatorRegistry& simulators() {
  static SimulatorRegistry registry = [] {
    SimulatorRegistry r("simulator registry");
    r.add("seir-event", [](const SimulatorSpec& spec) {
      return std::unique_ptr<core::Simulator>(
          std::make_unique<core::SeirSimulator>(epi_config(spec)));
    });
    r.add("chain-binomial", [](const SimulatorSpec& spec) {
      return std::unique_ptr<core::Simulator>(
          std::make_unique<core::ChainBinomialSimulator>(epi_config(spec)));
    });
    r.add("abm", [](const SimulatorSpec& spec) {
      return std::unique_ptr<core::Simulator>(
          std::make_unique<abm::AbmSimulator>(abm_config(spec)));
    });
    // AbmSimulator::name() reports "agent-based"; accept it as a key too so
    // sim.name() round-trips through the registry.
    r.alias("agent-based", "abm");
    return r;
  }();
  return registry;
}

LikelihoodRegistry& likelihoods() {
  static LikelihoodRegistry registry = [] {
    LikelihoodRegistry r("likelihood registry");
    r.add("gaussian-sqrt", [](double sigma) {
      return std::unique_ptr<core::Likelihood>(
          std::make_unique<core::GaussianSqrtLikelihood>(sigma));
    });
    r.add("nb-sqrt", [](double dispersion_k) {
      return std::unique_ptr<core::Likelihood>(
          std::make_unique<core::NegBinSqrtLikelihood>(dispersion_k));
    });
    // The Poisson error model has no free parameter in the paper's sense:
    // the parameter is ignored (matching the historical make_likelihood
    // behaviour), so switching --likelihood=poisson while a gaussian/nb
    // parameter is staged cannot silently become a huge rate floor.
    r.add("poisson", [](double /*unused*/) {
      return std::unique_ptr<core::Likelihood>(
          std::make_unique<core::PoissonLikelihood>());
    });
    r.add("gaussian-count", [](double phi) {
      return std::unique_ptr<core::Likelihood>(
          std::make_unique<core::GaussianCountLikelihood>(phi));
    });
    return r;
  }();
  return registry;
}

BiasModelRegistry& bias_models() {
  static BiasModelRegistry registry = [] {
    BiasModelRegistry r("bias-model registry");
    r.add("binomial", [] {
      return std::unique_ptr<core::BiasModel>(
          std::make_unique<core::BinomialBias>());
    });
    r.add("identity", [] {
      return std::unique_ptr<core::BiasModel>(
          std::make_unique<core::IdentityBias>());
    });
    r.add("deterministic-thinning", [] {
      return std::unique_ptr<core::BiasModel>(
          std::make_unique<core::DeterministicThinning>());
    });
    return r;
  }();
  return registry;
}

InferenceRegistry& inference_strategies() {
  static InferenceRegistry registry = [] {
    InferenceRegistry r("inference-strategy registry");
    // The paper's scheme: one importance-sampling stage per window.
    // Bit-identical to the historical path (the golden tests pin it).
    r.add("single-stage", [] {
      return InferencePolicy{core::InferenceStrategy::kSingleStage, 0.5, 12,
                             1};
    });
    // ESS-triggered adaptive tempering: pure re-weighting of the cached
    // log-likelihoods through a bisected likelihood^phi ladder.
    r.add("tempered", [] {
      return InferencePolicy{core::InferenceStrategy::kTempered, 0.5, 12, 1};
    });
    // Tempering plus one PMMH-style independence-rejuvenation round on
    // the final posterior draws (extra propagation, better diversity).
    r.add("tempered+rejuvenate", [] {
      return InferencePolicy{core::InferenceStrategy::kTemperedRejuvenate,
                             0.5, 12, 1};
    });
    // Shell-friendly spelling ('+' needs quoting in some shells).
    r.alias("tempered-rejuvenate", "tempered+rejuvenate");
    return r;
  }();
  return registry;
}

JitterRegistry& jitter_policies() {
  static JitterRegistry registry = [] {
    JitterRegistry r("jitter-policy registry");
    // The paper's kernels: symmetric for theta, asymmetric/upward for rho
    // ("reflecting the reduced reporting error in later epidemic stages").
    r.add("paper-default", [] {
      return JitterPolicy{{0.10, 0.10, 0.02, 0.65}, {0.08, 0.12, 0.05, 1.0}};
    });
    // Half-width kernels: slower exploration, tighter posteriors when the
    // schedule is smooth.
    r.add("tight", [] {
      return JitterPolicy{{0.05, 0.05, 0.02, 0.65}, {0.04, 0.06, 0.05, 1.0}};
    });
    // Double-width kernels: regime shifts beyond the paper's jitter reach
    // without leaning on the defensive mixture.
    r.add("wide", [] {
      return JitterPolicy{{0.20, 0.20, 0.02, 0.65}, {0.16, 0.24, 0.05, 1.0}};
    });
    return r;
  }();
  return registry;
}

}  // namespace epismc::api
