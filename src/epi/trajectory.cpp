#include "epi/trajectory.hpp"

#include <stdexcept>

namespace epismc::epi {

const DailyRecord& Trajectory::at_day(std::int32_t day) const {
  if (records_.empty()) throw std::out_of_range("Trajectory: empty");
  const std::int64_t offset = day - records_.front().day;
  if (offset < 0 || offset >= static_cast<std::int64_t>(records_.size())) {
    throw std::out_of_range("Trajectory: day out of range");
  }
  return records_[static_cast<std::size_t>(offset)];
}

std::int32_t Trajectory::first_day() const {
  if (records_.empty()) throw std::out_of_range("Trajectory: empty");
  return records_.front().day;
}

std::int32_t Trajectory::last_day() const {
  if (records_.empty()) throw std::out_of_range("Trajectory: empty");
  return records_.back().day;
}

std::vector<double> Trajectory::series(std::int64_t DailyRecord::* field,
                                       std::int32_t from_day,
                                       std::int32_t to_day) const {
  if (to_day < from_day) {
    throw std::invalid_argument("Trajectory::series: to_day < from_day");
  }
  std::vector<double> out(static_cast<std::size_t>(to_day - from_day + 1));
  copy_series(field, from_day, to_day, out);
  return out;
}

void Trajectory::copy_series(std::int64_t DailyRecord::* field,
                             std::int32_t from_day, std::int32_t to_day,
                             std::span<double> out) const {
  if (to_day < from_day) {
    throw std::invalid_argument("Trajectory::copy_series: to_day < from_day");
  }
  if (out.size() != static_cast<std::size_t>(to_day - from_day + 1)) {
    throw std::invalid_argument(
        "Trajectory::copy_series: output span does not match the window");
  }
  for (std::int32_t d = from_day; d <= to_day; ++d) {
    out[static_cast<std::size_t>(d - from_day)] =
        static_cast<double>(at_day(d).*field);
  }
}

void Trajectory::serialize(io::BinaryWriter& out) const {
  // Field-by-field: DailyRecord carries 4 bytes of alignment padding after
  // `day`, and writing the structs wholesale would memcpy that
  // uninitialized hole into the archive -- identical trajectories would
  // serialize to different bytes across processes.
  out.write(static_cast<std::uint64_t>(records_.size()));
  for (const DailyRecord& rec : records_) {
    out.write(rec.day);
    out.write(rec.new_infections);
    out.write(rec.new_detected_cases);
    out.write(rec.new_deaths);
    out.write(rec.hospital_census);
    out.write(rec.icu_census);
    out.write(rec.infectious_census);
    out.write(rec.susceptible);
  }
}

Trajectory Trajectory::deserialize(io::BinaryReader& in) {
  Trajectory t;
  const auto n = in.read<std::uint64_t>();
  t.records_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    DailyRecord rec;
    rec.day = in.read<std::int32_t>();
    rec.new_infections = in.read<std::int64_t>();
    rec.new_detected_cases = in.read<std::int64_t>();
    rec.new_deaths = in.read<std::int64_t>();
    rec.hospital_census = in.read<std::int64_t>();
    rec.icu_census = in.read<std::int64_t>();
    rec.infectious_census = in.read<std::int64_t>();
    rec.susceptible = in.read<std::int64_t>();
    t.records_.push_back(rec);
  }
  return t;
}

}  // namespace epismc::epi
