#include "epi/trajectory.hpp"

#include <stdexcept>

namespace epismc::epi {

const DailyRecord& Trajectory::at_day(std::int32_t day) const {
  if (records_.empty()) throw std::out_of_range("Trajectory: empty");
  const std::int64_t offset = day - records_.front().day;
  if (offset < 0 || offset >= static_cast<std::int64_t>(records_.size())) {
    throw std::out_of_range("Trajectory: day out of range");
  }
  return records_[static_cast<std::size_t>(offset)];
}

std::int32_t Trajectory::first_day() const {
  if (records_.empty()) throw std::out_of_range("Trajectory: empty");
  return records_.front().day;
}

std::int32_t Trajectory::last_day() const {
  if (records_.empty()) throw std::out_of_range("Trajectory: empty");
  return records_.back().day;
}

std::vector<double> Trajectory::series(std::int64_t DailyRecord::* field,
                                       std::int32_t from_day,
                                       std::int32_t to_day) const {
  if (to_day < from_day) {
    throw std::invalid_argument("Trajectory::series: to_day < from_day");
  }
  std::vector<double> out(static_cast<std::size_t>(to_day - from_day + 1));
  copy_series(field, from_day, to_day, out);
  return out;
}

void Trajectory::copy_series(std::int64_t DailyRecord::* field,
                             std::int32_t from_day, std::int32_t to_day,
                             std::span<double> out) const {
  if (to_day < from_day) {
    throw std::invalid_argument("Trajectory::copy_series: to_day < from_day");
  }
  if (out.size() != static_cast<std::size_t>(to_day - from_day + 1)) {
    throw std::invalid_argument(
        "Trajectory::copy_series: output span does not match the window");
  }
  for (std::int32_t d = from_day; d <= to_day; ++d) {
    out[static_cast<std::size_t>(d - from_day)] =
        static_cast<double>(at_day(d).*field);
  }
}

void Trajectory::serialize(io::BinaryWriter& out) const {
  static_assert(std::is_trivially_copyable_v<DailyRecord>);
  out.write_vector(records_);
}

Trajectory Trajectory::deserialize(io::BinaryReader& in) {
  Trajectory t;
  t.records_ = in.read_vector<DailyRecord>();
  return t;
}

}  // namespace epismc::epi
