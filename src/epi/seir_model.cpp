#include "epi/seir_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace epismc::epi {

namespace {
constexpr std::uint32_t kCheckpointVersion = 3;  // v3: padding-free params/trajectory layout
}

// ---------------------------------------------------------------------------
// Checkpoint file I/O.
// ---------------------------------------------------------------------------

void Checkpoint::save(const std::filesystem::path& path) const {
  io::BinaryWriter out(kCheckpointVersion);
  out.write(day);
  out.write_vector(bytes);
  out.save(path);
}

Checkpoint Checkpoint::load(const std::filesystem::path& path) {
  io::BinaryReader in = io::BinaryReader::load(path);
  Checkpoint ckpt;
  ckpt.day = in.read<std::int32_t>();
  ckpt.bytes = in.read_vector<std::byte>();
  return ckpt;
}

// ---------------------------------------------------------------------------
// Construction.
// ---------------------------------------------------------------------------

SeirModel::SeirModel(DiseaseParameters params, PiecewiseSchedule transmission,
                     std::uint64_t seed, std::uint64_t stream)
    : params_(params),
      transmission_(std::move(transmission)),
      eng_(seed, stream) {
  params_.validate();
  counts_[index(Compartment::kS)] = params_.population;
  acquire_delay_tables();
  init_event_ring();
}

namespace {

/// Cache key over the fields the delay tables depend on.
struct DelayKey {
  double durations[9];
  int shape;
  int max_delay;

  friend bool operator==(const DelayKey& a, const DelayKey& b) {
    for (int i = 0; i < 9; ++i) {
      if (a.durations[i] != b.durations[i]) return false;
    }
    return a.shape == b.shape && a.max_delay == b.max_delay;
  }
};

DelayKey make_delay_key(const DiseaseParameters& p) {
  return DelayKey{{p.latent_period, p.presymptomatic_period,
                   p.asymptomatic_period, p.mild_period, p.severe_period,
                   p.hospital_period, p.hospital_to_icu, p.icu_period,
                   p.post_icu_period},
                  p.erlang_shape,
                  p.max_delay};
}

}  // namespace

void SeirModel::acquire_delay_tables() {
  // One-entry thread-local cache: particle loops restore thousands of
  // models with identical durations, so the hit rate is ~100%.
  thread_local DelayKey cached_key{};
  thread_local std::shared_ptr<const DelayTables> cached_tables;

  const DelayKey key = make_delay_key(params_);
  if (cached_tables && cached_key == key) {
    delays_ = cached_tables;
    return;
  }
  const int k = params_.erlang_shape;
  const int md = params_.max_delay;
  auto tables = std::make_shared<DelayTables>();
  tables->latent = DelayDistribution(params_.latent_period, k, md);
  tables->presym = DelayDistribution(params_.presymptomatic_period, k, md);
  tables->asym = DelayDistribution(params_.asymptomatic_period, k, md);
  tables->mild = DelayDistribution(params_.mild_period, k, md);
  tables->severe = DelayDistribution(params_.severe_period, k, md);
  tables->hosp = DelayDistribution(params_.hospital_period, k, md);
  tables->hosp_icu = DelayDistribution(params_.hospital_to_icu, k, md);
  tables->icu = DelayDistribution(params_.icu_period, k, md);
  tables->posticu = DelayDistribution(params_.post_icu_period, k, md);
  cached_key = key;
  cached_tables = tables;
  delays_ = std::move(tables);
}

void SeirModel::init_event_ring() {
  // Largest scheduling offset is max(max_delay, detection_delay); +2 keeps
  // slot(day) distinct from every reachable future slot.
  const auto horizon = static_cast<std::size_t>(
      std::max(params_.max_delay, params_.detection_delay));
  ring_.assign(horizon + 2, EventSlot{});
}

// ---------------------------------------------------------------------------
// Scheduling.
// ---------------------------------------------------------------------------

void SeirModel::schedule(std::int32_t due_day, Compartment from,
                         Compartment to, std::int64_t count) {
  if (count <= 0) return;
  assert(due_day > day_ && "events must be strictly in the future");
  assert(static_cast<std::size_t>(due_day - day_) < ring_.size() &&
         "event beyond the ring horizon");
  const int edge = edge_index(from, to);
  assert(edge >= 0 && "scheduled transition not in the topology");
  ring_[ring_slot(due_day)][static_cast<std::size_t>(edge)] += count;
}

void SeirModel::schedule_split(const DelayDistribution& delay,
                               Compartment from, Compartment to,
                               std::int64_t count) {
  if (count <= 0) return;
  const auto buckets = delay.split(eng_, count);
  for (std::size_t d = 0; d < buckets.size(); ++d) {
    schedule(day_ + static_cast<std::int32_t>(d) + 1, from, to, buckets[d]);
  }
}

void SeirModel::enter(Compartment c, std::int64_t n) {
  counts_[index(c)] += n;
  if (c == Compartment::kDu || c == Compartment::kDd) today_new_deaths_ += n;
  if (n <= 0) return;

  using C = Compartment;
  const DiseaseParameters& p = params_;
  switch (c) {
    case C::kE: {
      const std::int64_t to_presym =
          rng::binomial(eng_, n, p.fraction_symptomatic);
      schedule_split(delays_->latent, C::kE, C::kPu, to_presym);
      schedule_split(delays_->latent, C::kE, C::kAu, n - to_presym);
      break;
    }
    case C::kAu: {
      const std::int64_t detected =
          rng::binomial(eng_, n, p.detect_asymptomatic);
      schedule(day_ + p.detection_delay, C::kAu, C::kAd, detected);
      schedule_split(delays_->asym, C::kAu, C::kRu, n - detected);
      break;
    }
    case C::kAd:
      schedule_split(delays_->asym, C::kAd, C::kRd, n);
      break;
    case C::kPu: {
      const std::int64_t detected =
          rng::binomial(eng_, n, p.detect_presymptomatic);
      schedule(day_ + p.detection_delay, C::kPu, C::kPd, detected);
      const std::int64_t rest = n - detected;
      const std::int64_t mild = rng::binomial(eng_, rest, p.fraction_mild);
      schedule_split(delays_->presym, C::kPu, C::kSmU, mild);
      schedule_split(delays_->presym, C::kPu, C::kSsU, rest - mild);
      break;
    }
    case C::kPd: {
      const std::int64_t mild = rng::binomial(eng_, n, p.fraction_mild);
      schedule_split(delays_->presym, C::kPd, C::kSmD, mild);
      schedule_split(delays_->presym, C::kPd, C::kSsD, n - mild);
      break;
    }
    case C::kSmU: {
      const std::int64_t detected = rng::binomial(eng_, n, p.detect_mild);
      schedule(day_ + p.detection_delay, C::kSmU, C::kSmD, detected);
      schedule_split(delays_->mild, C::kSmU, C::kRu, n - detected);
      break;
    }
    case C::kSmD:
      schedule_split(delays_->mild, C::kSmD, C::kRd, n);
      break;
    case C::kSsU: {
      const std::int64_t detected = rng::binomial(eng_, n, p.detect_severe);
      schedule(day_ + p.detection_delay, C::kSsU, C::kSsD, detected);
      schedule_split(delays_->severe, C::kSsU, C::kHu, n - detected);
      break;
    }
    case C::kSsD:
      schedule_split(delays_->severe, C::kSsD, C::kHd, n);
      break;
    case C::kHu:
    case C::kHd: {
      const std::int64_t critical = rng::binomial(eng_, n, p.fraction_critical);
      const C icu = c == C::kHu ? C::kCu : C::kCd;
      const C rec = c == C::kHu ? C::kRu : C::kRd;
      schedule_split(delays_->hosp_icu, c, icu, critical);
      schedule_split(delays_->hosp, c, rec, n - critical);
      break;
    }
    case C::kCu:
    case C::kCd: {
      const std::int64_t dying = rng::binomial(eng_, n, p.fraction_death);
      const C dead = c == C::kCu ? C::kDu : C::kDd;
      const C ward = c == C::kCu ? C::kHpU : C::kHpD;
      schedule_split(delays_->icu, c, dead, dying);
      schedule_split(delays_->icu, c, ward, n - dying);
      break;
    }
    case C::kHpU:
      schedule_split(delays_->posticu, C::kHpU, C::kRu, n);
      break;
    case C::kHpD:
      schedule_split(delays_->posticu, C::kHpD, C::kRd, n);
      break;
    case C::kS:
    case C::kRu:
    case C::kRd:
    case C::kDu:
    case C::kDd:
    case C::kCount:
      break;  // terminal or passive states
  }
}

void SeirModel::apply(const Event& ev) {
  auto& from_count = counts_[index(ev.from)];
  if (from_count < ev.count) {
    throw std::logic_error("SeirModel: event drains compartment below zero");
  }
  from_count -= ev.count;
  if (!is_detected(ev.from) && is_detected(ev.to)) {
    today_new_detected_ += ev.count;
  }
  enter(ev.to, ev.count);
}

// ---------------------------------------------------------------------------
// Time stepping.
// ---------------------------------------------------------------------------

void SeirModel::seed_exposed(std::int64_t n) {
  auto& susceptible = counts_[index(Compartment::kS)];
  if (n < 0 || n > susceptible) {
    throw std::invalid_argument("seed_exposed: count exceeds susceptibles");
  }
  susceptible -= n;
  enter(Compartment::kE, n);
}

double SeirModel::effective_infectious() const noexcept {
  const double asym = params_.asymptomatic_infectiousness;
  const double det = params_.detected_infectiousness;
  const auto n = [&](Compartment c) {
    return static_cast<double>(counts_[index(c)]);
  };
  using C = Compartment;
  return n(C::kAu) * asym + n(C::kAd) * asym * det +  //
         n(C::kPu) + n(C::kPd) * det +                //
         n(C::kSmU) + n(C::kSmD) * det +              //
         n(C::kSsU) + n(C::kSsD) * det;
}

double SeirModel::force_of_infection() const noexcept {
  const double theta = transmission_.value_at(day_);
  return theta * effective_infectious() /
         static_cast<double>(params_.population);
}

void SeirModel::step() {
  ++day_;
  today_new_infections_ = 0;
  today_new_detected_ = 0;
  today_new_deaths_ = 0;

  // 1. Apply all transitions scheduled for today, in fixed edge order.
  // enter() only schedules events for day_+1 or later, and those land in
  // other ring slots, so processing a copied snapshot is safe.
  {
    EventSlot& slot = ring_[ring_slot(day_)];
    const EventSlot todays = slot;
    slot.fill(0);
    const auto& edges = transition_table();
    for (std::size_t e = 0; e < kEdgeCount; ++e) {
      if (todays[e] > 0) {
        apply(Event{edges[e].from, edges[e].to, todays[e]});
      }
    }
  }

  // 2. New infections with the post-transition census.
  const double hazard = force_of_infection();
  const double p_inf = 1.0 - std::exp(-hazard);
  const std::int64_t susceptible = counts_[index(Compartment::kS)];
  const std::int64_t infected = rng::binomial(eng_, susceptible, p_inf);
  counts_[index(Compartment::kS)] -= infected;
  today_new_infections_ = infected;
  enter(Compartment::kE, infected);

  // 3. Record the day.
  DailyRecord rec;
  rec.day = day_;
  rec.new_infections = today_new_infections_;
  rec.new_detected_cases = today_new_detected_;
  rec.new_deaths = today_new_deaths_;
  rec.hospital_census = count(Compartment::kHu) + count(Compartment::kHd) +
                        count(Compartment::kHpU) + count(Compartment::kHpD);
  rec.icu_census = count(Compartment::kCu) + count(Compartment::kCd);
  double infectious = 0.0;
  for (std::size_t c = 0; c < kCompartmentCount; ++c) {
    if (is_infectious(static_cast<Compartment>(c))) {
      infectious += static_cast<double>(counts_[c]);
    }
  }
  rec.infectious_census = static_cast<std::int64_t>(infectious);
  rec.susceptible = count(Compartment::kS);
  trajectory_.append(rec);
}

void SeirModel::run_until_day(std::int32_t day) {
  if (day < day_) {
    throw std::invalid_argument("run_until_day: target is in the past");
  }
  while (day_ < day) step();
}

std::int64_t SeirModel::total_individuals() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t c : counts_) total += c;
  return total;
}

std::size_t SeirModel::pending_events() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : ring_) {
    for (const std::int64_t count : slot) n += count > 0 ? 1 : 0;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Checkpointing.
// ---------------------------------------------------------------------------

Checkpoint SeirModel::make_checkpoint() const {
  io::BinaryWriter out(kCheckpointVersion);

  params_.serialize(out);
  transmission_.serialize(out);
  out.write(day_);
  out.write(counts_);

  out.write(static_cast<std::uint64_t>(pending_events()));
  // Walk future days in order; each reachable day owns one ring slot.
  const auto& edges = transition_table();
  for (std::size_t off = 1; off < ring_.size(); ++off) {
    const std::int32_t day = day_ + static_cast<std::int32_t>(off);
    const EventSlot& slot = ring_[ring_slot(day)];
    for (std::size_t e = 0; e < kEdgeCount; ++e) {
      if (slot[e] <= 0) continue;
      out.write(day);
      out.write(static_cast<std::uint8_t>(edges[e].from));
      out.write(static_cast<std::uint8_t>(edges[e].to));
      out.write(slot[e]);
    }
  }

  out.write(eng_.seed_value());
  out.write(eng_.stream_value());
  out.write(eng_.position());

  trajectory_.serialize(out);

  Checkpoint ckpt;
  ckpt.bytes = out.bytes();
  ckpt.day = day_;
  return ckpt;
}

SeirModel SeirModel::restore(const Checkpoint& ckpt,
                             const RestartOverrides& ovr) {
  io::BinaryReader in{ckpt.bytes};
  if (in.version() != kCheckpointVersion) {
    throw io::ArchiveError(io::ArchiveErrorKind::kVersion,
                           "SeirModel::restore: unsupported checkpoint version");
  }

  SeirModel m;
  m.params_ = DiseaseParameters::deserialize(in);
  m.transmission_ = PiecewiseSchedule::deserialize(in);
  m.day_ = in.read<std::int32_t>();
  m.counts_ = in.read<Census>();

  m.init_event_ring();
  const auto n_events = in.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_events; ++i) {
    const auto day = in.read<std::int32_t>();
    const auto from = static_cast<Compartment>(in.read<std::uint8_t>());
    const auto to = static_cast<Compartment>(in.read<std::uint8_t>());
    const auto count = in.read<std::int64_t>();
    if (day <= m.day_ ||
        static_cast<std::size_t>(day - m.day_) >= m.ring_.size()) {
      throw io::ArchiveError(io::ArchiveErrorKind::kCorrupt,
                             "SeirModel::restore: event outside ring horizon");
    }
    const int edge = edge_index(from, to);
    if (edge < 0) {
      throw io::ArchiveError(io::ArchiveErrorKind::kCorrupt,
                             "SeirModel::restore: unknown transition edge");
    }
    m.ring_[m.ring_slot(day)][static_cast<std::size_t>(edge)] += count;
  }

  const auto seed = in.read<std::uint64_t>();
  const auto stream = in.read<std::uint64_t>();
  const auto position = in.read<std::uint64_t>();

  m.trajectory_ = Trajectory::deserialize(in);

  // Apply restart overrides (paper §III-B).
  if (ovr.reseeds()) {
    // A new seed/stream branches a fresh trajectory from this state.
    m.eng_.reseed(ovr.seed.value_or(seed), ovr.stream.value_or(stream));
  } else {
    m.eng_.reseed(seed, stream);
    m.eng_.set_position(position);
  }
  if (ovr.fraction_symptomatic) {
    m.params_.fraction_symptomatic = *ovr.fraction_symptomatic;
  }
  if (ovr.fraction_mild) m.params_.fraction_mild = *ovr.fraction_mild;
  if (ovr.asymptomatic_infectiousness) {
    m.params_.asymptomatic_infectiousness = *ovr.asymptomatic_infectiousness;
  }
  if (ovr.detected_infectiousness) {
    m.params_.detected_infectiousness = *ovr.detected_infectiousness;
  }
  if (ovr.transmission_rate) {
    m.transmission_.override_from(m.day_ + 1, *ovr.transmission_rate);
  }
  m.params_.validate();
  m.acquire_delay_tables();
  return m;
}

}  // namespace epismc::epi
