#pragma once

// Daily simulator outputs.
//
// The calibration uses daily new infections ("true cases" eta^c) and daily
// deaths (eta^d); hospital and ICU census are recorded because the source
// model was tuned against them and the examples display them.

#include <cstdint>
#include <span>
#include <vector>

#include "io/binary_archive.hpp"

namespace epismc::epi {

struct DailyRecord {
  std::int32_t day = 0;
  std::int64_t new_infections = 0;      // S -> E transitions this day
  std::int64_t new_detected_cases = 0;  // *_u -> *_d transitions this day
  std::int64_t new_deaths = 0;          // entries into D_u/D_d this day
  std::int64_t hospital_census = 0;     // H + Hp occupancy at end of day
  std::int64_t icu_census = 0;          // C occupancy at end of day
  std::int64_t infectious_census = 0;   // occupants of infectious states
  std::int64_t susceptible = 0;         // S at end of day
};

class Trajectory {
 public:
  void append(const DailyRecord& rec) { records_.push_back(rec); }

  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const DailyRecord& at_day(std::int32_t day) const;
  [[nodiscard]] const DailyRecord& operator[](std::size_t i) const {
    return records_[i];
  }
  [[nodiscard]] std::int32_t first_day() const;
  [[nodiscard]] std::int32_t last_day() const;

  /// Extract one field over an inclusive day window as doubles (the shape
  /// likelihoods consume).
  [[nodiscard]] std::vector<double> series(
      std::int64_t DailyRecord::* field, std::int32_t from_day,
      std::int32_t to_day) const;

  /// Allocation-free variant: write the same window into `out`, which must
  /// have exactly to_day - from_day + 1 entries. Batch simulator backends
  /// extract into reusable per-thread scratch through this.
  void copy_series(std::int64_t DailyRecord::* field, std::int32_t from_day,
                   std::int32_t to_day, std::span<double> out) const;

  [[nodiscard]] std::vector<double> new_infections(std::int32_t from_day,
                                                   std::int32_t to_day) const {
    return series(&DailyRecord::new_infections, from_day, to_day);
  }
  [[nodiscard]] std::vector<double> new_deaths(std::int32_t from_day,
                                               std::int32_t to_day) const {
    return series(&DailyRecord::new_deaths, from_day, to_day);
  }

  [[nodiscard]] const std::vector<DailyRecord>& records() const noexcept {
    return records_;
  }

  void serialize(io::BinaryWriter& out) const;
  static Trajectory deserialize(io::BinaryReader& in);

 private:
  std::vector<DailyRecord> records_;
};

}  // namespace epismc::epi
