#include "epi/compartments.hpp"

namespace epismc::epi {

std::string_view name(Compartment c) noexcept {
  switch (c) {
    case Compartment::kS: return "S";
    case Compartment::kE: return "E";
    case Compartment::kAu: return "A_u";
    case Compartment::kAd: return "A_d";
    case Compartment::kPu: return "P_u";
    case Compartment::kPd: return "P_d";
    case Compartment::kSmU: return "Sm_u";
    case Compartment::kSmD: return "Sm_d";
    case Compartment::kSsU: return "Ss_u";
    case Compartment::kSsD: return "Ss_d";
    case Compartment::kHu: return "H_u";
    case Compartment::kHd: return "H_d";
    case Compartment::kCu: return "C_u";
    case Compartment::kCd: return "C_d";
    case Compartment::kHpU: return "Hp_u";
    case Compartment::kHpD: return "Hp_d";
    case Compartment::kRu: return "R_u";
    case Compartment::kRd: return "R_d";
    case Compartment::kDu: return "D_u";
    case Compartment::kDd: return "D_d";
    case Compartment::kCount: break;
  }
  return "?";
}

int edge_index(Compartment from, Compartment to) noexcept {
  // Dense lookup built once from the transition table.
  static const auto kLookup = [] {
    std::array<std::array<std::int8_t, kCompartmentCount>, kCompartmentCount>
        table{};
    for (auto& row : table) row.fill(-1);
    const auto& edges = transition_table();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      table[index(edges[e].from)][index(edges[e].to)] =
          static_cast<std::int8_t>(e);
    }
    return table;
  }();
  return kLookup[index(from)][index(to)];
}

const std::array<TransitionEdge, kEdgeCount>& transition_table() noexcept {
  using C = Compartment;
  static const std::array<TransitionEdge, 27> kTable = {{
      {C::kS, C::kE, "infection (rate theta * I_eff / N)"},
      {C::kE, C::kAu, "latent period, asymptomatic course"},
      {C::kE, C::kPu, "latent period, symptomatic course"},
      {C::kAu, C::kAd, "detection of asymptomatic infection"},
      {C::kAu, C::kRu, "recovery"},
      {C::kAd, C::kRd, "recovery"},
      {C::kPu, C::kPd, "detection of presymptomatic infection"},
      {C::kPu, C::kSmU, "incubation complete, mild symptoms"},
      {C::kPu, C::kSsU, "incubation complete, severe symptoms"},
      {C::kPd, C::kSmD, "incubation complete, mild symptoms"},
      {C::kPd, C::kSsD, "incubation complete, severe symptoms"},
      {C::kSmU, C::kSmD, "detection of mild infection"},
      {C::kSmU, C::kRu, "recovery"},
      {C::kSmD, C::kRd, "recovery"},
      {C::kSsU, C::kSsD, "detection of severe infection"},
      {C::kSsU, C::kHu, "hospital admission"},
      {C::kSsD, C::kHd, "hospital admission"},
      {C::kHu, C::kCu, "progression to critical illness"},
      {C::kHu, C::kRu, "recovery without complications"},
      {C::kHd, C::kCd, "progression to critical illness"},
      {C::kHd, C::kRd, "recovery without complications"},
      {C::kCu, C::kDu, "death"},
      {C::kCu, C::kHpU, "ICU discharge to post-ICU ward"},
      {C::kCd, C::kDd, "death"},
      {C::kCd, C::kHpD, "ICU discharge to post-ICU ward"},
      {C::kHpU, C::kRu, "recovery"},
      {C::kHpD, C::kRd, "recovery"},
  }};
  return kTable;
}

}  // namespace epismc::epi
