#pragma once

// Event-driven stochastic SEIR simulator with checkpoint/restart.
//
// The engine advances in whole-day steps. When a cohort enters a
// compartment, its branching outcome (multinomial over destinations) and
// sojourn time (discretized Erlang, see delay.hpp) are sampled immediately
// and the resulting departures are pushed onto a future-event queue. The
// complete simulator state is therefore:
//
//   census counts  +  future transition events  +  current day  +  RNG state
//
// exactly the state the paper's checkpointing serializes ("the number of
// persons in each state, the future state transition events, the current
// simulated time"). Restarting from a checkpoint may override the random
// seed, the E->P and P->Sm branching fractions, the two relative
// infectiousness multipliers, and the S->E transmission rate -- the six
// restart knobs listed in paper section III-B.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "epi/compartments.hpp"
#include "epi/delay.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/trajectory.hpp"
#include "random/distributions.hpp"

namespace epismc::epi {

/// Optional parameter overrides applied at checkpoint restart; unset fields
/// keep their checkpointed values. Field numbering follows paper §III-B.
struct RestartOverrides {
  std::optional<std::uint64_t> seed;                  // (1) random seed
  std::optional<double> fraction_symptomatic;         // (2) E -> P fraction
  std::optional<double> fraction_mild;                // (3) P -> Sm fraction
  std::optional<double> asymptomatic_infectiousness;  // (4) sympt. vs asympt.
  std::optional<double> detected_infectiousness;      // (5) detected vs not
  std::optional<double> transmission_rate;            // (6) S -> E rate onward
  std::optional<std::uint64_t> stream;                // companion of (1)

  [[nodiscard]] bool reseeds() const noexcept {
    return seed.has_value() || stream.has_value();
  }
};

/// Serialized simulator state. The byte payload is self-contained; `day` is
/// duplicated out of it for cheap bookkeeping in checkpoint stores.
struct Checkpoint {
  std::vector<std::byte> bytes;
  std::int32_t day = 0;

  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static Checkpoint load(const std::filesystem::path& path);
};

/// Immutable bundle of the nine discretized sojourn tables. Durations and
/// the Erlang shape never change across checkpoint restarts (only branching
/// fractions, infectiousness and transmission are restartable), so restored
/// models share tables through a thread-local cache instead of re-deriving
/// them -- restore sits on the SMC hot path.
struct DelayTables {
  DelayDistribution latent;
  DelayDistribution presym;
  DelayDistribution asym;
  DelayDistribution mild;
  DelayDistribution severe;
  DelayDistribution hosp;
  DelayDistribution hosp_icu;
  DelayDistribution icu;
  DelayDistribution posticu;
};

class SeirModel {
 public:
  SeirModel(DiseaseParameters params, PiecewiseSchedule transmission,
            std::uint64_t seed, std::uint64_t stream = 0);

  /// Move `count` individuals S -> E (initial epidemic seeding).
  void seed_exposed(std::int64_t count);

  /// Simulate one day.
  void step();

  /// Step until the current day equals `day` (inclusive target).
  void run_until_day(std::int32_t day);

  [[nodiscard]] std::int32_t day() const noexcept { return day_; }
  [[nodiscard]] const Trajectory& trajectory() const noexcept {
    return trajectory_;
  }
  [[nodiscard]] std::int64_t count(Compartment c) const noexcept {
    return counts_[index(c)];
  }
  [[nodiscard]] const Census& census() const noexcept { return counts_; }
  [[nodiscard]] std::int64_t population() const noexcept {
    return params_.population;
  }
  [[nodiscard]] const DiseaseParameters& parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] const PiecewiseSchedule& transmission() const noexcept {
    return transmission_;
  }

  /// Infectiousness-weighted count of infectious individuals.
  [[nodiscard]] double effective_infectious() const noexcept;

  /// Per-susceptible infection hazard for the current day.
  [[nodiscard]] double force_of_infection() const noexcept;

  /// Sum over all compartments; equals population() at all times
  /// (individual conservation invariant).
  [[nodiscard]] std::int64_t total_individuals() const noexcept;

  /// Number of queued future transition events.
  [[nodiscard]] std::size_t pending_events() const noexcept;

  [[nodiscard]] Checkpoint make_checkpoint() const;
  [[nodiscard]] static SeirModel restore(const Checkpoint& ckpt,
                                         const RestartOverrides& ovr = {});

  /// Re-aim this model (a copy of a restored prototype) at a new branch:
  /// reseed the RNG to (seed, stream) at position 0 and override the
  /// transmission rate from the next day on. State-for-state identical to
  /// restore(ckpt, {seed, stream, theta}) minus the checkpoint parse --
  /// the batched run path copies one prototype per parent and branches.
  void branch(std::uint64_t seed, std::uint64_t stream, double theta) {
    eng_.reseed(seed, stream);
    transmission_.override_from(day_ + 1, theta);
  }

 private:
  struct Event {
    Compartment from;
    Compartment to;
    std::int64_t count;
  };

  SeirModel() = default;  // used by restore()

  void acquire_delay_tables();
  void init_event_ring();
  [[nodiscard]] std::size_t ring_slot(std::int32_t day) const noexcept {
    return static_cast<std::size_t>(day) % ring_.size();
  }
  void schedule(std::int32_t due_day, Compartment from, Compartment to,
                std::int64_t count);
  void schedule_split(const DelayDistribution& delay, Compartment from,
                      Compartment to, std::int64_t count);
  void apply(const Event& ev);
  void enter(Compartment c, std::int64_t count);

  DiseaseParameters params_;
  PiecewiseSchedule transmission_;
  rng::Engine eng_;
  std::int32_t day_ = 0;
  Census counts_{};
  // Future-event queue as a day ring aggregated by transition edge:
  // slot[e] holds the number of individuals making edge e's transition on
  // that slot's day. Aggregation is distribution-exact (binomial and
  // multinomial splits are additive in cohort size) and bounds queue size
  // at kEdgeCount * horizon regardless of epidemic size. All scheduled
  // days lie within (day_, day_ + ring_.size()), so slot day % size is
  // collision-free.
  using EventSlot = std::array<std::int64_t, kEdgeCount>;
  std::vector<EventSlot> ring_;
  Trajectory trajectory_;

  std::int64_t today_new_infections_ = 0;
  std::int64_t today_new_detected_ = 0;
  std::int64_t today_new_deaths_ = 0;

  // Sojourn-time tables derived from params_ (not serialized; cached).
  std::shared_ptr<const DelayTables> delays_;
};

}  // namespace epismc::epi
