#include "epi/reproduction.hpp"

#include <cmath>
#include <stdexcept>

#include "epi/delay.hpp"

namespace epismc::epi {

double effective_infectious_duration(const DiseaseParameters& p) {
  p.validate();
  const double a = p.asymptomatic_infectiousness;
  const double det = p.detected_infectiousness;
  const double dd = static_cast<double>(p.detection_delay);

  // Asymptomatic course: detected individuals transmit at full asymptomatic
  // weight for the detection delay, then at the isolated weight for a fresh
  // asymptomatic period (mirrors the simulator's re-sampling on entry to
  // the detected compartment).
  const double d_asym = p.detect_asymptomatic;
  const double contrib_a =
      a * ((1.0 - d_asym) * p.asymptomatic_period +
           d_asym * (dd + det * p.asymptomatic_period));

  // Mild symptomatic tail (entered undetected).
  const double d_mild = p.detect_mild;
  const double tail_mild = (1.0 - d_mild) * p.mild_period +
                           d_mild * (dd + det * p.mild_period);
  // Severe symptomatic tail (entered undetected); transmission stops at
  // hospital admission.
  const double d_sev = p.detect_severe;
  const double tail_severe = (1.0 - d_sev) * p.severe_period +
                             d_sev * (dd + det * p.severe_period);

  // Presymptomatic course.
  const double d_pre = p.detect_presymptomatic;
  const double detected_pre =
      dd + det * (p.presymptomatic_period +
                  p.fraction_mild * p.mild_period +
                  (1.0 - p.fraction_mild) * p.severe_period);
  const double undetected_pre =
      p.presymptomatic_period + p.fraction_mild * tail_mild +
      (1.0 - p.fraction_mild) * tail_severe;
  const double contrib_p =
      d_pre * detected_pre + (1.0 - d_pre) * undetected_pre;

  return (1.0 - p.fraction_symptomatic) * contrib_a +
         p.fraction_symptomatic * contrib_p;
}

double basic_reproduction_number(const DiseaseParameters& params,
                                 double theta) {
  if (theta < 0.0) {
    throw std::invalid_argument("basic_reproduction_number: theta < 0");
  }
  return theta * effective_infectious_duration(params);
}

std::vector<double> instantaneous_rt(const Trajectory& trajectory,
                                     const DiseaseParameters& params,
                                     const PiecewiseSchedule& transmission) {
  const double d_eff = effective_infectious_duration(params);
  const auto n = static_cast<double>(params.population);
  std::vector<double> rt;
  rt.reserve(trajectory.size());
  for (const DailyRecord& rec : trajectory.records()) {
    const double theta = transmission.value_at(rec.day);
    rt.push_back(theta * d_eff * static_cast<double>(rec.susceptible) / n);
  }
  return rt;
}

std::vector<double> generation_interval_pmf(const DiseaseParameters& p) {
  // Mean generation time: full latent period plus roughly half of the
  // (unweighted) transmitting period; Erlang shape 3 gives a realistic
  // right-skewed interval. This is the standard moment-matched
  // approximation; the exact interval would require integrating over the
  // branching courses.
  const double transmitting =
      p.fraction_symptomatic *
          (p.presymptomatic_period +
           p.fraction_mild * p.mild_period +
           (1.0 - p.fraction_mild) * p.severe_period) +
      (1.0 - p.fraction_symptomatic) * p.asymptomatic_period;
  const double mean_gen = p.latent_period + 0.5 * transmitting;

  const DelayDistribution d(mean_gen, /*erlang_shape=*/3, /*max_delay=*/32);
  return {d.pmf().begin(), d.pmf().end()};
}

std::vector<double> cori_rt(std::span<const double> incidence,
                            std::span<const double> gen_interval,
                            int window) {
  if (gen_interval.empty()) {
    throw std::invalid_argument("cori_rt: empty generation interval");
  }
  if (window < 1) throw std::invalid_argument("cori_rt: window must be >= 1");

  const std::size_t n = incidence.size();
  // Total infectiousness Lambda_t = sum_s w_s I_{t-s} (s >= 1).
  std::vector<double> lambda(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t s = 1; s <= gen_interval.size() && s <= t; ++s) {
      lambda[t] += gen_interval[s - 1] * incidence[t - s];
    }
  }
  std::vector<double> rt(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    double num = 0.0;
    double den = 0.0;
    const std::size_t begin =
        t + 1 >= static_cast<std::size_t>(window)
            ? t + 1 - static_cast<std::size_t>(window)
            : 0;
    for (std::size_t u = begin; u <= t; ++u) {
      num += incidence[u];
      den += lambda[u];
    }
    rt[t] = den > 1e-9 ? num / den : 0.0;
  }
  return rt;
}

}  // namespace epismc::epi
