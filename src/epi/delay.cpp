#include "epi/delay.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace epismc::epi {

double erlang_cdf(int shape, double scale, double x) {
  if (shape < 1) throw std::invalid_argument("erlang_cdf: shape must be >= 1");
  if (!(scale > 0.0)) throw std::invalid_argument("erlang_cdf: scale must be > 0");
  if (x <= 0.0) return 0.0;
  const double z = x / scale;
  // 1 - exp(-z) * sum_{j=0}^{k-1} z^j / j!
  double term = 1.0;
  double sum = 1.0;
  for (int j = 1; j < shape; ++j) {
    term *= z / static_cast<double>(j);
    sum += term;
  }
  return 1.0 - std::exp(-z) * sum;
}

DelayDistribution::DelayDistribution(double mean_days, int erlang_shape,
                                     int max_delay) {
  if (!(mean_days > 0.0)) {
    throw std::invalid_argument("DelayDistribution: mean must be > 0");
  }
  if (erlang_shape < 1) {
    throw std::invalid_argument("DelayDistribution: shape must be >= 1");
  }
  if (max_delay < 2) {
    throw std::invalid_argument("DelayDistribution: max_delay must be >= 2");
  }
  const double scale = mean_days / static_cast<double>(erlang_shape);
  pmf_.resize(static_cast<std::size_t>(max_delay));
  double prev = 0.0;  // CDF at 0.5 folded into day 1 (min sojourn is 1 day)
  for (int d = 1; d <= max_delay; ++d) {
    const double upper = d == max_delay
                             ? 1.0  // fold the tail into the last bin
                             : erlang_cdf(erlang_shape, scale,
                                          static_cast<double>(d) + 0.5);
    pmf_[static_cast<std::size_t>(d - 1)] = upper - prev;
    prev = upper;
  }
  cdf_.resize(pmf_.size());
  std::partial_sum(pmf_.begin(), pmf_.end(), cdf_.begin());
  cdf_.back() = 1.0;
}

std::vector<std::int64_t> DelayDistribution::split(rng::Engine& eng,
                                                   std::int64_t count) const {
  if (pmf_.empty()) throw std::logic_error("DelayDistribution: not built");
  if (count <= 16) {
    // Per-individual sampling beats a full multinomial sweep for the small
    // cohorts that dominate late-pipeline compartments (ICU, deaths).
    std::vector<std::int64_t> out(pmf_.size(), 0);
    for (std::int64_t i = 0; i < count; ++i) {
      out[static_cast<std::size_t>(sample_one(eng) - 1)] += 1;
    }
    return out;
  }
  return rng::multinomial(eng, count, pmf_);
}

int DelayDistribution::sample_one(rng::Engine& eng) const {
  if (cdf_.empty()) throw std::logic_error("DelayDistribution: not built");
  const double u = rng::uniform_double(eng);
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    if (u <= cdf_[i]) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(cdf_.size());
}

double DelayDistribution::mean() const noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    m += static_cast<double>(i + 1) * pmf_[i];
  }
  return m;
}

}  // namespace epismc::epi
