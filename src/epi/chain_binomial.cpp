#include "epi/chain_binomial.hpp"

#include <cmath>
#include <stdexcept>

namespace epismc::epi {

namespace {
constexpr std::uint32_t kChainCheckpointVersion = 103;  // v103: padding-free layout
}

ChainBinomialModel::ChainBinomialModel(DiseaseParameters params,
                                       PiecewiseSchedule transmission,
                                       std::uint64_t seed,
                                       std::uint64_t stream)
    : params_(params),
      transmission_(std::move(transmission)),
      eng_(seed, stream) {
  params_.validate();
  counts_[index(Compartment::kS)] = params_.population;
}

double ChainBinomialModel::exit_prob(double mean_days) {
  return 1.0 - std::exp(-1.0 / mean_days);
}

void ChainBinomialModel::seed_exposed(std::int64_t n) {
  auto& susceptible = counts_[index(Compartment::kS)];
  if (n < 0 || n > susceptible) {
    throw std::invalid_argument("seed_exposed: count exceeds susceptibles");
  }
  susceptible -= n;
  counts_[index(Compartment::kE)] += n;
}

double ChainBinomialModel::effective_infectious() const noexcept {
  const double asym = params_.asymptomatic_infectiousness;
  const double det = params_.detected_infectiousness;
  const auto n = [&](Compartment c) {
    return static_cast<double>(counts_[index(c)]);
  };
  using C = Compartment;
  return n(C::kAu) * asym + n(C::kAd) * asym * det +  //
         n(C::kPu) + n(C::kPd) * det +                //
         n(C::kSmU) + n(C::kSmD) * det +              //
         n(C::kSsU) + n(C::kSsD) * det;
}

double ChainBinomialModel::force_of_infection() const noexcept {
  return transmission_.value_at(day_) * effective_infectious() /
         static_cast<double>(params_.population);
}

void ChainBinomialModel::step() {
  ++day_;
  const DiseaseParameters& p = params_;
  using C = Compartment;
  const auto n = [&](C c) { return counts_[index(c)]; };
  const auto move = [&](C from, C to, std::int64_t k) {
    counts_[index(from)] -= k;
    counts_[index(to)] += k;
  };

  // Draw every outflow from the start-of-day census before applying any of
  // them, so transitions are simultaneous (no within-day pass-through).
  struct Flow {
    C from;
    C to;
    std::int64_t count;
  };
  std::vector<Flow> flows;
  flows.reserve(32);

  const auto leave = [&](C from, double mean) {
    return rng::binomial(eng_, n(from), exit_prob(mean));
  };
  const auto split = [&](std::int64_t total, double frac) {
    return rng::binomial(eng_, total, frac);
  };
  // Per-day detection hazard approximating an overall detection fraction
  // over the state's mean duration.
  const auto detect_hazard = [&](double frac_detected, double mean) {
    return 1.0 - std::pow(1.0 - frac_detected, 1.0 / mean);
  };

  // E -> A/P.
  {
    const std::int64_t out = leave(C::kE, p.latent_period);
    const std::int64_t to_p = split(out, p.fraction_symptomatic);
    flows.push_back({C::kE, C::kPu, to_p});
    flows.push_back({C::kE, C::kAu, out - to_p});
  }
  // A_u -> R_u plus detection A_u -> A_d.
  {
    const std::int64_t out = leave(C::kAu, p.asymptomatic_period);
    flows.push_back({C::kAu, C::kRu, out});
    const std::int64_t det = rng::binomial(
        eng_, n(C::kAu) - out,
        detect_hazard(p.detect_asymptomatic, p.asymptomatic_period));
    flows.push_back({C::kAu, C::kAd, det});
  }
  flows.push_back({C::kAd, C::kRd, leave(C::kAd, p.asymptomatic_period)});
  // P_u -> Sm_u/Ss_u plus detection.
  {
    const std::int64_t out = leave(C::kPu, p.presymptomatic_period);
    const std::int64_t mild = split(out, p.fraction_mild);
    flows.push_back({C::kPu, C::kSmU, mild});
    flows.push_back({C::kPu, C::kSsU, out - mild});
    const std::int64_t det = rng::binomial(
        eng_, n(C::kPu) - out,
        detect_hazard(p.detect_presymptomatic, p.presymptomatic_period));
    flows.push_back({C::kPu, C::kPd, det});
  }
  {
    const std::int64_t out = leave(C::kPd, p.presymptomatic_period);
    const std::int64_t mild = split(out, p.fraction_mild);
    flows.push_back({C::kPd, C::kSmD, mild});
    flows.push_back({C::kPd, C::kSsD, out - mild});
  }
  // Sm -> R plus detection.
  {
    const std::int64_t out = leave(C::kSmU, p.mild_period);
    flows.push_back({C::kSmU, C::kRu, out});
    const std::int64_t det =
        rng::binomial(eng_, n(C::kSmU) - out,
                      detect_hazard(p.detect_mild, p.mild_period));
    flows.push_back({C::kSmU, C::kSmD, det});
  }
  flows.push_back({C::kSmD, C::kRd, leave(C::kSmD, p.mild_period)});
  // Ss -> H plus detection.
  {
    const std::int64_t out = leave(C::kSsU, p.severe_period);
    flows.push_back({C::kSsU, C::kHu, out});
    const std::int64_t det =
        rng::binomial(eng_, n(C::kSsU) - out,
                      detect_hazard(p.detect_severe, p.severe_period));
    flows.push_back({C::kSsU, C::kSsD, det});
  }
  flows.push_back({C::kSsD, C::kHd, leave(C::kSsD, p.severe_period)});
  // H -> C / R.
  for (const auto& [h, icu, rec] :
       {std::tuple{C::kHu, C::kCu, C::kRu}, std::tuple{C::kHd, C::kCd, C::kRd}}) {
    const std::int64_t out = leave(h, p.hospital_period);
    const std::int64_t crit = split(out, p.fraction_critical);
    flows.push_back({h, icu, crit});
    flows.push_back({h, rec, out - crit});
  }
  // C -> D / Hp.
  for (const auto& [icu, dead, ward] :
       {std::tuple{C::kCu, C::kDu, C::kHpU}, std::tuple{C::kCd, C::kDd, C::kHpD}}) {
    const std::int64_t out = leave(icu, p.icu_period);
    const std::int64_t dying = split(out, p.fraction_death);
    flows.push_back({icu, dead, dying});
    flows.push_back({icu, ward, out - dying});
  }
  // Hp -> R.
  flows.push_back({C::kHpU, C::kRu, leave(C::kHpU, p.post_icu_period)});
  flows.push_back({C::kHpD, C::kRd, leave(C::kHpD, p.post_icu_period)});

  // New infections from the start-of-day census as well.
  const double p_inf = 1.0 - std::exp(-force_of_infection());
  const std::int64_t infected = rng::binomial(eng_, n(C::kS), p_inf);
  flows.push_back({C::kS, C::kE, infected});

  std::int64_t new_deaths = 0;
  std::int64_t new_detected = 0;
  for (const Flow& f : flows) {
    move(f.from, f.to, f.count);
    if (f.to == C::kDu || f.to == C::kDd) new_deaths += f.count;
    if (!is_detected(f.from) && is_detected(f.to)) new_detected += f.count;
  }

  DailyRecord rec;
  rec.day = day_;
  rec.new_infections = infected;
  rec.new_detected_cases = new_detected;
  rec.new_deaths = new_deaths;
  rec.hospital_census =
      n(C::kHu) + n(C::kHd) + n(C::kHpU) + n(C::kHpD);
  rec.icu_census = n(C::kCu) + n(C::kCd);
  double infectious = 0.0;
  for (std::size_t c = 0; c < kCompartmentCount; ++c) {
    if (is_infectious(static_cast<Compartment>(c))) {
      infectious += static_cast<double>(counts_[c]);
    }
  }
  rec.infectious_census = static_cast<std::int64_t>(infectious);
  rec.susceptible = n(C::kS);
  trajectory_.append(rec);
}

void ChainBinomialModel::run_until_day(std::int32_t day) {
  if (day < day_) {
    throw std::invalid_argument("run_until_day: target is in the past");
  }
  while (day_ < day) step();
}

std::int64_t ChainBinomialModel::total_individuals() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t c : counts_) total += c;
  return total;
}

Checkpoint ChainBinomialModel::make_checkpoint() const {
  io::BinaryWriter out(kChainCheckpointVersion);
  params_.serialize(out);
  transmission_.serialize(out);
  out.write(day_);
  out.write(counts_);
  out.write(eng_.seed_value());
  out.write(eng_.stream_value());
  out.write(eng_.position());
  trajectory_.serialize(out);
  Checkpoint ckpt;
  ckpt.bytes = out.bytes();
  ckpt.day = day_;
  return ckpt;
}

ChainBinomialModel ChainBinomialModel::restore(const Checkpoint& ckpt,
                                               const RestartOverrides& ovr) {
  io::BinaryReader in{ckpt.bytes};
  if (in.version() != kChainCheckpointVersion) {
    throw io::ArchiveError(
        "ChainBinomialModel::restore: unsupported checkpoint version");
  }
  ChainBinomialModel m;
  m.params_ = DiseaseParameters::deserialize(in);
  m.transmission_ = PiecewiseSchedule::deserialize(in);
  m.day_ = in.read<std::int32_t>();
  m.counts_ = in.read<Census>();
  const auto seed = in.read<std::uint64_t>();
  const auto stream = in.read<std::uint64_t>();
  const auto position = in.read<std::uint64_t>();
  m.trajectory_ = Trajectory::deserialize(in);

  if (ovr.reseeds()) {
    m.eng_.reseed(ovr.seed.value_or(seed), ovr.stream.value_or(stream));
  } else {
    m.eng_.reseed(seed, stream);
    m.eng_.set_position(position);
  }
  if (ovr.fraction_symptomatic) {
    m.params_.fraction_symptomatic = *ovr.fraction_symptomatic;
  }
  if (ovr.fraction_mild) m.params_.fraction_mild = *ovr.fraction_mild;
  if (ovr.asymptomatic_infectiousness) {
    m.params_.asymptomatic_infectiousness = *ovr.asymptomatic_infectiousness;
  }
  if (ovr.detected_infectiousness) {
    m.params_.detected_infectiousness = *ovr.detected_infectiousness;
  }
  if (ovr.transmission_rate) {
    m.transmission_.override_from(m.day_ + 1, *ovr.transmission_rate);
  }
  m.params_.validate();
  return m;
}

}  // namespace epismc::epi
