#include "epi/chain_binomial.hpp"

#include <cmath>
#include <stdexcept>

#include "simd/simd.hpp"

namespace epismc::epi {

namespace {
constexpr std::uint32_t kChainCheckpointVersion = 103;  // v103: padding-free layout
}

ChainBinomialModel::ChainBinomialModel(DiseaseParameters params,
                                       PiecewiseSchedule transmission,
                                       std::uint64_t seed,
                                       std::uint64_t stream)
    : params_(params),
      transmission_(std::move(transmission)),
      eng_(seed, stream) {
  params_.validate();
  counts_[index(Compartment::kS)] = params_.population;
}

double ChainBinomialModel::exit_prob(double mean_days) {
  return 1.0 - std::exp(-1.0 / mean_days);
}

void ChainBinomialModel::seed_exposed(std::int64_t n) {
  auto& susceptible = counts_[index(Compartment::kS)];
  if (n < 0 || n > susceptible) {
    throw std::invalid_argument("seed_exposed: count exceeds susceptibles");
  }
  susceptible -= n;
  counts_[index(Compartment::kE)] += n;
}

double ChainBinomialModel::effective_infectious() const noexcept {
  const double asym = params_.asymptomatic_infectiousness;
  const double det = params_.detected_infectiousness;
  const auto n = [&](Compartment c) {
    return static_cast<double>(counts_[index(c)]);
  };
  using C = Compartment;
  return n(C::kAu) * asym + n(C::kAd) * asym * det +  //
         n(C::kPu) + n(C::kPd) * det +                //
         n(C::kSmU) + n(C::kSmD) * det +              //
         n(C::kSsU) + n(C::kSsD) * det;
}

double ChainBinomialModel::force_of_infection() const noexcept {
  return transmission_.value_at(day_) * effective_infectious() /
         static_cast<double>(params_.population);
}

// One day advances through 27 binomial draw sites, numbered in the order
// the sequential (scalar-level) path consumes the engine:
//
//   0  leave E            1  split E -> P        2  leave Au
//   3  detect Au          4  leave Ad            5  leave Pu
//   6  split Pu mild      7  detect Pu           8  leave Pd
//   9  split Pd mild     10  leave SmU          11  detect SmU
//  12  leave SmD         13  leave SsU          14  detect SsU
//  15  leave SsD         16  leave Hu           17  split Hu critical
//  18  leave Hd          19  split Hd critical  20  leave Cu
//  21  split Cu death    22  leave Cd           23  split Cd death
//  24  leave HpU         25  leave HpD          26  infection S -> E
//
// Every draw depends only on the start-of-day census plus (for the split
// and detection sites) the corresponding leave draw, so the sites separate
// into two dependency stages: stage A = the 15 leaves + infection, stage B
// = the 11 splits/detections. The segmented path exploits that to draw each
// stage as one lane-parallel binomial kernel call.

void ChainBinomialModel::draw_sites_sequential(
    std::array<std::int64_t, kDrawSites>& draw) {
  const DiseaseParameters& p = params_;
  using C = Compartment;
  const auto n = [&](C c) { return counts_[index(c)]; };
  const auto leave = [&](C from, double mean) {
    return rng::binomial(eng_, n(from), exit_prob(mean));
  };
  const auto split = [&](std::int64_t total, double frac) {
    return rng::binomial(eng_, total, frac);
  };
  // Per-day detection hazard approximating an overall detection fraction
  // over the state's mean duration.
  const auto detect_hazard = [&](double frac_detected, double mean) {
    return 1.0 - std::pow(1.0 - frac_detected, 1.0 / mean);
  };

  draw[0] = leave(C::kE, p.latent_period);
  draw[1] = split(draw[0], p.fraction_symptomatic);
  draw[2] = leave(C::kAu, p.asymptomatic_period);
  draw[3] = rng::binomial(
      eng_, n(C::kAu) - draw[2],
      detect_hazard(p.detect_asymptomatic, p.asymptomatic_period));
  draw[4] = leave(C::kAd, p.asymptomatic_period);
  draw[5] = leave(C::kPu, p.presymptomatic_period);
  draw[6] = split(draw[5], p.fraction_mild);
  draw[7] = rng::binomial(
      eng_, n(C::kPu) - draw[5],
      detect_hazard(p.detect_presymptomatic, p.presymptomatic_period));
  draw[8] = leave(C::kPd, p.presymptomatic_period);
  draw[9] = split(draw[8], p.fraction_mild);
  draw[10] = leave(C::kSmU, p.mild_period);
  draw[11] = rng::binomial(eng_, n(C::kSmU) - draw[10],
                           detect_hazard(p.detect_mild, p.mild_period));
  draw[12] = leave(C::kSmD, p.mild_period);
  draw[13] = leave(C::kSsU, p.severe_period);
  draw[14] = rng::binomial(eng_, n(C::kSsU) - draw[13],
                           detect_hazard(p.detect_severe, p.severe_period));
  draw[15] = leave(C::kSsD, p.severe_period);
  draw[16] = leave(C::kHu, p.hospital_period);
  draw[17] = split(draw[16], p.fraction_critical);
  draw[18] = leave(C::kHd, p.hospital_period);
  draw[19] = split(draw[18], p.fraction_critical);
  draw[20] = leave(C::kCu, p.icu_period);
  draw[21] = split(draw[20], p.fraction_death);
  draw[22] = leave(C::kCd, p.icu_period);
  draw[23] = split(draw[22], p.fraction_death);
  draw[24] = leave(C::kHpU, p.post_icu_period);
  draw[25] = leave(C::kHpD, p.post_icu_period);
  const double p_inf = 1.0 - std::exp(-force_of_infection());
  draw[26] = rng::binomial(eng_, n(C::kS), p_inf);
}

void ChainBinomialModel::draw_sites_segmented(
    std::array<std::int64_t, kDrawSites>& draw) {
  const DiseaseParameters& p = params_;
  using C = Compartment;
  const auto n = [&](C c) { return counts_[index(c)]; };
  const auto detect_hazard = [&](double frac_detected, double mean) {
    return 1.0 - std::pow(1.0 - frac_detected, 1.0 / mean);
  };

  // Each site owns a fixed 64-draw slice of the counter space starting at
  // the day's base position, so the day consumes exactly kDrawSites *
  // kDrawSegment positions regardless of per-draw rejection counts. The
  // result is a pure function of (seed, stream, site inputs) and identical
  // across all vector dispatch levels (binomial_lanes is bit-deterministic
  // across lane widths).
  const std::uint64_t base = eng_.position();
  const simd::KernelTable& kt = simd::active();

  struct Batch {
    std::array<std::uint64_t, 16> seg;
    std::array<std::int64_t, 16> n;
    std::array<double, 16> p;
    std::array<std::size_t, 16> site;
    std::size_t m = 0;
    void put(std::uint64_t base, std::size_t s, std::int64_t count,
             double prob) {
      seg[m] = base + s * kDrawSegment;
      n[m] = count;
      p[m] = prob;
      site[m] = s;
      ++m;
    }
  };

  // Stage A: leaves + infection (start-of-day census only).
  Batch a;
  a.put(base, 0, n(C::kE), exit_prob(p.latent_period));
  a.put(base, 2, n(C::kAu), exit_prob(p.asymptomatic_period));
  a.put(base, 4, n(C::kAd), exit_prob(p.asymptomatic_period));
  a.put(base, 5, n(C::kPu), exit_prob(p.presymptomatic_period));
  a.put(base, 8, n(C::kPd), exit_prob(p.presymptomatic_period));
  a.put(base, 10, n(C::kSmU), exit_prob(p.mild_period));
  a.put(base, 12, n(C::kSmD), exit_prob(p.mild_period));
  a.put(base, 13, n(C::kSsU), exit_prob(p.severe_period));
  a.put(base, 15, n(C::kSsD), exit_prob(p.severe_period));
  a.put(base, 16, n(C::kHu), exit_prob(p.hospital_period));
  a.put(base, 18, n(C::kHd), exit_prob(p.hospital_period));
  a.put(base, 20, n(C::kCu), exit_prob(p.icu_period));
  a.put(base, 22, n(C::kCd), exit_prob(p.icu_period));
  a.put(base, 24, n(C::kHpU), exit_prob(p.post_icu_period));
  a.put(base, 25, n(C::kHpD), exit_prob(p.post_icu_period));
  a.put(base, 26, n(C::kS), 1.0 - std::exp(-force_of_infection()));
  std::array<std::int64_t, 16> out_a;
  kt.binomial_lanes(eng_.seed_value(), eng_.stream_value(), a.seg.data(),
                    a.n.data(), a.p.data(), a.m, out_a.data());
  for (std::size_t i = 0; i < a.m; ++i) draw[a.site[i]] = out_a[i];

  // Stage B: splits and detections (depend on stage-A leaves).
  Batch b;
  b.put(base, 1, draw[0], p.fraction_symptomatic);
  b.put(base, 3, n(C::kAu) - draw[2],
        detect_hazard(p.detect_asymptomatic, p.asymptomatic_period));
  b.put(base, 6, draw[5], p.fraction_mild);
  b.put(base, 7, n(C::kPu) - draw[5],
        detect_hazard(p.detect_presymptomatic, p.presymptomatic_period));
  b.put(base, 9, draw[8], p.fraction_mild);
  b.put(base, 11, n(C::kSmU) - draw[10],
        detect_hazard(p.detect_mild, p.mild_period));
  b.put(base, 14, n(C::kSsU) - draw[13],
        detect_hazard(p.detect_severe, p.severe_period));
  b.put(base, 17, draw[16], p.fraction_critical);
  b.put(base, 19, draw[18], p.fraction_critical);
  b.put(base, 21, draw[20], p.fraction_death);
  b.put(base, 23, draw[22], p.fraction_death);
  std::array<std::int64_t, 16> out_b;
  kt.binomial_lanes(eng_.seed_value(), eng_.stream_value(), b.seg.data(),
                    b.n.data(), b.p.data(), b.m, out_b.data());
  for (std::size_t i = 0; i < b.m; ++i) draw[b.site[i]] = out_b[i];

  eng_.set_position(base + kDrawSites * kDrawSegment);
}

void ChainBinomialModel::step() {
  ++day_;
  using C = Compartment;
  const auto n = [&](C c) { return counts_[index(c)]; };
  const auto move = [&](C from, C to, std::int64_t k) {
    counts_[index(from)] -= k;
    counts_[index(to)] += k;
  };

  // Draw every outflow from the start-of-day census before applying any of
  // them, so transitions are simultaneous (no within-day pass-through). The
  // scalar dispatch level consumes the engine sequentially (the historical,
  // golden-value path); vector levels draw both dependency stages through
  // the lane-parallel binomial kernel over site-addressed counter segments.
  std::array<std::int64_t, kDrawSites> draw{};
  if (simd::active_level() == simd::SimdLevel::kScalar) {
    draw_sites_sequential(draw);
  } else {
    draw_sites_segmented(draw);
  }

  struct Flow {
    C from;
    C to;
    std::int64_t count;
  };
  const std::array<Flow, 27> flows = {{
      {C::kE, C::kPu, draw[1]},
      {C::kE, C::kAu, draw[0] - draw[1]},
      {C::kAu, C::kRu, draw[2]},
      {C::kAu, C::kAd, draw[3]},
      {C::kAd, C::kRd, draw[4]},
      {C::kPu, C::kSmU, draw[6]},
      {C::kPu, C::kSsU, draw[5] - draw[6]},
      {C::kPu, C::kPd, draw[7]},
      {C::kPd, C::kSmD, draw[9]},
      {C::kPd, C::kSsD, draw[8] - draw[9]},
      {C::kSmU, C::kRu, draw[10]},
      {C::kSmU, C::kSmD, draw[11]},
      {C::kSmD, C::kRd, draw[12]},
      {C::kSsU, C::kHu, draw[13]},
      {C::kSsU, C::kSsD, draw[14]},
      {C::kSsD, C::kHd, draw[15]},
      {C::kHu, C::kCu, draw[17]},
      {C::kHu, C::kRu, draw[16] - draw[17]},
      {C::kHd, C::kCd, draw[19]},
      {C::kHd, C::kRd, draw[18] - draw[19]},
      {C::kCu, C::kDu, draw[21]},
      {C::kCu, C::kHpU, draw[20] - draw[21]},
      {C::kCd, C::kDd, draw[23]},
      {C::kCd, C::kHpD, draw[22] - draw[23]},
      {C::kHpU, C::kRu, draw[24]},
      {C::kHpD, C::kRd, draw[25]},
      {C::kS, C::kE, draw[26]},
  }};
  const std::int64_t infected = draw[26];

  std::int64_t new_deaths = 0;
  std::int64_t new_detected = 0;
  for (const Flow& f : flows) {
    move(f.from, f.to, f.count);
    if (f.to == C::kDu || f.to == C::kDd) new_deaths += f.count;
    if (!is_detected(f.from) && is_detected(f.to)) new_detected += f.count;
  }

  DailyRecord rec;
  rec.day = day_;
  rec.new_infections = infected;
  rec.new_detected_cases = new_detected;
  rec.new_deaths = new_deaths;
  rec.hospital_census =
      n(C::kHu) + n(C::kHd) + n(C::kHpU) + n(C::kHpD);
  rec.icu_census = n(C::kCu) + n(C::kCd);
  double infectious = 0.0;
  for (std::size_t c = 0; c < kCompartmentCount; ++c) {
    if (is_infectious(static_cast<Compartment>(c))) {
      infectious += static_cast<double>(counts_[c]);
    }
  }
  rec.infectious_census = static_cast<std::int64_t>(infectious);
  rec.susceptible = n(C::kS);
  trajectory_.append(rec);
}

void ChainBinomialModel::run_until_day(std::int32_t day) {
  if (day < day_) {
    throw std::invalid_argument("run_until_day: target is in the past");
  }
  while (day_ < day) step();
}

std::int64_t ChainBinomialModel::total_individuals() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t c : counts_) total += c;
  return total;
}

Checkpoint ChainBinomialModel::make_checkpoint() const {
  io::BinaryWriter out(kChainCheckpointVersion);
  params_.serialize(out);
  transmission_.serialize(out);
  out.write(day_);
  out.write(counts_);
  out.write(eng_.seed_value());
  out.write(eng_.stream_value());
  out.write(eng_.position());
  trajectory_.serialize(out);
  Checkpoint ckpt;
  ckpt.bytes = out.bytes();
  ckpt.day = day_;
  return ckpt;
}

ChainBinomialModel ChainBinomialModel::restore(const Checkpoint& ckpt,
                                               const RestartOverrides& ovr) {
  io::BinaryReader in{ckpt.bytes};
  if (in.version() != kChainCheckpointVersion) {
    throw io::ArchiveError(
        io::ArchiveErrorKind::kVersion,
        "ChainBinomialModel::restore: unsupported checkpoint version");
  }
  ChainBinomialModel m;
  m.params_ = DiseaseParameters::deserialize(in);
  m.transmission_ = PiecewiseSchedule::deserialize(in);
  m.day_ = in.read<std::int32_t>();
  m.counts_ = in.read<Census>();
  const auto seed = in.read<std::uint64_t>();
  const auto stream = in.read<std::uint64_t>();
  const auto position = in.read<std::uint64_t>();
  m.trajectory_ = Trajectory::deserialize(in);

  if (ovr.reseeds()) {
    m.eng_.reseed(ovr.seed.value_or(seed), ovr.stream.value_or(stream));
  } else {
    m.eng_.reseed(seed, stream);
    m.eng_.set_position(position);
  }
  if (ovr.fraction_symptomatic) {
    m.params_.fraction_symptomatic = *ovr.fraction_symptomatic;
  }
  if (ovr.fraction_mild) m.params_.fraction_mild = *ovr.fraction_mild;
  if (ovr.asymptomatic_infectiousness) {
    m.params_.asymptomatic_infectiousness = *ovr.asymptomatic_infectiousness;
  }
  if (ovr.detected_infectiousness) {
    m.params_.detected_infectiousness = *ovr.detected_infectiousness;
  }
  if (ovr.transmission_rate) {
    m.transmission_.override_from(m.day_ + 1, *ovr.transmission_rate);
  }
  m.params_.validate();
  return m;
}

}  // namespace epismc::epi
