#pragma once

// Discretized sojourn-time distributions.
//
// Cohorts entering a compartment have their future exit *scheduled at entry
// time* -- this is what makes the model state checkpointable as "counts +
// future transition events". Sojourn times follow Erlang(shape, mean)
// distributions discretized to whole days: pmf[d] = P(d - 0.5 < X <= d +
// 0.5) for d = 1..max_delay (day 1 absorbs all mass below 1.5 so every
// transition takes at least one day, which rules out same-day event
// cascades).

#include <cstdint>
#include <span>
#include <vector>

#include "random/distributions.hpp"

namespace epismc::epi {

class DelayDistribution {
 public:
  DelayDistribution() = default;

  /// Build from an Erlang(shape, mean) sojourn law truncated at max_delay.
  DelayDistribution(double mean_days, int erlang_shape, int max_delay);

  /// Split a cohort of `count` individuals across delays 1..max_delay.
  /// out[d] = number of individuals leaving after exactly d+1 days.
  /// Small cohorts are sampled individually (O(count) cdf lookups), large
  /// ones via conditional-binomial multinomial (O(max_delay) draws) --
  /// identical distribution, different constants.
  [[nodiscard]] std::vector<std::int64_t> split(rng::Engine& eng,
                                                std::int64_t count) const;

  /// Sample a single delay in days (>= 1).
  [[nodiscard]] int sample_one(rng::Engine& eng) const;

  [[nodiscard]] std::span<const double> pmf() const noexcept { return pmf_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] int max_delay() const noexcept {
    return static_cast<int>(pmf_.size());
  }

 private:
  std::vector<double> pmf_;  // pmf_[i] = P(delay == i + 1 days)
  std::vector<double> cdf_;
};

/// Regularized lower incomplete gamma P(k, x) for integer k >= 1
/// (the Erlang CDF): P(X <= x) with X ~ Erlang(k, scale 1).
[[nodiscard]] double erlang_cdf(int shape, double scale, double x);

}  // namespace epismc::epi
