#pragma once

// Disease natural-history parameters of the SEIR simulator.
//
// Values follow the Covid-Chicago model family (Runge et al. 2022): duration
// means and branching fractions are fixed from literature, while the
// transmission rate (and, in the paper's experiments, the reporting bias) is
// the calibration target. The five quantities the paper lists as overridable
// at checkpoint restart are marked [restartable].

#include <cstdint>
#include <stdexcept>
#include <string>

#include "io/binary_archive.hpp"

namespace epismc::epi {

struct DiseaseParameters {
  // Population.
  std::int64_t population = 2'700'000;  // City of Chicago, order of magnitude

  // Durations (means, days). Sojourn times are Erlang(shape, mean) draws
  // discretized to whole days.
  double latent_period = 3.2;        // E -> A/P
  double presymptomatic_period = 2.3;  // P -> Sm/Ss
  double asymptomatic_period = 7.0;  // A -> R
  double mild_period = 7.0;          // Sm -> R
  double severe_period = 4.5;        // Ss -> H
  double hospital_period = 6.0;      // H -> R (non-critical course)
  double hospital_to_icu = 4.0;      // H -> C (critical course)
  double icu_period = 8.0;           // C -> D or C -> Hp
  double post_icu_period = 4.0;      // Hp -> R
  int erlang_shape = 2;              // shape of all sojourn distributions
  int max_delay = 64;                // truncation horizon for sojourn pmfs

  // Branching fractions.
  double fraction_symptomatic = 0.65;  // E -> P (else A)   [restartable]
  double fraction_mild = 0.92;         // P -> Sm (else Ss) [restartable]
  double fraction_critical = 0.25;     // H -> C (else R)
  double fraction_death = 0.40;        // C -> D (else Hp)

  // Detection: probability that an infection in a given state is ever
  // detected, and the delay from state entry to detection.
  double detect_asymptomatic = 0.05;
  double detect_presymptomatic = 0.05;
  double detect_mild = 0.30;
  double detect_severe = 0.70;
  int detection_delay = 2;  // days from state entry to isolation

  // Relative infectiousness multipliers.
  double asymptomatic_infectiousness = 0.75;  // A vs symptomatic [restartable]
  double detected_infectiousness = 0.25;      // detected vs undetected [restartable]

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const {
    const auto positive = [](double v, const char* what) {
      if (!(v > 0.0)) throw std::invalid_argument(std::string("DiseaseParameters: ") + what + " must be > 0");
    };
    const auto fraction = [](double v, const char* what) {
      if (!(v >= 0.0 && v <= 1.0)) throw std::invalid_argument(std::string("DiseaseParameters: ") + what + " must be in [0, 1]");
    };
    if (population <= 0) {
      throw std::invalid_argument("DiseaseParameters: population must be > 0");
    }
    positive(latent_period, "latent_period");
    positive(presymptomatic_period, "presymptomatic_period");
    positive(asymptomatic_period, "asymptomatic_period");
    positive(mild_period, "mild_period");
    positive(severe_period, "severe_period");
    positive(hospital_period, "hospital_period");
    positive(hospital_to_icu, "hospital_to_icu");
    positive(icu_period, "icu_period");
    positive(post_icu_period, "post_icu_period");
    if (erlang_shape < 1 || erlang_shape > 16) {
      throw std::invalid_argument("DiseaseParameters: erlang_shape must be in [1, 16]");
    }
    if (max_delay < 8 || max_delay > 512) {
      throw std::invalid_argument("DiseaseParameters: max_delay must be in [8, 512]");
    }
    fraction(fraction_symptomatic, "fraction_symptomatic");
    fraction(fraction_mild, "fraction_mild");
    fraction(fraction_critical, "fraction_critical");
    fraction(fraction_death, "fraction_death");
    fraction(detect_asymptomatic, "detect_asymptomatic");
    fraction(detect_presymptomatic, "detect_presymptomatic");
    fraction(detect_mild, "detect_mild");
    fraction(detect_severe, "detect_severe");
    if (detection_delay < 1) {
      throw std::invalid_argument("DiseaseParameters: detection_delay must be >= 1");
    }
    fraction(asymptomatic_infectiousness, "asymptomatic_infectiousness");
    fraction(detected_infectiousness, "detected_infectiousness");
  }

  /// Field-by-field archive layout. Writing the struct wholesale would
  /// memcpy its alignment padding (an uninitialized 4-byte hole after
  /// detection_delay) into the checkpoint, making archives of identical
  /// states byte-unstable across processes; explicit fields keep the
  /// checkpoint byte stream a pure function of the parameter values.
  void serialize(io::BinaryWriter& out) const {
    out.write(population);
    out.write(latent_period);
    out.write(presymptomatic_period);
    out.write(asymptomatic_period);
    out.write(mild_period);
    out.write(severe_period);
    out.write(hospital_period);
    out.write(hospital_to_icu);
    out.write(icu_period);
    out.write(post_icu_period);
    out.write(erlang_shape);
    out.write(max_delay);
    out.write(fraction_symptomatic);
    out.write(fraction_mild);
    out.write(fraction_critical);
    out.write(fraction_death);
    out.write(detect_asymptomatic);
    out.write(detect_presymptomatic);
    out.write(detect_mild);
    out.write(detect_severe);
    out.write(detection_delay);
    out.write(asymptomatic_infectiousness);
    out.write(detected_infectiousness);
  }

  [[nodiscard]] static DiseaseParameters deserialize(io::BinaryReader& in) {
    DiseaseParameters p;
    p.population = in.read<std::int64_t>();
    p.latent_period = in.read<double>();
    p.presymptomatic_period = in.read<double>();
    p.asymptomatic_period = in.read<double>();
    p.mild_period = in.read<double>();
    p.severe_period = in.read<double>();
    p.hospital_period = in.read<double>();
    p.hospital_to_icu = in.read<double>();
    p.icu_period = in.read<double>();
    p.post_icu_period = in.read<double>();
    p.erlang_shape = in.read<int>();
    p.max_delay = in.read<int>();
    p.fraction_symptomatic = in.read<double>();
    p.fraction_mild = in.read<double>();
    p.fraction_critical = in.read<double>();
    p.fraction_death = in.read<double>();
    p.detect_asymptomatic = in.read<double>();
    p.detect_presymptomatic = in.read<double>();
    p.detect_mild = in.read<double>();
    p.detect_severe = in.read<double>();
    p.detection_delay = in.read<int>();
    p.asymptomatic_infectiousness = in.read<double>();
    p.detected_infectiousness = in.read<double>();
    return p;
  }
};

}  // namespace epismc::epi
