#pragma once

// Compartment topology of the stochastic SEIR simulator (paper Fig. 1).
//
// S = susceptible, E = exposed/latent, A = asymptomatic, P = presymptomatic,
// Sm = mild symptomatic, Ss = severe symptomatic, H = hospitalized,
// C = critically ill (ICU), Hp = post-ICU hospitalization, R = recovered,
// D = dead. The u/d suffix distinguishes undetected from detected
// infections; detected individuals are isolated and less infectious.

#include <array>
#include <cstdint>
#include <string_view>

namespace epismc::epi {

enum class Compartment : std::uint8_t {
  kS = 0,
  kE,
  kAu, kAd,    // asymptomatic
  kPu, kPd,    // presymptomatic
  kSmU, kSmD,  // mild symptomatic
  kSsU, kSsD,  // severe symptomatic
  kHu, kHd,    // hospitalized
  kCu, kCd,    // critical (ICU)
  kHpU, kHpD,  // post-ICU hospitalization
  kRu, kRd,    // recovered
  kDu, kDd,    // dead
  kCount,
};

inline constexpr std::size_t kCompartmentCount =
    static_cast<std::size_t>(Compartment::kCount);

[[nodiscard]] constexpr std::size_t index(Compartment c) noexcept {
  return static_cast<std::size_t>(c);
}

[[nodiscard]] std::string_view name(Compartment c) noexcept;

/// True for compartments whose occupants can transmit infection.
[[nodiscard]] constexpr bool is_infectious(Compartment c) noexcept {
  switch (c) {
    case Compartment::kAu:
    case Compartment::kAd:
    case Compartment::kPu:
    case Compartment::kPd:
    case Compartment::kSmU:
    case Compartment::kSmD:
    case Compartment::kSsU:
    case Compartment::kSsD:
      return true;
    default:
      return false;
  }
}

/// True for detected (isolated) disease states.
[[nodiscard]] constexpr bool is_detected(Compartment c) noexcept {
  switch (c) {
    case Compartment::kAd:
    case Compartment::kPd:
    case Compartment::kSmD:
    case Compartment::kSsD:
    case Compartment::kHd:
    case Compartment::kCd:
    case Compartment::kHpD:
    case Compartment::kRd:
    case Compartment::kDd:
      return true;
    default:
      return false;
  }
}

/// The detected twin of an undetected disease state (kS/kE map to
/// themselves; detected states are fixed points).
[[nodiscard]] constexpr Compartment detected_twin(Compartment c) noexcept {
  switch (c) {
    case Compartment::kAu: return Compartment::kAd;
    case Compartment::kPu: return Compartment::kPd;
    case Compartment::kSmU: return Compartment::kSmD;
    case Compartment::kSsU: return Compartment::kSsD;
    case Compartment::kHu: return Compartment::kHd;
    case Compartment::kCu: return Compartment::kCd;
    case Compartment::kHpU: return Compartment::kHpD;
    case Compartment::kRu: return Compartment::kRd;
    case Compartment::kDu: return Compartment::kDd;
    default: return c;
  }
}

/// Infectiousness weight classes. Every infectious compartment carries one
/// of four relative transmission weights (asymptomatic and detected states
/// are down-weighted); grouping compartments by class lets per-group
/// bookkeeping (e.g. the ABM's household pressure table) stay integral --
/// exact counts per class instead of drift-prone incremental doubles.
inline constexpr int kInfectiousnessClassCount = 4;

/// Class of a compartment: 0 = asymptomatic undetected, 1 = asymptomatic
/// detected, 2 = symptomatic undetected, 3 = symptomatic detected, -1 = not
/// infectious.
[[nodiscard]] constexpr int infectiousness_class(Compartment c) noexcept {
  switch (c) {
    case Compartment::kAu: return 0;
    case Compartment::kAd: return 1;
    case Compartment::kPu:
    case Compartment::kSmU:
    case Compartment::kSsU: return 2;
    case Compartment::kPd:
    case Compartment::kSmD:
    case Compartment::kSsD: return 3;
    default: return -1;
  }
}

/// Per-class relative transmission weights given the two multipliers of
/// DiseaseParameters (asymptomatic_infectiousness, detected_infectiousness).
/// Index with infectiousness_class(); matches weight-per-compartment
/// evaluation exactly.
[[nodiscard]] constexpr std::array<double, kInfectiousnessClassCount>
infectiousness_class_weights(double asymptomatic_infectiousness,
                             double detected_infectiousness) noexcept {
  return {asymptomatic_infectiousness,
          asymptomatic_infectiousness * detected_infectiousness, 1.0,
          detected_infectiousness};
}

/// Infectiousness weight of a single compartment (0 if not infectious).
[[nodiscard]] constexpr double infectiousness_weight(
    Compartment c, double asymptomatic_infectiousness,
    double detected_infectiousness) noexcept {
  const int cls = infectiousness_class(c);
  if (cls < 0) return 0.0;
  return infectiousness_class_weights(asymptomatic_infectiousness,
                                      detected_infectiousness)[
      static_cast<std::size_t>(cls)];
}

/// Census vector type: one count per compartment.
using Census = std::array<std::int64_t, kCompartmentCount>;

/// One directed edge of the disease progression graph, for introspection
/// and the Fig. 1 schematic dump.
struct TransitionEdge {
  Compartment from;
  Compartment to;
  std::string_view label;
};

inline constexpr std::size_t kEdgeCount = 27;

/// Full transition table of the model (static topology).
[[nodiscard]] const std::array<TransitionEdge, kEdgeCount>&
transition_table() noexcept;

/// Index of (from, to) in transition_table(), or -1 if the edge does not
/// exist. O(1); backs the edge-aggregated future-event queue.
[[nodiscard]] int edge_index(Compartment from, Compartment to) noexcept;

}  // namespace epismc::epi
