#pragma once

// Compartment topology of the stochastic SEIR simulator (paper Fig. 1).
//
// S = susceptible, E = exposed/latent, A = asymptomatic, P = presymptomatic,
// Sm = mild symptomatic, Ss = severe symptomatic, H = hospitalized,
// C = critically ill (ICU), Hp = post-ICU hospitalization, R = recovered,
// D = dead. The u/d suffix distinguishes undetected from detected
// infections; detected individuals are isolated and less infectious.

#include <array>
#include <cstdint>
#include <string_view>

namespace epismc::epi {

enum class Compartment : std::uint8_t {
  kS = 0,
  kE,
  kAu, kAd,    // asymptomatic
  kPu, kPd,    // presymptomatic
  kSmU, kSmD,  // mild symptomatic
  kSsU, kSsD,  // severe symptomatic
  kHu, kHd,    // hospitalized
  kCu, kCd,    // critical (ICU)
  kHpU, kHpD,  // post-ICU hospitalization
  kRu, kRd,    // recovered
  kDu, kDd,    // dead
  kCount,
};

inline constexpr std::size_t kCompartmentCount =
    static_cast<std::size_t>(Compartment::kCount);

[[nodiscard]] constexpr std::size_t index(Compartment c) noexcept {
  return static_cast<std::size_t>(c);
}

[[nodiscard]] std::string_view name(Compartment c) noexcept;

/// True for compartments whose occupants can transmit infection.
[[nodiscard]] constexpr bool is_infectious(Compartment c) noexcept {
  switch (c) {
    case Compartment::kAu:
    case Compartment::kAd:
    case Compartment::kPu:
    case Compartment::kPd:
    case Compartment::kSmU:
    case Compartment::kSmD:
    case Compartment::kSsU:
    case Compartment::kSsD:
      return true;
    default:
      return false;
  }
}

/// True for detected (isolated) disease states.
[[nodiscard]] constexpr bool is_detected(Compartment c) noexcept {
  switch (c) {
    case Compartment::kAd:
    case Compartment::kPd:
    case Compartment::kSmD:
    case Compartment::kSsD:
    case Compartment::kHd:
    case Compartment::kCd:
    case Compartment::kHpD:
    case Compartment::kRd:
    case Compartment::kDd:
      return true;
    default:
      return false;
  }
}

/// The detected twin of an undetected disease state (kS/kE map to
/// themselves; detected states are fixed points).
[[nodiscard]] constexpr Compartment detected_twin(Compartment c) noexcept {
  switch (c) {
    case Compartment::kAu: return Compartment::kAd;
    case Compartment::kPu: return Compartment::kPd;
    case Compartment::kSmU: return Compartment::kSmD;
    case Compartment::kSsU: return Compartment::kSsD;
    case Compartment::kHu: return Compartment::kHd;
    case Compartment::kCu: return Compartment::kCd;
    case Compartment::kHpU: return Compartment::kHpD;
    case Compartment::kRu: return Compartment::kRd;
    case Compartment::kDu: return Compartment::kDd;
    default: return c;
  }
}

/// Census vector type: one count per compartment.
using Census = std::array<std::int64_t, kCompartmentCount>;

/// One directed edge of the disease progression graph, for introspection
/// and the Fig. 1 schematic dump.
struct TransitionEdge {
  Compartment from;
  Compartment to;
  std::string_view label;
};

inline constexpr std::size_t kEdgeCount = 27;

/// Full transition table of the model (static topology).
[[nodiscard]] const std::array<TransitionEdge, kEdgeCount>&
transition_table() noexcept;

/// Index of (from, to) in transition_table(), or -1 if the edge does not
/// exist. O(1); backs the edge-aggregated future-event queue.
[[nodiscard]] int edge_index(Compartment from, Compartment to) noexcept;

}  // namespace epismc::epi
