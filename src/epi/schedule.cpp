#include "epi/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace epismc::epi {

PiecewiseSchedule::PiecewiseSchedule(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("PiecewiseSchedule: needs >= 1 segment");
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.start_day < b.start_day;
            });
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].start_day == segments_[i - 1].start_day) {
      throw std::invalid_argument("PiecewiseSchedule: duplicate start_day");
    }
  }
}

void PiecewiseSchedule::set(std::int32_t start_day, double value) {
  const auto it = std::find_if(
      segments_.begin(), segments_.end(),
      [&](const Segment& s) { return s.start_day == start_day; });
  if (it != segments_.end()) {
    it->value = value;
    return;
  }
  segments_.push_back({start_day, value});
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.start_day < b.start_day;
            });
}

void PiecewiseSchedule::override_from(std::int32_t start_day, double value) {
  std::erase_if(segments_,
                [&](const Segment& s) { return s.start_day >= start_day; });
  segments_.push_back({start_day, value});
  // segments_ stayed sorted: every remaining start_day < start_day.
}

double PiecewiseSchedule::value_at(std::int32_t day) const {
  double v = segments_.front().value;  // days before the first segment
  for (const Segment& s : segments_) {
    if (s.start_day > day) break;
    v = s.value;
  }
  return v;
}

void PiecewiseSchedule::serialize(io::BinaryWriter& out) const {
  out.write(static_cast<std::uint64_t>(segments_.size()));
  for (const Segment& s : segments_) {
    out.write(s.start_day);
    out.write(s.value);
  }
}

PiecewiseSchedule PiecewiseSchedule::deserialize(io::BinaryReader& in) {
  const auto n = in.read<std::uint64_t>();
  std::vector<Segment> segments;
  segments.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Segment s{};
    s.start_day = in.read<std::int32_t>();
    s.value = in.read<double>();
    segments.push_back(s);
  }
  return PiecewiseSchedule(std::move(segments));
}

bool operator==(const PiecewiseSchedule& a, const PiecewiseSchedule& b) {
  if (a.segments_.size() != b.segments_.size()) return false;
  for (std::size_t i = 0; i < a.segments_.size(); ++i) {
    if (a.segments_[i].start_day != b.segments_[i].start_day ||
        a.segments_[i].value != b.segments_[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace epismc::epi
