#pragma once

// Memoryless chain-binomial baseline engine.
//
// Same compartment topology and observables as SeirModel, but sojourn times
// are geometric (a per-day exit hazard 1 - exp(-1/mean)) and nothing is
// scheduled ahead of time: the entire state is the census vector. This is
// the classical discrete-time formulation most SMC epidemic papers use; it
// exists here as the ablation baseline (E10/E11 discuss how Erlang sojourns
// and the event queue change calibration), and as a cross-check oracle for
// SeirModel's aggregate behaviour.

#include <array>
#include <cstdint>

#include "epi/compartments.hpp"
#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/seir_model.hpp"
#include "epi/trajectory.hpp"
#include "random/distributions.hpp"

namespace epismc::epi {

class ChainBinomialModel {
 public:
  ChainBinomialModel(DiseaseParameters params, PiecewiseSchedule transmission,
                     std::uint64_t seed, std::uint64_t stream = 0);

  void seed_exposed(std::int64_t count);
  void step();
  void run_until_day(std::int32_t day);

  [[nodiscard]] std::int32_t day() const noexcept { return day_; }
  [[nodiscard]] const Trajectory& trajectory() const noexcept {
    return trajectory_;
  }
  [[nodiscard]] std::int64_t count(Compartment c) const noexcept {
    return counts_[index(c)];
  }
  [[nodiscard]] const Census& census() const noexcept { return counts_; }
  [[nodiscard]] std::int64_t population() const noexcept {
    return params_.population;
  }
  [[nodiscard]] const DiseaseParameters& parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] double effective_infectious() const noexcept;
  [[nodiscard]] double force_of_infection() const noexcept;
  [[nodiscard]] std::int64_t total_individuals() const noexcept;

  [[nodiscard]] Checkpoint make_checkpoint() const;
  [[nodiscard]] static ChainBinomialModel restore(const Checkpoint& ckpt,
                                                  const RestartOverrides& ovr = {});

  /// Re-aim this model (a copy of a restored prototype) at a new branch;
  /// see SeirModel::branch for the contract.
  void branch(std::uint64_t seed, std::uint64_t stream, double theta) {
    eng_.reseed(seed, stream);
    transmission_.override_from(day_ + 1, theta);
  }

 private:
  ChainBinomialModel() = default;

  /// Per-day exit probability for a mean sojourn (exponential hazard).
  [[nodiscard]] static double exit_prob(double mean_days);

  /// Number of binomial draw sites in one day step (see step()).
  static constexpr std::size_t kDrawSites = 27;

  /// Fixed-width counter segment reserved per draw site at vector dispatch
  /// levels, so every site reads from a seed/stream/site-addressed slice of
  /// the Philox stream regardless of how many uniforms its draw consumes.
  static constexpr std::uint64_t kDrawSegment = 64;

  void draw_sites_sequential(std::array<std::int64_t, kDrawSites>& draw);
  void draw_sites_segmented(std::array<std::int64_t, kDrawSites>& draw);

  DiseaseParameters params_;
  PiecewiseSchedule transmission_;
  rng::Engine eng_;
  std::int32_t day_ = 0;
  Census counts_{};
  Trajectory trajectory_;
};

}  // namespace epismc::epi
