#pragma once

// Reproduction-number machinery.
//
// The paper's related work centers on estimating the effective reproduction
// number R_t from imperfect data (Gostic et al., White et al., ...). Given
// the simulator's explicit natural history we can compute R_0 exactly from
// the parameters (expected infectiousness-weighted time an infected
// individual spends transmitting, times theta), track the instantaneous
// R_t = R_0(theta_t) * S_t / N along any trajectory, and cross-check with
// the Cori-style empirical estimator driven only by incidence.

#include <span>
#include <vector>

#include "epi/parameters.hpp"
#include "epi/schedule.hpp"
#include "epi/trajectory.hpp"

namespace epismc::epi {

/// Expected infectiousness-weighted transmitting time of one infected
/// individual (days): the sum over the disease course of (relative
/// infectiousness x expected duration), marginalized over the asymptomatic/
/// mild/severe branches and the detection process. R_0 = theta * this.
[[nodiscard]] double effective_infectious_duration(
    const DiseaseParameters& params);

/// Basic reproduction number at transmission rate theta.
[[nodiscard]] double basic_reproduction_number(const DiseaseParameters& params,
                                               double theta);

/// Instantaneous (susceptible-adjusted) R_t along a simulated trajectory:
/// R_t = theta(t) * D_eff * S_t / N. One value per trajectory day.
[[nodiscard]] std::vector<double> instantaneous_rt(
    const Trajectory& trajectory, const DiseaseParameters& params,
    const PiecewiseSchedule& transmission);

/// Discretized generation-interval pmf implied by the parameters: time from
/// infection of an index case to the infections it causes, approximated as
/// latent period plus the infectiousness-weighted midpoint of the
/// transmitting period, discretized like the sojourn laws.
[[nodiscard]] std::vector<double> generation_interval_pmf(
    const DiseaseParameters& params);

/// Cori et al. (2013) instantaneous R_t from incidence alone:
/// R_t = I_t / sum_s w_s I_{t-s}, with w the generation-interval pmf and a
/// trailing smoothing window of `window` days. Returns one value per input
/// day (leading days without enough history yield 0).
[[nodiscard]] std::vector<double> cori_rt(std::span<const double> incidence,
                                          std::span<const double> gen_interval,
                                          int window = 7);

}  // namespace epismc::epi
