#pragma once

// Piecewise-constant time schedules for time-varying parameters.
//
// The paper's experiments vary the transmission rate (and the reporting
// bias used to simulate observations) at discrete "horizons": theta(t) is
// 0.3 on days [0, 34), 0.27 on [34, 48), 0.25 on [48, 62) and 0.4 from day
// 62 on. A schedule is an ordered list of (start_day, value) segments; the
// value at day t is that of the last segment with start_day <= t.

#include <cstdint>
#include <vector>

#include "io/binary_archive.hpp"

namespace epismc::epi {

class PiecewiseSchedule {
 public:
  struct Segment {
    std::int32_t start_day;
    double value;
  };

  /// Constant schedule.
  explicit PiecewiseSchedule(double value) { set(0, value); }
  PiecewiseSchedule() : PiecewiseSchedule(0.0) {}

  /// Schedule from (start_day, value) pairs; days must be unique.
  explicit PiecewiseSchedule(std::vector<Segment> segments);

  /// Set the value from `start_day` onward (replaces any later segments'
  /// precedence at that exact day).
  void set(std::int32_t start_day, double value);

  /// Replace everything from `start_day` onward with a single value: this
  /// is the checkpoint-restart override ("rate of persons moving from S to
  /// E" along a new trajectory).
  void override_from(std::int32_t start_day, double value);

  [[nodiscard]] double value_at(std::int32_t day) const;

  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }

  void serialize(io::BinaryWriter& out) const;
  static PiecewiseSchedule deserialize(io::BinaryReader& in);

  friend bool operator==(const PiecewiseSchedule& a,
                         const PiecewiseSchedule& b);

 private:
  std::vector<Segment> segments_;  // sorted by start_day, unique
};

}  // namespace epismc::epi
