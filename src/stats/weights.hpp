#pragma once

// Importance-weight handling in log space.
//
// SMC weights span hundreds of orders of magnitude once a window of
// Gaussian log-likelihoods has been accumulated; all normalization runs
// through log-sum-exp, and degeneracy is monitored with effective sample
// size and weight entropy.

#include <span>
#include <vector>

namespace epismc::stats {

/// log(sum_i exp(x_i)) with the usual max-shift stabilization.
/// Returns -inf for an empty span or all -inf entries.
[[nodiscard]] double log_sum_exp(std::span<const double> x);

/// Convert log-weights to normalized linear weights (sum == 1).
/// Entries of -inf map to 0. Throws if all weights vanish.
[[nodiscard]] std::vector<double> normalize_log_weights(
    std::span<const double> log_weights);

/// In-place variant writing into `out` (same size as `log_weights`).
void normalize_log_weights(std::span<const double> log_weights,
                           std::span<double> out);

/// Variant reusing a caller-computed `lse` == log_sum_exp(log_weights), so
/// a hot path that also needs the log-marginal sweeps the weights once.
/// Bit-identical to the two-pass form when fed the exact lse value.
[[nodiscard]] std::vector<double> normalize_log_weights(
    std::span<const double> log_weights, double lse);

/// Kish effective sample size: (sum w)^2 / sum w^2 for normalized weights.
[[nodiscard]] double effective_sample_size(std::span<const double> weights);

/// ESS computed directly from unnormalized log-weights. Invariant under a
/// constant shift of the log-weights, so it equals (up to rounding) the
/// Kish ESS of the normalized weights -- the tempering ladder leans on
/// this to probe candidate temperatures without materializing weights.
[[nodiscard]] double effective_sample_size_log(
    std::span<const double> log_weights);

/// ESS of the scaled log-weights {mult * log_weights[i]} without
/// materializing the scaled vector: one fused pass accumulates both
/// log-sum-exp terms. `mult` is a tempering exponent, so it must be >= 0.
[[nodiscard]] double effective_sample_size_log(
    std::span<const double> log_weights, double mult);

/// Shannon entropy of the normalized weight distribution, in nats.
/// Max entropy log(N) means uniform weights; 0 means full degeneracy.
[[nodiscard]] double weight_entropy(std::span<const double> weights);

/// Perplexity = exp(entropy) / N in (0, 1]; a scale-free degeneracy gauge.
[[nodiscard]] double weight_perplexity(std::span<const double> weights);

}  // namespace epismc::stats
