#include "stats/weights.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace epismc::stats {

double log_sum_exp(std::span<const double> x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;  // all -inf (or a stray +inf/nan dominates)
  double acc = 0.0;
  for (const double v : x) acc += std::exp(v - m);
  return m + std::log(acc);
}

namespace {
void normalize_with_lse(std::span<const double> log_weights,
                        std::span<double> out, double lse) {
  if (!std::isfinite(lse)) {
    throw std::domain_error(
        "normalize_log_weights: total weight is zero or non-finite");
  }
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    out[i] = std::exp(log_weights[i] - lse);
  }
}
}  // namespace

void normalize_log_weights(std::span<const double> log_weights,
                           std::span<double> out) {
  if (log_weights.size() != out.size()) {
    throw std::invalid_argument("normalize_log_weights: size mismatch");
  }
  normalize_with_lse(log_weights, out, log_sum_exp(log_weights));
}

std::vector<double> normalize_log_weights(std::span<const double> log_weights) {
  std::vector<double> out(log_weights.size());
  normalize_log_weights(log_weights, out);
  return out;
}

std::vector<double> normalize_log_weights(std::span<const double> log_weights,
                                          double lse) {
  std::vector<double> out(log_weights.size());
  normalize_with_lse(log_weights, out, lse);
  return out;
}

double effective_sample_size(std::span<const double> weights) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("effective_sample_size: w < 0");
    sum += w;
    sum_sq += w * w;
  }
  if (sum_sq == 0.0) return 0.0;
  return (sum * sum) / sum_sq;
}

double effective_sample_size_log(std::span<const double> log_weights) {
  // ESS = exp(2*lse(x) - lse(2x)); avoids materializing linear weights.
  const double lse1 = log_sum_exp(log_weights);
  if (!std::isfinite(lse1)) return 0.0;
  std::vector<double> doubled(log_weights.size());
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    doubled[i] = 2.0 * log_weights[i];
  }
  const double lse2 = log_sum_exp(doubled);
  return std::exp(2.0 * lse1 - lse2);
}

double effective_sample_size_log(std::span<const double> log_weights,
                                 double mult) {
  if (!(mult >= 0.0)) {
    throw std::invalid_argument(
        "effective_sample_size_log: tempering exponent must be >= 0");
  }
  if (log_weights.empty()) return 0.0;
  if (mult == 0.0) return static_cast<double>(log_weights.size());
  // ESS = (sum exp(m x))^2 / sum exp(2 m x); shift by the max for
  // stability -- both accumulators share it, so it cancels in the ratio.
  const double top = *std::max_element(log_weights.begin(), log_weights.end());
  if (!std::isfinite(top)) return 0.0;  // all -inf (or a stray non-finite)
  double acc1 = 0.0;
  double acc2 = 0.0;
  for (const double v : log_weights) {
    const double e = std::exp(mult * (v - top));
    acc1 += e;
    acc2 += e * e;
  }
  if (acc2 == 0.0) return 0.0;
  return (acc1 * acc1) / acc2;
}

double weight_entropy(std::span<const double> weights) {
  double sum = 0.0;
  for (const double w : weights) sum += w;
  if (sum <= 0.0) throw std::domain_error("weight_entropy: zero total weight");
  double h = 0.0;
  for (const double w : weights) {
    if (w > 0.0) {
      const double p = w / sum;
      h -= p * std::log(p);
    }
  }
  return h;
}

double weight_perplexity(std::span<const double> weights) {
  if (weights.empty()) return 0.0;
  return std::exp(weight_entropy(weights)) /
         static_cast<double>(weights.size());
}

}  // namespace epismc::stats
