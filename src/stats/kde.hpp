#pragma once

// Weighted Gaussian kernel density estimation, 1-D and 2-D.
//
// The 2-D estimator reproduces the joint (theta, rho) posterior contour
// panels of Figures 4b/5b: evaluate the weighted KDE on a grid, then find
// highest-posterior-density thresholds that enclose 50% / 90% of the mass.

#include <span>
#include <vector>

namespace epismc::stats {

/// Silverman's rule-of-thumb bandwidth for weighted samples; uses the
/// effective sample size in place of n.
[[nodiscard]] double silverman_bandwidth(std::span<const double> x,
                                         std::span<const double> w);

/// Evaluate the weighted 1-D KDE at each grid point.
[[nodiscard]] std::vector<double> kde_1d(std::span<const double> samples,
                                         std::span<const double> weights,
                                         std::span<const double> grid,
                                         double bandwidth = 0.0);

/// Dense 2-D density surface on a regular grid.
struct Kde2dResult {
  std::vector<double> x_grid;
  std::vector<double> y_grid;
  std::vector<double> density;  // row-major: density[iy * nx + ix]
  double cell_area = 0.0;

  [[nodiscard]] double at(std::size_t ix, std::size_t iy) const {
    return density[iy * x_grid.size() + ix];
  }
  /// Total mass on the grid (should be ~1 if the grid covers the support).
  [[nodiscard]] double total_mass() const;
  /// Grid coordinates of the density mode.
  [[nodiscard]] std::pair<double, double> mode() const;
};

[[nodiscard]] Kde2dResult kde_2d(std::span<const double> xs,
                                 std::span<const double> ys,
                                 std::span<const double> weights,
                                 double x_lo, double x_hi, std::size_t nx,
                                 double y_lo, double y_hi, std::size_t ny,
                                 double bandwidth_x = 0.0,
                                 double bandwidth_y = 0.0);

/// Highest-density thresholds: for each requested mass level, the density
/// value t such that cells with density >= t enclose that mass.
[[nodiscard]] std::vector<double> hpd_levels(const Kde2dResult& kde,
                                             std::span<const double> masses);

/// Probability mass enclosed by the axis-aligned box [x0,x1]x[y0,y1].
[[nodiscard]] double box_mass(const Kde2dResult& kde, double x0, double x1,
                              double y0, double y1);

}  // namespace epismc::stats
