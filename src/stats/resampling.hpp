#pragma once

// Resampling schemes for particle methods.
//
// Each scheme draws `count` ancestor indices i with P(i) proportional to
// weights[i], differing in the variance they add on top of the weights.
// Systematic is the library default (single uniform, lowest variance in
// practice); the alternatives back the resampling ablation (E10).

#include <cstdint>
#include <span>
#include <vector>

#include "random/distributions.hpp"

namespace epismc::stats {

enum class ResamplingScheme : std::uint8_t {
  kMultinomial,
  kStratified,
  kSystematic,
  kResidual,
};

[[nodiscard]] const char* to_string(ResamplingScheme scheme);

/// IID draws from the categorical distribution (highest variance).
[[nodiscard]] std::vector<std::uint32_t> resample_multinomial(
    rng::Engine& eng, std::span<const double> weights, std::size_t count);

/// One uniform per stratum [k/N, (k+1)/N).
[[nodiscard]] std::vector<std::uint32_t> resample_stratified(
    rng::Engine& eng, std::span<const double> weights, std::size_t count);

/// Single uniform offset, comb of N equally spaced points.
[[nodiscard]] std::vector<std::uint32_t> resample_systematic(
    rng::Engine& eng, std::span<const double> weights, std::size_t count);

/// Deterministic copies of floor(N*w) plus multinomial on the residuals.
[[nodiscard]] std::vector<std::uint32_t> resample_residual(
    rng::Engine& eng, std::span<const double> weights, std::size_t count);

/// Dispatch on scheme.
[[nodiscard]] std::vector<std::uint32_t> resample(
    ResamplingScheme scheme, rng::Engine& eng, std::span<const double> weights,
    std::size_t count);

/// Number of distinct ancestors in an index vector (degeneracy diagnostic).
[[nodiscard]] std::size_t unique_ancestors(std::span<const std::uint32_t> idx);

}  // namespace epismc::stats
