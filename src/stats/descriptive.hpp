#pragma once

// Descriptive statistics: plain and importance-weighted.

#include <span>
#include <vector>

namespace epismc::stats {

[[nodiscard]] double mean(std::span<const double> x);
[[nodiscard]] double variance(std::span<const double> x);  // sample (n-1)
[[nodiscard]] double std_dev(std::span<const double> x);

/// Weighted mean with unnormalized non-negative weights.
[[nodiscard]] double weighted_mean(std::span<const double> x,
                                   std::span<const double> w);

/// Weighted variance (population form under normalized weights).
[[nodiscard]] double weighted_variance(std::span<const double> x,
                                       std::span<const double> w);

/// Linear-interpolation quantile (R type 7) of unsorted data, q in [0, 1].
[[nodiscard]] double quantile(std::span<const double> x, double q);

/// Several quantiles in one sort.
[[nodiscard]] std::vector<double> quantiles(std::span<const double> x,
                                            std::span<const double> qs);

/// Weighted quantile: inverse of the weighted empirical CDF.
[[nodiscard]] double weighted_quantile(std::span<const double> x,
                                       std::span<const double> w, double q);

/// Equal-tailed credible interval [lo, hi] with mass `level` (e.g. 0.9).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] bool contains(double v) const { return v >= lo && v <= hi; }
};

[[nodiscard]] Interval credible_interval(std::span<const double> x,
                                         double level);
[[nodiscard]] Interval weighted_credible_interval(std::span<const double> x,
                                                  std::span<const double> w,
                                                  double level);

/// Welford online accumulator; mergeable for parallel reductions.
class RunningStats {
 public:
  void push(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // sample (n-1)
  [[nodiscard]] double std_dev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace epismc::stats
