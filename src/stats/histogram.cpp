#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epismc::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) {
  if (x < lo_ || x >= hi_) {
    // Clamp boundary hits of hi into the last bin; drop true outliers.
    if (x == hi_) {
      counts_.back() += weight;
      total_ += weight;
    }
    return;
  }
  const auto bin = std::min(
      static_cast<std::size_t>((x - lo_) / width_), counts_.size() - 1);
  counts_[bin] += weight;
  total_ += weight;
}

void Histogram::add_all(std::span<const double> xs,
                        std::span<const double> ws) {
  if (!ws.empty() && ws.size() != xs.size()) {
    throw std::invalid_argument("Histogram::add_all: weight size mismatch");
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    add(xs[i], ws.empty() ? 1.0 : ws[i]);
  }
}

double Histogram::bin_center(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ <= 0.0) return d;
  const double norm = 1.0 / (total_ * width_);
  for (std::size_t i = 0; i < counts_.size(); ++i) d[i] = counts_[i] * norm;
  return d;
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(std::distance(
      counts_.begin(), std::max_element(counts_.begin(), counts_.end())));
}

}  // namespace epismc::stats
