#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace epismc::stats {

double mean(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("mean: empty input");
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.size() < 2) throw std::invalid_argument("variance: need >= 2 values");
  const double m = mean(x);
  double acc = 0.0;
  for (const double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double std_dev(std::span<const double> x) { return std::sqrt(variance(x)); }

double weighted_mean(std::span<const double> x, std::span<const double> w) {
  if (x.size() != w.size() || x.empty()) {
    throw std::invalid_argument("weighted_mean: size mismatch or empty");
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += w[i] * x[i];
    den += w[i];
  }
  if (den <= 0.0) throw std::domain_error("weighted_mean: zero total weight");
  return num / den;
}

double weighted_variance(std::span<const double> x, std::span<const double> w) {
  const double m = weighted_mean(x, w);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += w[i] * (x[i] - m) * (x[i] - m);
    den += w[i];
  }
  return num / den;
}

double quantile(std::span<const double> x, double q) {
  const double qs[] = {q};
  return quantiles(x, qs)[0];
}

std::vector<double> quantiles(std::span<const double> x,
                              std::span<const double> qs) {
  if (x.empty()) throw std::invalid_argument("quantiles: empty input");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) {
    if (!(q >= 0.0 && q <= 1.0)) {
      throw std::invalid_argument("quantiles: q must be in [0, 1]");
    }
    // R type-7: h = (n-1)q, linear interpolation between order statistics.
    const double h = static_cast<double>(sorted.size() - 1) * q;
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = h - static_cast<double>(lo);
    out.push_back(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
  }
  return out;
}

double weighted_quantile(std::span<const double> x, std::span<const double> w,
                         double q) {
  if (x.size() != w.size() || x.empty()) {
    throw std::invalid_argument("weighted_quantile: size mismatch or empty");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("weighted_quantile: q must be in [0, 1]");
  }
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  double total = 0.0;
  for (const double wi : w) {
    if (wi < 0.0) throw std::invalid_argument("weighted_quantile: w < 0");
    total += wi;
  }
  if (total <= 0.0) {
    throw std::domain_error("weighted_quantile: zero total weight");
  }
  const double target = q * total;
  double cum = 0.0;
  for (const std::size_t i : order) {
    cum += w[i];
    if (cum >= target) return x[i];
  }
  return x[order.back()];
}

Interval credible_interval(std::span<const double> x, double level) {
  const double alpha = (1.0 - level) / 2.0;
  const double qs[] = {alpha, 1.0 - alpha};
  const auto v = quantiles(x, qs);
  return {v[0], v[1]};
}

Interval weighted_credible_interval(std::span<const double> x,
                                    std::span<const double> w, double level) {
  const double alpha = (1.0 - level) / 2.0;
  return {weighted_quantile(x, w, alpha), weighted_quantile(x, w, 1.0 - alpha)};
}

void RunningStats::push(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1)
                : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::std_dev() const noexcept { return std::sqrt(variance()); }

}  // namespace epismc::stats
