#pragma once

// Fixed-bin weighted histogram; backs the prior/posterior density panels of
// Figure 3 and the ASCII density renderings in the bench harness.

#include <span>
#include <vector>

namespace epismc::stats {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  void add_all(std::span<const double> xs, std::span<const double> ws = {});

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Probability density per bin (integrates to ~1 over [lo, hi]).
  [[nodiscard]] std::vector<double> density() const;

  /// Index of the fullest bin.
  [[nodiscard]] std::size_t mode_bin() const;

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace epismc::stats
