#pragma once

// Log-densities and log-pmfs used by likelihoods and priors.
//
// Everything returns natural-log values and -inf outside the support, so
// likelihood products become sums that can be fed straight into
// log_sum_exp-based weight normalization.

#include <cstdint>
#include <span>

namespace epismc::stats {

/// log N(x | mean, sd), sd > 0.
[[nodiscard]] double normal_logpdf(double x, double mean, double sd);

/// log of the product of independent normals along two equal-length spans.
[[nodiscard]] double diag_normal_logpdf(std::span<const double> x,
                                        std::span<const double> mean,
                                        double sd);

/// log Uniform(x | lo, hi).
[[nodiscard]] double uniform_logpdf(double x, double lo, double hi);

/// log Beta(x | a, b).
[[nodiscard]] double beta_logpdf(double x, double a, double b);

/// log Gamma(x | shape, scale).
[[nodiscard]] double gamma_logpdf(double x, double shape, double scale);

/// log C(n, k): log binomial coefficient via lgamma.
[[nodiscard]] double log_choose(std::int64_t n, std::int64_t k);

/// log Binomial(k | n, p).
[[nodiscard]] double binomial_logpmf(std::int64_t k, std::int64_t n, double p);

/// log Poisson(k | mean).
[[nodiscard]] double poisson_logpmf(std::int64_t k, double mean);

}  // namespace epismc::stats
