#include "stats/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace epismc::stats {

namespace {
void check_sizes(std::size_t a, std::size_t b, const char* what) {
  if (a != b || a == 0) throw std::invalid_argument(what);
}
}  // namespace

double rmse(std::span<const double> estimate, std::span<const double> truth) {
  check_sizes(estimate.size(), truth.size(), "rmse: size mismatch or empty");
  double acc = 0.0;
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    const double d = estimate[i] - truth[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(estimate.size()));
}

double mae(std::span<const double> estimate, std::span<const double> truth) {
  check_sizes(estimate.size(), truth.size(), "mae: size mismatch or empty");
  double acc = 0.0;
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    acc += std::fabs(estimate[i] - truth[i]);
  }
  return acc / static_cast<double>(estimate.size());
}

double interval_coverage(std::span<const Interval> intervals,
                         std::span<const double> truth) {
  check_sizes(intervals.size(), truth.size(),
              "interval_coverage: size mismatch or empty");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].contains(truth[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(intervals.size());
}

double mean_interval_width(std::span<const Interval> intervals) {
  if (intervals.empty()) {
    throw std::invalid_argument("mean_interval_width: empty");
  }
  double acc = 0.0;
  for (const auto& iv : intervals) acc += iv.width();
  return acc / static_cast<double>(intervals.size());
}

double crps_ensemble(std::span<const double> ensemble, double observation) {
  if (ensemble.empty()) throw std::invalid_argument("crps_ensemble: empty");
  // O(n log n) form: CRPS = mean|x_i - y| + mean(x_i) - 2/n^2 * sum i*x_(i)
  // using the identity E|X-X'| = 2/n^2 * sum_i (2i - n - 1) x_(i) on sorted x.
  std::vector<double> sorted(ensemble.begin(), ensemble.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double term1 = 0.0;
  double gini = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    term1 += std::fabs(sorted[i] - observation);
    gini += (2.0 * static_cast<double>(i + 1) - n - 1.0) * sorted[i];
  }
  term1 /= n;
  const double term2 = gini / (n * n);
  return term1 - term2;
}

}  // namespace epismc::stats
