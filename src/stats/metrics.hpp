#pragma once

// Calibration-quality metrics used by EXPERIMENTS.md and the ablation
// benches: pointwise error of posterior summaries against known truth,
// and frequentist coverage of credible intervals.

#include <span>

#include "stats/descriptive.hpp"

namespace epismc::stats {

[[nodiscard]] double rmse(std::span<const double> estimate,
                          std::span<const double> truth);

[[nodiscard]] double mae(std::span<const double> estimate,
                         std::span<const double> truth);

/// Fraction of truth values falling inside the matching interval.
[[nodiscard]] double interval_coverage(std::span<const Interval> intervals,
                                       std::span<const double> truth);

/// Mean interval width (sharpness; lower is better at fixed coverage).
[[nodiscard]] double mean_interval_width(std::span<const Interval> intervals);

/// Sample-based continuous ranked probability score for one observation:
/// CRPS = E|X - y| - 0.5 E|X - X'| estimated from an ensemble.
[[nodiscard]] double crps_ensemble(std::span<const double> ensemble,
                                   double observation);

}  // namespace epismc::stats
