#include "stats/densities.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace epismc::stats {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLogSqrt2Pi = 0.91893853320467274178;  // log(sqrt(2*pi))
}  // namespace

double normal_logpdf(double x, double mean, double sd) {
  if (!(sd > 0.0)) throw std::invalid_argument("normal_logpdf: sd must be > 0");
  const double z = (x - mean) / sd;
  return -0.5 * z * z - std::log(sd) - kLogSqrt2Pi;
}

double diag_normal_logpdf(std::span<const double> x,
                          std::span<const double> mean, double sd) {
  if (x.size() != mean.size()) {
    throw std::invalid_argument("diag_normal_logpdf: size mismatch");
  }
  if (!(sd > 0.0)) {
    throw std::invalid_argument("diag_normal_logpdf: sd must be > 0");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double z = (x[i] - mean[i]) / sd;
    acc += -0.5 * z * z;
  }
  return acc - static_cast<double>(x.size()) * (std::log(sd) + kLogSqrt2Pi);
}

double uniform_logpdf(double x, double lo, double hi) {
  if (!(hi > lo)) throw std::invalid_argument("uniform_logpdf: hi must be > lo");
  if (x < lo || x > hi) return kNegInf;
  return -std::log(hi - lo);
}

double beta_logpdf(double x, double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("beta_logpdf: a and b must be > 0");
  }
  if (x < 0.0 || x > 1.0) return kNegInf;
  if (x == 0.0) return a < 1.0 ? std::numeric_limits<double>::infinity()
               : (a == 1.0 ? std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b)
                           : kNegInf);
  if (x == 1.0) return b < 1.0 ? std::numeric_limits<double>::infinity()
               : (b == 1.0 ? std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b)
                           : kNegInf);
  const double log_beta =
      std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  return (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - log_beta;
}

double gamma_logpdf(double x, double shape, double scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("gamma_logpdf: shape and scale must be > 0");
  }
  if (x < 0.0) return kNegInf;
  if (x == 0.0) {
    if (shape < 1.0) return std::numeric_limits<double>::infinity();
    if (shape == 1.0) return -std::log(scale);
    return kNegInf;
  }
  return (shape - 1.0) * std::log(x) - x / scale - std::lgamma(shape) -
         shape * std::log(scale);
}

double log_choose(std::int64_t n, std::int64_t k) {
  if (n < 0 || k < 0 || k > n) return kNegInf;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_logpmf(std::int64_t k, std::int64_t n, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("binomial_logpmf: p must be in [0, 1]");
  }
  if (k < 0 || k > n || n < 0) return kNegInf;
  if (p == 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p == 1.0) return k == n ? 0.0 : kNegInf;
  return log_choose(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double poisson_logpmf(std::int64_t k, double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson_logpmf: mean < 0");
  if (k < 0) return kNegInf;
  if (mean == 0.0) return k == 0 ? 0.0 : kNegInf;
  return static_cast<double>(k) * std::log(mean) - mean -
         std::lgamma(static_cast<double>(k) + 1.0);
}

}  // namespace epismc::stats
