#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/weights.hpp"

namespace epismc::stats {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014326779;

std::vector<double> uniform_weights(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace: need >= 2 points");
  std::vector<double> g(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = lo + static_cast<double>(i) * step;
  }
  return g;
}

}  // namespace

double silverman_bandwidth(std::span<const double> x,
                           std::span<const double> w) {
  if (x.empty()) throw std::invalid_argument("silverman_bandwidth: empty");
  std::vector<double> wv;
  if (w.empty()) {
    wv = uniform_weights(x.size());
    w = wv;
  }
  const double sd = std::sqrt(std::max(weighted_variance(x, w), 1e-300));
  const double n_eff = std::max(effective_sample_size(w), 2.0);
  return 1.06 * sd * std::pow(n_eff, -0.2);
}

std::vector<double> kde_1d(std::span<const double> samples,
                           std::span<const double> weights,
                           std::span<const double> grid, double bandwidth) {
  if (samples.empty()) throw std::invalid_argument("kde_1d: empty samples");
  std::vector<double> wv;
  if (weights.empty()) {
    wv = uniform_weights(samples.size());
    weights = wv;
  }
  if (weights.size() != samples.size()) {
    throw std::invalid_argument("kde_1d: weight size mismatch");
  }
  const double h =
      bandwidth > 0.0 ? bandwidth : silverman_bandwidth(samples, weights);
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::domain_error("kde_1d: zero total weight");

  std::vector<double> out(grid.size(), 0.0);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    double acc = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double z = (grid[g] - samples[i]) / h;
      acc += weights[i] * std::exp(-0.5 * z * z);
    }
    out[g] = acc * kInvSqrt2Pi / (h * total);
  }
  return out;
}

double Kde2dResult::total_mass() const {
  return std::accumulate(density.begin(), density.end(), 0.0) * cell_area;
}

std::pair<double, double> Kde2dResult::mode() const {
  const auto it = std::max_element(density.begin(), density.end());
  const auto idx = static_cast<std::size_t>(std::distance(density.begin(), it));
  const std::size_t nx = x_grid.size();
  return {x_grid[idx % nx], y_grid[idx / nx]};
}

Kde2dResult kde_2d(std::span<const double> xs, std::span<const double> ys,
                   std::span<const double> weights, double x_lo, double x_hi,
                   std::size_t nx, double y_lo, double y_hi, std::size_t ny,
                   double bandwidth_x, double bandwidth_y) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("kde_2d: size mismatch or empty");
  }
  std::vector<double> wv;
  if (weights.empty()) {
    wv = uniform_weights(xs.size());
    weights = wv;
  }
  if (weights.size() != xs.size()) {
    throw std::invalid_argument("kde_2d: weight size mismatch");
  }
  const double hx =
      bandwidth_x > 0.0 ? bandwidth_x : silverman_bandwidth(xs, weights);
  const double hy =
      bandwidth_y > 0.0 ? bandwidth_y : silverman_bandwidth(ys, weights);
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::domain_error("kde_2d: zero total weight");

  Kde2dResult res;
  res.x_grid = linspace(x_lo, x_hi, nx);
  res.y_grid = linspace(y_lo, y_hi, ny);
  res.cell_area = (res.x_grid[1] - res.x_grid[0]) *
                  (res.y_grid[1] - res.y_grid[0]);
  res.density.assign(nx * ny, 0.0);

  // Precompute per-sample kernel values along each axis, then take the
  // outer product: O(n*(nx+ny)) kernel evaluations instead of O(n*nx*ny).
  std::vector<double> kx(xs.size() * nx);
  std::vector<double> ky(ys.size() * ny);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t gx = 0; gx < nx; ++gx) {
      const double z = (res.x_grid[gx] - xs[i]) / hx;
      kx[i * nx + gx] = std::exp(-0.5 * z * z);
    }
    for (std::size_t gy = 0; gy < ny; ++gy) {
      const double z = (res.y_grid[gy] - ys[i]) / hy;
      ky[i * ny + gy] = std::exp(-0.5 * z * z);
    }
  }
  const double norm =
      kInvSqrt2Pi * kInvSqrt2Pi / (hx * hy * total);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double wi = weights[i];
    if (wi <= 0.0) continue;
    for (std::size_t gy = 0; gy < ny; ++gy) {
      const double wy = wi * ky[i * ny + gy];
      if (wy <= 0.0) continue;
      double* row = res.density.data() + gy * nx;
      const double* kxi = kx.data() + i * nx;
      for (std::size_t gx = 0; gx < nx; ++gx) {
        row[gx] += wy * kxi[gx];
      }
    }
  }
  for (double& d : res.density) d *= norm;
  return res;
}

std::vector<double> hpd_levels(const Kde2dResult& kde,
                               std::span<const double> masses) {
  std::vector<double> sorted(kde.density.begin(), kde.density.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total =
      std::accumulate(sorted.begin(), sorted.end(), 0.0) * kde.cell_area;

  std::vector<double> levels;
  levels.reserve(masses.size());
  for (const double mass : masses) {
    if (!(mass > 0.0 && mass < 1.0)) {
      throw std::invalid_argument("hpd_levels: mass must be in (0, 1)");
    }
    const double target = mass * total;
    double cum = 0.0;
    double level = sorted.empty() ? 0.0 : sorted.front();
    for (const double d : sorted) {
      cum += d * kde.cell_area;
      level = d;
      if (cum >= target) break;
    }
    levels.push_back(level);
  }
  return levels;
}

double box_mass(const Kde2dResult& kde, double x0, double x1, double y0,
                double y1) {
  double mass = 0.0;
  const std::size_t nx = kde.x_grid.size();
  for (std::size_t gy = 0; gy < kde.y_grid.size(); ++gy) {
    if (kde.y_grid[gy] < y0 || kde.y_grid[gy] > y1) continue;
    for (std::size_t gx = 0; gx < nx; ++gx) {
      if (kde.x_grid[gx] < x0 || kde.x_grid[gx] > x1) continue;
      mass += kde.density[gy * nx + gx];
    }
  }
  return mass * kde.cell_area;
}

}  // namespace epismc::stats
