#include "stats/resampling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "random/alias_table.hpp"

namespace epismc::stats {

namespace {

double validated_total(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("resample: empty weight vector");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("resample: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("resample: zero total weight");
  return total;
}

/// Walk the cumulative weight function against a sorted sequence of points
/// in [0, total); shared by stratified and systematic schemes.
std::vector<std::uint32_t> resample_comb(std::span<const double> weights,
                                         std::span<const double> points) {
  std::vector<std::uint32_t> idx(points.size());
  std::size_t j = 0;
  double cum = weights[0];
  for (std::size_t k = 0; k < points.size(); ++k) {
    while (points[k] > cum && j + 1 < weights.size()) {
      ++j;
      cum += weights[j];
    }
    idx[k] = static_cast<std::uint32_t>(j);
  }
  return idx;
}

}  // namespace

const char* to_string(ResamplingScheme scheme) {
  switch (scheme) {
    case ResamplingScheme::kMultinomial: return "multinomial";
    case ResamplingScheme::kStratified: return "stratified";
    case ResamplingScheme::kSystematic: return "systematic";
    case ResamplingScheme::kResidual: return "residual";
  }
  return "unknown";
}

std::vector<std::uint32_t> resample_multinomial(rng::Engine& eng,
                                                std::span<const double> weights,
                                                std::size_t count) {
  validated_total(weights);
  const rng::AliasTable table(weights);
  std::vector<std::uint32_t> idx(count);
  for (auto& i : idx) i = table.sample(eng);
  return idx;
}

std::vector<std::uint32_t> resample_stratified(rng::Engine& eng,
                                               std::span<const double> weights,
                                               std::size_t count) {
  const double total = validated_total(weights);
  if (count == 0) return {};
  std::vector<double> points(count);
  const double stride = total / static_cast<double>(count);
  for (std::size_t k = 0; k < count; ++k) {
    points[k] =
        (static_cast<double>(k) + rng::uniform_double(eng)) * stride;
  }
  return resample_comb(weights, points);
}

std::vector<std::uint32_t> resample_systematic(rng::Engine& eng,
                                               std::span<const double> weights,
                                               std::size_t count) {
  const double total = validated_total(weights);
  if (count == 0) return {};
  std::vector<double> points(count);
  const double stride = total / static_cast<double>(count);
  const double offset = rng::uniform_double(eng) * stride;
  for (std::size_t k = 0; k < count; ++k) {
    points[k] = offset + static_cast<double>(k) * stride;
  }
  return resample_comb(weights, points);
}

std::vector<std::uint32_t> resample_residual(rng::Engine& eng,
                                             std::span<const double> weights,
                                             std::size_t count) {
  const double total = validated_total(weights);
  if (count == 0) return {};
  std::vector<std::uint32_t> idx;
  idx.reserve(count);

  // Deterministic part: floor(count * w_i / total) copies of particle i.
  std::vector<double> residual(weights.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected =
        static_cast<double>(count) * weights[i] / total;
    const auto copies = static_cast<std::size_t>(std::floor(expected));
    for (std::size_t c = 0; c < copies; ++c) {
      idx.push_back(static_cast<std::uint32_t>(i));
    }
    assigned += copies;
    residual[i] = expected - static_cast<double>(copies);
  }

  // Random part: multinomial on the fractional residuals.
  if (assigned < count) {
    const double res_total =
        std::accumulate(residual.begin(), residual.end(), 0.0);
    if (res_total > 0.0) {
      const auto rest =
          resample_multinomial(eng, residual, count - assigned);
      idx.insert(idx.end(), rest.begin(), rest.end());
    } else {
      // All mass was integral; pad with the heaviest particle.
      const auto heaviest = static_cast<std::uint32_t>(std::distance(
          weights.begin(), std::max_element(weights.begin(), weights.end())));
      idx.resize(count, heaviest);
    }
  }
  return idx;
}

std::vector<std::uint32_t> resample(ResamplingScheme scheme, rng::Engine& eng,
                                    std::span<const double> weights,
                                    std::size_t count) {
  switch (scheme) {
    case ResamplingScheme::kMultinomial:
      return resample_multinomial(eng, weights, count);
    case ResamplingScheme::kStratified:
      return resample_stratified(eng, weights, count);
    case ResamplingScheme::kSystematic:
      return resample_systematic(eng, weights, count);
    case ResamplingScheme::kResidual:
      return resample_residual(eng, weights, count);
  }
  throw std::invalid_argument("resample: unknown scheme");
}

std::size_t unique_ancestors(std::span<const std::uint32_t> idx) {
  const std::unordered_set<std::uint32_t> s(idx.begin(), idx.end());
  return s.size();
}

}  // namespace epismc::stats
