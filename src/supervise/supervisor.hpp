#pragma once

// Process-isolated supervised execution of calibration work units.
//
// The durability layer (PR 8) made crashes *survivable*: checkpoints are
// sealed and dual-slotted, resume_latest falls back past corruption. This
// layer makes them *hands-off*: each work unit (a scenario-sweep cell, a
// streaming session, any std::function) runs in a forked child so a
// crash, a wedge or a corrupted address space is contained to that task.
// Children report liveness through a heartbeat pipe the drivers beat via
// core::ProgressReporter at window/day boundaries; the supervisor
// enforces per-task deadlines and stall timeouts (SIGKILL on violation),
// classifies every exit through the TaskOutcome taxonomy, and retries
// retryable failures with deterministic exponential backoff + jitter
// (Philox-seeded, so schedules reproduce bit-for-bit) up to a budget.
// A task whose budget is exhausted fails *alone*: the rest of the fleet
// completes and the SupervisionReport names the casualty precisely.
//
// fork() without exec keeps the child a copy-on-write clone -- task
// bodies capture whatever state they need and the armed fault-injection
// specs are inherited, which is exactly what the recovery tests want.
// Threads vs fork: the supervisor calls parallel::prepare_fork() before
// every spawn, which joins and discards the work-stealing pool's workers;
// parent and child then respawn their own lazily on the next
// parallel_for. That lifted the old "parents must stay out of parallel
// regions" restriction for the pool backend (the default). The OpenMP
// backend keeps its sharp edge: a child forked from a parent that
// already entered an OpenMP region must not re-enter that runtime --
// parallel_for's serial fast path handles child_threads=1 there.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/progress.hpp"
#include "io/checkpoint_rotation.hpp"
#include "supervise/report.hpp"

namespace epismc::supervise {

/// Handed to the task body inside the forked child.
class TaskContext {
 public:
  /// Emit one heartbeat (a byte down the supervisor's pipe). Cheap,
  /// non-blocking, never throws; drivers call it through progress().
  void beat() const noexcept;

  /// Which attempt this is (0-based; >0 means a retry).
  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

  /// A ProgressReporter wired to beat() -- thread this through the
  /// calibrator so every window/day boundary refreshes liveness.
  [[nodiscard]] core::ProgressReporter progress() const;

  /// Record recovered-slot provenance for this attempt's report row
  /// (call after resume_latest succeeds).
  void report_recovery(const io::RecoveredSlot& slot) const;

  /// Attach a free-form note to this attempt's report row (exception
  /// text, degradation detail). Last call wins.
  void report_note(const std::string& note) const;

 private:
  friend class Supervisor;
  TaskContext(int heartbeat_fd, std::uint32_t attempt,
              std::filesystem::path sidecar)
      : heartbeat_fd_(heartbeat_fd),
        attempt_(attempt),
        sidecar_(std::move(sidecar)) {}

  void append_sidecar(const std::string& key, const std::string& value) const;

  int heartbeat_fd_;
  std::uint32_t attempt_;
  std::filesystem::path sidecar_;  // child -> parent metadata channel
};

/// One supervised work unit. The body runs in a forked child process: it
/// may crash, hang, or corrupt itself freely. Return 0 for success; throw
/// or return nonzero for failure (ArchiveError and FaultInjected map to
/// the taxonomy's retryable/corrupt exit codes automatically).
struct SupervisedTask {
  std::string name;
  std::string kind = "task";
  std::function<int(TaskContext&)> body;
  /// When set, the supervisor garbage-collects stale save temps around
  /// this rotation base before every attempt (a killed child leaks one
  /// `.tmp.<pid>.<n>` per interrupted save).
  std::filesystem::path checkpoint_base;
};

struct SupervisorOptions {
  /// Retries *after* the first attempt (budget 2 = up to 3 executions).
  std::uint32_t max_retries = 2;
  /// Hard per-attempt wall clock; 0 disables. Exceeding it is a kStall.
  double task_deadline_seconds = 0.0;
  /// Kill an attempt with no heartbeat for this long; 0 disables. The
  /// clock starts at spawn, so it also bounds time-to-first-beat.
  double stall_timeout_seconds = 0.0;
  /// Backoff before retry k (1-based): min(cap, base * 2^(k-1)),
  /// jittered to [0.5, 1.0) of itself by a Philox stream keyed on
  /// (seed, task name, k) -- reproducible, and de-synchronized across
  /// tasks.
  double backoff_base_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  std::uint64_t seed = 20240306;
  /// Concurrent children; 0 means parallel::max_threads().
  std::uint32_t max_concurrent = 0;
  /// Disarm inherited fault-injection specs in retry children (attempt
  /// > 0), modelling transient faults that do not recur. Exhausted-
  /// budget tests set this false to make every attempt fail.
  bool disarm_faults_on_retry = true;
  /// Thread count forced inside each child (pool lanes + OpenMP team);
  /// 0 inherits. Use 1 under the omp backend when the parent may already
  /// have entered an OpenMP region (see the fork note above); the pool
  /// backend needs no such cap.
  int child_threads = 0;
  /// Where run_all saves the sealed SupervisionReport; empty skips.
  std::filesystem::path report_path;
  /// Directory for child->parent sidecar files; empty derives one from
  /// report_path or the system temp dir. Cleaned up by run_all.
  std::filesystem::path scratch_dir;
};

/// How one child ended, as waitpid saw it.
struct ChildStatus {
  bool exited = false;
  int code = 0;
  bool signaled = false;
  int signal = 0;
};

/// Why the supervisor stopped a child, if it did.
enum class StopCause : std::uint8_t { kNone, kStall, kDeadline };

/// Pure exit classification -- the whole taxonomy in one testable
/// function. Supervisor-initiated kills classify as kStall regardless of
/// how the corpse looks; otherwise exit 0 is kOk, the retryable exit
/// code (== fault crash code) and any signal death are kRetryableCrash,
/// the corrupt-checkpoint exit code is kCorruptCheckpoint, and any other
/// clean nonzero exit is kFatal.
[[nodiscard]] TaskOutcome classify_exit(const ChildStatus& status,
                                        StopCause cause) noexcept;

/// Philox stream key for a task name (order-sensitive fold, same scheme
/// as the sweep's scenario seeds).
[[nodiscard]] std::uint64_t task_stream_key(const std::string& name) noexcept;

/// Deterministic jittered backoff before retry `attempt` (1-based).
[[nodiscard]] double backoff_delay(std::uint64_t seed,
                                   std::uint64_t task_key,
                                   std::uint32_t attempt, double base_seconds,
                                   double max_seconds);

/// The full schedule for `retries` retries, for reproducibility tests
/// and operator docs.
[[nodiscard]] std::vector<double> backoff_schedule(std::uint64_t seed,
                                                   std::uint64_t task_key,
                                                   std::uint32_t retries,
                                                   double base_seconds,
                                                   double max_seconds);

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options = {});

  void add_task(SupervisedTask task);
  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] const SupervisorOptions& options() const noexcept {
    return options_;
  }

  /// Run every task to completion or budget exhaustion. Never throws on
  /// task failure -- per-task outcomes live in the report (which is also
  /// saved to options().report_path when set, with fault injection
  /// suppressed around the save so an armed EPISMC_FAULT aimed at the
  /// workers cannot kill the bookkeeping).
  SupervisionReport run_all();

 private:
  SupervisorOptions options_;
  std::vector<SupervisedTask> tasks_;
};

}  // namespace epismc::supervise
