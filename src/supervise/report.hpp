#pragma once

// Outcome taxonomy and structured report for supervised execution.
//
// A supervisor's value is in what it can tell the operator after the
// fact: not just "some cells failed" but which task, on which attempt,
// how it died, how long it ran, and whether a retry resumed from a
// durable checkpoint or started over. TaskOutcome is the typed
// classification every child exit maps into (built on exit codes,
// signals, and the archive layer's retryable/non-retryable split);
// SupervisionReport is the durable record -- it serializes through the
// same sealed binary archive as the calibration checkpoints and dumps
// as CSV for scripts and CI artifacts.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/binary_archive.hpp"

namespace epismc::supervise {

/// How a supervised task ended, in decreasing order of health.
enum class TaskOutcome : std::uint8_t {
  kOk = 0,                // clean exit 0
  kRetryableCrash = 1,    // signal death or the crash exit code: the
                          // process died, the checkpoint (if any) did not
  kStall = 2,             // alive but no heartbeat within stall_timeout,
                          // or past its deadline; killed by the supervisor
  kCorruptCheckpoint = 3, // the child refused its own state: a
                          // non-retryable ArchiveError (corrupt/truncated/
                          // version/foreign-tag) surfaced as exit 87
  kFatal = 4,             // any other nonzero exit: a logic error retries
                          // would only repeat
};

[[nodiscard]] const char* to_string(TaskOutcome outcome);

/// Outcomes the retry budget applies to. A crash or a stall is assumed
/// transient (and a resumed attempt starts from the newest durable slot,
/// not from scratch); corrupt state and logic errors are deterministic,
/// so retrying them only burns the budget.
[[nodiscard]] constexpr bool is_retryable(TaskOutcome outcome) noexcept {
  return outcome == TaskOutcome::kRetryableCrash ||
         outcome == TaskOutcome::kStall;
}

/// Exit code contract between supervised children and the classifier.
/// kRetryableExitCode deliberately equals fault::kCrashExitCode: an
/// injected crash and a caught-retryable-ArchiveError exit classify the
/// same way.
inline constexpr int kRetryableExitCode = 86;
inline constexpr int kCorruptCheckpointExitCode = 87;

/// One execution attempt of one task.
struct TaskAttempt {
  std::uint32_t attempt = 0;     // 0-based
  TaskOutcome outcome = TaskOutcome::kOk;
  std::int32_t exit_code = -1;   // -1 when the child died by signal
  std::int32_t signal = 0;       // 0 when the child exited
  double wall_seconds = 0.0;
  /// Backoff slept *before* this attempt started (0 for attempt 0).
  double backoff_seconds = 0.0;
  /// Recovered-slot provenance, reported by the child through its
  /// sidecar: did this attempt resume from a durable checkpoint, and if
  /// so which generation, and did recovery fall back to the older slot?
  std::uint8_t resumed = 0;
  std::uint64_t recovered_generation = 0;
  std::uint8_t fell_back = 0;
  std::string note;
};

/// Everything the supervisor learned about one task.
struct TaskReport {
  std::string name;
  std::string kind;  // "sweep-cell", "stream", "task"...
  TaskOutcome outcome = TaskOutcome::kOk;  // of the final attempt
  std::vector<TaskAttempt> attempts;
  double wall_seconds = 0.0;  // across all attempts, backoff included

  [[nodiscard]] bool ok() const noexcept {
    return outcome == TaskOutcome::kOk;
  }
  /// Succeeded, but only after at least one failed attempt.
  [[nodiscard]] bool recovered() const noexcept {
    return ok() && attempts.size() > 1;
  }
};

/// The durable run record: per-task attempt histories plus the knobs
/// that shaped them (so a report is interpretable without the command
/// line that produced it).
struct SupervisionReport {
  // v2 added pool_stats (task-pool observability summary). load() still
  // reads v1 archives, leaving pool_stats empty.
  static constexpr std::uint32_t kArchiveVersion = 2;
  static constexpr const char* kArchiveTag = "epismc-supervision";

  std::uint64_t seed = 0;
  std::uint32_t max_retries = 0;
  double task_deadline_seconds = 0.0;
  double stall_timeout_seconds = 0.0;
  std::vector<TaskReport> tasks;
  /// parallel::PoolStats::summary() of the parent's work-stealing pool at
  /// the end of run_all ("lanes=4 workers=3 peak_active=4 tasks=...");
  /// empty when the pool backend never ran anything.
  std::string pool_stats;

  [[nodiscard]] bool all_ok() const noexcept;
  [[nodiscard]] std::size_t n_ok() const noexcept;
  [[nodiscard]] std::size_t n_recovered() const noexcept;
  [[nodiscard]] std::size_t n_failed() const noexcept;
  [[nodiscard]] const TaskReport* find(const std::string& name) const;

  void serialize(io::BinaryWriter& out) const;
  [[nodiscard]] static SupervisionReport deserialize(io::BinaryReader& in);
  /// Sealed-archive persistence (same footer/CRC protocol as
  /// checkpoints); load verifies tag and version.
  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static SupervisionReport load(
      const std::filesystem::path& path);
};

/// One CSV row per attempt: task,kind,attempt,outcome,exit_code,signal,
/// wall_seconds,backoff_seconds,resumed,generation,fell_back,note.
void write_supervision_csv(std::ostream& os, const SupervisionReport& report);

}  // namespace epismc::supervise
