#include "supervise/report.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

namespace epismc::supervise {

namespace {

constexpr std::uint8_t kOutcomeMax =
    static_cast<std::uint8_t>(TaskOutcome::kFatal);

TaskOutcome outcome_from_wire(std::uint8_t raw) {
  if (raw > kOutcomeMax) {
    throw io::ArchiveError(io::ArchiveErrorKind::kCorrupt,
                           "SupervisionReport: unknown TaskOutcome value " +
                               std::to_string(raw));
  }
  return static_cast<TaskOutcome>(raw);
}

// CSV notes may carry anything the child wrote (exception messages with
// commas included); quote when needed, RFC-4180 style.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string fmt_seconds(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

const char* to_string(TaskOutcome outcome) {
  switch (outcome) {
    case TaskOutcome::kOk:
      return "ok";
    case TaskOutcome::kRetryableCrash:
      return "retryable-crash";
    case TaskOutcome::kStall:
      return "stall";
    case TaskOutcome::kCorruptCheckpoint:
      return "corrupt-checkpoint";
    case TaskOutcome::kFatal:
      return "fatal";
  }
  return "unknown";
}

bool SupervisionReport::all_ok() const noexcept {
  return std::all_of(tasks.begin(), tasks.end(),
                     [](const TaskReport& t) { return t.ok(); });
}

std::size_t SupervisionReport::n_ok() const noexcept {
  return static_cast<std::size_t>(std::count_if(
      tasks.begin(), tasks.end(), [](const TaskReport& t) { return t.ok(); }));
}

std::size_t SupervisionReport::n_recovered() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(tasks.begin(), tasks.end(),
                    [](const TaskReport& t) { return t.recovered(); }));
}

std::size_t SupervisionReport::n_failed() const noexcept {
  return tasks.size() - n_ok();
}

const TaskReport* SupervisionReport::find(const std::string& name) const {
  const auto it =
      std::find_if(tasks.begin(), tasks.end(),
                   [&](const TaskReport& t) { return t.name == name; });
  return it == tasks.end() ? nullptr : &*it;
}

void SupervisionReport::serialize(io::BinaryWriter& out) const {
  out.write_string(kArchiveTag);
  out.write(seed);
  out.write(max_retries);
  out.write(task_deadline_seconds);
  out.write(stall_timeout_seconds);
  out.write(static_cast<std::uint64_t>(tasks.size()));
  for (const TaskReport& task : tasks) {
    out.write_string(task.name);
    out.write_string(task.kind);
    out.write(static_cast<std::uint8_t>(task.outcome));
    out.write(task.wall_seconds);
    out.write(static_cast<std::uint64_t>(task.attempts.size()));
    for (const TaskAttempt& a : task.attempts) {
      out.write(a.attempt);
      out.write(static_cast<std::uint8_t>(a.outcome));
      out.write(a.exit_code);
      out.write(a.signal);
      out.write(a.wall_seconds);
      out.write(a.backoff_seconds);
      out.write(a.resumed);
      out.write(a.recovered_generation);
      out.write(a.fell_back);
      out.write_string(a.note);
    }
  }
  out.write_string(pool_stats);  // v2
}

SupervisionReport SupervisionReport::deserialize(io::BinaryReader& in) {
  const std::string tag = in.read_string();
  if (tag != kArchiveTag) {
    throw io::ArchiveError(
        io::ArchiveErrorKind::kForeignTag,
        "SupervisionReport: archive tagged '" + tag + "', expected '" +
            std::string(kArchiveTag) + "'");
  }
  SupervisionReport report;
  report.seed = in.read<std::uint64_t>();
  report.max_retries = in.read<std::uint32_t>();
  report.task_deadline_seconds = in.read<double>();
  report.stall_timeout_seconds = in.read<double>();
  const auto n_tasks = in.read<std::uint64_t>();
  report.tasks.reserve(n_tasks);
  for (std::uint64_t t = 0; t < n_tasks; ++t) {
    TaskReport task;
    task.name = in.read_string();
    task.kind = in.read_string();
    task.outcome = outcome_from_wire(in.read<std::uint8_t>());
    task.wall_seconds = in.read<double>();
    const auto n_attempts = in.read<std::uint64_t>();
    task.attempts.reserve(n_attempts);
    for (std::uint64_t a = 0; a < n_attempts; ++a) {
      TaskAttempt attempt;
      attempt.attempt = in.read<std::uint32_t>();
      attempt.outcome = outcome_from_wire(in.read<std::uint8_t>());
      attempt.exit_code = in.read<std::int32_t>();
      attempt.signal = in.read<std::int32_t>();
      attempt.wall_seconds = in.read<double>();
      attempt.backoff_seconds = in.read<double>();
      attempt.resumed = in.read<std::uint8_t>();
      attempt.recovered_generation = in.read<std::uint64_t>();
      attempt.fell_back = in.read<std::uint8_t>();
      attempt.note = in.read_string();
      task.attempts.push_back(std::move(attempt));
    }
    report.tasks.push_back(std::move(task));
  }
  if (in.version() >= 2) {
    report.pool_stats = in.read_string();
  }
  return report;
}

void SupervisionReport::save(const std::filesystem::path& path) const {
  io::BinaryWriter out(kArchiveVersion);
  serialize(out);
  out.save(path);
}

SupervisionReport SupervisionReport::load(const std::filesystem::path& path) {
  io::BinaryReader in = io::BinaryReader::load(path);
  if (in.version() < 1 || in.version() > kArchiveVersion) {
    throw io::ArchiveError(
        io::ArchiveErrorKind::kVersion,
        "SupervisionReport: archive version " + std::to_string(in.version()) +
            ", this build reads versions 1.." +
            std::to_string(kArchiveVersion));
  }
  return deserialize(in);
}

void write_supervision_csv(std::ostream& os, const SupervisionReport& report) {
  os << "task,kind,attempt,outcome,exit_code,signal,wall_seconds,"
        "backoff_seconds,resumed,generation,fell_back,note\n";
  for (const TaskReport& task : report.tasks) {
    for (const TaskAttempt& a : task.attempts) {
      os << csv_field(task.name) << ',' << csv_field(task.kind) << ','
         << a.attempt << ',' << to_string(a.outcome) << ',' << a.exit_code
         << ',' << a.signal << ',' << fmt_seconds(a.wall_seconds) << ','
         << fmt_seconds(a.backoff_seconds) << ','
         << static_cast<int>(a.resumed) << ',' << a.recovered_generation
         << ',' << static_cast<int>(a.fell_back) << ',' << csv_field(a.note)
         << '\n';
    }
  }
}

}  // namespace epismc::supervise
