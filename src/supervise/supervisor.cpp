#include "supervise/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <deque>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fault/fault.hpp"
#include "parallel/parallel.hpp"
#include "random/seeding.hpp"

namespace epismc::supervise {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kBackoffTag = 0x4241434B4F4646ull;  // "BACKOFF"

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Uniform in [0, 1) from one Philox draw, the engine's canonical mapping.
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// Sidecar values travel one per line; strip the newlines a free-form
// exception message may carry.
std::string one_line(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '\r', ' ');
  return s;
}

/// Parse the child's sidecar (`key=value` lines, last value per key
/// wins) into the attempt row. Missing or unreadable sidecars are fine:
/// a child that died before reporting simply has nothing to say.
void apply_sidecar(const std::filesystem::path& sidecar, TaskAttempt& row) {
  std::ifstream in(sidecar);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "note") {
      row.note = value;
    } else if (key == "resumed") {
      row.resumed = value == "1" ? 1 : 0;
    } else if (key == "generation") {
      try {
        row.recovered_generation = std::stoull(value);
      } catch (const std::exception&) {
        // Torn sidecar line; keep the default.
      }
    } else if (key == "fell_back") {
      row.fell_back = value == "1" ? 1 : 0;
    }
  }
}

}  // namespace

void TaskContext::beat() const noexcept {
  if (heartbeat_fd_ < 0) return;
  // Best-effort: a full pipe or a closed parent end must never take the
  // worker down (SIGPIPE is ignored in supervised children).
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(heartbeat_fd_, &byte, 1);
}

core::ProgressReporter TaskContext::progress() const {
  const int fd = heartbeat_fd_;
  return core::ProgressReporter{[fd]() {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }};
}

void TaskContext::append_sidecar(const std::string& key,
                                 const std::string& value) const {
  if (sidecar_.empty()) return;
  std::ofstream out(sidecar_, std::ios::app);
  if (!out) return;
  out << key << '=' << one_line(value) << '\n';
}

void TaskContext::report_recovery(const io::RecoveredSlot& slot) const {
  append_sidecar("resumed", "1");
  append_sidecar("generation", std::to_string(slot.generation));
  append_sidecar("fell_back", slot.fell_back ? "1" : "0");
  if (!slot.note.empty()) append_sidecar("note", slot.note);
}

void TaskContext::report_note(const std::string& note) const {
  append_sidecar("note", note);
}

TaskOutcome classify_exit(const ChildStatus& status, StopCause cause) noexcept {
  // The supervisor pulled the trigger: however the corpse looks (the
  // SIGKILL usually lands as a signal death), the diagnosis is the
  // missed liveness contract.
  if (cause != StopCause::kNone) return TaskOutcome::kStall;
  if (status.exited) {
    if (status.code == 0) return TaskOutcome::kOk;
    if (status.code == kRetryableExitCode) return TaskOutcome::kRetryableCrash;
    if (status.code == kCorruptCheckpointExitCode) {
      return TaskOutcome::kCorruptCheckpoint;
    }
    return TaskOutcome::kFatal;
  }
  if (status.signaled) return TaskOutcome::kRetryableCrash;
  return TaskOutcome::kFatal;  // waitpid reported neither; treat as broken
}

std::uint64_t task_stream_key(const std::string& name) noexcept {
  std::uint64_t key = 0x53555056ull;  // "SUPV"
  for (const unsigned char c : name) key = rng::hash_combine(key, c);
  return key;
}

double backoff_delay(std::uint64_t seed, std::uint64_t task_key,
                     std::uint32_t attempt, double base_seconds,
                     double max_seconds) {
  if (attempt == 0 || base_seconds <= 0.0) return 0.0;
  const double raw = std::min(
      max_seconds, base_seconds * std::ldexp(1.0, static_cast<int>(
                                                      std::min(attempt, 60u)) -
                                                      1));
  rng::PhiloxEngine engine =
      rng::make_engine(seed, {kBackoffTag, task_key, attempt});
  const double u = to_unit(engine());
  // Jitter to [raw/2, raw): retries of different tasks de-synchronize
  // without any schedule ever collapsing to zero.
  return raw * (0.5 + 0.5 * u);
}

std::vector<double> backoff_schedule(std::uint64_t seed,
                                     std::uint64_t task_key,
                                     std::uint32_t retries,
                                     double base_seconds,
                                     double max_seconds) {
  std::vector<double> schedule;
  schedule.reserve(retries);
  for (std::uint32_t k = 1; k <= retries; ++k) {
    schedule.push_back(
        backoff_delay(seed, task_key, k, base_seconds, max_seconds));
  }
  return schedule;
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

void Supervisor::add_task(SupervisedTask task) {
  if (task.name.empty()) {
    throw std::invalid_argument("Supervisor::add_task: task needs a name");
  }
  if (!task.body) {
    throw std::invalid_argument("Supervisor::add_task: task '" + task.name +
                                "' has no body");
  }
  tasks_.push_back(std::move(task));
}

SupervisionReport Supervisor::run_all() {
  SupervisionReport report;
  report.seed = options_.seed;
  report.max_retries = options_.max_retries;
  report.task_deadline_seconds = options_.task_deadline_seconds;
  report.stall_timeout_seconds = options_.stall_timeout_seconds;
  report.tasks.resize(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    report.tasks[i].name = tasks_[i].name;
    report.tasks[i].kind = tasks_[i].kind;
  }
  if (tasks_.empty()) return report;

  // Scratch directory for the child->parent sidecar files.
  std::filesystem::path scratch = options_.scratch_dir;
  if (scratch.empty()) {
    scratch = options_.report_path.empty()
                  ? std::filesystem::temp_directory_path() /
                        ("epismc-supervise." + std::to_string(::getpid()))
                  : std::filesystem::path(options_.report_path.string() +
                                          ".scratch");
  }
  std::error_code scratch_ec;
  std::filesystem::create_directories(scratch, scratch_ec);

  const std::size_t max_concurrent =
      options_.max_concurrent > 0
          ? options_.max_concurrent
          : static_cast<std::size_t>(std::max(1, parallel::max_threads()));

  struct Pending {
    std::size_t index = 0;
    std::uint32_t attempt = 0;
    double backoff = 0.0;
    Clock::time_point ready;
  };
  struct Running {
    std::size_t index = 0;
    std::uint32_t attempt = 0;
    double backoff = 0.0;
    pid_t pid = -1;
    int heartbeat_fd = -1;
    Clock::time_point start;
    Clock::time_point last_beat;
    StopCause cause = StopCause::kNone;
    std::filesystem::path sidecar;
  };

  std::deque<Pending> pending;
  const Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    pending.push_back(Pending{i, 0, 0.0, t0});
  }
  std::vector<Running> running;
  std::vector<double> task_wall(tasks_.size(), 0.0);

  const auto spawn = [&](const Pending& p) -> Running {
    const SupervisedTask& task = tasks_[p.index];
    if (!task.checkpoint_base.empty()) {
      // A previously killed attempt may have leaked a save temp; collect
      // it before the next attempt writes its own.
      io::CheckpointRotation(task.checkpoint_base).gc_stale_temps();
    }
    Running r;
    r.index = p.index;
    r.attempt = p.attempt;
    r.backoff = p.backoff;
    r.sidecar = scratch / ("task" + std::to_string(p.index) + ".a" +
                           std::to_string(p.attempt) + ".meta");
    std::error_code rm_ec;
    std::filesystem::remove(r.sidecar, rm_ec);  // stale from a prior run

    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      throw std::system_error(errno, std::generic_category(),
                              "Supervisor: pipe() failed");
    }
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);

    // Join and discard pool workers so the child is born single-threaded
    // with no inherited lock state; both sides respawn lazily on their
    // next parallel_for. This is what lets the parent run parallel work
    // between spawns (the old restriction required it to stay serial).
    parallel::prepare_fork();

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::system_error(errno, std::generic_category(),
                              "Supervisor: fork() failed");
    }
    if (pid == 0) {
      // --- child ---
      ::close(fds[0]);
      std::signal(SIGPIPE, SIG_IGN);
      if (p.attempt > 0 && options_.disarm_faults_on_retry) fault::disarm();
      if (options_.child_threads > 0) {
        parallel::set_threads(options_.child_threads);
      }
      TaskContext ctx(fds[1], p.attempt, r.sidecar);
      int code = 0;
      try {
        code = task.body(ctx);
      } catch (const fault::FaultInjected& e) {
        ctx.report_note(e.what());
        code = kRetryableExitCode;
      } catch (const io::ArchiveError& e) {
        ctx.report_note(e.what());
        code = e.retryable() ? kRetryableExitCode : kCorruptCheckpointExitCode;
      } catch (const std::exception& e) {
        ctx.report_note(e.what());
        code = 1;
      }
      // _Exit: no atexit handlers, no flushed parent-inherited streams,
      // no ASan leak sweep over the COW heap -- the child's only legacy
      // is its exit code, its sidecar and its checkpoints.
      std::_Exit(code & 0xFF);
    }
    // --- parent ---
    ::close(fds[1]);
    r.pid = pid;
    r.heartbeat_fd = fds[0];
    r.start = Clock::now();
    r.last_beat = r.start;
    return r;
  };

  while (!pending.empty() || !running.empty()) {
    const Clock::time_point now = Clock::now();

    // Launch ready tasks into free slots, submission order preserved.
    for (auto it = pending.begin();
         it != pending.end() && running.size() < max_concurrent;) {
      if (it->ready <= now) {
        running.push_back(spawn(*it));
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    for (std::size_t ri = 0; ri < running.size();) {
      Running& r = running[ri];

      // Drain heartbeats.
      char buf[256];
      ssize_t n;
      while ((n = ::read(r.heartbeat_fd, buf, sizeof buf)) > 0) {
        r.last_beat = Clock::now();
      }

      // Enforce the liveness contract (once; the kill is not repeated).
      if (r.cause == StopCause::kNone) {
        const Clock::time_point check = Clock::now();
        if (options_.task_deadline_seconds > 0.0 &&
            seconds_between(r.start, check) > options_.task_deadline_seconds) {
          r.cause = StopCause::kDeadline;
        } else if (options_.stall_timeout_seconds > 0.0 &&
                   seconds_between(r.last_beat, check) >
                       options_.stall_timeout_seconds) {
          r.cause = StopCause::kStall;
        }
        if (r.cause != StopCause::kNone) ::kill(r.pid, SIGKILL);
      }

      int wstatus = 0;
      const pid_t reaped = ::waitpid(r.pid, &wstatus, WNOHANG);
      if (reaped != r.pid) {
        ++ri;
        continue;
      }

      // Final drain, then release the pipe.
      while (::read(r.heartbeat_fd, buf, sizeof buf) > 0) {
      }
      ::close(r.heartbeat_fd);

      ChildStatus status;
      if (WIFEXITED(wstatus)) {
        status.exited = true;
        status.code = WEXITSTATUS(wstatus);
      } else if (WIFSIGNALED(wstatus)) {
        status.signaled = true;
        status.signal = WTERMSIG(wstatus);
      }

      TaskAttempt row;
      row.attempt = r.attempt;
      row.outcome = classify_exit(status, r.cause);
      row.exit_code = status.exited ? status.code : -1;
      row.signal = status.signaled ? status.signal : 0;
      row.wall_seconds = seconds_between(r.start, Clock::now());
      row.backoff_seconds = r.backoff;
      apply_sidecar(r.sidecar, row);
      std::error_code rm_ec;
      std::filesystem::remove(r.sidecar, rm_ec);

      TaskReport& task_report = report.tasks[r.index];
      task_wall[r.index] += row.backoff_seconds + row.wall_seconds;
      const TaskOutcome outcome = row.outcome;
      task_report.attempts.push_back(std::move(row));
      task_report.outcome = outcome;
      task_report.wall_seconds = task_wall[r.index];

      if (is_retryable(outcome) && r.attempt < options_.max_retries) {
        const std::uint32_t next = r.attempt + 1;
        const double delay = backoff_delay(
            options_.seed, task_stream_key(tasks_[r.index].name), next,
            options_.backoff_base_seconds, options_.backoff_max_seconds);
        pending.push_back(
            Pending{r.index, next, delay,
                    Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(delay))});
      }

      running.erase(running.begin() + static_cast<std::ptrdiff_t>(ri));
      // Do not advance ri: the erase shifted the next entry into place.
    }

    if (!running.empty() || !pending.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  std::error_code cleanup_ec;
  std::filesystem::remove_all(scratch, cleanup_ec);

  // Pool observability for the operator: did the parent's parallel work
  // between spawns actually schedule (tasks/steals), and did the
  // teardown/respawn protocol keep the lane count bounded (peak_active)?
  {
    const parallel::PoolStats ps = parallel::pool_stats();
    if (ps.totals().tasks_run > 0) report.pool_stats = ps.summary();
  }

  if (!options_.report_path.empty()) {
    // The workers' fault matrix must not be able to shoot the scribe:
    // suppress any armed specs around the report save.
    fault::ScopedSuppress suppress;
    report.save(options_.report_path);
  }
  return report;
}

}  // namespace epismc::supervise
