#pragma once

// Console table and ASCII chart rendering for the bench harness. The paper's
// figures are re-emitted as aligned numeric tables plus coarse ASCII series
// so results are inspectable straight from the terminal or CI log.

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace epismc::io {

/// Aligned fixed-width console table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  template <typename... Ts>
  void add_row_values(const Ts&... values) {
    std::vector<std::string> row;
    row.reserve(sizeof...(values));
    (row.push_back(to_cell(values)), ...);
    add_row(std::move(row));
  }

  void print(std::ostream& os) const;
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Format a double with fixed precision.
  static std::string num(double v, int precision = 3);

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      return num(v);
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a single series as an ASCII line chart (rows = height levels).
/// `log_scale` plots log10(1 + y), matching the paper's log-count axes.
[[nodiscard]] std::string ascii_chart(std::span<const double> series,
                                      std::size_t width = 72,
                                      std::size_t height = 16,
                                      bool log_scale = false);

/// Render a band (lo/mid/hi series) as an ASCII ribbon chart; used for the
/// credible-interval panels of Figures 4 and 5.
[[nodiscard]] std::string ascii_band_chart(std::span<const double> lo,
                                           std::span<const double> mid,
                                           std::span<const double> hi,
                                           std::span<const double> observed,
                                           std::size_t width = 72,
                                           std::size_t height = 18,
                                           bool log_scale = true);

}  // namespace epismc::io
