#include "io/checkpoint_rotation.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace epismc::io {

namespace {

/// Footer-only peek: generation ordering without reading (or CRC-ing)
/// the payload, so save_next stays O(footer) per slot. Returns nullopt
/// when the file is missing, too small, or carries no footer magic.
std::optional<ArchiveFooter> peek_footer(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamsize size = in.tellg();
  if (size < static_cast<std::streamsize>(ArchiveFooter::kBytes)) {
    return std::nullopt;
  }
  in.seekg(size - static_cast<std::streamsize>(ArchiveFooter::kBytes));
  char raw[ArchiveFooter::kBytes];
  in.read(raw, sizeof raw);
  if (!in) return std::nullopt;
  ArchiveFooter footer;
  std::memcpy(&footer.payload_bytes, raw, sizeof footer.payload_bytes);
  std::memcpy(&footer.generation, raw + 8, sizeof footer.generation);
  std::memcpy(&footer.magic, raw + 16, sizeof footer.magic);
  std::memcpy(&footer.crc, raw + 20, sizeof footer.crc);
  if (footer.magic != ArchiveFooter::kMagic) return std::nullopt;
  return footer;
}

}  // namespace

SlotInfo inspect_archive(const std::filesystem::path& path) {
  SlotInfo info;
  info.path = path;
  std::error_code ec;
  info.exists = std::filesystem::exists(path, ec) && !ec;
  if (!info.exists) {
    info.error = "missing";
    return info;
  }
  if (const auto footer = peek_footer(path)) {
    info.generation = footer->generation;
  }
  try {
    BinaryReader reader = BinaryReader::load(path);
    info.usable = true;
    info.generation = reader.generation();
    info.version = reader.version();
    info.payload_bytes = reader.remaining() + 2 * sizeof(std::uint32_t);
    // Best-effort payload identification: our archives that carry a tag
    // (e.g. StreamState) write it as the leading string.
    try {
      std::string tag = reader.read_string();
      const bool printable = !tag.empty() && tag.size() <= 64 &&
                             std::all_of(tag.begin(), tag.end(), [](char c) {
                               return c >= 0x20 && c < 0x7F;
                             });
      if (printable) info.tag = std::move(tag);
    } catch (const ArchiveError&) {
      // Tagless archive; leave tag empty.
    }
  } catch (const ArchiveError& e) {
    info.usable = false;
    info.error = e.what();
  }
  return info;
}

CheckpointRotation::CheckpointRotation(std::filesystem::path base)
    : base_(std::move(base)) {
  if (base_.empty()) {
    throw std::invalid_argument("CheckpointRotation: empty base path");
  }
}

std::filesystem::path CheckpointRotation::slot_a() const {
  return base_.string() + ".a";
}

std::filesystem::path CheckpointRotation::slot_b() const {
  return base_.string() + ".b";
}

std::array<std::filesystem::path, 2> CheckpointRotation::slots() const {
  return {slot_a(), slot_b()};
}

std::filesystem::path CheckpointRotation::save_next(
    const BinaryWriter& out) const {
  const auto gen_of = [](const std::filesystem::path& p) -> std::uint64_t {
    const auto footer = peek_footer(p);
    return footer ? footer->generation : 0;
  };
  const std::uint64_t gen_a = gen_of(slot_a());
  const std::uint64_t gen_b = gen_of(slot_b());
  // Target the slot NOT holding the newest generation, so the newest
  // durable checkpoint survives a crash at any point of this save.
  const std::filesystem::path target = gen_a > gen_b ? slot_b() : slot_a();
  out.save(target, std::max(gen_a, gen_b) + 1);
  return target;
}

std::array<SlotInfo, 2> CheckpointRotation::inspect() const {
  return {inspect_archive(slot_a()), inspect_archive(slot_b())};
}

std::size_t CheckpointRotation::gc_stale_temps() const {
  std::filesystem::path dir = base_.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  // BinaryWriter::save temps are `<final>.tmp.<pid>.<counter>`; match on
  // the slot (and bare-base) filename prefixes so unrelated files in the
  // checkpoint directory are never touched.
  const std::array<std::string, 3> prefixes = {
      slot_a().filename().string() + ".tmp.",
      slot_b().filename().string() + ".tmp.",
      base_.filename().string() + ".tmp."};
  std::size_t removed = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    const bool stale = std::any_of(
        prefixes.begin(), prefixes.end(), [&](const std::string& prefix) {
          return name.size() > prefix.size() &&
                 name.compare(0, prefix.size(), prefix) == 0;
        });
    if (!stale) continue;
    std::error_code rm_ec;
    if (std::filesystem::remove(entry.path(), rm_ec) && !rm_ec) ++removed;
  }
  return removed;
}

std::array<SlotInfo, 2> CheckpointRotation::by_recency() const {
  std::array<SlotInfo, 2> both = inspect();
  if (both[1].generation > both[0].generation) {
    std::swap(both[0], both[1]);
  }
  return both;
}

}  // namespace epismc::io
