#pragma once

// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) -- the checksum
// sealing every on-disk archive (see binary_archive.hpp). Software
// slicing-by-8 table implementation: checkpoints are megabytes at most
// and are written once per checkpoint interval, so hardware SSE4.2
// dispatch is not worth a per-ISA TU here. The choice of CRC32C (over
// zlib's CRC32) matches what filesystems and storage stacks use for the
// same torn-write/bit-rot detection job.

#include <cstddef>
#include <cstdint>
#include <span>

namespace epismc::io {

/// One-shot checksum of `data`.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data) noexcept;

/// Streaming form: feed `crc` of the previous chunk back in (start from
/// 0). crc32c(a ++ b) == crc32c_update(crc32c(a), b).
[[nodiscard]] std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                                          std::size_t size) noexcept;

}  // namespace epismc::io
