#include "io/args.hpp"

#include <stdexcept>

namespace epismc::io {

Args::Args(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Args: expected --key[=value], got " + arg);
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool Args::has(const std::string& key) const {
  used_.insert(key);
  return values_.find(key) != values_.end();
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  used_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  used_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Args::get_double(const std::string& key, double fallback) const {
  used_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Args::get_flag(const std::string& key) const {
  used_.insert(key);
  const auto it = values_.find(key);
  return it != values_.end() && it->second != "false" && it->second != "0";
}

void Args::check_unused() const {
  for (const auto& [key, value] : values_) {
    if (used_.find(key) == used_.end()) {
      throw std::invalid_argument("Args: unknown argument --" + key);
    }
  }
}

}  // namespace epismc::io
