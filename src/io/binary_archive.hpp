#pragma once

// Versioned binary serialization for simulator checkpoints.
//
// The paper's framework depends on serializing the *exact* state of the
// disease simulator ("the number of persons in each state, the future state
// transition events, the current simulated time") so calibration windows can
// restart from stored states instead of day zero. This archive provides the
// byte-level substrate: little-endian on-wire layout, magic/version header,
// and primitives for trivially-copyable types, strings and vectors.
//
// On disk every archive is durable and self-verifying. save() writes to a
// unique temp file (pid + counter, so two processes checkpointing the same
// path never collide), fsyncs the file and its parent directory, renames
// into place, and seals the frame with a footer carrying the payload
// length, a caller-supplied generation stamp (checkpoint rotation orders
// slots by it) and a CRC32C over everything before it. load() verifies the
// footer before a single payload byte is parsed, so a torn write, a
// truncation or bit rot fails with a typed ArchiveError instead of garbage
// state.
//
// Checkpoints travel between runs of the same binary on the same cluster, so
// the format targets x86-64/little-endian; a static_assert guards the
// assumption rather than paying for byte swaps in the hot path.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace epismc::io {

static_assert(std::endian::native == std::endian::little,
              "checkpoint archives assume a little-endian host");

/// What went wrong with an archive -- callers branch on this to decide
/// between "retry" (environmental io failures) and "refuse" (the bytes
/// themselves are unusable).
enum class ArchiveErrorKind : std::uint8_t {
  kIo,          // open/read/write/fsync/rename failed; retrying may succeed
  kTruncated,   // fewer bytes than the format or a length field promises
  kCorrupt,     // checksum mismatch, garbled footer, or inconsistent fields
  kVersion,     // well-formed archive from an unsupported format version
  kForeignTag,  // well-formed archive holding some other payload type
};

[[nodiscard]] const char* to_string(ArchiveErrorKind kind);

class ArchiveError : public std::runtime_error {
 public:
  /// Untyped fallback, kept so call sites migrate incrementally; reads as
  /// corrupt (the conservative "refuse" classification).
  explicit ArchiveError(const std::string& what)
      : ArchiveError(ArchiveErrorKind::kCorrupt, what) {}
  ArchiveError(ArchiveErrorKind kind, const std::string& what)
      : std::runtime_error('[' + std::string(to_string(kind)) + "] " + what),
        kind_(kind) {}

  [[nodiscard]] ArchiveErrorKind kind() const noexcept { return kind_; }
  /// True for environmental failures worth retrying; false when the bytes
  /// themselves are bad (retrying reads the same bad bytes).
  [[nodiscard]] bool retryable() const noexcept {
    return kind_ == ArchiveErrorKind::kIo;
  }

 private:
  ArchiveErrorKind kind_;
};

/// The 24-byte frame save() appends after the payload: payload length,
/// generation stamp, footer magic, and a CRC32C over every byte before
/// the crc field (payload included). Exposed so the rotation layer and
/// the checkpoint_inspect tool can peek at sealed files cheaply.
struct ArchiveFooter {
  static constexpr std::uint32_t kMagic = 0x45534346u;  // "ESCF"
  static constexpr std::size_t kBytes = 24;

  std::uint64_t payload_bytes = 0;
  std::uint64_t generation = 0;
  std::uint32_t magic = kMagic;
  std::uint32_t crc = 0;
};

/// Append-only byte sink.
class BinaryWriter {
 public:
  static constexpr std::uint32_t kMagic = 0x45534D43u;  // "ESMC"

  explicit BinaryWriter(std::uint32_t version = 1) { write_header(version); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), p, p + sizeof(T));
  }

  void write_string(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), p, p + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buffer_.insert(buffer_.end(), p, p + v.size() * sizeof(T));
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

  /// Durable atomic persist: unique temp file (pid + counter), payload +
  /// checksummed footer stamped with `generation`, fsync of file and
  /// parent directory, rename into place. The temp file is removed on any
  /// failure. Throws ArchiveError (kIo) naming the failing step.
  void save(const std::filesystem::path& path,
            std::uint64_t generation = 0) const;

 private:
  void write_header(std::uint32_t version) {
    write(kMagic);
    write(version);
  }

  std::vector<std::byte> buffer_;
};

/// Sequential byte source with bounds checking.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::byte> bytes);
  /// Read + verify a sealed archive: rejects missing files, directories
  /// and empty files (kIo / kTruncated), then checks the footer magic,
  /// the declared payload length and the CRC32C before handing the
  /// payload to the in-memory constructor. Every archive load in the
  /// system goes through this verification.
  static BinaryReader load(const std::filesystem::path& path);

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  /// Generation stamp from the footer (0 for in-memory readers and
  /// archives saved without one).
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    T value;
    require(sizeof(T));
    std::memcpy(&value, buffer_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(buffer_.data() + cursor_), n);
    cursor_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    // Reject n before the byte-count multiply can wrap: a corrupt length
    // field must fail typed, not request a bogus allocation.
    if (n > remaining() / sizeof(T)) {
      throw ArchiveError(
          ArchiveErrorKind::kTruncated,
          "BinaryReader: vector length " + std::to_string(n) + " (" +
              std::to_string(sizeof(T)) + "-byte elements) exceeds the " +
              std::to_string(remaining()) + " bytes left in the archive");
    }
    std::vector<T> v(n);
    if (n != 0) {  // an empty vector's data() may be null; memcpy forbids it
      std::memcpy(v.data(), buffer_.data() + cursor_, n * sizeof(T));
      cursor_ += n * sizeof(T);
    }
    return v;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ == buffer_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return buffer_.size() - cursor_;
  }

 private:
  void require(std::size_t n) const {
    // remaining() form: immune to cursor_ + n overflowing on a corrupt
    // 64-bit length field.
    if (n > buffer_.size() - cursor_) {
      throw ArchiveError(ArchiveErrorKind::kTruncated,
                         "BinaryReader: truncated archive (" +
                             std::to_string(n) + " bytes needed, " +
                             std::to_string(buffer_.size() - cursor_) +
                             " left)");
    }
  }

  std::vector<std::byte> buffer_;
  std::size_t cursor_ = 0;
  std::uint32_t version_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace epismc::io
