#pragma once

// Versioned binary serialization for simulator checkpoints.
//
// The paper's framework depends on serializing the *exact* state of the
// disease simulator ("the number of persons in each state, the future state
// transition events, the current simulated time") so calibration windows can
// restart from stored states instead of day zero. This archive provides the
// byte-level substrate: little-endian on-wire layout, magic/version header,
// and primitives for trivially-copyable types, strings and vectors.
//
// Checkpoints travel between runs of the same binary on the same cluster, so
// the format targets x86-64/little-endian; a static_assert guards the
// assumption rather than paying for byte swaps in the hot path.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace epismc::io {

static_assert(std::endian::native == std::endian::little,
              "checkpoint archives assume a little-endian host");

class ArchiveError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte sink.
class BinaryWriter {
 public:
  static constexpr std::uint32_t kMagic = 0x45534D43u;  // "ESMC"

  explicit BinaryWriter(std::uint32_t version = 1) { write_header(version); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), p, p + sizeof(T));
  }

  void write_string(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), p, p + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buffer_.insert(buffer_.end(), p, p + v.size() * sizeof(T));
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

  /// Persist the archive to disk (atomically via rename).
  void save(const std::filesystem::path& path) const;

 private:
  void write_header(std::uint32_t version) {
    write(kMagic);
    write(version);
  }

  std::vector<std::byte> buffer_;
};

/// Sequential byte source with bounds checking.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::byte> bytes);
  static BinaryReader load(const std::filesystem::path& path);

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    T value;
    require(sizeof(T));
    std::memcpy(&value, buffer_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(buffer_.data() + cursor_), n);
    cursor_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> v(n);
    if (n != 0) {  // an empty vector's data() may be null; memcpy forbids it
      std::memcpy(v.data(), buffer_.data() + cursor_, n * sizeof(T));
      cursor_ += n * sizeof(T);
    }
    return v;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ == buffer_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return buffer_.size() - cursor_;
  }

 private:
  void require(std::size_t n) const {
    if (cursor_ + n > buffer_.size()) {
      throw ArchiveError("BinaryReader: truncated archive");
    }
  }

  std::vector<std::byte> buffer_;
  std::size_t cursor_ = 0;
  std::uint32_t version_ = 0;
};

}  // namespace epismc::io
