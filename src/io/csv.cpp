#include "io/csv.hpp"

#include <stdexcept>

namespace epismc::io {

CsvWriter::CsvWriter(const std::filesystem::path& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
  if (header.empty()) {
    throw std::invalid_argument("CsvWriter: empty header");
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    out_ << header[i] << (i + 1 < header.size() ? "," : "\n");
  }
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument("CsvWriter: field count mismatch");
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out_ << fields[i] << (i + 1 < fields.size() ? "," : "\n");
  }
  ++rows_;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) fields.push_back(cell);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named " + name);
}

std::vector<double> CsvTable::column_as_double(const std::string& name) const {
  const std::size_t idx = column_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    if (idx >= r.size()) {
      throw std::out_of_range("CsvTable: ragged row while reading " + name);
    }
    out.push_back(std::stod(r[idx]));
  }
  return out;
}

CsvTable read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  CsvTable table;
  std::string line;
  if (std::getline(in, line)) table.header = split_csv_line(line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    table.rows.push_back(split_csv_line(line));
  }
  return table;
}

}  // namespace epismc::io
