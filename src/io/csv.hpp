#pragma once

// Minimal CSV emission/parsing for experiment artifacts. Every bench binary
// dumps its series as CSV next to the console output so figures can be
// re-plotted without re-running the experiment.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace epismc::io {

class CsvWriter {
 public:
  CsvWriter(const std::filesystem::path& path,
            const std::vector<std::string>& header);

  /// Write one row; the field count must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: format arbitrary streamable values.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(format(values)), ...);
    row(fields);
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  template <typename T>
  static std::string format(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Parsed CSV: header plus string cells (numeric parsing left to the caller).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t column_index(const std::string& name) const;
  [[nodiscard]] std::vector<double> column_as_double(
      const std::string& name) const;
};

[[nodiscard]] CsvTable read_csv(const std::filesystem::path& path);

/// Split one CSV line on commas (no quoting support; writers never quote).
[[nodiscard]] std::vector<std::string> split_csv_line(const std::string& line);

}  // namespace epismc::io
