#include "io/binary_archive.hpp"

#include <fstream>

namespace epismc::io {

void BinaryWriter::save(const std::filesystem::path& path) const {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw ArchiveError("BinaryWriter: cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(buffer_.data()),
              static_cast<std::streamsize>(buffer_.size()));
    if (!out) throw ArchiveError("BinaryWriter: write failed " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

BinaryReader::BinaryReader(std::vector<std::byte> bytes)
    : buffer_(std::move(bytes)) {
  const auto magic = read<std::uint32_t>();
  if (magic != BinaryWriter::kMagic) {
    throw ArchiveError("BinaryReader: bad magic (not an epismc archive)");
  }
  version_ = read<std::uint32_t>();
}

BinaryReader BinaryReader::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw ArchiveError("BinaryReader: cannot open " + path.string());
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw ArchiveError("BinaryReader: read failed " + path.string());
  return BinaryReader(std::move(bytes));
}

}  // namespace epismc::io
