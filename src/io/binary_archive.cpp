#include "io/binary_archive.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "fault/fault.hpp"
#include "io/crc32c.hpp"

namespace epismc::io {

const char* to_string(ArchiveErrorKind kind) {
  switch (kind) {
    case ArchiveErrorKind::kIo: return "io";
    case ArchiveErrorKind::kTruncated: return "truncated";
    case ArchiveErrorKind::kCorrupt: return "corrupt";
    case ArchiveErrorKind::kVersion: return "version";
    case ArchiveErrorKind::kForeignTag: return "foreign-tag";
  }
  return "unknown";
}

namespace {

[[noreturn]] void throw_errno(ArchiveErrorKind kind, const std::string& step,
                              const std::filesystem::path& path) {
  throw ArchiveError(kind, step + " " + path.string() + ": " +
                               std::strerror(errno));
}

/// The sealed on-disk frame: payload followed by the checksummed footer.
std::vector<std::byte> seal_frame(const std::vector<std::byte>& payload,
                                  std::uint64_t generation) {
  std::vector<std::byte> frame = payload;
  const auto append = [&frame](const auto& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    frame.insert(frame.end(), p, p + sizeof(value));
  };
  append(static_cast<std::uint64_t>(payload.size()));
  append(generation);
  append(ArchiveFooter::kMagic);
  // The crc covers payload + the three footer fields before it, so a
  // flipped length/generation/magic is caught like any payload flip.
  append(crc32c(frame));
  return frame;
}

/// write(2) loop with EINTR handling; cleans nothing up itself.
bool write_all(int fd, const std::byte* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void fsync_directory(const std::filesystem::path& dir) {
  const std::filesystem::path target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno(ArchiveErrorKind::kIo, "cannot open directory", target);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno(ArchiveErrorKind::kIo, "fsync failed for directory", target);
  }
  ::close(fd);
}

/// The torn-write action: emulate a filesystem tearing the write by
/// putting a prefix of the sealed frame at the *final* path (no
/// temp/rename protocol) and dying, exactly what the pre-durability
/// writer risked on power loss.
[[noreturn]] void tear_and_die(const std::filesystem::path& path,
                               const std::vector<std::byte>& frame,
                               std::uint64_t at_byte) {
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(at_byte, frame.size()));
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd >= 0) {
    write_all(fd, frame.data(), n);
    ::close(fd);
  }
  std::_Exit(fault::kCrashExitCode);
}

}  // namespace

void BinaryWriter::save(const std::filesystem::path& path,
                        std::uint64_t generation) const {
  const std::vector<std::byte> frame = seal_frame(buffer_, generation);
  if (fault::armed()) {
    if (const auto at_byte = fault::torn_write_byte()) {
      tear_and_die(path, frame, *at_byte);
    }
    fault::hit("archive-write");
  }

  // Unique temp name: pid guards against another process checkpointing
  // the same path, the counter against two writers in this process.
  static std::atomic<std::uint64_t> save_counter{0};
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(save_counter.fetch_add(1, std::memory_order_relaxed));

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw_errno(ArchiveErrorKind::kIo, "BinaryWriter: cannot open temp file",
                tmp);
  }
  const auto fail = [&](const char* step) {
    const int saved_errno = errno;
    ::close(fd);
    ::unlink(tmp.c_str());  // never leak the temp file on failure
    errno = saved_errno;
    throw_errno(ArchiveErrorKind::kIo, std::string("BinaryWriter: ") + step,
                tmp);
  };
  if (!write_all(fd, frame.data(), frame.size())) fail("write failed for");
  // Durability order: file contents reach stable storage before the
  // rename publishes them, and the directory entry after.
  if (::fsync(fd) != 0) fail("fsync failed for");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno(ArchiveErrorKind::kIo, "BinaryWriter: close failed for", tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    throw ArchiveError(ArchiveErrorKind::kIo,
                       "BinaryWriter: rename " + tmp.string() + " -> " +
                           path.string() + " failed: " + ec.message());
  }
  fsync_directory(path.parent_path());
}

BinaryReader::BinaryReader(std::vector<std::byte> bytes)
    : buffer_(std::move(bytes)) {
  const auto magic = read<std::uint32_t>();
  if (magic != BinaryWriter::kMagic) {
    throw ArchiveError(ArchiveErrorKind::kForeignTag,
                       "BinaryReader: bad magic (not an epismc archive)");
  }
  version_ = read<std::uint32_t>();
}

BinaryReader BinaryReader::load(const std::filesystem::path& path) {
  fault::hit("archive-read");

  std::error_code ec;
  const auto status = std::filesystem::status(path, ec);
  if (ec || !std::filesystem::exists(status)) {
    throw ArchiveError(ArchiveErrorKind::kIo,
                       "BinaryReader: cannot open " + path.string() + ": " +
                           (ec ? ec.message() : "no such file"));
  }
  if (std::filesystem::is_directory(status)) {
    throw ArchiveError(
        ArchiveErrorKind::kIo,
        "BinaryReader: " + path.string() + " is a directory, not an archive");
  }

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw ArchiveError(ArchiveErrorKind::kIo,
                       "BinaryReader: cannot open " + path.string());
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    throw ArchiveError(ArchiveErrorKind::kIo,
                       "BinaryReader: cannot determine size of " +
                           path.string());
  }
  if (size == 0) {
    throw ArchiveError(ArchiveErrorKind::kTruncated,
                       "BinaryReader: " + path.string() + " is empty");
  }
  constexpr std::size_t kMinBytes = 2 * sizeof(std::uint32_t);  // the header
  if (static_cast<std::size_t>(size) < kMinBytes + ArchiveFooter::kBytes) {
    throw ArchiveError(ArchiveErrorKind::kTruncated,
                       "BinaryReader: " + path.string() + " holds " +
                           std::to_string(size) +
                           " bytes, too few for an archive header and "
                           "footer");
  }
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    throw ArchiveError(ArchiveErrorKind::kIo,
                       "BinaryReader: read failed " + path.string());
  }

  // Verify the footer seal before any payload byte is interpreted.
  ArchiveFooter footer;
  const std::byte* f = bytes.data() + bytes.size() - ArchiveFooter::kBytes;
  std::memcpy(&footer.payload_bytes, f, sizeof footer.payload_bytes);
  std::memcpy(&footer.generation, f + 8, sizeof footer.generation);
  std::memcpy(&footer.magic, f + 16, sizeof footer.magic);
  std::memcpy(&footer.crc, f + 20, sizeof footer.crc);
  if (footer.magic != ArchiveFooter::kMagic) {
    throw ArchiveError(ArchiveErrorKind::kCorrupt,
                       "BinaryReader: " + path.string() +
                           " carries no valid footer seal (torn write, "
                           "truncation, or a pre-durability archive)");
  }
  const std::uint64_t expect_payload =
      static_cast<std::uint64_t>(bytes.size()) - ArchiveFooter::kBytes;
  if (footer.payload_bytes != expect_payload) {
    throw ArchiveError(ArchiveErrorKind::kTruncated,
                       "BinaryReader: " + path.string() +
                           " footer declares " +
                           std::to_string(footer.payload_bytes) +
                           " payload bytes but the file holds " +
                           std::to_string(expect_payload));
  }
  const std::uint32_t crc = crc32c(
      std::span<const std::byte>(bytes.data(), bytes.size() - sizeof footer.crc));
  if (crc != footer.crc) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "stored %08x, computed %08x", footer.crc,
                  crc);
    throw ArchiveError(ArchiveErrorKind::kCorrupt,
                       "BinaryReader: CRC32C mismatch in " + path.string() +
                           " (" + buf + ")");
  }

  bytes.resize(expect_payload);
  BinaryReader reader(std::move(bytes));
  reader.generation_ = footer.generation;
  return reader;
}

}  // namespace epismc::io
