#pragma once

// Dual-slot checkpoint rotation over the durable archive layer.
//
// A single checkpoint path has a fatal failure mode even with atomic
// replace: die after the old checkpoint is gone but before the new one is
// durable and the session has nothing to resume from. Rotation alternates
// saves between two generation-stamped slots derived from one base path
// (`ckpt` -> `ckpt.a` / `ckpt.b`): every save targets the slot NOT
// holding the newest generation, so the previous checkpoint survives any
// crash -- torn writes included -- until its successor is fully sealed.
// Recovery picks the newest slot whose CRC verifies and falls back to the
// older one otherwise (the generation stamp lives in the archive footer,
// so slot recency is self-describing, not mtime-dependent).
//
// The stream layer's StreamingCalibrator::resume_latest drives this;
// examples/checkpoint_inspect.cpp prints inspect() for operators.

#include <array>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "io/binary_archive.hpp"

namespace epismc::io {

/// One slot's health, as deep as it could be read. `usable` means the
/// full seal verified (footer magic, declared length, CRC32C) and the
/// payload header parsed; `error` explains any failure short of that.
struct SlotInfo {
  std::filesystem::path path;
  bool exists = false;
  bool usable = false;
  std::uint64_t generation = 0;   // footer stamp (0 when unreadable)
  std::uint32_t version = 0;      // header version (usable slots only)
  std::uint64_t payload_bytes = 0;
  std::string tag;                // best-effort leading tag string
  std::string error;              // why the slot is not usable
};

/// What resume_latest recovered, for operator-facing recovery reports.
struct RecoveredSlot {
  std::filesystem::path path;
  std::uint64_t generation = 0;
  /// True when an existing slot had to be skipped (unusable or failed to
  /// load) before this one succeeded -- the corruption-fallback case.
  bool fell_back = false;
  std::string note;
};

class CheckpointRotation {
 public:
  explicit CheckpointRotation(std::filesystem::path base);

  [[nodiscard]] const std::filesystem::path& base() const noexcept {
    return base_;
  }
  [[nodiscard]] std::filesystem::path slot_a() const;
  [[nodiscard]] std::filesystem::path slot_b() const;
  /// Both slot paths, a first.
  [[nodiscard]] std::array<std::filesystem::path, 2> slots() const;

  /// Durable save of `out` into the slot not holding the newest
  /// generation, stamped one past it. Returns the slot written.
  std::filesystem::path save_next(const BinaryWriter& out) const;

  /// Full health check of both slots (reads and CRC-verifies each
  /// existing file); [0] is slot a.
  [[nodiscard]] std::array<SlotInfo, 2> inspect() const;

  /// Slot paths ordered newest generation first, skipping nothing: the
  /// resume loop tries these in order and reports a fallback when the
  /// first fails. Unreadable-footer slots sort last (generation 0).
  [[nodiscard]] std::array<SlotInfo, 2> by_recency() const;

  /// Remove leftover `<slot>.tmp.<pid>.<counter>` files from saves that
  /// died between temp write and rename (a supervised child killed
  /// mid-save leaves one per attempt, forever). Safe against live
  /// writers of *this* base only in the single-writer regime the
  /// rotation already assumes. Returns the number of files removed.
  std::size_t gc_stale_temps() const;

 private:
  std::filesystem::path base_;
};

/// Health of a single sealed archive file (the per-slot primitive behind
/// CheckpointRotation::inspect, usable on non-rotated archives too).
[[nodiscard]] SlotInfo inspect_archive(const std::filesystem::path& path);

}  // namespace epismc::io
