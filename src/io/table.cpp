#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace epismc::io {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
  };
  const auto rule = [&]() {
    os << "+";
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  rule();
  print_row(header_);
  rule();
  for (const auto& row : rows_) print_row(row);
  rule();
}

namespace {

double transform(double v, bool log_scale) {
  return log_scale ? std::log10(1.0 + std::max(v, 0.0)) : v;
}

}  // namespace

std::string ascii_chart(std::span<const double> series, std::size_t width,
                        std::size_t height, bool log_scale) {
  std::vector<double> mid(series.begin(), series.end());
  return ascii_band_chart(mid, mid, mid, {}, width, height, log_scale);
}

std::string ascii_band_chart(std::span<const double> lo,
                             std::span<const double> mid,
                             std::span<const double> hi,
                             std::span<const double> observed,
                             std::size_t width, std::size_t height,
                             bool log_scale) {
  if (mid.empty() || lo.size() != mid.size() || hi.size() != mid.size()) {
    throw std::invalid_argument("ascii_band_chart: bad series sizes");
  }
  const std::size_t n = mid.size();
  const std::size_t cols = std::min(width, n);

  // Column c covers samples [c*n/cols, (c+1)*n/cols); aggregate min/max/mid.
  std::vector<double> clo(cols), cmid(cols), chi(cols), cobs(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t b = c * n / cols;
    const std::size_t e = std::max(b + 1, (c + 1) * n / cols);
    double vlo = transform(lo[b], log_scale);
    double vhi = transform(hi[b], log_scale);
    double vmid = 0.0;
    double vobs = 0.0;
    std::size_t count = 0;
    for (std::size_t i = b; i < e && i < n; ++i) {
      vlo = std::min(vlo, transform(lo[i], log_scale));
      vhi = std::max(vhi, transform(hi[i], log_scale));
      vmid += transform(mid[i], log_scale);
      if (!observed.empty()) vobs += transform(observed[i], log_scale);
      ++count;
    }
    clo[c] = vlo;
    chi[c] = vhi;
    cmid[c] = vmid / static_cast<double>(count);
    cobs[c] = observed.empty() ? 0.0 : vobs / static_cast<double>(count);
  }

  double vmin = clo[0];
  double vmax = chi[0];
  for (std::size_t c = 0; c < cols; ++c) {
    vmin = std::min({vmin, clo[c], observed.empty() ? clo[c] : cobs[c]});
    vmax = std::max({vmax, chi[c], observed.empty() ? chi[c] : cobs[c]});
  }
  if (vmax <= vmin) vmax = vmin + 1.0;

  const auto level = [&](double v) {
    const double f = (v - vmin) / (vmax - vmin);
    return std::min(height - 1,
                    static_cast<std::size_t>(f * static_cast<double>(height)));
  };

  std::vector<std::string> canvas(height, std::string(cols, ' '));
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t llo = level(clo[c]);
    const std::size_t lhi = level(chi[c]);
    for (std::size_t r = llo; r <= lhi; ++r) canvas[r][c] = ':';
    canvas[level(cmid[c])][c] = '#';
    if (!observed.empty()) {
      const std::size_t lobs = level(cobs[c]);
      canvas[lobs][c] = canvas[lobs][c] == '#' ? '@' : 'o';
    }
  }

  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (std::size_t r = height; r-- > 0;) {
    const double axis =
        vmin + (vmax - vmin) * (static_cast<double>(r) + 0.5) /
                   static_cast<double>(height);
    os << std::setw(8) << axis << " |" << canvas[r] << '\n';
  }
  os << std::string(9, ' ') << '+' << std::string(cols, '-') << '\n';
  if (log_scale) {
    os << "          (y axis: log10(1+y); '#' median, ':' band, 'o' observed)\n";
  } else {
    os << "          ('#' median, ':' band, 'o' observed)\n";
  }
  return os.str();
}

}  // namespace epismc::io
