#pragma once

// Tiny CLI argument parser shared by bench binaries and examples.
// Accepts --key=value and --flag forms; anything unknown is an error so
// typos in experiment sweeps fail loudly instead of silently using defaults.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace epismc::io {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True when the argument was provided at all (value or bare flag);
  /// counts as a query for check_unused. Lets callers distinguish "apply
  /// this override" from "keep the session/config default".
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// Throws if any provided argument was never queried; call last.
  void check_unused() const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace epismc::io
