#include "io/crc32c.hpp"

#include <array>

namespace epismc::io {

namespace {

// 8 derived tables for slicing-by-8; table[0] is the classic byte-at-a-
// time table for the reflected Castagnoli polynomial.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

Tables make_tables() {
  constexpr std::uint32_t kPoly = 0x82F63B78u;
  Tables tb;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tb.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tb.t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      crc = tb.t[0][crc & 0xFFu] ^ (crc >> 8);
      tb.t[k][i] = crc;
    }
  }
  return tb;
}

const Tables& tables() {
  static const Tables tb = make_tables();
  return tb;
}

}  // namespace

std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                            std::size_t size) noexcept {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(std::span<const std::byte> data) noexcept {
  return crc32c_update(0, data.data(), data.size());
}

}  // namespace epismc::io
