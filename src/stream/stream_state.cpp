#include "stream/stream_state.hpp"

#include <bit>
#include <cstddef>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "random/engines.hpp"

namespace epismc::stream {

void StreamConfig::validate() const {
  calibration.validate();
  const bool wants_checkpoints =
      checkpoint_every != 0 || !checkpoint_path.empty();
  if (!wants_checkpoints) return;
  if (checkpoint_every <= 0) {
    throw std::invalid_argument(
        "StreamConfig: checkpoint_every must be a positive number of "
        "assimilated days, got " +
        std::to_string(checkpoint_every));
  }
  if (checkpoint_path.empty()) {
    throw std::invalid_argument(
        "StreamConfig: checkpoint_every is set but checkpoint_path is "
        "empty -- automatic checkpoints need a destination file");
  }
}

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return rng::hash_combine(h, v);
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t mix(std::uint64_t h, const std::string& s) {
  h = mix(h, static_cast<std::uint64_t>(s.size()));
  for (const char c : s) h = mix(h, static_cast<std::uint64_t>(c));
  return h;
}

}  // namespace

std::uint64_t config_fingerprint(const StreamConfig& config) {
  const core::CalibrationConfig& c = config.calibration;
  std::uint64_t h = 0x53545246494E4750ull;  // "STRFINGP"
  h = mix(h, static_cast<std::uint64_t>(c.windows.size()));
  for (const auto& [from, to] : c.windows) {
    h = mix(h, static_cast<std::uint64_t>(from));
    h = mix(h, static_cast<std::uint64_t>(to));
  }
  h = mix(h, static_cast<std::uint64_t>(c.n_params));
  h = mix(h, static_cast<std::uint64_t>(c.replicates));
  h = mix(h, static_cast<std::uint64_t>(c.resample_size));
  h = mix(h, static_cast<std::uint64_t>(c.common_random_numbers));
  h = mix(h, static_cast<std::uint64_t>(c.use_deaths));
  h = mix(h, static_cast<std::uint64_t>(c.scheme));
  h = mix(h, c.seed);
  h = mix(h, c.likelihood_name);
  h = mix(h, c.likelihood_parameter);
  h = mix(h, c.death_likelihood_name);
  h = mix(h, c.death_likelihood_parameter);
  h = mix(h, c.bias_name);
  h = mix(h, static_cast<std::uint64_t>(c.burnin_day));
  h = mix(h, c.theta_jitter.down);
  h = mix(h, c.theta_jitter.up);
  h = mix(h, c.theta_jitter.lo);
  h = mix(h, c.theta_jitter.hi);
  h = mix(h, c.rho_jitter.down);
  h = mix(h, c.rho_jitter.up);
  h = mix(h, c.rho_jitter.lo);
  h = mix(h, c.rho_jitter.hi);
  h = mix(h, c.defensive_fraction);
  h = mix(h, static_cast<std::uint64_t>(c.capture));
  h = mix(h, static_cast<std::uint64_t>(c.inline_state_budget));
  h = mix(h, static_cast<std::uint64_t>(c.inference));
  h = mix(h, c.ess_threshold);
  h = mix(h, static_cast<std::uint64_t>(c.max_temper_stages));
  h = mix(h, static_cast<std::uint64_t>(c.rejuvenation_moves));
  h = mix(h, static_cast<std::uint64_t>(c.on_degenerate));
  h = mix(h, static_cast<std::uint64_t>(config.resample_mid_window));
  return h;
}

namespace {

void write_checkpoint(io::BinaryWriter& out, const epi::Checkpoint& ckpt) {
  out.write(ckpt.day);
  out.write_vector(ckpt.bytes);
}

epi::Checkpoint read_checkpoint(io::BinaryReader& in) {
  epi::Checkpoint ckpt;
  ckpt.day = in.read<std::int32_t>();
  ckpt.bytes = in.read_vector<std::byte>();
  return ckpt;
}

void write_checkpoints(io::BinaryWriter& out,
                       const std::vector<epi::Checkpoint>& v) {
  out.write(static_cast<std::uint64_t>(v.size()));
  for (const epi::Checkpoint& c : v) write_checkpoint(out, c);
}

std::vector<epi::Checkpoint> read_checkpoints(io::BinaryReader& in) {
  const auto n = in.read<std::uint64_t>();
  std::vector<epi::Checkpoint> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_checkpoint(in));
  return v;
}

void write_interval(io::BinaryWriter& out, const stats::Interval& iv) {
  out.write(iv.lo);
  out.write(iv.hi);
}

stats::Interval read_interval(io::BinaryReader& in) {
  stats::Interval iv;
  iv.lo = in.read<double>();
  iv.hi = in.read<double>();
  return iv;
}

void write_parameter_summary(io::BinaryWriter& out,
                             const core::ParameterSummary& s) {
  out.write(s.mean);
  out.write(s.sd);
  out.write(s.median);
  write_interval(out, s.ci50);
  write_interval(out, s.ci90);
}

core::ParameterSummary read_parameter_summary(io::BinaryReader& in) {
  core::ParameterSummary s;
  s.mean = in.read<double>();
  s.sd = in.read<double>();
  s.median = in.read<double>();
  s.ci50 = read_interval(in);
  s.ci90 = read_interval(in);
  return s;
}

void write_diag(io::BinaryWriter& out, const core::WindowDiagnostics& d) {
  out.write(d.ess);
  out.write(d.perplexity);
  out.write(d.max_weight);
  out.write(d.log_marginal);
  out.write(static_cast<std::uint64_t>(d.unique_resampled));
  out.write(static_cast<std::uint64_t>(d.n_sims));
  out.write(d.propagate_seconds);
  out.write(d.checkpoint_seconds);
  out.write(static_cast<std::uint8_t>(d.inline_capture));
}

core::WindowDiagnostics read_diag(io::BinaryReader& in) {
  core::WindowDiagnostics d;
  d.ess = in.read<double>();
  d.perplexity = in.read<double>();
  d.max_weight = in.read<double>();
  d.log_marginal = in.read<double>();
  d.unique_resampled = static_cast<std::size_t>(in.read<std::uint64_t>());
  d.n_sims = static_cast<std::size_t>(in.read<std::uint64_t>());
  d.propagate_seconds = in.read<double>();
  d.checkpoint_seconds = in.read<double>();
  d.inline_capture = in.read<std::uint8_t>() != 0;
  return d;
}

void write_window_record(io::BinaryWriter& out, const StreamWindowRecord& w) {
  out.write(w.from_day);
  out.write(w.to_day);
  write_diag(out, w.diag);
  w.smc.serialize(out);
  out.write(w.summary.from_day);
  out.write(w.summary.to_day);
  write_parameter_summary(out, w.summary.theta);
  write_parameter_summary(out, w.summary.rho);
}

StreamWindowRecord read_window_record(io::BinaryReader& in) {
  StreamWindowRecord w;
  w.from_day = in.read<std::int32_t>();
  w.to_day = in.read<std::int32_t>();
  w.diag = read_diag(in);
  w.smc = core::SmcDiagnostics::deserialize(in);
  w.summary.from_day = in.read<std::int32_t>();
  w.summary.to_day = in.read<std::int32_t>();
  w.summary.theta = read_parameter_summary(in);
  w.summary.rho = read_parameter_summary(in);
  return w;
}

void write_day_record(io::BinaryWriter& out, const StreamDayRecord& d) {
  out.write(d.day);
  out.write(d.window);
  out.write(d.ess);
  out.write(static_cast<std::uint8_t>(d.resampled));
  out.write(d.log_marginal);
  out.write(d.seconds);
  out.write(d.demoted);
}

StreamDayRecord read_day_record(io::BinaryReader& in) {
  StreamDayRecord d;
  d.day = in.read<std::int32_t>();
  d.window = in.read<std::uint32_t>();
  d.ess = in.read<double>();
  d.resampled = in.read<std::uint8_t>() != 0;
  d.log_marginal = in.read<double>();
  d.seconds = in.read<double>();
  d.demoted = in.read<std::uint32_t>();
  return d;
}

}  // namespace

void StreamState::serialize(io::BinaryWriter& out) const {
  out.write_string(kArchiveTag);
  out.write(config_fingerprint);
  out.write_string(simulator_name);

  out.write(cursor);
  out.write(static_cast<std::uint8_t>(any_assimilated));
  out.write(window_index);
  out.write(static_cast<std::uint8_t>(window_open));
  out.write(days_since_checkpoint);

  out.write(static_cast<std::uint64_t>(history.size()));
  for (const StreamWindowRecord& w : history) write_window_record(out, w);
  out.write(static_cast<std::uint64_t>(days.size()));
  for (const StreamDayRecord& d : days) write_day_record(out, d);

  out.write(static_cast<std::uint8_t>(has_initial));
  if (has_initial) write_checkpoint(out, initial);
  out.write(static_cast<std::uint8_t>(has_posterior));
  if (has_posterior) {
    out.write_vector(posterior.theta);
    out.write_vector(posterior.rho);
    out.write_vector(posterior.parent_slot);
  }
  write_checkpoints(out, parent_pool);

  out.write_vector(obs_cases);
  out.write_vector(obs_deaths);
  out.write(n_sims);
  out.write_vector(param_index);
  out.write_vector(replicate);
  out.write_vector(parent);
  out.write_vector(theta);
  out.write_vector(rho);
  out.write_vector(seed);
  out.write_vector(stream);
  out.write_vector(true_cases_prefix);
  out.write_vector(obs_cases_prefix);
  out.write_vector(deaths_prefix);
  out.write_vector(case_acc);
  out.write_vector(death_acc);
  out.write_vector(full_case_acc);
  out.write_vector(full_death_acc);
  out.write_vector(bias_stream);
  out.write_vector(bias_position);
  write_checkpoints(out, cloud);
  out.write(log_marginal_acc);
  out.write(midwindow_resamples);
  out.write(propagate_seconds);
  out.write_vector(degenerate_draw);
}

StreamState StreamState::deserialize(io::BinaryReader& in) {
  if (in.version() != kArchiveVersion) {
    throw io::ArchiveError(
        io::ArchiveErrorKind::kVersion,
        "StreamState: archive is format version " +
            std::to_string(in.version()) + "; this build reads version " +
            std::to_string(kArchiveVersion));
  }
  const std::string tag = in.read_string();
  if (tag != kArchiveTag) {
    throw io::ArchiveError(io::ArchiveErrorKind::kForeignTag,
                           "StreamState: not a streaming-calibrator "
                           "checkpoint (archive tag '" +
                               tag + "', expected '" + kArchiveTag + "')");
  }

  StreamState st;
  st.config_fingerprint = in.read<std::uint64_t>();
  st.simulator_name = in.read_string();

  st.cursor = in.read<std::int32_t>();
  st.any_assimilated = in.read<std::uint8_t>() != 0;
  st.window_index = in.read<std::uint32_t>();
  st.window_open = in.read<std::uint8_t>() != 0;
  st.days_since_checkpoint = in.read<std::uint64_t>();

  const auto n_windows = in.read<std::uint64_t>();
  st.history.reserve(n_windows);
  for (std::uint64_t i = 0; i < n_windows; ++i) {
    st.history.push_back(read_window_record(in));
  }
  const auto n_days = in.read<std::uint64_t>();
  st.days.reserve(n_days);
  for (std::uint64_t i = 0; i < n_days; ++i) {
    st.days.push_back(read_day_record(in));
  }

  st.has_initial = in.read<std::uint8_t>() != 0;
  if (st.has_initial) st.initial = read_checkpoint(in);
  st.has_posterior = in.read<std::uint8_t>() != 0;
  if (st.has_posterior) {
    st.posterior.theta = in.read_vector<double>();
    st.posterior.rho = in.read_vector<double>();
    st.posterior.parent_slot = in.read_vector<std::uint32_t>();
  }
  st.parent_pool = read_checkpoints(in);

  st.obs_cases = in.read_vector<double>();
  st.obs_deaths = in.read_vector<double>();
  st.n_sims = in.read<std::uint64_t>();
  st.param_index = in.read_vector<std::uint32_t>();
  st.replicate = in.read_vector<std::uint32_t>();
  st.parent = in.read_vector<std::uint32_t>();
  st.theta = in.read_vector<double>();
  st.rho = in.read_vector<double>();
  st.seed = in.read_vector<std::uint64_t>();
  st.stream = in.read_vector<std::uint64_t>();
  st.true_cases_prefix = in.read_vector<double>();
  st.obs_cases_prefix = in.read_vector<double>();
  st.deaths_prefix = in.read_vector<double>();
  st.case_acc = in.read_vector<double>();
  st.death_acc = in.read_vector<double>();
  st.full_case_acc = in.read_vector<double>();
  st.full_death_acc = in.read_vector<double>();
  st.bias_stream = in.read_vector<std::uint64_t>();
  st.bias_position = in.read_vector<std::uint64_t>();
  st.cloud = read_checkpoints(in);
  st.log_marginal_acc = in.read<double>();
  st.midwindow_resamples = in.read<std::uint32_t>();
  st.propagate_seconds = in.read<double>();
  st.degenerate_draw = in.read_vector<std::uint8_t>();
  return st;
}

void StreamState::save(const std::filesystem::path& path) const {
  io::BinaryWriter out(kArchiveVersion);
  serialize(out);
  out.save(path);
}

StreamState StreamState::load(const std::filesystem::path& path) {
  io::BinaryReader in = io::BinaryReader::load(path);
  return deserialize(in);
}

void write_stream_day_csv(std::ostream& out,
                          const std::vector<StreamDayRecord>& days) {
  const auto prec = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "day,window,ess,resampled,log_marginal,seconds,demoted\n";
  for (const StreamDayRecord& d : days) {
    out << d.day << ',' << d.window << ',' << d.ess << ','
        << (d.resampled ? 1 : 0) << ',' << d.log_marginal << ',' << d.seconds
        << ',' << d.demoted << '\n';
  }
  out.precision(prec);
}

}  // namespace epismc::stream
