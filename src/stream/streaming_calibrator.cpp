#include "stream/streaming_calibrator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/importance_sampler.hpp"
#include "core/posterior.hpp"
#include "fault/fault.hpp"
#include "parallel/parallel.hpp"
#include "random/seeding.hpp"

namespace epismc::stream {

namespace {

// Streaming-only stream identities, disjoint from the batch tags in
// core/importance_sampler.cpp by construction (different leading tag).
// They address the randomness that only exists on the streaming path:
// mid-window resamples and the fresh model/bias streams particles receive
// after one. On a stream that never resamples mid-window, none of these
// is ever consumed -- the batch identities carry the whole window, which
// is what makes the no-resample path bit-identical to batch.
constexpr std::uint64_t kStreamResampleTag = 0x53545253ull;  // "STRS"
constexpr std::uint64_t kStreamModelTag = 0x53544D44ull;     // "STMD"
constexpr std::uint64_t kStreamBiasTag = 0x53544249ull;      // "STBI"

}  // namespace

StreamingCalibrator::StreamingCalibrator(const core::Simulator& sim,
                                         StreamConfig config)
    : sim_(sim), config_(std::move(config)) {
  config_.validate();
  const core::CalibrationConfig& cal = config_.calibration;
  likelihood_ = core::make_likelihood(cal.likelihood_name,
                                      cal.likelihood_parameter);
  death_likelihood_ = core::make_likelihood(cal.death_likelihood_name,
                                            cal.death_likelihood_parameter);
  bias_ = core::make_bias_model(cal.bias_name);
  needs_rho_ = bias_->uses_rho();
  results_.reserve(cal.windows.size());
}

std::int32_t StreamingCalibrator::next_expected_day() const {
  const auto& windows = config_.calibration.windows;
  if (finished()) return windows.back().second + 1;
  if (window_open_) return cursor_ + 1;
  return windows[window_index_].first;
}

std::int32_t StreamingCalibrator::last_assimilated_day() const {
  if (!any_assimilated_) {
    throw std::logic_error(
        "StreamingCalibrator::last_assimilated_day: no day assimilated yet");
  }
  return cursor_;
}

const StreamDayRecord& StreamingCalibrator::ingest(
    const DailyObservation& obs) {
  if (finished()) {
    throw std::logic_error(
        "StreamingCalibrator::ingest: all " +
        std::to_string(config_.calibration.windows.size()) +
        " windows are assimilated; day " + std::to_string(obs.day) +
        " rejected");
  }
  const std::int32_t expected = next_expected_day();
  if (obs.day != expected) {
    if (any_assimilated_ && obs.day <= cursor_) {
      throw std::invalid_argument(
          "StreamingCalibrator::ingest: day " + std::to_string(obs.day) +
          " already assimilated (cursor at day " + std::to_string(cursor_) +
          ")");
    }
    throw std::invalid_argument(
        "StreamingCalibrator::ingest: expected day " +
        std::to_string(expected) + ", got day " + std::to_string(obs.day) +
        " (streaming ingestion must be contiguous)");
  }
  if (config_.calibration.use_deaths && !obs.deaths.has_value()) {
    throw std::invalid_argument(
        "StreamingCalibrator::ingest: use_deaths is set but the day-" +
        std::to_string(obs.day) + " observation carries no death count");
  }

  fault::hit("stream-ingest");
  if (!window_open_) open_window();
  assimilate_day(obs);
  cursor_ = obs.day;
  any_assimilated_ = true;
  if (cursor_ == spec_.to_day) finalize_window();
  maybe_checkpoint();
  progress_.beat();
  return days_.back();
}

void StreamingCalibrator::open_window() {
  const core::CalibrationConfig& cal = config_.calibration;
  const std::size_t m = window_index_;
  spec_ = core::make_window_spec(cal, m);
  const std::size_t n = n_sims();

  if (m == 0) {
    // Shared burn-in state, same identity as SequentialCalibrator's.
    initial_ckpt_ = sim_.initial_state(
        cal.burnin_day, rng::hash_combine(cal.seed, 0x494E4954ull));
    has_initial_ = true;
    auto pool = sim_.make_pool();
    pool->resize(1);
    pool->set_from_checkpoint(0, initial_ckpt_);
    parents_ = std::move(pool);
    propose_ = core::make_prior_proposal(cal, needs_rho_);
  } else {
    propose_ = core::make_posterior_proposal(cal, prev_draws_, needs_rho_);
  }

  const auto window_len =
      static_cast<std::size_t>(spec_.to_day - spec_.from_day + 1);
  win_ens_.resize(n, window_len);
  core::detail::layout_window_ensemble(spec_, *parents_, propose_, win_ens_);

  day_ens_.resize(n, 1);
  day_ens_.param_index = win_ens_.param_index;
  day_ens_.replicate = win_ens_.replicate;
  day_ens_.parent = win_ens_.parent;
  day_ens_.theta = win_ens_.theta;
  day_ens_.rho = win_ens_.rho;
  day_ens_.seed = win_ens_.seed;
  day_ens_.stream = win_ens_.stream;

  cloud_ = sim_.make_pool();
  cloud_->resize(n);

  win_obs_cases_.clear();
  win_obs_deaths_.clear();
  case_acc_.assign(n, 0.0);
  death_acc_.assign(n, 0.0);
  full_case_acc_.assign(n, 0.0);
  full_death_acc_.assign(n, 0.0);
  bias_eng_.clear();
  bias_eng_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    bias_eng_.push_back(core::detail::bias_engine(
        spec_, win_ens_.param_index[s], win_ens_.replicate[s]));
  }
  log_marginal_acc_ = 0.0;
  midwindow_resamples_ = 0;
  propagate_seconds_ = 0.0;
  win_degen_.assign(n, 0);
  ps_.reset(n);
  lw_scratch_.assign(n, 0.0);
  window_open_ = true;
}

void StreamingCalibrator::assimilate_day(const DailyObservation& obs) {
  parallel::Timer day_timer;
  const std::size_t n = n_sims();
  const bool use_deaths = config_.calibration.use_deaths;
  const std::int32_t day = obs.day;
  const std::size_t k = win_obs_cases_.size();  // day offset in the window

  win_obs_cases_.push_back(obs.cases);
  if (use_deaths) win_obs_deaths_.push_back(*obs.deaths);

  // One-day observation caches: the built-in likelihoods fold per-day
  // terms left to right, so day caches scored and summed in day order are
  // bit-equal to the whole-window cached score.
  const double day_cases = obs.cases;
  const core::ObservationCache case_cache =
      likelihood_->prepare({&day_cases, 1});
  double day_deaths = 0.0;
  core::ObservationCache death_cache;
  if (use_deaths) {
    day_deaths = *obs.deaths;
    death_cache = death_likelihood_->prepare({&day_deaths, 1});
  }

  // Raw day terms land in scratch, not the accumulators: a kThrow
  // degeneracy must abort before any accumulator mutates, and the
  // quarantine demotion happens in one serial pass below (per-sim the
  // day-ordered fold is unchanged, so healthy windows stay bit-identical).
  day_case_term_.assign(n, 0.0);
  if (use_deaths) day_death_term_.assign(n, 0.0);
  day_degen_.assign(n, 0);

  core::BatchSink sink;
  sink.on_sim = [&](std::size_t s) {
    // The bias engine persists across days and its draws are consumed
    // day-sequentially, so the per-day applies concatenate to exactly one
    // whole-window apply_into.
    bias_->apply_into(bias_eng_[s], day_ens_.true_cases(s), win_ens_.rho[s],
                      day_ens_.obs_cases(s));
    const double case_term =
        likelihood_->logpdf(case_cache, day_ens_.obs_cases(s));
    day_case_term_[s] = case_term;
    bool bad = core::detail::nonfinite_score(case_term);
    if (use_deaths) {
      const double death_term =
          death_likelihood_->logpdf(death_cache, day_ens_.deaths(s));
      day_death_term_[s] = death_term;
      bad = bad || core::detail::nonfinite_score(death_term);
    }
    if (bad) day_degen_[s] = 1;
    win_ens_.true_cases(s)[k] = day_ens_.true_cases(s)[0];
    win_ens_.obs_cases(s)[k] = day_ens_.obs_cases(s)[0];
    win_ens_.deaths(s)[k] = day_ens_.deaths(s)[0];
  };

  parallel::Timer prop_timer;
  if (k == 0) {
    // First day: copy-branch from the parent states exactly like the
    // batch weighted pass (same seed/stream/theta columns), truncated at
    // from_day, and capture each live model into the cloud.
    sink.capture = cloud_.get();
    sim_.run_batch(*parents_, day, day_ens_, 0, n, sink);
  } else {
    // Later days: continue each pooled model in place. Typed backends
    // keep their engine positions (bit-identical to one long run); the
    // io-boundary default re-branches onto the fresh per-day stream set
    // here (distribution-correct).
    const auto w = static_cast<std::uint64_t>(spec_.window_index);
    const auto d = static_cast<std::uint64_t>(day);
    for (std::size_t s = 0; s < n; ++s) {
      day_ens_.parent[s] = static_cast<std::uint32_t>(s);
      day_ens_.stream[s] = rng::make_stream_id({kStreamModelTag, w, d, s}).key;
    }
    sim_.advance_batch(*cloud_, day, day_ens_, 0, n, sink);
  }
  propagate_seconds_ += prop_timer.seconds();

  const core::DegeneracyReport day_report =
      core::detail::collect_degenerate(day_degen_);
  if (day_report.any() &&
      spec_.on_degenerate == core::DegeneracyPolicy::kThrow) {
    // No accumulator has been touched yet, so the session stays restorable
    // from its last checkpoint.
    core::detail::throw_degenerate(
        "streaming day " + std::to_string(day) + " (window " +
            std::to_string(spec_.window_index) + ")",
        day_report);
  }

  // Fold the day terms, demoting each non-finite term to -inf (the
  // quarantine policy); per sim this adds exactly one term per day in day
  // order, bit-identical to the pre-scratch fold on healthy windows and to
  // the batch whole-window demotion on quarantined ones (-inf either way).
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < n; ++s) {
    double case_term = day_case_term_[s];
    if (core::detail::nonfinite_score(case_term)) case_term = kNegInf;
    case_acc_[s] += case_term;
    full_case_acc_[s] += case_term;
    if (use_deaths) {
      double death_term = day_death_term_[s];
      if (core::detail::nonfinite_score(death_term)) death_term = kNegInf;
      death_acc_[s] += death_term;
      full_death_acc_[s] += death_term;
    }
    win_degen_[s] = static_cast<std::uint8_t>(win_degen_[s] | day_degen_[s]);
  }

  for (std::size_t s = 0; s < n; ++s) {
    lw_scratch_[s] =
        use_deaths ? case_acc_[s] + death_acc_[s] : case_acc_[s];
  }
  ps_.commit(lw_scratch_);

  StreamDayRecord rec;
  rec.day = day;
  rec.window = spec_.window_index;
  rec.demoted = static_cast<std::uint32_t>(day_report.demoted);
  rec.log_marginal = ps_.log_marginal_increment();
  bool degenerate = false;
  try {
    rec.ess = ps_.ess();
  } catch (const std::domain_error&) {
    // Fully degenerate day: every since-resample weight is -inf. Coast to
    // the boundary, where resolve_window_posterior raises a precise,
    // recoverable CalibrationError naming the quarantined draws.
    rec.ess = 0.0;
    degenerate = true;
  }

  const bool adaptive =
      spec_.inference != core::InferenceStrategy::kSingleStage;
  if (adaptive && config_.resample_mid_window && !degenerate &&
      day < spec_.to_day &&
      rec.ess < spec_.ess_threshold * static_cast<double>(n)) {
    resample_cloud(day);
    rec.resampled = true;
  }
  rec.seconds = day_timer.seconds();
  days_.push_back(rec);
}

void StreamingCalibrator::resample_cloud(std::int32_t day) {
  fault::hit("resample");
  const std::size_t n = n_sims();
  const auto w = static_cast<std::uint64_t>(spec_.window_index);
  const auto d = static_cast<std::uint64_t>(day);

  // Fold the evidence of the weights consumed by this resample; the
  // window's final log_marginal is this accumulator plus the tail commit.
  log_marginal_acc_ += ps_.log_marginal_increment();

  rng::PhiloxEngine eng =
      rng::make_engine(spec_.seed, {kStreamResampleTag, w, d});
  const std::vector<std::uint32_t> anc = ps_.resample(spec_.scheme, eng, n);

  // Redistribute the ensemble: identity/parameter columns plus the
  // already-assimilated series prefix follow the ancestor.
  const std::size_t days_done = win_obs_cases_.size();
  core::EnsembleBuffer next(n, win_ens_.window_len());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t a = anc[i];
    next.param_index[i] = win_ens_.param_index[a];
    next.replicate[i] = win_ens_.replicate[a];
    next.parent[i] = win_ens_.parent[a];
    next.theta[i] = win_ens_.theta[a];
    next.rho[i] = win_ens_.rho[a];
    next.seed[i] = win_ens_.seed[a];
    next.stream[i] = win_ens_.stream[a];
    const auto src_tc = win_ens_.true_cases(a);
    const auto src_oc = win_ens_.obs_cases(a);
    const auto src_de = win_ens_.deaths(a);
    std::copy_n(src_tc.begin(), days_done, next.true_cases(i).begin());
    std::copy_n(src_oc.begin(), days_done, next.obs_cases(i).begin());
    std::copy_n(src_de.begin(), days_done, next.deaths(i).begin());
  }
  win_ens_ = std::move(next);

  // Full-window accumulators follow the ancestor; the since-resample
  // accumulators restart at zero (the SMC weights from here on). The
  // quarantine flags are distinct-draw bookkeeping, so they follow the
  // ancestor too.
  std::vector<double> fc(n), fd(n);
  std::vector<std::uint8_t> dg(n);
  for (std::size_t i = 0; i < n; ++i) {
    fc[i] = full_case_acc_[anc[i]];
    fd[i] = full_death_acc_[anc[i]];
    dg[i] = win_degen_[anc[i]];
  }
  full_case_acc_ = std::move(fc);
  full_death_acc_ = std::move(fd);
  win_degen_ = std::move(dg);
  case_acc_.assign(n, 0.0);
  death_acc_.assign(n, 0.0);

  // Fresh per-particle identities from the resample day on: duplicated
  // ancestors must diverge, so each particle gets a new model stream (the
  // pool re-branches in place) and a new bias stream.
  std::vector<std::uint64_t> streams(n);
  for (std::size_t i = 0; i < n; ++i) {
    streams[i] = rng::make_stream_id({kStreamModelTag, w, d, i}).key;
    bias_eng_[i] = rng::make_engine(spec_.seed, {kStreamBiasTag, w, d, i});
    day_ens_.param_index[i] = win_ens_.param_index[i];
    day_ens_.replicate[i] = win_ens_.replicate[i];
    day_ens_.theta[i] = win_ens_.theta[i];
    day_ens_.rho[i] = win_ens_.rho[i];
  }
  sim_.resample_states(*cloud_, anc, spec_.seed, streams, win_ens_.theta);
  ++midwindow_resamples_;
}

void StreamingCalibrator::finalize_window() {
  fault::hit("window-boundary");
  const std::size_t n = n_sims();
  const bool use_deaths = config_.calibration.use_deaths;

  core::WindowResult result;
  result.from_day = spec_.from_day;
  result.to_day = spec_.to_day;

  // The ensemble's log-weight column carries the since-resample
  // accumulators -- the correct SMC weights for the boundary resolve (and
  // the full-window likelihood when no mid-window resample fired, making
  // the resolve input bit-identical to batch).
  for (std::size_t s = 0; s < n; ++s) {
    win_ens_.log_weight[s] =
        use_deaths ? case_acc_[s] + death_acc_[s] : case_acc_[s];
  }
  result.ensemble = std::move(win_ens_);
  result.diag.propagate_seconds = propagate_seconds_;

  const core::ObservationCache case_cache =
      likelihood_->prepare(win_obs_cases_);
  const core::ObservationCache death_cache =
      use_deaths ? death_likelihood_->prepare(win_obs_deaths_)
                 : core::ObservationCache{};

  // Full-window log-likelihoods for rejuvenation acceptance; identical to
  // the log-weight column unless a mid-window resample truncated it.
  std::vector<double> full_lw(n);
  for (std::size_t s = 0; s < n; ++s) {
    full_lw[s] = use_deaths ? full_case_acc_[s] + full_death_acc_[s]
                            : full_case_acc_[s];
  }

  // The streaming path always captures inline: the cloud *is* the live
  // end-of-window state set, so survivor compaction is free and deferred
  // replay (which could not reproduce mid-window resamples anyway) is
  // never needed.
  core::detail::WindowPosteriorInputs inputs{
      sim_,        *likelihood_, *death_likelihood_, *bias_, *parents_,
      spec_,       propose_,     case_cache,         death_cache,
      full_lw};
  inputs.degeneracy = core::detail::collect_degenerate(win_degen_);
  core::detail::resolve_window_posterior(inputs, cloud_,
                                         /*inline_capture=*/true, result);
  if (midwindow_resamples_ > 0) {
    result.diag.log_marginal += log_marginal_acc_;
  }

  StreamWindowRecord rec;
  rec.from_day = spec_.from_day;
  rec.to_day = spec_.to_day;
  rec.diag = result.diag;
  rec.smc = result.smc;
  rec.summary = core::summarize_window(result);
  history_.push_back(std::move(rec));

  prev_draws_ = std::make_shared<const core::PosteriorDraws>(
      core::PosteriorDraws::from_window(result));
  parents_ = result.state_pool;
  results_.push_back(std::move(result));

  ++window_index_;
  close_window_members();
}

void StreamingCalibrator::close_window_members() {
  window_open_ = false;
  propose_ = nullptr;
  cloud_.reset();
  win_obs_cases_.clear();
  win_obs_deaths_.clear();
  bias_eng_.clear();
  win_degen_.clear();
  log_marginal_acc_ = 0.0;
  midwindow_resamples_ = 0;
  propagate_seconds_ = 0.0;
}

void StreamingCalibrator::maybe_checkpoint() {
  if (config_.checkpoint_every <= 0) return;
  ++days_since_checkpoint_;
  if (days_since_checkpoint_ <
      static_cast<std::uint64_t>(config_.checkpoint_every)) {
    return;
  }
  // Reset before snapshotting so the archive does not re-trigger a
  // checkpoint on the first post-resume ingest.
  days_since_checkpoint_ = 0;
  io::BinaryWriter out(StreamState::kArchiveVersion);
  snapshot().serialize(out);
  io::CheckpointRotation(config_.checkpoint_path).save_next(out);
}

void StreamingCalibrator::checkpoint_now() {
  if (config_.checkpoint_path.empty()) {
    throw std::logic_error(
        "StreamingCalibrator::checkpoint_now: no checkpoint_path configured");
  }
  days_since_checkpoint_ = 0;
  io::BinaryWriter out(StreamState::kArchiveVersion);
  snapshot().serialize(out);
  io::CheckpointRotation(config_.checkpoint_path).save_next(out);
}

StreamState StreamingCalibrator::snapshot() const {
  StreamState st;
  st.config_fingerprint = config_fingerprint(config_);
  st.simulator_name = sim_.name();

  st.cursor = cursor_;
  st.any_assimilated = any_assimilated_;
  st.window_index = window_index_;
  st.window_open = window_open_;
  st.days_since_checkpoint = days_since_checkpoint_;

  st.history = history_;
  st.days = days_;

  st.has_initial = has_initial_;
  if (has_initial_) st.initial = initial_ckpt_;
  st.has_posterior = prev_draws_ != nullptr;
  if (st.has_posterior) {
    st.posterior = *prev_draws_;
    st.parent_pool.reserve(parents_->size());
    for (std::size_t p = 0; p < parents_->size(); ++p) {
      st.parent_pool.push_back(parents_->to_checkpoint(p));
    }
  }

  if (window_open_) {
    const std::size_t n = n_sims();
    const std::size_t days_done = win_obs_cases_.size();
    st.obs_cases = win_obs_cases_;
    st.obs_deaths = win_obs_deaths_;
    st.n_sims = n;
    st.param_index = win_ens_.param_index;
    st.replicate = win_ens_.replicate;
    st.parent = win_ens_.parent;
    st.theta = win_ens_.theta;
    st.rho = win_ens_.rho;
    st.seed = win_ens_.seed;
    st.stream = win_ens_.stream;
    st.true_cases_prefix.reserve(n * days_done);
    st.obs_cases_prefix.reserve(n * days_done);
    st.deaths_prefix.reserve(n * days_done);
    for (std::size_t s = 0; s < n; ++s) {
      const auto tc = win_ens_.true_cases(s);
      const auto oc = win_ens_.obs_cases(s);
      const auto de = win_ens_.deaths(s);
      st.true_cases_prefix.insert(st.true_cases_prefix.end(), tc.begin(),
                                  tc.begin() + days_done);
      st.obs_cases_prefix.insert(st.obs_cases_prefix.end(), oc.begin(),
                                 oc.begin() + days_done);
      st.deaths_prefix.insert(st.deaths_prefix.end(), de.begin(),
                              de.begin() + days_done);
    }
    st.case_acc = case_acc_;
    st.death_acc = death_acc_;
    st.full_case_acc = full_case_acc_;
    st.full_death_acc = full_death_acc_;
    st.bias_stream.reserve(n);
    st.bias_position.reserve(n);
    for (const rng::PhiloxEngine& e : bias_eng_) {
      st.bias_stream.push_back(e.stream_value());
      st.bias_position.push_back(e.position());
    }
    st.cloud.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      st.cloud.push_back(cloud_->to_checkpoint(s));
    }
    st.log_marginal_acc = log_marginal_acc_;
    st.midwindow_resamples = midwindow_resamples_;
    st.propagate_seconds = propagate_seconds_;
    st.degenerate_draw = win_degen_;
  }
  return st;
}

void StreamingCalibrator::restore(const StreamState& state) {
  if (state.config_fingerprint != config_fingerprint(config_)) {
    throw std::invalid_argument(
        "StreamingCalibrator::restore: snapshot was taken under a different "
        "configuration (fingerprint mismatch); resume with the exact config "
        "that produced the checkpoint");
  }
  if (state.simulator_name != sim_.name()) {
    throw std::invalid_argument(
        "StreamingCalibrator::restore: snapshot was taken under simulator '" +
        state.simulator_name + "', but this calibrator drives '" +
        sim_.name() + "'");
  }

  cursor_ = state.cursor;
  any_assimilated_ = state.any_assimilated;
  window_index_ = state.window_index;
  days_since_checkpoint_ = state.days_since_checkpoint;
  history_ = state.history;
  days_ = state.days;
  results_.clear();  // full WindowResults are not archived (see results())

  has_initial_ = state.has_initial;
  if (has_initial_) initial_ckpt_ = state.initial;
  prev_draws_ = state.has_posterior
                    ? std::make_shared<const core::PosteriorDraws>(
                          state.posterior)
                    : nullptr;

  parents_.reset();
  if (state.has_posterior) {
    auto pool = sim_.make_pool();
    pool->resize(state.parent_pool.size());
    for (std::size_t p = 0; p < state.parent_pool.size(); ++p) {
      pool->set_from_checkpoint(p, state.parent_pool[p]);
    }
    parents_ = std::move(pool);
  } else if (has_initial_) {
    auto pool = sim_.make_pool();
    pool->resize(1);
    pool->set_from_checkpoint(0, initial_ckpt_);
    parents_ = std::move(pool);
  }

  close_window_members();
  if (!state.window_open) return;

  const core::CalibrationConfig& cal = config_.calibration;
  spec_ = core::make_window_spec(cal, window_index_);
  propose_ = window_index_ == 0
                 ? core::make_prior_proposal(cal, needs_rho_)
                 : core::make_posterior_proposal(cal, prev_draws_,
                                                 needs_rho_);

  const std::size_t n = n_sims();
  if (state.n_sims != n) {
    throw std::invalid_argument(
        "StreamingCalibrator::restore: snapshot holds " +
        std::to_string(state.n_sims) + " sims but the config budgets " +
        std::to_string(n));
  }
  const auto window_len =
      static_cast<std::size_t>(spec_.to_day - spec_.from_day + 1);
  const std::size_t days_done = state.obs_cases.size();

  win_ens_.resize(n, window_len);
  win_ens_.param_index = state.param_index;
  win_ens_.replicate = state.replicate;
  win_ens_.parent = state.parent;
  win_ens_.theta = state.theta;
  win_ens_.rho = state.rho;
  win_ens_.seed = state.seed;
  win_ens_.stream = state.stream;
  for (std::size_t s = 0; s < n; ++s) {
    std::copy_n(state.true_cases_prefix.begin() + s * days_done, days_done,
                win_ens_.true_cases(s).begin());
    std::copy_n(state.obs_cases_prefix.begin() + s * days_done, days_done,
                win_ens_.obs_cases(s).begin());
    std::copy_n(state.deaths_prefix.begin() + s * days_done, days_done,
                win_ens_.deaths(s).begin());
  }

  day_ens_.resize(n, 1);
  day_ens_.param_index = win_ens_.param_index;
  day_ens_.replicate = win_ens_.replicate;
  day_ens_.parent = win_ens_.parent;
  day_ens_.theta = win_ens_.theta;
  day_ens_.rho = win_ens_.rho;
  day_ens_.seed = win_ens_.seed;
  day_ens_.stream = win_ens_.stream;

  cloud_ = sim_.make_pool();
  cloud_->resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    cloud_->set_from_checkpoint(s, state.cloud[s]);
  }

  win_obs_cases_ = state.obs_cases;
  win_obs_deaths_ = state.obs_deaths;
  case_acc_ = state.case_acc;
  death_acc_ = state.death_acc;
  full_case_acc_ = state.full_case_acc;
  full_death_acc_ = state.full_death_acc;
  bias_eng_.clear();
  bias_eng_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    rng::PhiloxEngine e(spec_.seed, state.bias_stream[s]);
    e.set_position(state.bias_position[s]);
    bias_eng_.push_back(e);
  }
  log_marginal_acc_ = state.log_marginal_acc;
  midwindow_resamples_ = state.midwindow_resamples;
  propagate_seconds_ = state.propagate_seconds;
  win_degen_ = state.degenerate_draw;
  win_degen_.resize(n, 0);
  ps_.reset(n);
  lw_scratch_.assign(n, 0.0);
  window_open_ = true;
}

void StreamingCalibrator::save(const std::filesystem::path& path) const {
  snapshot().save(path);
}

void StreamingCalibrator::load(const std::filesystem::path& path) {
  restore(StreamState::load(path));
}

std::optional<io::RecoveredSlot> StreamingCalibrator::resume_latest() {
  if (config_.checkpoint_path.empty()) {
    throw std::logic_error(
        "StreamingCalibrator::resume_latest: no checkpoint_path configured "
        "(rotated slots are derived from it)");
  }
  const io::CheckpointRotation rotation(config_.checkpoint_path);
  // A crash mid-save (the very situation resume recovers from) leaks the
  // save's temp file; collect any such strays before a retry leaks more.
  rotation.gc_stale_temps();
  bool any_exists = false;
  bool fell_back = false;
  std::string failures;
  for (const io::SlotInfo& slot : rotation.by_recency()) {
    if (!slot.exists) continue;
    any_exists = true;
    try {
      io::BinaryReader in = io::BinaryReader::load(slot.path);
      StreamState state = StreamState::deserialize(in);
      // A fingerprint/simulator mismatch throws std::invalid_argument out
      // of restore() and is deliberately NOT a fallback trigger: both
      // slots came from the same session, so the older one would mismatch
      // identically.
      restore(state);
      io::RecoveredSlot recovered;
      recovered.path = slot.path;
      recovered.generation = in.generation();
      recovered.fell_back = fell_back;
      recovered.note =
          fell_back ? "newest slot unusable (" + failures +
                          "); recovered from the previous generation"
                    : "newest checkpoint slot";
      last_recovery_ = std::move(recovered);
      return last_recovery_;
    } catch (const io::ArchiveError& e) {
      // Torn/corrupt/truncated slot: note why and try the older one.
      if (!failures.empty()) failures += "; ";
      failures += slot.path.filename().string() + ": " + e.what();
      fell_back = true;
    }
  }
  if (!any_exists) return std::nullopt;  // fresh session, nothing to resume
  throw io::ArchiveError(
      io::ArchiveErrorKind::kCorrupt,
      "StreamingCalibrator::resume_latest: no usable checkpoint slot under "
      "'" + config_.checkpoint_path.string() + "' (" + failures + ")");
}

}  // namespace epismc::stream
