#pragma once

// Ingress types and the versioned checkpoint archive of the streaming
// calibrator (src/stream/streaming_calibrator.hpp is the driver).
//
// StreamState is a full snapshot of a StreamingCalibrator's session:
// particle cloud, ensemble prefix, RNG stream positions, likelihood
// accumulators, diagnostics history and the assimilated-day cursor.
// Restoring it on another process resumes the stream bit-exactly -- the
// equivalence tests compare resumed-vs-uninterrupted posteriors byte for
// byte. The archive is versioned (kArchiveVersion) and tagged
// (kArchiveTag), so a corrupted, truncated or future-format file fails
// with a precise io::ArchiveError instead of garbage state.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/particle.hpp"
#include "core/posterior.hpp"
#include "core/sequential_calibrator.hpp"
#include "epi/seir_model.hpp"
#include "io/binary_archive.hpp"

namespace epismc::stream {

/// One day of observed surveillance counts, the streaming ingress unit.
/// `deaths` is required when the calibration scores the death stream
/// (CalibrationConfig::use_deaths) and ignored otherwise.
struct DailyObservation {
  std::int32_t day = 0;
  double cases = 0.0;
  std::optional<double> deaths;
};

/// Streaming-session configuration: the batch CalibrationConfig (windows,
/// budgets, priors, inference strategy -- the streaming path shares every
/// knob) plus the streaming-only knobs.
struct StreamConfig {
  core::CalibrationConfig calibration;

  /// Automatic checkpointing: every `checkpoint_every` assimilated days
  /// the session is archived through dual-slot rotation derived from
  /// `checkpoint_path` (`<path>.a` / `<path>.b`, generation-stamped; see
  /// io::CheckpointRotation), so a crash at any instant -- mid-save
  /// included -- leaves at least one durable CRC-verified checkpoint.
  /// Both knobs default off; setting either requires the other.
  std::int64_t checkpoint_every = 0;
  std::filesystem::path checkpoint_path;

  /// Under an adaptive inference strategy, resample the live cloud
  /// mid-window whenever a day's cumulative ESS drops below the config's
  /// ess_threshold. Off, the cloud coasts to the window boundary and the
  /// batch machinery handles degeneracy there (bit-identical to batch).
  bool resample_mid_window = true;

  /// Fail-fast validation: delegates to calibration.validate(), then
  /// rejects a non-positive checkpoint interval or a missing checkpoint
  /// path with precise messages.
  void validate() const;
};

/// Per-day assimilation record (the streaming analogue of a window's
/// WindowDiagnostics, at day granularity).
struct StreamDayRecord {
  std::int32_t day = 0;
  std::uint32_t window = 0;  // window index the day belongs to
  double ess = 0.0;          // ESS of the weights accumulated since the
                             // last (mid-window) resample, after this day
  bool resampled = false;    // a mid-window resample fired on this day
  double log_marginal = 0.0; // evidence of the since-resample weights
  double seconds = 0.0;      // wall time of this day's assimilation
  /// Draws whose day-term scored non-finite and were quarantined to -inf
  /// under DegeneracyPolicy::kQuarantine (0 on healthy days).
  std::uint32_t demoted = 0;
};

/// Per-window summary kept in the streaming history. Unlike the full
/// WindowResult (whose ensemble is O(n_sims * window_len)), this is small
/// enough to archive for every completed window, so a resumed session
/// still reports the whole run.
struct StreamWindowRecord {
  std::int32_t from_day = 0;
  std::int32_t to_day = 0;
  core::WindowDiagnostics diag;
  core::SmcDiagnostics smc;
  core::WindowPosteriorSummary summary;
};

/// Snapshot of a streaming session; see the header comment. Field groups
/// mirror StreamingCalibrator's members. `open-window` fields are
/// meaningful only when `window_open` is set.
struct StreamState {
  // v2: per-day demoted counts, open-window degenerate-draw flags
  // (fault-tolerant degeneracy handling).
  static constexpr std::uint32_t kArchiveVersion = 2;
  static constexpr const char* kArchiveTag = "epismc-stream";

  /// Guard against resuming under a different configuration: a hash over
  /// the numeric/name config fields (priors excluded -- they are
  /// polymorphic; keep them identical across processes yourself).
  std::uint64_t config_fingerprint = 0;
  std::string simulator_name;

  // --- Cursor. --------------------------------------------------------------
  std::int32_t cursor = 0;          // last assimilated day
  bool any_assimilated = false;
  std::uint32_t window_index = 0;   // window currently open / next to open
  bool window_open = false;
  std::uint64_t days_since_checkpoint = 0;

  // --- History (all completed windows + every assimilated day). ------------
  std::vector<StreamWindowRecord> history;
  std::vector<StreamDayRecord> days;

  // --- Cross-window state. --------------------------------------------------
  bool has_initial = false;
  epi::Checkpoint initial;            // shared burn-in state (window 0)
  bool has_posterior = false;
  core::PosteriorDraws posterior;     // previous window's posterior draws
  std::vector<epi::Checkpoint> parent_pool;  // previous window's end states

  // --- Open-window state. ---------------------------------------------------
  std::vector<double> obs_cases;   // days assimilated so far, in day order
  std::vector<double> obs_deaths;  // parallel to obs_cases iff use_deaths
  std::uint64_t n_sims = 0;
  std::vector<std::uint32_t> param_index, replicate, parent;
  std::vector<double> theta, rho;
  std::vector<std::uint64_t> seed, stream;
  // Assimilated prefix of the window's series matrices, day-major rows of
  // length obs_cases.size() per sim.
  std::vector<double> true_cases_prefix, obs_cases_prefix, deaths_prefix;
  // Likelihood accumulators: since the last mid-window resample (the SMC
  // weights) and over the full window (rejuvenation acceptance).
  std::vector<double> case_acc, death_acc, full_case_acc, full_death_acc;
  // Per-sim bias engines as (stream, position); the seed is the window's.
  std::vector<std::uint64_t> bias_stream, bias_position;
  std::vector<epi::Checkpoint> cloud;  // live particle states, slot per sim
  double log_marginal_acc = 0.0;       // evidence folded at resamples
  std::uint32_t midwindow_resamples = 0;
  double propagate_seconds = 0.0;
  // Per-distinct-draw quarantine flags of the open window (1 = some day
  // term of that draw was demoted to -inf); folded into the window's
  // DegeneracyReport at the boundary.
  std::vector<std::uint8_t> degenerate_draw;

  void serialize(io::BinaryWriter& out) const;
  /// Throws io::ArchiveError on a wrong tag, an unsupported version, or a
  /// truncated payload -- each names what it saw and what it expected.
  [[nodiscard]] static StreamState deserialize(io::BinaryReader& in);

  /// Atomic write of tag + snapshot at kArchiveVersion.
  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static StreamState load(const std::filesystem::path& path);
};

/// The fingerprint StreamState stores; exposed so tests can assert the
/// guard trips on a config drift.
[[nodiscard]] std::uint64_t config_fingerprint(const StreamConfig& config);

/// Per-day diagnostics as CSV (day, window, ess, resampled, log_marginal,
/// seconds, demoted); doubles are written round-trip exact.
void write_stream_day_csv(std::ostream& out,
                          const std::vector<StreamDayRecord>& days);

}  // namespace epismc::stream
