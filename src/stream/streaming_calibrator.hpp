#pragma once

// Online streaming calibration: assimilate surveillance counts one day at
// a time instead of replaying whole windows.
//
// The batch SequentialCalibrator scores a window only once all of its days
// are known. A StreamingCalibrator is the long-lived counterpart for live
// surveillance feeds: each ingest() advances every particle's *live* model
// state exactly one day through the fused batch kernel (no window replay
// -- Simulator::advance_batch continues each model's own RNG engine in
// place), applies the reporting bias through a per-sim engine persisted
// across days, folds the day's likelihood term into per-sim accumulators,
// and re-commits the particle weights. At a window boundary the
// accumulated ensemble is handed to the *batch* post-scoring pipeline
// (core::detail::resolve_window_posterior -- normalize, strategy dispatch,
// survivor compaction, rejuvenation), so the streaming path re-uses the
// PR-5 inference machinery rather than re-implementing it.
//
// Equivalence contract (locked in by tests/stream_calibrator_test.cpp):
// with mid-window resampling off (or never triggered), streaming days
// [from, to] is *bit-identical* to run_importance_window over the same
// window -- same proposal engines, same model streams, same bias draws,
// same left-to-right likelihood fold, same resample engine. With
// mid-window resamples the posterior is distribution-equivalent
// (paired-seed moment bound), which is the point: the cloud is steered
// toward the data mid-window instead of degenerating at the boundary.
//
// The whole session serializes to a versioned StreamState archive
// (snapshot()/save()); restore()/load() resumes bit-exactly on another
// process, mid-window included.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/particle_system.hpp"
#include "core/sequential_calibrator.hpp"
#include "io/checkpoint_rotation.hpp"
#include "stream/stream_state.hpp"

namespace epismc::stream {

class StreamingCalibrator {
 public:
  /// Validates `config` (StreamConfig::validate) and resolves the
  /// likelihood/bias components eagerly. `sim` must outlive the
  /// calibrator.
  StreamingCalibrator(const core::Simulator& sim, StreamConfig config);

  /// Assimilate one day of observations. Days must arrive contiguously,
  /// starting at the first window's first day; throws std::logic_error
  /// once all windows are assimilated and std::invalid_argument on an
  /// out-of-order day, a gap, or a missing death count under use_deaths
  /// -- each message names the offending day. Returns this day's
  /// diagnostics record.
  const StreamDayRecord& ingest(const DailyObservation& obs);

  // --- Cursor. --------------------------------------------------------------
  /// Day the next ingest() must carry; stays past-the-end once finished().
  [[nodiscard]] std::int32_t next_expected_day() const;
  /// Last assimilated day; throws std::logic_error before the first ingest.
  [[nodiscard]] std::int32_t last_assimilated_day() const;
  [[nodiscard]] bool window_open() const noexcept { return window_open_; }
  [[nodiscard]] bool finished() const noexcept {
    return window_index_ ==
               static_cast<std::uint32_t>(
                   config_.calibration.windows.size()) &&
           !window_open_;
  }
  [[nodiscard]] std::size_t windows_completed() const noexcept {
    return history_.size();
  }
  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

  // --- Results. -------------------------------------------------------------
  /// Full WindowResults of windows completed *by this process*. A resumed
  /// session starts this list empty (full results are too heavy for the
  /// checkpoint archive); history() always covers the whole run.
  [[nodiscard]] const std::vector<core::WindowResult>& results()
      const noexcept {
    return results_;
  }
  /// Per-window diagnostics + posterior summaries over the whole session,
  /// resumes included.
  [[nodiscard]] const std::vector<StreamWindowRecord>& history()
      const noexcept {
    return history_;
  }
  /// Per-day assimilation records over the whole session.
  [[nodiscard]] const std::vector<StreamDayRecord>& day_records()
      const noexcept {
    return days_;
  }

  // --- Checkpoint / resume. -------------------------------------------------
  /// Full-session snapshot; valid between ingest() calls (never inside
  /// one). Restoring it -- on this or another process, via restore() --
  /// continues the stream bit-exactly.
  [[nodiscard]] StreamState snapshot() const;
  /// Throws std::invalid_argument when the snapshot's config fingerprint
  /// or simulator backend does not match this calibrator's.
  void restore(const StreamState& state);
  void save(const std::filesystem::path& path) const;
  void load(const std::filesystem::path& path);

  /// Force a rotated checkpoint right now, regardless of the
  /// checkpoint_every cadence (supervised sessions call this once at end
  /// of feed so the terminal state is always durable). Requires a
  /// configured checkpoint_path; resets the cadence counter.
  void checkpoint_now();

  /// Crash recovery over the rotated checkpoint slots of the configured
  /// checkpoint_path: restores the newest CRC-passing slot, falling back
  /// to the older one when the newest is torn/corrupt, and reports what
  /// was recovered (path, generation, whether a fallback happened).
  /// Returns nullopt -- leaving the session fresh -- when neither slot
  /// exists yet; throws io::ArchiveError when slots exist but none is
  /// usable, std::logic_error when no checkpoint_path is configured, and
  /// std::invalid_argument when a usable slot belongs to a different
  /// config/simulator (a fingerprint mismatch is not recoverable by
  /// falling back -- both slots came from the same session).
  std::optional<io::RecoveredSlot> resume_latest();
  /// The last resume_latest recovery, if one happened this process.
  [[nodiscard]] const std::optional<io::RecoveredSlot>& last_recovery()
      const noexcept {
    return last_recovery_;
  }

  /// Liveness hook, beaten once per assimilated day (after any window
  /// finalization and checkpoint for that day). See core/progress.hpp.
  void set_progress(core::ProgressReporter progress) {
    progress_ = std::move(progress);
  }

 private:
  void open_window();
  void assimilate_day(const DailyObservation& obs);
  void resample_cloud(std::int32_t day);
  void finalize_window();
  void close_window_members();
  void maybe_checkpoint();
  [[nodiscard]] std::size_t n_sims() const noexcept {
    return config_.calibration.n_params * config_.calibration.replicates;
  }

  const core::Simulator& sim_;
  StreamConfig config_;
  std::unique_ptr<core::Likelihood> likelihood_;
  std::unique_ptr<core::Likelihood> death_likelihood_;
  std::unique_ptr<core::BiasModel> bias_;
  bool needs_rho_ = false;

  // Cursor.
  std::int32_t cursor_ = 0;
  bool any_assimilated_ = false;
  std::uint32_t window_index_ = 0;
  bool window_open_ = false;
  std::uint64_t days_since_checkpoint_ = 0;

  // Cross-window state.
  bool has_initial_ = false;
  epi::Checkpoint initial_ckpt_;  // shared burn-in state (window 0)
  std::shared_ptr<const core::PosteriorDraws> prev_draws_;
  std::shared_ptr<core::StatePool> parents_;

  // Open-window state (valid while window_open_).
  core::WindowSpec spec_;
  core::ParamProposal propose_;
  core::EnsembleBuffer win_ens_;  // full-window rows, filled day by day
  core::EnsembleBuffer day_ens_;  // 1-day scratch the kernels write into
  std::shared_ptr<core::StatePool> cloud_;  // live states, slot per sim
  std::vector<double> win_obs_cases_, win_obs_deaths_;
  std::vector<double> case_acc_, death_acc_;       // since last resample
  std::vector<double> full_case_acc_, full_death_acc_;  // whole window
  // Day-scoring scratch: raw per-day terms land here first so a kThrow
  // degeneracy can abort before any accumulator is touched; quarantined
  // (demoted) terms then fold in as -inf. win_degen_ marks draws with at
  // least one demoted day this window (remapped by ancestor on resample).
  std::vector<double> day_case_term_, day_death_term_;
  std::vector<std::uint8_t> day_degen_, win_degen_;
  std::vector<rng::PhiloxEngine> bias_eng_;
  double log_marginal_acc_ = 0.0;
  std::uint32_t midwindow_resamples_ = 0;
  double propagate_seconds_ = 0.0;
  core::ParticleSystem ps_;
  std::vector<double> lw_scratch_;

  // Results.
  std::vector<core::WindowResult> results_;
  std::vector<StreamWindowRecord> history_;
  std::vector<StreamDayRecord> days_;
  std::optional<io::RecoveredSlot> last_recovery_;
  core::ProgressReporter progress_;
};

}  // namespace epismc::stream
