#include "fault/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include <signal.h>
#include <unistd.h>

namespace epismc::fault {

namespace detail {
std::atomic<std::uint32_t> g_armed_specs{0};
}  // namespace detail

namespace {

enum class Action : std::uint8_t { kFail, kCrash, kKill, kHang, kTorn };

struct Spec {
  std::string point;
  Action action = Action::kFail;
  std::uint64_t after = 0;    // hits (or saves, for torn) that pass first
  std::uint64_t at_byte = 0;  // torn-write only
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<Spec> specs;
};

Registry& registry() {
  static Registry r;
  return r;
}

const char* kTornPoint = "torn-write";

[[noreturn]] void die_by_crash() { std::_Exit(kCrashExitCode); }

[[noreturn]] void die_by_kill() {
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be blocked; the loop only exists to satisfy
  // [[noreturn]] between raise and delivery.
  for (;;) ::pause();
}

[[noreturn]] void die_by_hang() {
  // A wedged-but-alive worker: never exits, never progresses, consumes
  // no CPU. Only stall detection (or SIGKILL from a supervisor) ends it.
  for (;;) ::pause();
}

std::uint64_t parse_uint(const std::string& spec, const std::string& token) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(token, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != token.size() || token.empty()) {
    throw std::invalid_argument("fault::arm: '" + spec +
                                "': expected an unsigned integer, got '" +
                                token + "'");
  }
  return value;
}

Spec parse_spec(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    throw std::invalid_argument(
        "fault::arm: '" + text +
        "' is not of the form point:key=value[,key=value]");
  }
  Spec spec;
  spec.point = text.substr(0, colon);
  const auto& points = injection_points();
  if (std::find(points.begin(), points.end(), spec.point) == points.end()) {
    std::string known;
    for (const std::string& p : points) {
      if (!known.empty()) known += ", ";
      known += p;
    }
    throw std::invalid_argument("fault::arm: unknown injection point '" +
                                spec.point + "' (known: " + known + ")");
  }

  bool have_action = false;
  bool have_after = false;
  std::string rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string kv = rest.substr(0, comma);
    rest = comma == std::string::npos ? std::string() : rest.substr(comma + 1);
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault::arm: '" + text +
                                  "': token '" + kv + "' is not key=value");
    }
    const std::string key = kv.substr(0, eq);
    const std::uint64_t value = parse_uint(text, kv.substr(eq + 1));
    if (key == "fail_after" || key == "crash_after" || key == "kill_after" ||
        key == "hang_after") {
      if (have_action) {
        throw std::invalid_argument("fault::arm: '" + text +
                                    "': more than one action");
      }
      spec.action = key == "fail_after"    ? Action::kFail
                    : key == "crash_after" ? Action::kCrash
                    : key == "kill_after"  ? Action::kKill
                                           : Action::kHang;
      spec.after = value;
      have_action = true;
    } else if (key == "at_byte") {
      if (have_action) {
        throw std::invalid_argument("fault::arm: '" + text +
                                    "': more than one action");
      }
      if (spec.point != kTornPoint) {
        throw std::invalid_argument(
            "fault::arm: '" + text + "': at_byte only applies to the '" +
            std::string(kTornPoint) + "' point");
      }
      spec.action = Action::kTorn;
      spec.at_byte = value;
      have_action = true;
    } else if (key == "after") {
      spec.after = value;
      have_after = true;
    } else {
      throw std::invalid_argument("fault::arm: '" + text +
                                  "': unknown key '" + key + "'");
    }
  }
  if (!have_action) {
    throw std::invalid_argument(
        "fault::arm: '" + text +
        "': no action (fail_after / crash_after / kill_after / hang_after "
        "/ at_byte)");
  }
  if (have_after && spec.action != Action::kTorn) {
    throw std::invalid_argument(
        "fault::arm: '" + text +
        "': 'after' is only valid alongside at_byte (the *_after actions "
        "carry their own threshold)");
  }
  return spec;
}

// Parsed once here so EPISMC_FAULT is honored by any binary linking the
// library; this TU is always pulled in because the io layer calls hit().
const bool g_env_armed = [] {
  arm_from_env();
  return true;
}();

}  // namespace

namespace detail {

void hit_slow(const char* point) {
  Action action = Action::kFail;
  std::uint64_t after = 0;
  std::uint64_t hit_no = 0;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = std::find_if(r.specs.begin(), r.specs.end(), [&](const Spec& s) {
      return s.action != Action::kTorn && s.point == point;
    });
    if (it == r.specs.end()) return;
    hit_no = ++it->hits;
    if (hit_no <= it->after) return;
    action = it->action;
    after = it->after;
  }
  switch (action) {
    case Action::kFail:
      throw FaultInjected("fault injection: point '" + std::string(point) +
                          "' failed on hit " + std::to_string(hit_no) +
                          " (fail_after=" + std::to_string(after) + ")");
    case Action::kCrash:
      die_by_crash();
    case Action::kKill:
      die_by_kill();
    case Action::kHang:
      die_by_hang();
    case Action::kTorn:
      break;  // unreachable: torn specs are filtered out above
  }
}

std::optional<std::uint64_t> torn_write_byte_slow() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = std::find_if(r.specs.begin(), r.specs.end(), [](const Spec& s) {
    return s.action == Action::kTorn;
  });
  if (it == r.specs.end()) return std::nullopt;
  if (++it->hits <= it->after) return std::nullopt;
  return it->at_byte;
}

}  // namespace detail

void arm(const std::string& specs) {
  std::vector<Spec> parsed;
  std::string rest = specs;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string one = rest.substr(0, semi);
    rest = semi == std::string::npos ? std::string() : rest.substr(semi + 1);
    if (!one.empty()) parsed.push_back(parse_spec(one));
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.specs = std::move(parsed);
  detail::g_armed_specs.store(static_cast<std::uint32_t>(r.specs.size()),
                              std::memory_order_relaxed);
}

void arm_from_env() {
  const char* env = std::getenv("EPISMC_FAULT");
  if (env == nullptr || *env == '\0') return;
  arm(env);
}

void disarm() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.specs.clear();
  detail::g_armed_specs.store(0, std::memory_order_relaxed);
}

// Suppression only flips the fast-path gate; the specs and their hit
// counters stay in the registry, so a later hook sees exactly the state
// it would have seen had the suppressed scope never run.
ScopedSuppress::ScopedSuppress()
    : saved_(detail::g_armed_specs.exchange(0, std::memory_order_relaxed)) {}

ScopedSuppress::~ScopedSuppress() {
  detail::g_armed_specs.store(saved_, std::memory_order_relaxed);
}

const std::vector<std::string>& injection_points() {
  static const std::vector<std::string> points = {
      "archive-write", "archive-read",    "torn-write",
      "stream-ingest", "window-boundary", "resample"};
  return points;
}

}  // namespace epismc::fault
