#pragma once

// Deterministic fault injection for the durability layer.
//
// A long-lived streaming calibration must survive being killed at any
// instruction, and "survive" is only testable when the kill lands at a
// chosen instruction on demand. This header names the injection points
// the durability tests care about and lets a spec string arm an action
// at each of them:
//
//   EPISMC_FAULT="stream-ingest:crash_after=9"
//   EPISMC_FAULT="archive-write:fail_after=2;archive-read:fail_after=0"
//   EPISMC_FAULT="torn-write:at_byte=100,after=2"
//
// Grammar: specs separated by ';', each `point:key=value[,key=value]`.
// Actions (exactly one per spec):
//   fail_after=N   pass N hits, then throw FaultInjected on hit N+1
//   crash_after=N  pass N hits, then std::_Exit(kCrashExitCode)
//   kill_after=N   pass N hits, then raise SIGKILL against this process
//   hang_after=N   pass N hits, then block forever (pause loop) without
//                  exiting -- a wedged worker for stall-detection tests
//   at_byte=K      torn-write only: the armed archive save writes exactly
//                  the first K bytes of the sealed frame to the final
//                  destination (no temp/rename protocol) and _Exits --
//                  simulating a non-atomic filesystem tearing the write.
//                  Optional `,after=N` lets N saves complete first.
//
// Points: archive-write, archive-read, torn-write, stream-ingest,
// window-boundary, resample (see docs/API.md "Durability, fault
// injection & recovery").
//
// Zero-cost when disarmed: every hook is one relaxed atomic load and a
// never-taken branch; the registry, the mutex and the spec parse only
// exist on the armed path. EPISMC_FAULT is parsed once at process start
// (static init of fault.cpp); tests arm/disarm programmatically.

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace epismc::fault {

/// Exit status of the crash / torn-write actions; distinguishable from a
/// clean exit and from a signal death in the harness's waitpid.
inline constexpr int kCrashExitCode = 86;

/// Thrown by the fail action; names the point and the hit that fired.
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
extern std::atomic<std::uint32_t> g_armed_specs;
void hit_slow(const char* point);
[[nodiscard]] std::optional<std::uint64_t> torn_write_byte_slow();
}  // namespace detail

/// True when any spec is armed. The disarmed fast path of every hook.
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed_specs.load(std::memory_order_relaxed) != 0;
}

/// An injection point. No-op unless a spec armed `point`; otherwise
/// counts the hit and fires the spec's action once the threshold passes.
inline void hit(const char* point) {
  if (armed()) detail::hit_slow(point);
}

/// The torn-write point, polled by BinaryWriter::save: the byte count K
/// at which the current save must tear (consuming one `after` credit per
/// call), or nullopt when disarmed / still skipping.
[[nodiscard]] inline std::optional<std::uint64_t> torn_write_byte() {
  if (!armed()) return std::nullopt;
  return detail::torn_write_byte_slow();
}

/// Parse `specs` (the EPISMC_FAULT grammar above) and arm them, replacing
/// whatever was armed before. Throws std::invalid_argument on an unknown
/// point, an unknown or missing action, or a malformed value -- the
/// message quotes the offending token.
void arm(const std::string& specs);

/// Arm from the EPISMC_FAULT environment variable; no-op when unset or
/// empty. Called once automatically at process start.
void arm_from_env();

/// Remove all armed specs (tests pair this with arm()).
void disarm();

/// RAII suppression of every armed spec for the current scope: hooks see
/// the disarmed fast path while alive, the armed set is untouched and
/// hook visibility is restored on destruction. The supervisor wraps its
/// own report/archive saves in this so a process-wide EPISMC_FAULT aimed
/// at worker checkpoints cannot take down the parent doing bookkeeping.
class ScopedSuppress {
 public:
  ScopedSuppress();
  ~ScopedSuppress();
  ScopedSuppress(const ScopedSuppress&) = delete;
  ScopedSuppress& operator=(const ScopedSuppress&) = delete;

 private:
  std::uint32_t saved_;
};

/// The canonical point names, for docs, validation and CI sweeps.
[[nodiscard]] const std::vector<std::string>& injection_points();

}  // namespace epismc::fault
