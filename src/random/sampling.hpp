#pragma once

// Sampling without replacement over the canonical PhiloxEngine.
//
// The partial Fisher-Yates shuffle is the workhorse of the event-driven
// ABM infection step: picking the k community-infection victims out of the
// maintained susceptible index list costs O(k) swaps, independent of the
// list length -- no accept/reject loop whose expected work blows up as the
// acceptable set shrinks. The swap-callback form exists because callers
// (the ABM) mirror every swap into a position index; the span form covers
// plain arrays. Floyd's algorithm complements it for sampling from a
// virtual range [0, n) with no backing storage.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "random/distributions.hpp"

namespace epismc::rng {

namespace detail {
/// Throws std::invalid_argument when k > n.
void check_subset_size(std::size_t n, std::size_t k);
}  // namespace detail

/// Partial Fisher-Yates over a virtual n-element sequence: after the call,
/// positions [0, k) hold a uniform k-subset in uniform random order.
/// Storage stays with the caller: swap_fn(i, j) must exchange the elements
/// at positions i and j (called only with i < j, never i == j). Consumes
/// exactly k engine draws. Requires k <= n (checked).
template <typename SwapFn>
void partial_fisher_yates(Engine& eng, std::size_t n, std::size_t k,
                          SwapFn&& swap_fn) {
  detail::check_subset_size(n, k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(
                uniform_int(eng, static_cast<std::uint64_t>(n - i)));
    if (j != i) swap_fn(i, j);
  }
}

/// In-place overload: moves a uniform k-subset of `items` into items[0, k).
template <typename T>
void partial_fisher_yates(Engine& eng, std::span<T> items, std::size_t k) {
  partial_fisher_yates(eng, items.size(), k, [&](std::size_t i, std::size_t j) {
    using std::swap;
    swap(items[i], items[j]);
  });
}

/// Uniform k-subset of {0, ..., n-1} without replacement, appended to `out`
/// in draw order (Floyd's algorithm: O(k) draws and O(k) memory, no O(n)
/// index array). Requires k <= n (checked).
void sample_without_replacement(Engine& eng, std::uint64_t n, std::size_t k,
                                std::vector<std::uint64_t>& out);

/// Convenience overload returning a fresh vector.
[[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
    Engine& eng, std::uint64_t n, std::size_t k);

}  // namespace epismc::rng
