#include "random/alias_table.hpp"

#include <cmath>
#include <stdexcept>

namespace epismc::rng {

void AliasTable::build(std::span<const double> weights) {
  const std::size_t k = weights.size();
  if (k == 0) throw std::invalid_argument("AliasTable: empty weight vector");

  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("AliasTable: weights sum to zero");
  }

  probability_.assign(k, 0.0);
  alias_.assign(k, 0);

  // Scaled probabilities; columns with mass < 1 are "small", others "large".
  std::vector<double> scaled(k);
  const double scale = static_cast<double>(k) / total;
  for (std::size_t i = 0; i < k; ++i) scaled[i] = weights[i] * scale;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;  // stable form of l - (1 - s)
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Residual columns have mass 1 up to rounding.
  for (const std::uint32_t l : large) probability_[l] = 1.0;
  for (const std::uint32_t s : small) probability_[s] = 1.0;
}

std::vector<double> AliasTable::implied_probabilities() const {
  const std::size_t k = probability_.size();
  std::vector<double> p(k, 0.0);
  const double column_mass = 1.0 / static_cast<double>(k);
  for (std::size_t i = 0; i < k; ++i) {
    p[i] += column_mass * probability_[i];
    p[alias_[i]] += column_mass * (1.0 - probability_[i]);
  }
  return p;
}

}  // namespace epismc::rng
