#pragma once

// Sampling distributions over the canonical PhiloxEngine.
//
// Everything here consumes a *bounded, deterministic* number of engine draws
// per call wherever possible (inverse-CDF normal, conditional-binomial
// multinomial); rejection samplers (gamma, large-mean Poisson, large-n
// binomial) consume a variable but stream-local number of draws. Since each
// simulation entity owns its own Philox stream, variable consumption never
// leaks randomness across entities.

#include <cstdint>
#include <span>
#include <vector>

#include "random/philox.hpp"

namespace epismc::rng {

/// Canonical engine type used throughout the library.
using Engine = PhiloxEngine;

// ---------------------------------------------------------------------------
// Uniform primitives (header-inline: they are the innermost hot path).
// ---------------------------------------------------------------------------

/// Uniform double in [0, 1) with 53 random bits.
[[nodiscard]] inline double uniform_double(Engine& eng) {
  return static_cast<double>(eng() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1): safe as input to log() and quantile functions.
[[nodiscard]] inline double uniform_double_oo(Engine& eng) {
  return (static_cast<double>(eng() >> 12) + 0.5) * 0x1.0p-52;
}

/// Uniform double in [lo, hi).
[[nodiscard]] inline double uniform_range(Engine& eng, double lo, double hi) {
  return lo + (hi - lo) * uniform_double(eng);
}

/// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
[[nodiscard]] std::uint64_t uniform_int(Engine& eng, std::uint64_t bound);

/// Bernoulli(p) draw.
[[nodiscard]] inline bool bernoulli(Engine& eng, double p) {
  return uniform_double(eng) < p;
}

// ---------------------------------------------------------------------------
// Gaussian and friends.
// ---------------------------------------------------------------------------

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

/// Standard normal quantile function (inverse CDF). Acklam's rational
/// approximation polished with two Halley refinement steps; accurate to a
/// few ulp across (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Standard normal draw via inverse CDF: exactly one engine draw, which
/// keeps stream consumption deterministic for checkpoint reproducibility.
[[nodiscard]] double normal(Engine& eng);

/// Normal(mean, sd) draw.
[[nodiscard]] inline double normal(Engine& eng, double mean, double sd) {
  return mean + sd * normal(eng);
}

/// Exponential(rate) draw, rate > 0.
[[nodiscard]] double exponential(Engine& eng, double rate);

/// Gamma(shape, scale) draw via Marsaglia-Tsang squeeze; shape > 0.
[[nodiscard]] double gamma(Engine& eng, double shape, double scale = 1.0);

/// Beta(a, b) draw via two gammas; a, b > 0.
[[nodiscard]] double beta(Engine& eng, double a, double b);

// ---------------------------------------------------------------------------
// Discrete distributions.
// ---------------------------------------------------------------------------

/// Poisson(mean) draw; multiplication method below mean 10, PTRS
/// (Hoermann's transformed rejection) above.
[[nodiscard]] std::int64_t poisson(Engine& eng, double mean);

/// Binomial(n, p) draw; BINV inversion when n*min(p,1-p) < 30, BTPE
/// (Kachitvichyanukul & Schmeiser 1988) otherwise. O(1) in n for the
/// large regime, which matters: the epidemic simulator thins populations
/// of millions every step.
[[nodiscard]] std::int64_t binomial(Engine& eng, std::int64_t n, double p);

/// Multinomial draw by conditional binomials: partitions `n` across
/// `probs` (probs need not be normalized; they must be non-negative).
void multinomial(Engine& eng, std::int64_t n, std::span<const double> probs,
                 std::span<std::int64_t> out);

/// Convenience overload returning a fresh vector.
[[nodiscard]] std::vector<std::int64_t> multinomial(
    Engine& eng, std::int64_t n, std::span<const double> probs);

}  // namespace epismc::rng
