#include "random/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace epismc::rng {

std::uint64_t uniform_int(Engine& eng, std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform_int: bound must be > 0");
  // Lemire 2019: multiply-shift with rejection of the biased low region.
  std::uint64_t x = eng();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = eng();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

// ---------------------------------------------------------------------------
// Gaussian.
// ---------------------------------------------------------------------------

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x * 0.7071067811865475244);  // 1/sqrt(2)
}

namespace {

/// Standard normal density.
double normal_pdf(double x) {
  return 0.3989422804014326779 * std::exp(-0.5 * x * x);  // 1/sqrt(2*pi)
}

/// Acklam's rational approximation to the normal quantile (|eps| ~ 1.15e-9).
double acklam_quantile(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double plow = 0.02425;

  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::domain_error("normal_quantile: p must be in [0, 1]");
  }
  double x = acklam_quantile(p);
  // Two Halley refinement steps drive the error to a few ulp.
  for (int i = 0; i < 2; ++i) {
    const double e = normal_cdf(x) - p;
    const double u = e / normal_pdf(x);
    x -= u / (1.0 + 0.5 * x * u);
  }
  return x;
}

double normal(Engine& eng) { return normal_quantile(uniform_double_oo(eng)); }

double exponential(Engine& eng, double rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("exponential: rate must be > 0");
  return -std::log(uniform_double_oo(eng)) / rate;
}

double gamma(Engine& eng, double shape, double scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("gamma: shape and scale must be > 0");
  }
  if (shape < 1.0) {
    // Boost shape above 1 and correct with a power of a uniform
    // (Marsaglia-Tsang eq. 10).
    const double u = uniform_double_oo(eng);
    return gamma(eng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal(eng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform_double_oo(eng);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double beta(Engine& eng, double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("beta: a and b must be > 0");
  }
  const double x = gamma(eng, a, 1.0);
  const double y = gamma(eng, b, 1.0);
  return x / (x + y);
}

// ---------------------------------------------------------------------------
// Poisson.
// ---------------------------------------------------------------------------

namespace {

std::int64_t poisson_mult(Engine& eng, double mean) {
  // Product-of-uniforms (Knuth); expected cost O(mean), fine for mean < 10.
  const double enlam = std::exp(-mean);
  std::int64_t x = 0;
  double prod = uniform_double(eng);
  while (prod > enlam) {
    prod *= uniform_double(eng);
    ++x;
  }
  return x;
}

std::int64_t poisson_ptrs(Engine& eng, double mean) {
  // Hoermann 1993, transformed rejection with squeeze ("PTRS").
  const double slam = std::sqrt(mean);
  const double loglam = std::log(mean);
  const double b = 0.931 + 2.53 * slam;
  const double a = -0.059 + 0.02483 * b;
  const double invalpha = 1.1239 + 1.1328 / (b - 3.4);
  const double vr = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform_double(eng) - 0.5;
    const double v = uniform_double_oo(eng);
    const double us = 0.5 - std::fabs(u);
    const auto k =
        static_cast<std::int64_t>(std::floor((2.0 * a / us + b) * u + mean + 0.43));
    if (us >= 0.07 && v <= vr) return k;
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(invalpha) - std::log(a / (us * us) + b) <=
        -mean + static_cast<double>(k) * loglam -
            std::lgamma(static_cast<double>(k) + 1.0)) {
      return k;
    }
  }
}

}  // namespace

std::int64_t poisson(Engine& eng, double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 10.0) return poisson_mult(eng, mean);
  return poisson_ptrs(eng, mean);
}

// ---------------------------------------------------------------------------
// Binomial.
// ---------------------------------------------------------------------------

namespace {

/// BINV: sequential-search inversion. Requires n*p modest so that q^n does
/// not underflow; the dispatcher guarantees n*p < 30 here.
std::int64_t binomial_inversion(Engine& eng, std::int64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double npq_a = static_cast<double>(n + 1) * s;
  const double r0 = std::pow(q, static_cast<double>(n));
  for (;;) {
    double u = uniform_double(eng);
    double r = r0;
    std::int64_t x = 0;
    // The tail bound 110 + 10*sqrt(np) can only be exceeded with
    // probability ~1e-20; restarting keeps the sampler exact-in-practice
    // without risking an unbounded loop on degenerate float behaviour.
    const auto xmax =
        110 + static_cast<std::int64_t>(10.0 * std::sqrt(static_cast<double>(n) * p));
    while (u > r) {
      u -= r;
      ++x;
      if (x > xmax) break;
      r *= (npq_a / static_cast<double>(x)) - s;
    }
    if (x <= n && x <= xmax) return x;
  }
}

/// BTPE (Kachitvichyanukul & Schmeiser 1988): triangle / parallelogram /
/// exponential-tail envelope with squeeze acceptance. O(1) expected cost
/// for any n. Requires n*min(p,1-p) >= 30 (ensured by dispatcher); p <= 0.5.
std::int64_t binomial_btpe(Engine& eng, std::int64_t n, double p) {
  const double r = p;
  const double q = 1.0 - r;
  const double nd = static_cast<double>(n);
  const double fm = nd * r + r;
  const auto m = static_cast<std::int64_t>(std::floor(fm));
  const double md = static_cast<double>(m);
  const double nrq = nd * r * q;
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = md + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + md);
  double a = (fm - xl) / (fm - xl * r);
  const double laml = a * (1.0 + a / 2.0);
  a = (xr - fm) / (xr * q);
  const double lamr = a * (1.0 + a / 2.0);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / laml;
  const double p4 = p3 + c / lamr;

  for (;;) {
    std::int64_t y = 0;
    double v = 0.0;
    const double u = uniform_double(eng) * p4;
    v = uniform_double_oo(eng);
    if (u <= p1) {
      // Triangular central region: immediate acceptance.
      y = static_cast<std::int64_t>(std::floor(xm - p1 * v + u));
      return y;
    }
    if (u <= p2) {
      // Parallelogram region.
      const double x = xl + (u - p1) / c;
      v = v * c + 1.0 - std::fabs(md - x + 0.5) / p1;
      if (v > 1.0) continue;
      y = static_cast<std::int64_t>(std::floor(x));
    } else if (u <= p3) {
      // Left exponential tail.
      y = static_cast<std::int64_t>(std::floor(xl + std::log(v) / laml));
      if (y < 0) continue;
      v = v * (u - p2) * laml;
    } else {
      // Right exponential tail.
      y = static_cast<std::int64_t>(std::floor(xr - std::log(v) / lamr));
      if (y > n) continue;
      v = v * (u - p3) * lamr;
    }

    // Acceptance check.
    const std::int64_t k = std::llabs(y - m);
    const double yd = static_cast<double>(y);
    const double kd = static_cast<double>(k);
    if (k <= 20 || kd >= nrq / 2.0 - 1.0) {
      // Evaluate f(y)/f(m) by explicit recursion.
      const double s = r / q;
      const double aa = s * (nd + 1.0);
      double f = 1.0;
      if (m < y) {
        for (std::int64_t i = m + 1; i <= y; ++i) {
          f *= (aa / static_cast<double>(i) - s);
        }
      } else if (m > y) {
        for (std::int64_t i = y + 1; i <= m; ++i) {
          f /= (aa / static_cast<double>(i) - s);
        }
      }
      if (v <= f) return y;
      continue;
    }
    // Squeeze: compare log(v) against quadratic bounds on log f.
    const double rho =
        (kd / nrq) * ((kd * (kd / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
    const double t = -kd * kd / (2.0 * nrq);
    const double logv = std::log(v);
    if (logv < t - rho) return y;
    if (logv > t + rho) continue;
    // Final comparison against Stirling-corrected exact log f.
    const double x1 = yd + 1.0;
    const double f1 = md + 1.0;
    const double z = nd + 1.0 - md;
    const double w = nd - yd + 1.0;
    const double z2 = z * z;
    const double x2 = x1 * x1;
    const double f2 = f1 * f1;
    const double w2 = w * w;
    const auto stirling_corr = [](double sq, double lin) {
      return (13680.0 -
              (462.0 - (132.0 - (99.0 - 140.0 / sq) / sq) / sq) / sq) /
             lin / 166320.0;
    };
    const double stirling = stirling_corr(f2, f1) + stirling_corr(z2, z) +
                            stirling_corr(x2, x1) + stirling_corr(w2, w);
    if (logv <= xm * std::log(f1 / x1) + (nd - md + 0.5) * std::log(z / w) +
                    (yd - md) * std::log(w * r / (x1 * q)) + stirling) {
      return y;
    }
  }
}

}  // namespace

std::int64_t binomial(Engine& eng, std::int64_t n, double p) {
  if (n < 0) throw std::invalid_argument("binomial: n must be >= 0");
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("binomial: p must be in [0, 1]");
  }
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;

  const bool flipped = p > 0.5;
  const double pp = flipped ? 1.0 - p : p;
  std::int64_t x = 0;
  if (static_cast<double>(n) * pp < 30.0) {
    x = binomial_inversion(eng, n, pp);
  } else {
    x = binomial_btpe(eng, n, pp);
  }
  return flipped ? n - x : x;
}

// ---------------------------------------------------------------------------
// Multinomial.
// ---------------------------------------------------------------------------

void multinomial(Engine& eng, std::int64_t n, std::span<const double> probs,
                 std::span<std::int64_t> out) {
  if (probs.size() != out.size()) {
    throw std::invalid_argument("multinomial: probs/out size mismatch");
  }
  double total = 0.0;
  for (const double p : probs) {
    if (p < 0.0) throw std::invalid_argument("multinomial: negative probability");
    total += p;
  }
  std::fill(out.begin(), out.end(), std::int64_t{0});
  if (probs.empty() || n <= 0) return;
  if (total <= 0.0) {
    throw std::invalid_argument("multinomial: probabilities sum to zero");
  }

  std::int64_t remaining = n;
  double mass = total;
  for (std::size_t i = 0; i + 1 < probs.size() && remaining > 0; ++i) {
    const double cond = std::clamp(probs[i] / mass, 0.0, 1.0);
    const std::int64_t draw = binomial(eng, remaining, cond);
    out[i] = draw;
    remaining -= draw;
    mass -= probs[i];
    if (mass <= 0.0) break;
  }
  out[probs.size() - 1] += remaining;
  if (out[probs.size() - 1] < 0) out[probs.size() - 1] = 0;
}

std::vector<std::int64_t> multinomial(Engine& eng, std::int64_t n,
                                      std::span<const double> probs) {
  std::vector<std::int64_t> out(probs.size(), 0);
  multinomial(eng, n, probs, out);
  return out;
}

}  // namespace epismc::rng
