#include "random/sampling.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace epismc::rng {

namespace detail {

void check_subset_size(std::size_t n, std::size_t k) {
  if (k > n) {
    throw std::invalid_argument(
        "sample without replacement: subset size " + std::to_string(k) +
        " exceeds population size " + std::to_string(n));
  }
}

}  // namespace detail

void sample_without_replacement(Engine& eng, std::uint64_t n, std::size_t k,
                                std::vector<std::uint64_t>& out) {
  detail::check_subset_size(static_cast<std::size_t>(n), k);
  // Floyd's algorithm: the j-th pick is uniform over [0, n - k + j + 1); a
  // collision with an earlier pick resolves to n - k + j, which is fresh by
  // construction. The linear membership scan is over at most k earlier
  // picks -- callers with huge k should prefer partial_fisher_yates over a
  // materialized index list instead.
  const std::size_t base = out.size();
  out.reserve(base + k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t bound = n - static_cast<std::uint64_t>(k) + j + 1;
    std::uint64_t pick = uniform_int(eng, bound);
    if (std::find(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
                  pick) != out.end()) {
      pick = bound - 1;
    }
    out.push_back(pick);
  }
}

std::vector<std::uint64_t> sample_without_replacement(Engine& eng,
                                                      std::uint64_t n,
                                                      std::size_t k) {
  std::vector<std::uint64_t> out;
  sample_without_replacement(eng, n, k, out);
  return out;
}

}  // namespace epismc::rng
