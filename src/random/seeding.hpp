#pragma once

// Stream derivation for particle-parallel Monte Carlo.
//
// The SMC framework runs up to millions of trajectories concurrently; every
// trajectory must own a statistically independent, reproducible random
// stream addressed purely by *what* it is (experiment seed, particle id,
// replicate id, window index), never by *where* it runs. These helpers give
// a single place that defines the mapping identity -> (seed, stream) for
// PhiloxEngine so that the mapping is stable across the whole code base.

#include <cstdint>
#include <initializer_list>

#include "random/engines.hpp"
#include "random/philox.hpp"

namespace epismc::rng {

/// Identity of a random stream. Hashing is order-sensitive, so
/// (a, b) and (b, a) produce unrelated streams.
struct StreamId {
  std::uint64_t key = 0;

  constexpr StreamId() = default;
  constexpr explicit StreamId(std::uint64_t k) : key(k) {}

  /// Derive a child stream id, e.g. per-particle from per-experiment.
  [[nodiscard]] constexpr StreamId child(std::uint64_t index) const noexcept {
    return StreamId{hash_combine(key, index)};
  }
};

/// Build the stream id for a tuple of identity components.
[[nodiscard]] constexpr StreamId make_stream_id(
    std::initializer_list<std::uint64_t> components) noexcept {
  StreamId id{0x2545F4914F6CDD1Dull};  // arbitrary non-zero root
  for (const std::uint64_t c : components) id = id.child(c);
  return id;
}

/// Construct the canonical engine for (seed, stream identity).
[[nodiscard]] inline PhiloxEngine make_engine(std::uint64_t seed,
                                              StreamId id) noexcept {
  return PhiloxEngine(seed, id.key);
}

/// Convenience: engine for (seed, components...).
[[nodiscard]] inline PhiloxEngine make_engine(
    std::uint64_t seed, std::initializer_list<std::uint64_t> components) {
  return make_engine(seed, make_stream_id(components));
}

}  // namespace epismc::rng
