#pragma once

// Walker/Vose alias method for O(1) categorical sampling.
//
// Used by multinomial resampling when drawing many ancestors from one fixed
// weight vector: O(K) build, O(1) per draw, versus O(log K) for binary
// search on the CDF.

#include <cstdint>
#include <span>
#include <vector>

#include "random/distributions.hpp"

namespace epismc::rng {

class AliasTable {
 public:
  AliasTable() = default;

  /// Build from unnormalized non-negative weights.
  explicit AliasTable(std::span<const double> weights) { build(weights); }

  void build(std::span<const double> weights);

  /// Draw one category index; requires a built, non-empty table.
  [[nodiscard]] std::uint32_t sample(Engine& eng) const {
    const auto k =
        static_cast<std::uint32_t>(uniform_int(eng, probability_.size()));
    return uniform_double(eng) < probability_[k] ? k : alias_[k];
  }

  [[nodiscard]] std::size_t size() const noexcept { return probability_.size(); }
  [[nodiscard]] bool empty() const noexcept { return probability_.empty(); }

  /// Exact per-category probability implied by the table (for testing).
  [[nodiscard]] std::vector<double> implied_probabilities() const;

 private:
  std::vector<double> probability_;   // acceptance threshold per column
  std::vector<std::uint32_t> alias_;  // fallback category per column
};

}  // namespace epismc::rng
