#pragma once

// Philox4x32-10 counter-based pseudo-random number generator.
//
// Counter-based generators (Salmon, Moraes, Dror, Shaw: "Parallel random
// numbers: as easy as 1, 2, 3", SC'11) map a (key, counter) pair to random
// bits with a stateless bijection. They are the natural fit for particle
// methods on shared-memory machines: every particle owns an independent
// stream keyed by its identity, so results are bit-identical for any thread
// count or scheduling order, and serializing a stream is just two integers.

#include <array>
#include <cstdint>

#include "simd/simd.hpp"

namespace epismc::rng {

/// Stateless Philox4x32 block function (10 rounds).
struct Philox4x32 {
  using counter_type = std::array<std::uint32_t, 4>;
  using key_type = std::array<std::uint32_t, 2>;

  static constexpr std::uint32_t kMult0 = 0xD2511F53u;
  static constexpr std::uint32_t kMult1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

  /// One 32x32 -> 64 bit multiply split into (hi, lo).
  static constexpr void mulhilo(std::uint32_t a, std::uint32_t b,
                                std::uint32_t& hi, std::uint32_t& lo) noexcept {
    const std::uint64_t prod = static_cast<std::uint64_t>(a) * b;
    hi = static_cast<std::uint32_t>(prod >> 32);
    lo = static_cast<std::uint32_t>(prod);
  }

  static constexpr counter_type round(counter_type ctr, key_type key) noexcept {
    std::uint32_t hi0 = 0, lo0 = 0, hi1 = 0, lo1 = 0;
    mulhilo(kMult0, ctr[0], hi0, lo0);
    mulhilo(kMult1, ctr[2], hi1, lo1);
    return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
  }

  static constexpr key_type bump(key_type key) noexcept {
    return {key[0] + kWeyl0, key[1] + kWeyl1};
  }

  /// Full 10-round block transform.
  static constexpr counter_type block(counter_type ctr, key_type key) noexcept {
    for (int r = 0; r < 9; ++r) {
      ctr = round(ctr, key);
      key = bump(key);
    }
    return round(ctr, key);
  }
};

/// UniformRandomBitGenerator facade over Philox4x32-10.
///
/// The 128-bit counter is split as (block_index_lo, block_index_hi,
/// stream_lo, stream_hi); the 64-bit key carries the seed. Each generated
/// block yields two 64-bit outputs. The full generator state is
/// (seed, stream, draw position) and is trivially serializable -- a
/// requirement for bit-faithful simulator checkpoints.
///
/// Refills are batched through the dispatched SIMD Philox kernel
/// (simd::philox_table()), which generates several blocks per call at
/// vector levels. The block function is pure integer, so the output
/// sequence, position() semantics, and serialized form are bit-identical
/// at every dispatch level (the scalar table refills one block at a time,
/// reproducing the historical engine exactly, machine ops included).
class PhiloxEngine {
 public:
  using result_type = std::uint64_t;

  /// Upper bound on blocks buffered per refill (AVX-512 table uses 16).
  static constexpr unsigned kMaxRefillBlocks = 16;

  PhiloxEngine() : PhiloxEngine(0, 0) {}
  explicit PhiloxEngine(std::uint64_t seed, std::uint64_t stream = 0) {
    reseed(seed, stream);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  void reseed(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    seed_ = seed;
    stream_ = stream;
    block_ = 0;
    filled_ = 0;
    phase_ = 0;
  }

  result_type operator()() {
    if (phase_ >= filled_) {
      refill();
    }
    return buffer_[phase_++];
  }

  /// Skip ahead n draws in O(1): counter-based generators support random
  /// access by construction.
  void discard(std::uint64_t n) noexcept { set_position(position() + n); }

  /// Number of 64-bit outputs consumed since construction/reseed.
  [[nodiscard]] std::uint64_t position() const noexcept {
    return block_ * 2 - filled_ + phase_;
  }

  /// Jump directly to an absolute draw position (used by checkpoint restore).
  void set_position(std::uint64_t pos) noexcept {
    block_ = pos / 2;
    filled_ = 0;
    phase_ = 0;
    if (pos % 2 != 0) {
      // buffer_[1] is word 1 of block pos/2 regardless of refill width.
      refill();
      phase_ = 1;
    }
  }

  [[nodiscard]] std::uint64_t seed_value() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t stream_value() const noexcept { return stream_; }

  friend bool operator==(const PhiloxEngine& a, const PhiloxEngine& b) {
    return a.seed_ == b.seed_ && a.stream_ == b.stream_ &&
           a.position() == b.position();
  }

 private:
  void refill() noexcept {
    const simd::KernelTable& kt = simd::philox_table();
    const unsigned nblocks =
        kt.philox_engine_blocks < kMaxRefillBlocks ? kt.philox_engine_blocks
                                                   : kMaxRefillBlocks;
    kt.philox_fill(seed_, stream_, block_, buffer_.data(), nblocks);
    block_ += nblocks;
    filled_ = 2 * nblocks;
    phase_ = 0;
  }

  std::uint64_t seed_ = 0;
  std::uint64_t stream_ = 0;
  std::uint64_t block_ = 0;  // counter of *generated* blocks (post-increment)
  std::array<std::uint64_t, 2 * kMaxRefillBlocks> buffer_{};
  unsigned filled_ = 0;  // u64 outputs currently in buffer_
  unsigned phase_ = 0;   // next output index within buffer_
};

}  // namespace epismc::rng
