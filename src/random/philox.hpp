#pragma once

// Philox4x32-10 counter-based pseudo-random number generator.
//
// Counter-based generators (Salmon, Moraes, Dror, Shaw: "Parallel random
// numbers: as easy as 1, 2, 3", SC'11) map a (key, counter) pair to random
// bits with a stateless bijection. They are the natural fit for particle
// methods on shared-memory machines: every particle owns an independent
// stream keyed by its identity, so results are bit-identical for any thread
// count or scheduling order, and serializing a stream is just two integers.

#include <array>
#include <cstdint>

namespace epismc::rng {

/// Stateless Philox4x32 block function (10 rounds).
struct Philox4x32 {
  using counter_type = std::array<std::uint32_t, 4>;
  using key_type = std::array<std::uint32_t, 2>;

  static constexpr std::uint32_t kMult0 = 0xD2511F53u;
  static constexpr std::uint32_t kMult1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

  /// One 32x32 -> 64 bit multiply split into (hi, lo).
  static constexpr void mulhilo(std::uint32_t a, std::uint32_t b,
                                std::uint32_t& hi, std::uint32_t& lo) noexcept {
    const std::uint64_t prod = static_cast<std::uint64_t>(a) * b;
    hi = static_cast<std::uint32_t>(prod >> 32);
    lo = static_cast<std::uint32_t>(prod);
  }

  static constexpr counter_type round(counter_type ctr, key_type key) noexcept {
    std::uint32_t hi0 = 0, lo0 = 0, hi1 = 0, lo1 = 0;
    mulhilo(kMult0, ctr[0], hi0, lo0);
    mulhilo(kMult1, ctr[2], hi1, lo1);
    return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
  }

  static constexpr key_type bump(key_type key) noexcept {
    return {key[0] + kWeyl0, key[1] + kWeyl1};
  }

  /// Full 10-round block transform.
  static constexpr counter_type block(counter_type ctr, key_type key) noexcept {
    for (int r = 0; r < 9; ++r) {
      ctr = round(ctr, key);
      key = bump(key);
    }
    return round(ctr, key);
  }
};

/// UniformRandomBitGenerator facade over Philox4x32-10.
///
/// The 128-bit counter is split as (block_index_lo, block_index_hi,
/// stream_lo, stream_hi); the 64-bit key carries the seed. Each generated
/// block yields two 64-bit outputs. The full generator state is
/// (seed, stream, block index, phase) and is trivially serializable --
/// a requirement for bit-faithful simulator checkpoints.
class PhiloxEngine {
 public:
  using result_type = std::uint64_t;

  PhiloxEngine() : PhiloxEngine(0, 0) {}
  explicit PhiloxEngine(std::uint64_t seed, std::uint64_t stream = 0) {
    reseed(seed, stream);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  void reseed(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    seed_ = seed;
    stream_ = stream;
    block_ = 0;
    phase_ = 2;  // force block generation on next call
  }

  result_type operator()() {
    if (phase_ >= 2) {
      refill();
    }
    return buffer_[phase_++];
  }

  /// Skip ahead n draws in O(1): counter-based generators support random
  /// access by construction.
  void discard(std::uint64_t n) noexcept {
    const std::uint64_t pos = position() + n;
    block_ = pos / 2;
    const std::uint64_t rem = pos % 2;
    if (rem == 0) {
      phase_ = 2;  // next call regenerates block `block_`
    } else {
      refill();
      phase_ = 1;
    }
  }

  /// Number of 64-bit outputs consumed since construction/reseed.
  [[nodiscard]] std::uint64_t position() const noexcept {
    if (phase_ >= 2) return block_ * 2;
    return (block_ - 1) * 2 + phase_;
  }

  /// Jump directly to an absolute draw position (used by checkpoint restore).
  void set_position(std::uint64_t pos) noexcept {
    block_ = pos / 2;
    phase_ = 2;
    if (pos % 2 != 0) {
      refill();
      phase_ = 1;
    }
  }

  [[nodiscard]] std::uint64_t seed_value() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t stream_value() const noexcept { return stream_; }

  friend bool operator==(const PhiloxEngine& a, const PhiloxEngine& b) {
    return a.seed_ == b.seed_ && a.stream_ == b.stream_ &&
           a.position() == b.position();
  }

 private:
  void refill() noexcept {
    const Philox4x32::counter_type ctr = {
        static_cast<std::uint32_t>(block_),
        static_cast<std::uint32_t>(block_ >> 32),
        static_cast<std::uint32_t>(stream_),
        static_cast<std::uint32_t>(stream_ >> 32)};
    const Philox4x32::key_type key = {static_cast<std::uint32_t>(seed_),
                                      static_cast<std::uint32_t>(seed_ >> 32)};
    const auto out = Philox4x32::block(ctr, key);
    buffer_[0] = (static_cast<std::uint64_t>(out[1]) << 32) | out[0];
    buffer_[1] = (static_cast<std::uint64_t>(out[3]) << 32) | out[2];
    ++block_;
    phase_ = 0;
  }

  std::uint64_t seed_ = 0;
  std::uint64_t stream_ = 0;
  std::uint64_t block_ = 0;  // counter of *generated* blocks (post-increment)
  std::array<std::uint64_t, 2> buffer_{};
  unsigned phase_ = 2;
};

}  // namespace epismc::rng
