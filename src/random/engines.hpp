#pragma once

// Conventional sequential PRNG engines.
//
// PhiloxEngine (philox.hpp) is the canonical engine for all simulation code
// because its streams are counter-addressable and trivially serializable.
// The engines here serve two purposes: splitmix64 is the standard seed/hash
// mixer used to derive stream identifiers, and xoshiro256++ is a fast
// sequential baseline used by the microbenchmarks to quantify the cost of
// counter-based generation.

#include <array>
#include <cstdint>

namespace epismc::rng {

/// SplitMix64 (Steele, Lea, Flood 2014). Used both as a tiny PRNG and as the
/// canonical 64-bit finalizer/hash when deriving stream keys from ids.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot SplitMix64 finalizer: a good 64->64 bit mixing function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Combine two 64-bit values into one well-mixed value (order-sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (mix64(b) + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

/// xoshiro256++ 1.0 (Blackman & Vigna 2019).
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 1) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump ahead 2^128 steps: partitions the period into parallel streams.
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
        0x39ABDC4529B1661Cull};
    std::array<std::uint64_t, 4> acc{};
    for (const std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if ((word & (1ull << b)) != 0) {
          for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace epismc::rng
