#pragma once

// Runtime ISA dispatch for the vectorized propagate/score kernels.
//
// One kernel source (kernels_body.inl) is compiled into four translation
// units -- scalar, SSE4.1, AVX2, AVX-512 -- following RayDemo's CoreSIMD
// pattern; at runtime a CPUID probe picks the best level the host supports.
// Two dispatch slots exist because the kernels split into two classes:
//
//  * philox_fill is a pure integer transform and produces the bit-identical
//    output at every level, so PhiloxEngine always routes through the best
//    compiled+supported table ("auto" slot). Golden hashes are unaffected.
//  * binomial_lanes / score_* change the draw-stream discipline (counter
//    -segmented sites) or last-ulp accumulation order, so they engage only
//    when a level is selected explicitly: EPISMC_SIMD=scalar|sse41|avx2|
//    avx512|auto, the --simd CLI flag, or CalibrationSession::
//    with_simd_level. The default is the scalar reference engine, keeping
//    results machine-independent out of the box (determinism first).
//
// Selecting a level the host cannot run falls back cleanly to the best
// supported level below it. Within the vector family the lane kernels are
// written so sse41/avx2/avx512 produce identical draws (the lane arithmetic
// is elementwise and every TU builds with -ffp-contract=off); only the
// legacy sequential scalar path differs, and that stays the reference.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace epismc::simd {

enum class SimdLevel : int {
  kScalar = 0,
  kSse41 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Per-ISA kernel entry points. One instance per compiled translation unit.
struct KernelTable {
  SimdLevel level = SimdLevel::kScalar;
  /// Blocks PhiloxEngine generates per refill through this table.
  unsigned philox_engine_blocks = 1;

  /// Write 2*n_blocks u64 outputs for Philox4x32-10 blocks
  /// [block0, block0 + n_blocks), packed exactly like PhiloxEngine::refill.
  /// Bit-identical at every level (pure integer rounds).
  void (*philox_fill)(std::uint64_t seed, std::uint64_t stream,
                      std::uint64_t block0, std::uint64_t* out,
                      std::size_t n_blocks) = nullptr;

  /// Draw count binomials, lane i ~ Binomial(n[i], p[i]), where lane i
  /// consumes draws starting at absolute engine position seg[i] of the
  /// (seed, stream) counter stream. Lane results are a pure function of
  /// (seed, stream, seg[i], n[i], p[i]) -- independent of lane grouping
  /// and identical across every table (the lane BINV and lane BTPE mirror
  /// the scalar samplers' arithmetic op for op on the uniforms a positioned
  /// scalar engine would produce).
  void (*binomial_lanes)(std::uint64_t seed, std::uint64_t stream,
                         const std::uint64_t* seg, const std::int64_t* n,
                         const double* p, std::size_t count,
                         std::int64_t* out) = nullptr;

  /// Fused log/lgamma-free scoring passes over ObservationCache constants.
  /// Vector accumulation order differs from the sequential reference in
  /// last ulps; same-level runs are bit-deterministic.
  double (*score_gaussian_sqrt)(const double* t0, const double* sim,
                                std::size_t len, double sigma) = nullptr;
  double (*score_nb_sqrt)(const double* t0, const double* sim,
                          std::size_t len, double dispersion_k) = nullptr;
  double (*score_poisson)(const double* t0, const double* t1,
                          const double* sim, std::size_t len,
                          double rate_floor) = nullptr;
};

/// Name <-> level mapping ("scalar", "sse41", "avx2", "avx512").
[[nodiscard]] const char* level_name(SimdLevel level) noexcept;

/// Parse a level name; also accepts "auto" (reported via `is_auto`).
/// Throws std::invalid_argument on anything else.
[[nodiscard]] SimdLevel parse_level(const std::string& name, bool* is_auto = nullptr);

/// Levels this binary was compiled with (always contains kScalar).
[[nodiscard]] const std::vector<SimdLevel>& compiled_levels() noexcept;

/// Best level the host CPU supports (CPUID probe, independent of what was
/// compiled in).
[[nodiscard]] SimdLevel host_level() noexcept;

/// Best level that is both compiled in and host-supported.
[[nodiscard]] SimdLevel best_level() noexcept;

/// Pure fallback rule: highest level <= want that is compiled and
/// host-supported (exposed so the clamping logic is unit-testable for
/// levels the test host does not have).
[[nodiscard]] SimdLevel clamp_level(SimdLevel want,
                                    const std::vector<SimdLevel>& compiled,
                                    SimdLevel host) noexcept;

/// Select the active lane-kernel level (clamped to the host; returns what
/// actually took effect). Also pins the Philox auto slot to the same table
/// so EPISMC_SIMD=scalar means truly scalar execution.
SimdLevel set_level(SimdLevel want) noexcept;

/// set_level by name; "auto" selects best_level().
SimdLevel set_level(const std::string& name);

/// Table for the result-changing lane kernels (scalar unless overridden).
[[nodiscard]] const KernelTable& active() noexcept;
[[nodiscard]] SimdLevel active_level() noexcept;

/// Table used by PhiloxEngine batching (best level by default; the output
/// is bit-identical at every level).
[[nodiscard]] const KernelTable& philox_table() noexcept;

/// Table for one specific level (must be compiled in), for tests/benches.
[[nodiscard]] const KernelTable& table_for(SimdLevel level);

/// Re-read EPISMC_SIMD and apply it (startup behaviour; exposed so the
/// dispatcher test can drive the env override in-process). Returns the
/// level that took effect.
SimdLevel refresh_from_env();

namespace detail {
/// Snapshot of both dispatch slots (lane kernels + Philox batching), so a
/// scoped pin can restore the default split state (scalar lanes, best-level
/// Philox) exactly rather than collapsing both slots to one level.
struct DispatchState {
  SimdLevel lanes = SimdLevel::kScalar;
  SimdLevel philox = SimdLevel::kScalar;
};
[[nodiscard]] DispatchState get_state() noexcept;
void set_state(DispatchState state) noexcept;
}  // namespace detail

/// RAII level pin for tests and scalar-vs-vector bench baselines.
class ScopedLevel {
 public:
  explicit ScopedLevel(SimdLevel level) : previous_(detail::get_state()) {
    set_level(level);
  }
  ~ScopedLevel() { detail::set_state(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  detail::DispatchState previous_;
};

}  // namespace epismc::simd
