// AVX-512F instantiation: 8 double lanes, 16 u32 lanes. Compiled with
// -mavx512f -mavx512dq -ffp-contract=off.

#define EPISMC_SIMD_IMPL_NS avx512_impl
#define EPISMC_SIMD_WD 8
#define EPISMC_SIMD_WU 16
#define EPISMC_SIMD_LEVEL SimdLevel::kAvx512
#define EPISMC_SIMD_ENGINE_BLOCKS 16u
#include "simd/kernels_body.inl"

#include "simd/kernels.hpp"

namespace epismc::simd {
const KernelTable& avx512_table() { return avx512_impl::table(); }
}  // namespace epismc::simd
