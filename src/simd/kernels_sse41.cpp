// SSE4.1 instantiation: 2 double lanes, 4 u32 lanes. Compiled with
// -msse4.1 -ffp-contract=off (see CMakeLists).

#define EPISMC_SIMD_IMPL_NS sse41_impl
#define EPISMC_SIMD_WD 2
#define EPISMC_SIMD_WU 4
#define EPISMC_SIMD_LEVEL SimdLevel::kSse41
#define EPISMC_SIMD_ENGINE_BLOCKS 4u
#include "simd/kernels_body.inl"

#include "simd/kernels.hpp"

namespace epismc::simd {
const KernelTable& sse41_table() { return sse41_impl::table(); }
}  // namespace epismc::simd
