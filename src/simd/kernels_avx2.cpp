// AVX2 instantiation: 4 double lanes, 8 u32 lanes. Compiled with
// -mavx2 -ffp-contract=off (no FMA -- lane results must match the scalar
// operation sequence elementwise; see kernels_body.inl).

#define EPISMC_SIMD_IMPL_NS avx2_impl
#define EPISMC_SIMD_WD 4
#define EPISMC_SIMD_WU 8
#define EPISMC_SIMD_LEVEL SimdLevel::kAvx2
#define EPISMC_SIMD_ENGINE_BLOCKS 8u
#include "simd/kernels_body.inl"

#include "simd/kernels.hpp"

namespace epismc::simd {
const KernelTable& avx2_table() { return avx2_impl::table(); }
}  // namespace epismc::simd
