// Scalar instantiation of the kernel body: the reference engine every
// vector level is tested against. Built with the project's default flags
// (plus -ffp-contract=off like the rest of the simd TUs).

#define EPISMC_SIMD_IMPL_NS scalar_impl
#define EPISMC_SIMD_WD 1
#define EPISMC_SIMD_WU 2
#define EPISMC_SIMD_LEVEL SimdLevel::kScalar
#define EPISMC_SIMD_ENGINE_BLOCKS 1u
#include "simd/kernels_body.inl"

#include "simd/kernels.hpp"

namespace epismc::simd {
const KernelTable& scalar_table() { return scalar_impl::table(); }
}  // namespace epismc::simd
