#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "simd/kernels.hpp"

namespace epismc::simd {

namespace {

const KernelTable* table_ptr(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return &scalar_table();
#ifdef EPISMC_SIMD_HAS_SSE41
    case SimdLevel::kSse41:
      return &sse41_table();
#endif
#ifdef EPISMC_SIMD_HAS_AVX2
    case SimdLevel::kAvx2:
      return &avx2_table();
#endif
#ifdef EPISMC_SIMD_HAS_AVX512
    case SimdLevel::kAvx512:
      return &avx512_table();
#endif
    default:
      return nullptr;
  }
}

SimdLevel probe_host() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.1")) return SimdLevel::kSse41;
#endif
  return SimdLevel::kScalar;
}

// Both dispatch slots; see simd.hpp for why there are two. Initialization
// happens on first use (env override applied once), after which set_level /
// set_state swap the atomics. Relaxed ordering is fine: the tables are
// immutable function-pointer structs with static storage.
std::atomic<const KernelTable*> g_lanes{nullptr};
std::atomic<const KernelTable*> g_philox{nullptr};

void ensure_init();

SimdLevel apply_level(SimdLevel want) noexcept {
  const SimdLevel actual = clamp_level(want, compiled_levels(), host_level());
  const KernelTable* t = table_ptr(actual);
  g_lanes.store(t, std::memory_order_relaxed);
  g_philox.store(t, std::memory_order_relaxed);
  return actual;
}

SimdLevel init_from_env() {
  const char* env = std::getenv("EPISMC_SIMD");
  if (env != nullptr && *env != '\0') {
    bool is_auto = false;
    SimdLevel want = SimdLevel::kScalar;
    try {
      want = parse_level(env, &is_auto);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument(
          std::string("EPISMC_SIMD: unknown level '") + env +
          "' (expected scalar|sse41|avx2|avx512|auto)");
    }
    return apply_level(is_auto ? best_level() : want);
  }
  // Default split: scalar reference for the result-changing lane kernels,
  // best level for the bit-identical Philox block generator.
  g_lanes.store(&scalar_table(), std::memory_order_relaxed);
  g_philox.store(table_ptr(best_level()), std::memory_order_relaxed);
  return SimdLevel::kScalar;
}

void ensure_init() {
  if (g_lanes.load(std::memory_order_relaxed) == nullptr) {
    static const SimdLevel once = init_from_env();
    (void)once;
  }
}

}  // namespace

const char* level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kSse41:
      return "sse41";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kScalar:
    default:
      return "scalar";
  }
}

SimdLevel parse_level(const std::string& name, bool* is_auto) {
  if (is_auto != nullptr) *is_auto = false;
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse41") return SimdLevel::kSse41;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  if (name == "auto") {
    if (is_auto != nullptr) *is_auto = true;
    return best_level();
  }
  throw std::invalid_argument("simd: unknown level '" + name +
                              "' (expected scalar|sse41|avx2|avx512|auto)");
}

const std::vector<SimdLevel>& compiled_levels() noexcept {
  static const std::vector<SimdLevel> levels = [] {
    std::vector<SimdLevel> out{SimdLevel::kScalar};
#ifdef EPISMC_SIMD_HAS_SSE41
    out.push_back(SimdLevel::kSse41);
#endif
#ifdef EPISMC_SIMD_HAS_AVX2
    out.push_back(SimdLevel::kAvx2);
#endif
#ifdef EPISMC_SIMD_HAS_AVX512
    out.push_back(SimdLevel::kAvx512);
#endif
    return out;
  }();
  return levels;
}

SimdLevel host_level() noexcept {
  static const SimdLevel level = probe_host();
  return level;
}

SimdLevel best_level() noexcept {
  return clamp_level(SimdLevel::kAvx512, compiled_levels(), host_level());
}

SimdLevel clamp_level(SimdLevel want, const std::vector<SimdLevel>& compiled,
                      SimdLevel host) noexcept {
  SimdLevel best = SimdLevel::kScalar;
  for (const SimdLevel l : compiled) {
    if (l <= want && l <= host && l > best) best = l;
  }
  return best;
}

SimdLevel set_level(SimdLevel want) noexcept { return apply_level(want); }

SimdLevel set_level(const std::string& name) {
  bool is_auto = false;
  const SimdLevel want = parse_level(name, &is_auto);
  return set_level(is_auto ? best_level() : want);
}

const KernelTable& active() noexcept {
  ensure_init();
  return *g_lanes.load(std::memory_order_relaxed);
}

SimdLevel active_level() noexcept { return active().level; }

const KernelTable& philox_table() noexcept {
  ensure_init();
  return *g_philox.load(std::memory_order_relaxed);
}

const KernelTable& table_for(SimdLevel level) {
  const KernelTable* t = table_ptr(level);
  if (t == nullptr) {
    throw std::invalid_argument(std::string("simd: level '") +
                                level_name(level) +
                                "' was not compiled into this binary");
  }
  return *t;
}

SimdLevel refresh_from_env() {
  const char* env = std::getenv("EPISMC_SIMD");
  if (env == nullptr || *env == '\0') {
    g_lanes.store(&scalar_table(), std::memory_order_relaxed);
    g_philox.store(table_ptr(best_level()), std::memory_order_relaxed);
    return SimdLevel::kScalar;
  }
  bool is_auto = false;
  const SimdLevel want = parse_level(env, &is_auto);
  return apply_level(is_auto ? best_level() : want);
}

namespace detail {

DispatchState get_state() noexcept {
  ensure_init();
  return {g_lanes.load(std::memory_order_relaxed)->level,
          g_philox.load(std::memory_order_relaxed)->level};
}

void set_state(DispatchState state) noexcept {
  g_lanes.store(table_ptr(clamp_level(state.lanes, compiled_levels(),
                                      host_level())),
                std::memory_order_relaxed);
  g_philox.store(table_ptr(clamp_level(state.philox, compiled_levels(),
                                       host_level())),
                 std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace epismc::simd
