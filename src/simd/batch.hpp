#pragma once

// Fixed-width lane abstraction used by kernels_body.inl.
//
// batch<T, N> wraps N lanes of T behind one small operator set; the generic
// implementation is a plain array loop (what the scalar translation unit
// instantiates), and intrinsic specializations light up inside the per-ISA
// translation units via the compiler's own feature macros (__SSE4_1__,
// __AVX2__, __AVX512F__ -- each TU is compiled with exactly one -m flag
// set, so each sees exactly the specializations it may use).
//
// The operator set is deliberately minimal: what the Philox block kernel,
// the lane binomial-inversion sampler, and the fused scorers need, and
// nothing else. All loads/stores are unaligned. No FMA is used anywhere
// (and the TUs build with -ffp-contract=off), so the generic and intrinsic
// paths execute the same IEEE-754 operation sequence elementwise -- that is
// what makes lane results width-independent.

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__SSE4_1__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace epismc::simd {

// --- Generic (scalar-array) implementation ---------------------------------

template <typename T, int N>
struct batch {
  T v[N];

  static batch broadcast(T x) noexcept {
    batch r;
    for (int i = 0; i < N; ++i) r.v[i] = x;
    return r;
  }
  static batch load(const T* p) noexcept {
    batch r;
    for (int i = 0; i < N; ++i) r.v[i] = p[i];
    return r;
  }
  void store(T* p) const noexcept {
    for (int i = 0; i < N; ++i) p[i] = v[i];
  }
};

template <int N>
struct dmask {
  bool m[N];
};

// Double-lane ops (generic).
template <int N>
inline batch<double, N> operator+(batch<double, N> a, batch<double, N> b) noexcept {
  for (int i = 0; i < N; ++i) a.v[i] += b.v[i];
  return a;
}
template <int N>
inline batch<double, N> operator-(batch<double, N> a, batch<double, N> b) noexcept {
  for (int i = 0; i < N; ++i) a.v[i] -= b.v[i];
  return a;
}
template <int N>
inline batch<double, N> operator*(batch<double, N> a, batch<double, N> b) noexcept {
  for (int i = 0; i < N; ++i) a.v[i] *= b.v[i];
  return a;
}
template <int N>
inline batch<double, N> operator/(batch<double, N> a, batch<double, N> b) noexcept {
  for (int i = 0; i < N; ++i) a.v[i] /= b.v[i];
  return a;
}
template <int N>
inline batch<double, N> vmax(batch<double, N> a, batch<double, N> b) noexcept {
  for (int i = 0; i < N; ++i) a.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return a;
}
template <int N>
inline batch<double, N> vsqrt(batch<double, N> a) noexcept {
  for (int i = 0; i < N; ++i) a.v[i] = std::sqrt(a.v[i]);
  return a;
}
template <int N>
inline batch<double, N> vfloor(batch<double, N> a) noexcept {
  for (int i = 0; i < N; ++i) a.v[i] = std::floor(a.v[i]);
  return a;
}
template <int N>
inline dmask<N> cmp_gt(batch<double, N> a, batch<double, N> b) noexcept {
  dmask<N> r;
  for (int i = 0; i < N; ++i) r.m[i] = a.v[i] > b.v[i];
  return r;
}
template <int N>
inline dmask<N> cmp_le(batch<double, N> a, batch<double, N> b) noexcept {
  dmask<N> r;
  for (int i = 0; i < N; ++i) r.m[i] = a.v[i] <= b.v[i];
  return r;
}
template <int N>
inline dmask<N> mask_and(dmask<N> a, dmask<N> b) noexcept {
  for (int i = 0; i < N; ++i) a.m[i] = a.m[i] && b.m[i];
  return a;
}
template <int N>
inline dmask<N> mask_andnot(dmask<N> notted, dmask<N> b) noexcept {
  // !notted & b
  for (int i = 0; i < N; ++i) notted.m[i] = !notted.m[i] && b.m[i];
  return notted;
}
template <int N>
inline dmask<N> mask_or(dmask<N> a, dmask<N> b) noexcept {
  for (int i = 0; i < N; ++i) a.m[i] = a.m[i] || b.m[i];
  return a;
}
template <int N>
inline bool any(dmask<N> a) noexcept {
  for (int i = 0; i < N; ++i) {
    if (a.m[i]) return true;
  }
  return false;
}
template <int N>
inline batch<double, N> select(dmask<N> m, batch<double, N> a,
                               batch<double, N> b) noexcept {
  for (int i = 0; i < N; ++i) b.v[i] = m.m[i] ? a.v[i] : b.v[i];
  return b;
}
template <int N>
inline double hsum(batch<double, N> a) noexcept {
  double s = a.v[0];
  for (int i = 1; i < N; ++i) s += a.v[i];
  return s;
}
template <int N>
inline double hprod(batch<double, N> a) noexcept {
  double s = a.v[0];
  for (int i = 1; i < N; ++i) s *= a.v[i];
  return s;
}

// u32-lane ops (generic): xor, wrapping add, and the Philox 32x32->(hi,lo).
template <int N>
inline batch<std::uint32_t, N> operator^(batch<std::uint32_t, N> a,
                                         batch<std::uint32_t, N> b) noexcept {
  for (int i = 0; i < N; ++i) a.v[i] ^= b.v[i];
  return a;
}
template <int N>
inline void mulhilo(batch<std::uint32_t, N> a, batch<std::uint32_t, N> b,
                    batch<std::uint32_t, N>& hi,
                    batch<std::uint32_t, N>& lo) noexcept {
  for (int i = 0; i < N; ++i) {
    const std::uint64_t prod =
        static_cast<std::uint64_t>(a.v[i]) * static_cast<std::uint64_t>(b.v[i]);
    hi.v[i] = static_cast<std::uint32_t>(prod >> 32);
    lo.v[i] = static_cast<std::uint32_t>(prod);
  }
}

// --- SSE4.1: 2 double lanes / 4 u32 lanes -----------------------------------

#if defined(__SSE4_1__)

template <>
struct batch<double, 2> {
  __m128d v;
  static batch broadcast(double x) noexcept { return {_mm_set1_pd(x)}; }
  static batch load(const double* p) noexcept { return {_mm_loadu_pd(p)}; }
  void store(double* p) const noexcept { _mm_storeu_pd(p, v); }
};

struct dmask2 {
  __m128d m;
};
template <>
struct batch<std::uint32_t, 4> {
  __m128i v;
  static batch broadcast(std::uint32_t x) noexcept {
    return {_mm_set1_epi32(static_cast<int>(x))};
  }
  static batch load(const std::uint32_t* p) noexcept {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::uint32_t* p) const noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
};

inline batch<double, 2> operator+(batch<double, 2> a, batch<double, 2> b) noexcept {
  return {_mm_add_pd(a.v, b.v)};
}
inline batch<double, 2> operator-(batch<double, 2> a, batch<double, 2> b) noexcept {
  return {_mm_sub_pd(a.v, b.v)};
}
inline batch<double, 2> operator*(batch<double, 2> a, batch<double, 2> b) noexcept {
  return {_mm_mul_pd(a.v, b.v)};
}
inline batch<double, 2> operator/(batch<double, 2> a, batch<double, 2> b) noexcept {
  return {_mm_div_pd(a.v, b.v)};
}
inline batch<double, 2> vmax(batch<double, 2> a, batch<double, 2> b) noexcept {
  return {_mm_max_pd(b.v, a.v)};
}
inline batch<double, 2> vsqrt(batch<double, 2> a) noexcept {
  return {_mm_sqrt_pd(a.v)};
}
inline batch<double, 2> vfloor(batch<double, 2> a) noexcept {
  return {_mm_floor_pd(a.v)};
}
inline dmask2 cmp_gt(batch<double, 2> a, batch<double, 2> b) noexcept {
  return {_mm_cmpgt_pd(a.v, b.v)};
}
inline dmask2 cmp_le(batch<double, 2> a, batch<double, 2> b) noexcept {
  return {_mm_cmple_pd(a.v, b.v)};
}
inline dmask2 mask_and(dmask2 a, dmask2 b) noexcept {
  return {_mm_and_pd(a.m, b.m)};
}
inline dmask2 mask_andnot(dmask2 notted, dmask2 b) noexcept {
  return {_mm_andnot_pd(notted.m, b.m)};
}
inline dmask2 mask_or(dmask2 a, dmask2 b) noexcept {
  return {_mm_or_pd(a.m, b.m)};
}
inline bool any(dmask2 a) noexcept { return _mm_movemask_pd(a.m) != 0; }
inline batch<double, 2> select(dmask2 m, batch<double, 2> a,
                               batch<double, 2> b) noexcept {
  return {_mm_blendv_pd(b.v, a.v, m.m)};
}
inline double hsum(batch<double, 2> a) noexcept {
  const __m128d hi = _mm_unpackhi_pd(a.v, a.v);
  return _mm_cvtsd_f64(a.v) + _mm_cvtsd_f64(hi);
}
inline double hprod(batch<double, 2> a) noexcept {
  const __m128d hi = _mm_unpackhi_pd(a.v, a.v);
  return _mm_cvtsd_f64(a.v) * _mm_cvtsd_f64(hi);
}

inline batch<std::uint32_t, 4> operator^(batch<std::uint32_t, 4> a,
                                         batch<std::uint32_t, 4> b) noexcept {
  return {_mm_xor_si128(a.v, b.v)};
}
inline void mulhilo(batch<std::uint32_t, 4> a, batch<std::uint32_t, 4> b,
                    batch<std::uint32_t, 4>& hi,
                    batch<std::uint32_t, 4>& lo) noexcept {
  lo.v = _mm_mullo_epi32(a.v, b.v);
  const __m128i even = _mm_mul_epu32(a.v, b.v);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_epi64(a.v, 32), _mm_srli_epi64(b.v, 32));
  const __m128i hi_even = _mm_srli_epi64(even, 32);
  const __m128i hi_odd =
      _mm_and_si128(odd, _mm_set1_epi64x(static_cast<long long>(0xFFFFFFFF00000000ull)));
  hi.v = _mm_or_si128(hi_even, hi_odd);
}

#endif  // __SSE4_1__

// --- AVX2: 4 double lanes / 8 u32 lanes -------------------------------------

#if defined(__AVX2__)

template <>
struct batch<double, 4> {
  __m256d v;
  static batch broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static batch load(const double* p) noexcept { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
};

struct dmask4 {
  __m256d m;
};
template <>
struct batch<std::uint32_t, 8> {
  __m256i v;
  static batch broadcast(std::uint32_t x) noexcept {
    return {_mm256_set1_epi32(static_cast<int>(x))};
  }
  static batch load(const std::uint32_t* p) noexcept {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint32_t* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
};

inline batch<double, 4> operator+(batch<double, 4> a, batch<double, 4> b) noexcept {
  return {_mm256_add_pd(a.v, b.v)};
}
inline batch<double, 4> operator-(batch<double, 4> a, batch<double, 4> b) noexcept {
  return {_mm256_sub_pd(a.v, b.v)};
}
inline batch<double, 4> operator*(batch<double, 4> a, batch<double, 4> b) noexcept {
  return {_mm256_mul_pd(a.v, b.v)};
}
inline batch<double, 4> operator/(batch<double, 4> a, batch<double, 4> b) noexcept {
  return {_mm256_div_pd(a.v, b.v)};
}
inline batch<double, 4> vmax(batch<double, 4> a, batch<double, 4> b) noexcept {
  return {_mm256_max_pd(b.v, a.v)};
}
inline batch<double, 4> vsqrt(batch<double, 4> a) noexcept {
  return {_mm256_sqrt_pd(a.v)};
}
inline batch<double, 4> vfloor(batch<double, 4> a) noexcept {
  return {_mm256_floor_pd(a.v)};
}
inline dmask4 cmp_gt(batch<double, 4> a, batch<double, 4> b) noexcept {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}
inline dmask4 cmp_le(batch<double, 4> a, batch<double, 4> b) noexcept {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
inline dmask4 mask_and(dmask4 a, dmask4 b) noexcept {
  return {_mm256_and_pd(a.m, b.m)};
}
inline dmask4 mask_andnot(dmask4 notted, dmask4 b) noexcept {
  return {_mm256_andnot_pd(notted.m, b.m)};
}
inline dmask4 mask_or(dmask4 a, dmask4 b) noexcept {
  return {_mm256_or_pd(a.m, b.m)};
}
inline bool any(dmask4 a) noexcept { return _mm256_movemask_pd(a.m) != 0; }
inline batch<double, 4> select(dmask4 m, batch<double, 4> a,
                               batch<double, 4> b) noexcept {
  return {_mm256_blendv_pd(b.v, a.v, m.m)};
}
inline double hsum(batch<double, 4> a) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}
inline double hprod(batch<double, 4> a) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d s = _mm_mul_pd(lo, hi);
  return _mm_cvtsd_f64(s) * _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

inline batch<std::uint32_t, 8> operator^(batch<std::uint32_t, 8> a,
                                         batch<std::uint32_t, 8> b) noexcept {
  return {_mm256_xor_si256(a.v, b.v)};
}
inline void mulhilo(batch<std::uint32_t, 8> a, batch<std::uint32_t, 8> b,
                    batch<std::uint32_t, 8>& hi,
                    batch<std::uint32_t, 8>& lo) noexcept {
  lo.v = _mm256_mullo_epi32(a.v, b.v);
  const __m256i even = _mm256_mul_epu32(a.v, b.v);
  const __m256i odd =
      _mm256_mul_epu32(_mm256_srli_epi64(a.v, 32), _mm256_srli_epi64(b.v, 32));
  const __m256i hi_even = _mm256_srli_epi64(even, 32);
  const __m256i hi_odd = _mm256_and_si256(
      odd, _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFF00000000ull)));
  hi.v = _mm256_or_si256(hi_even, hi_odd);
}

#endif  // __AVX2__

// --- AVX-512F: 8 double lanes / 16 u32 lanes --------------------------------

#if defined(__AVX512F__)

template <>
struct batch<double, 8> {
  __m512d v;
  static batch broadcast(double x) noexcept { return {_mm512_set1_pd(x)}; }
  static batch load(const double* p) noexcept { return {_mm512_loadu_pd(p)}; }
  void store(double* p) const noexcept { _mm512_storeu_pd(p, v); }
};

struct dmask8 {
  __mmask8 m;
};
template <>
struct batch<std::uint32_t, 16> {
  __m512i v;
  static batch broadcast(std::uint32_t x) noexcept {
    return {_mm512_set1_epi32(static_cast<int>(x))};
  }
  static batch load(const std::uint32_t* p) noexcept {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::uint32_t* p) const noexcept { _mm512_storeu_si512(p, v); }
};

inline batch<double, 8> operator+(batch<double, 8> a, batch<double, 8> b) noexcept {
  return {_mm512_add_pd(a.v, b.v)};
}
inline batch<double, 8> operator-(batch<double, 8> a, batch<double, 8> b) noexcept {
  return {_mm512_sub_pd(a.v, b.v)};
}
inline batch<double, 8> operator*(batch<double, 8> a, batch<double, 8> b) noexcept {
  return {_mm512_mul_pd(a.v, b.v)};
}
inline batch<double, 8> operator/(batch<double, 8> a, batch<double, 8> b) noexcept {
  return {_mm512_div_pd(a.v, b.v)};
}
inline batch<double, 8> vmax(batch<double, 8> a, batch<double, 8> b) noexcept {
  return {_mm512_max_pd(b.v, a.v)};
}
inline batch<double, 8> vsqrt(batch<double, 8> a) noexcept {
  return {_mm512_sqrt_pd(a.v)};
}
inline batch<double, 8> vfloor(batch<double, 8> a) noexcept {
  return {_mm512_roundscale_pd(a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
}
inline dmask8 cmp_gt(batch<double, 8> a, batch<double, 8> b) noexcept {
  return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ)};
}
inline dmask8 cmp_le(batch<double, 8> a, batch<double, 8> b) noexcept {
  return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ)};
}
inline dmask8 mask_and(dmask8 a, dmask8 b) noexcept {
  return {static_cast<__mmask8>(a.m & b.m)};
}
inline dmask8 mask_andnot(dmask8 notted, dmask8 b) noexcept {
  return {static_cast<__mmask8>(~notted.m & b.m)};
}
inline dmask8 mask_or(dmask8 a, dmask8 b) noexcept {
  return {static_cast<__mmask8>(a.m | b.m)};
}
inline bool any(dmask8 a) noexcept { return a.m != 0; }
inline batch<double, 8> select(dmask8 m, batch<double, 8> a,
                               batch<double, 8> b) noexcept {
  return {_mm512_mask_blend_pd(m.m, b.v, a.v)};
}
inline double hsum(batch<double, 8> a) noexcept {
  // Fixed pairwise order (not _mm512_reduce_add_pd, whose reduction order
  // is a compiler detail): lanes (0+4, 1+5, 2+6, 3+7) then the AVX2 tree.
  const __m256d lo = _mm512_castpd512_pd256(a.v);
  const __m256d hi = _mm512_extractf64x4_pd(a.v, 1);
  const __m256d s4 = _mm256_add_pd(lo, hi);
  const __m128d s2 =
      _mm_add_pd(_mm256_castpd256_pd128(s4), _mm256_extractf128_pd(s4, 1));
  return _mm_cvtsd_f64(s2) + _mm_cvtsd_f64(_mm_unpackhi_pd(s2, s2));
}
inline double hprod(batch<double, 8> a) noexcept {
  const __m256d lo = _mm512_castpd512_pd256(a.v);
  const __m256d hi = _mm512_extractf64x4_pd(a.v, 1);
  const __m256d s4 = _mm256_mul_pd(lo, hi);
  const __m128d s2 =
      _mm_mul_pd(_mm256_castpd256_pd128(s4), _mm256_extractf128_pd(s4, 1));
  return _mm_cvtsd_f64(s2) * _mm_cvtsd_f64(_mm_unpackhi_pd(s2, s2));
}

inline batch<std::uint32_t, 16> operator^(batch<std::uint32_t, 16> a,
                                          batch<std::uint32_t, 16> b) noexcept {
  return {_mm512_xor_si512(a.v, b.v)};
}
inline void mulhilo(batch<std::uint32_t, 16> a, batch<std::uint32_t, 16> b,
                    batch<std::uint32_t, 16>& hi,
                    batch<std::uint32_t, 16>& lo) noexcept {
  lo.v = _mm512_mullo_epi32(a.v, b.v);
  const __m512i even = _mm512_mul_epu32(a.v, b.v);
  const __m512i odd =
      _mm512_mul_epu32(_mm512_srli_epi64(a.v, 32), _mm512_srli_epi64(b.v, 32));
  const __m512i hi_even = _mm512_srli_epi64(even, 32);
  const __m512i hi_odd = _mm512_and_si512(
      odd, _mm512_set1_epi64(static_cast<long long>(0xFFFFFFFF00000000ull)));
  hi.v = _mm512_or_si512(hi_even, hi_odd);
}

#endif  // __AVX512F__

}  // namespace epismc::simd
