#pragma once

// Internal: per-ISA KernelTable accessors. Which of these exist is decided
// at configure time -- CMake adds kernels_<isa>.cpp (compiled with the
// matching -m flags) and defines EPISMC_SIMD_HAS_<ISA> on the library when
// the toolchain/arch supports it. Only simd.cpp and the kernel TUs include
// this header.

#include "simd/simd.hpp"

namespace epismc::simd {

const KernelTable& scalar_table();
#ifdef EPISMC_SIMD_HAS_SSE41
const KernelTable& sse41_table();
#endif
#ifdef EPISMC_SIMD_HAS_AVX2
const KernelTable& avx2_table();
#endif
#ifdef EPISMC_SIMD_HAS_AVX512
const KernelTable& avx512_table();
#endif

}  // namespace epismc::simd
