// One kernel source, compiled once per ISA (RayDemo CoreSIMD pattern).
//
// Each kernels_<isa>.cpp defines the macros below and includes this file;
// the kernels land in a per-ISA namespace and are exported through one
// KernelTable. Required macros:
//
//   EPISMC_SIMD_IMPL_NS        namespace for this instantiation
//   EPISMC_SIMD_WD             double lanes per batch (1 / 2 / 4 / 8)
//   EPISMC_SIMD_WU             u32 lanes per batch (2 / 4 / 8 / 16), >= WD
//   EPISMC_SIMD_LEVEL          SimdLevel enumerator
//   EPISMC_SIMD_ENGINE_BLOCKS  Philox blocks per PhiloxEngine refill
//
// Determinism notes (load-bearing -- see docs/API.md):
//  * philox_fill is pure integer and bit-identical at every width.
//  * binomial_lanes mirrors rng::binomial draw for draw: the lane BINV and
//    lane BTPE execute the identical IEEE-754 operation sequences as
//    binomial_inversion / binomial_btpe (no FMA, -ffp-contract=off on every
//    TU), and each lane consumes the identical uniform values a scalar
//    engine positioned at seg[i] would produce. Lane results therefore do
//    not depend on lane grouping or batch width.
//  * score_* accumulate in lanes, so last-ulp totals differ across widths;
//    they are deterministic at a fixed level, which is all the replay
//    machinery requires.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "random/distributions.hpp"
#include "random/philox.hpp"
#include "simd/batch.hpp"
#include "simd/simd.hpp"

namespace epismc::simd {
namespace EPISMC_SIMD_IMPL_NS {

constexpr int kWD = EPISMC_SIMD_WD;
constexpr int kWU = EPISMC_SIMD_WU;
static_assert(kWU >= kWD && kWU % 2 == 0);

using vd = batch<double, kWD>;
using vu = batch<std::uint32_t, kWU>;
using vm = decltype(cmp_gt(vd::broadcast(0.0), vd::broadcast(0.0)));

// Same literal as stats/densities.cpp (log sqrt(2 pi)).
constexpr double kLogSqrt2Pi = 0.91893853320467274178;

// --- Philox -----------------------------------------------------------------

struct PhiloxWords {
  std::uint32_t w0[kWU], w1[kWU], w2[kWU], w3[kWU];
};

/// Run kWU Philox4x32-10 blocks in lanes: per-lane counters (c0a, c1a),
/// broadcast stream halves and key. Matches Philox4x32::block bit for bit.
inline void philox_rounds(const std::uint32_t* c0a, const std::uint32_t* c1a,
                          std::uint64_t seed, std::uint64_t stream,
                          PhiloxWords& out) noexcept {
  using P = rng::Philox4x32;
  vu c0 = vu::load(c0a);
  vu c1 = vu::load(c1a);
  vu c2 = vu::broadcast(static_cast<std::uint32_t>(stream));
  vu c3 = vu::broadcast(static_cast<std::uint32_t>(stream >> 32));
  const vu m0 = vu::broadcast(P::kMult0);
  const vu m1 = vu::broadcast(P::kMult1);
  std::uint32_t k0 = static_cast<std::uint32_t>(seed);
  std::uint32_t k1 = static_cast<std::uint32_t>(seed >> 32);
  for (int r = 0; r < 10; ++r) {
    vu hi0 = c0, lo0 = c0, hi1 = c0, lo1 = c0;
    mulhilo(m0, c0, hi0, lo0);
    mulhilo(m1, c2, hi1, lo1);
    const vu n0 = hi1 ^ c1 ^ vu::broadcast(k0);
    const vu n2 = hi0 ^ c3 ^ vu::broadcast(k1);
    c0 = n0;
    c1 = lo1;
    c2 = n2;
    c3 = lo0;
    k0 += P::kWeyl0;
    k1 += P::kWeyl1;
  }
  c0.store(out.w0);
  c1.store(out.w1);
  c2.store(out.w2);
  c3.store(out.w3);
}

void philox_fill(std::uint64_t seed, std::uint64_t stream, std::uint64_t block0,
                 std::uint64_t* out, std::size_t n_blocks) {
  std::uint32_t c0a[kWU], c1a[kWU];
  for (std::size_t b = 0; b < n_blocks; b += kWU) {
    for (int l = 0; l < kWU; ++l) {
      // Lanes past n_blocks compute a throwaway block (pure function).
      const std::uint64_t blk = block0 + b + static_cast<std::uint64_t>(l);
      c0a[l] = static_cast<std::uint32_t>(blk);
      c1a[l] = static_cast<std::uint32_t>(blk >> 32);
    }
    PhiloxWords w;
    philox_rounds(c0a, c1a, seed, stream, w);
    const std::size_t live = std::min<std::size_t>(kWU, n_blocks - b);
    for (std::size_t l = 0; l < live; ++l) {
      out[2 * (b + l)] =
          (static_cast<std::uint64_t>(w.w1[l]) << 32) | w.w0[l];
      out[2 * (b + l) + 1] =
          (static_cast<std::uint64_t>(w.w3[l]) << 32) | w.w2[l];
    }
  }
}

/// Raw 64-bit words at draw positions pos[l] and pos[l] + 1 for kWD lanes,
/// from a single philox_rounds pass: each draw lane's two positions touch at
/// most two distinct blocks, and kWU == 2 * kWD u32 lanes cover them all.
inline void pair_words_at(std::uint64_t seed, std::uint64_t stream,
                          const std::uint64_t* pos, std::uint64_t* w0_out,
                          std::uint64_t* w1_out) noexcept {
  static_assert(kWU == 2 * kWD);
  std::uint32_t c0a[kWU], c1a[kWU];
  for (int l = 0; l < kWD; ++l) {
    const std::uint64_t blk_a = pos[l] >> 1;
    const std::uint64_t blk_b = (pos[l] + 1) >> 1;
    c0a[2 * l] = static_cast<std::uint32_t>(blk_a);
    c1a[2 * l] = static_cast<std::uint32_t>(blk_a >> 32);
    c0a[2 * l + 1] = static_cast<std::uint32_t>(blk_b);
    c1a[2 * l + 1] = static_cast<std::uint32_t>(blk_b >> 32);
  }
  PhiloxWords w;
  philox_rounds(c0a, c1a, seed, stream, w);
  for (int l = 0; l < kWD; ++l) {
    const std::uint64_t lo_a =
        (static_cast<std::uint64_t>(w.w1[2 * l]) << 32) | w.w0[2 * l];
    const std::uint64_t hi_a =
        (static_cast<std::uint64_t>(w.w3[2 * l]) << 32) | w.w2[2 * l];
    const std::uint64_t lo_b =
        (static_cast<std::uint64_t>(w.w1[2 * l + 1]) << 32) | w.w0[2 * l + 1];
    const std::uint64_t hi_b =
        (static_cast<std::uint64_t>(w.w3[2 * l + 1]) << 32) | w.w2[2 * l + 1];
    w0_out[l] = (pos[l] & 1) ? hi_a : lo_a;
    w1_out[l] = ((pos[l] + 1) & 1) ? hi_b : lo_b;
  }
}

/// One uniform per lane, lane l reading absolute draw position pos[l] of
/// the (seed, stream) counter stream; value bit-equal to what
/// rng::uniform_double on an engine at that position returns.
inline void uniforms_at(std::uint64_t seed, std::uint64_t stream,
                        const std::uint64_t* pos, int count,
                        double* u_out) noexcept {
  std::uint32_t c0a[kWU], c1a[kWU];
  for (int l = 0; l < kWU; ++l) {
    const std::uint64_t blk = pos[l < count ? l : 0] >> 1;
    c0a[l] = static_cast<std::uint32_t>(blk);
    c1a[l] = static_cast<std::uint32_t>(blk >> 32);
  }
  PhiloxWords w;
  philox_rounds(c0a, c1a, seed, stream, w);
  for (int l = 0; l < count; ++l) {
    const std::uint64_t lo64 =
        (static_cast<std::uint64_t>(w.w1[l]) << 32) | w.w0[l];
    const std::uint64_t hi64 =
        (static_cast<std::uint64_t>(w.w3[l]) << 32) | w.w2[l];
    const std::uint64_t x = (pos[l] & 1) ? hi64 : lo64;
    u_out[l] = static_cast<double>(x >> 11) * 0x1.0p-53;
  }
}

// --- Lane binomial sampler ---------------------------------------------------

struct BinvLane {
  double r0 = 0.0;    // q^n
  double s = 0.0;     // p / q
  double npq = 0.0;   // (n + 1) * s
  double xmax = 0.0;  // restart tail bound
  std::uint64_t seg = 0;
  std::int64_t n = 0;
  std::size_t out_idx = 0;
  bool flip = false;
};

/// The scalar inner search of binomial_inversion, for restarts (probability
/// ~1e-20 per lane) -- attempt k consumes the uniform at seg + k, exactly
/// like the sequential sampler consuming its next draw.
inline std::int64_t binv_restart(std::uint64_t seed, std::uint64_t stream,
                                 const BinvLane& b) noexcept {
  rng::PhiloxEngine eng(seed, stream);
  const auto xmax = static_cast<std::int64_t>(b.xmax);
  for (std::uint64_t attempt = 1;; ++attempt) {
    eng.set_position(b.seg + attempt);
    double u = rng::uniform_double(eng);
    double r = b.r0;
    std::int64_t x = 0;
    while (u > r) {
      u -= r;
      ++x;
      if (x > xmax) break;
      r *= (b.npq / static_cast<double>(x)) - b.s;
    }
    if (x <= b.n && x <= xmax) return x;
  }
}

/// Vector BINV over up to kWD lanes. Masked updates keep every lane's
/// trajectory a pure function of its own (u, r0, s, npq, xmax) -- neighbours
/// only add dead iterations -- so results match the scalar recurrence
/// bit for bit at any width.
inline void binv_group(std::uint64_t seed, std::uint64_t stream,
                       const BinvLane* lanes, int count,
                       std::int64_t* out) noexcept {
  std::uint64_t pos[kWD];
  double us[kWD];
  for (int l = 0; l < kWD; ++l) pos[l] = lanes[l < count ? l : 0].seg;
  uniforms_at(seed, stream, pos, kWD, us);

  double uarr[kWD], r0arr[kWD], sarr[kWD], npqarr[kWD], xmaxarr[kWD];
  for (int l = 0; l < kWD; ++l) {
    const BinvLane& b = lanes[l < count ? l : 0];
    uarr[l] = us[l < count ? l : 0];
    r0arr[l] = b.r0;
    sarr[l] = b.s;
    npqarr[l] = b.npq;
    xmaxarr[l] = b.xmax;
  }

  vd u = vd::load(uarr);
  vd r = vd::load(r0arr);
  vd x = vd::broadcast(0.0);
  const vd s = vd::load(sarr);
  const vd npq = vd::load(npqarr);
  const vd xmax = vd::load(xmaxarr);
  const vd one = vd::broadcast(1.0);
  vm failed = cmp_gt(vd::broadcast(0.0), one);  // all-false

  // xmax <= 164 for n*p < 30, so 256 iterations cover every live lane.
  for (int iter = 0; iter < 256; ++iter) {
    const vm active = mask_andnot(failed, cmp_gt(u, r));
    if (!any(active)) break;
    u = select(active, u - r, u);
    x = select(active, x + one, x);
    failed = mask_or(failed, mask_and(active, cmp_gt(x, xmax)));
    const vm update = mask_andnot(failed, active);
    r = select(update, r * (npq / x - s), r);
  }

  double xarr[kWD], failarr[kWD];
  x.store(xarr);
  select(failed, one, vd::broadcast(0.0)).store(failarr);
  for (int l = 0; l < count; ++l) {
    const BinvLane& b = lanes[l];
    auto xi = static_cast<std::int64_t>(xarr[l]);
    if (failarr[l] != 0.0 || xi > b.n) xi = binv_restart(seed, stream, b);
    out[b.out_idx] = b.flip ? b.n - xi : xi;
  }
}

// --- Lane BTPE sampler -------------------------------------------------------
//
// BTPE (Kachitvichyanukul & Schmeiser 1988) attempts consume exactly two
// uniforms each, so attempt k of a lane maps to positions seg + 2k and
// seg + 2k + 1 -- the identical consumption pattern of rng::binomial on an
// engine positioned at seg. The envelope setup and the dominant triangular
// region (u <= p1: immediate acceptance, the majority of attempts) run in
// lanes; rejected lanes continue through an exact scalar mirror of
// rng::binomial_btpe. Lane results are therefore bit-identical at every
// width AND bit-identical to the positioned-scalar-engine fallback they
// replace (same uniforms, same IEEE op sequence).

struct BtpeLane {
  std::uint64_t seg = 0;
  std::int64_t n = 0;
  double pp = 0.0;  // working probability, <= 0.5
  std::size_t out_idx = 0;
  bool flip = false;
};

/// Scalar envelope constants for one lane, spilled from the vector setup so
/// the continuation uses bit-identical values.
struct BtpeSetup {
  double nd, r, q, nrq, md, p1, xm, xl, xr, c, laml, lamr, p2, p3, p4;
  std::int64_t n, m;
};

/// Positioned one-block-at-a-time engine for BTPE continuations: bit-equal
/// uniforms to PhiloxEngine without paying the dispatched multi-block refill
/// for the ~2 words a continuation typically needs.
class LiteEngine {
 public:
  LiteEngine(std::uint64_t seed, std::uint64_t stream, std::uint64_t pos) noexcept
      : seed_(seed), stream_(stream), pos_(pos) {}

  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  double uniform_oo() noexcept {
    return (static_cast<double>(next() >> 12) + 0.5) * 0x1.0p-52;
  }

 private:
  std::uint64_t next() noexcept {
    const std::uint64_t blk = pos_ >> 1;
    if (blk != cached_block_) {
      const rng::Philox4x32::counter_type ctr = {
          static_cast<std::uint32_t>(blk), static_cast<std::uint32_t>(blk >> 32),
          static_cast<std::uint32_t>(stream_),
          static_cast<std::uint32_t>(stream_ >> 32)};
      const rng::Philox4x32::key_type key = {
          static_cast<std::uint32_t>(seed_),
          static_cast<std::uint32_t>(seed_ >> 32)};
      const auto w = rng::Philox4x32::block(ctr, key);
      lo_ = (static_cast<std::uint64_t>(w[1]) << 32) | w[0];
      hi_ = (static_cast<std::uint64_t>(w[3]) << 32) | w[2];
      cached_block_ = blk;
    }
    return (pos_++ & 1) ? hi_ : lo_;
  }

  std::uint64_t seed_, stream_, pos_;
  std::uint64_t cached_block_ = ~std::uint64_t{0};
  std::uint64_t lo_ = 0, hi_ = 0;
};

/// One BTPE attempt, mirroring the loop body of rng::binomial_btpe operation
/// for operation. `u` is already scaled by p4. Returns the accepted value,
/// or -1 to reject and try again (accepted values are always >= 0 in the
/// BTPE regime: xl >= 0 for n*p >= 30).
inline std::int64_t btpe_attempt(const BtpeSetup& s, double u, double v) noexcept {
  std::int64_t y = 0;
  if (u <= s.p1) {
    return static_cast<std::int64_t>(std::floor(s.xm - s.p1 * v + u));
  }
  if (u <= s.p2) {
    const double x = s.xl + (u - s.p1) / s.c;
    v = v * s.c + 1.0 - std::fabs(s.md - x + 0.5) / s.p1;
    if (v > 1.0) return -1;
    y = static_cast<std::int64_t>(std::floor(x));
  } else if (u <= s.p3) {
    y = static_cast<std::int64_t>(std::floor(s.xl + std::log(v) / s.laml));
    if (y < 0) return -1;
    v = v * (u - s.p2) * s.laml;
  } else {
    y = static_cast<std::int64_t>(std::floor(s.xr - std::log(v) / s.lamr));
    if (y > s.n) return -1;
    v = v * (u - s.p3) * s.lamr;
  }

  const std::int64_t k = std::llabs(y - s.m);
  const double yd = static_cast<double>(y);
  const double kd = static_cast<double>(k);
  if (k <= 20 || kd >= s.nrq / 2.0 - 1.0) {
    const double sr = s.r / s.q;
    const double aa = sr * (s.nd + 1.0);
    double f = 1.0;
    if (s.m < y) {
      for (std::int64_t i = s.m + 1; i <= y; ++i) {
        f *= (aa / static_cast<double>(i) - sr);
      }
    } else if (s.m > y) {
      for (std::int64_t i = y + 1; i <= s.m; ++i) {
        f /= (aa / static_cast<double>(i) - sr);
      }
    }
    return v <= f ? y : -1;
  }
  const double rho =
      (kd / s.nrq) * ((kd * (kd / 3.0 + 0.625) + 1.0 / 6.0) / s.nrq + 0.5);
  const double t = -kd * kd / (2.0 * s.nrq);
  const double logv = std::log(v);
  if (logv < t - rho) return y;
  if (logv > t + rho) return -1;
  const double x1 = yd + 1.0;
  const double f1 = s.md + 1.0;
  const double z = s.nd + 1.0 - s.md;
  const double w = s.nd - yd + 1.0;
  const double z2 = z * z;
  const double x2 = x1 * x1;
  const double f2 = f1 * f1;
  const double w2 = w * w;
  const auto stirling_corr = [](double sq, double lin) {
    return (13680.0 - (462.0 - (132.0 - (99.0 - 140.0 / sq) / sq) / sq) / sq) /
           lin / 166320.0;
  };
  const double stirling = stirling_corr(f2, f1) + stirling_corr(z2, z) +
                          stirling_corr(x2, x1) + stirling_corr(w2, w);
  if (logv <= s.xm * std::log(f1 / x1) + (s.nd - s.md + 0.5) * std::log(z / w) +
                  (yd - s.md) * std::log(w * s.r / (x1 * s.q)) + stirling) {
    return y;
  }
  return -1;
}

/// Scalar continuation for a lane whose first attempt was not a triangular
/// acceptance: finish attempt 0 with the already-drawn (u, v), then draw
/// attempt k's pair from positions seg + 2k, seg + 2k + 1.
inline std::int64_t btpe_continue(std::uint64_t seed, std::uint64_t stream,
                                  std::uint64_t seg, const BtpeSetup& s,
                                  double u0, double v0) noexcept {
  std::int64_t y = btpe_attempt(s, u0, v0);
  if (y >= 0) return y;
  LiteEngine eng(seed, stream, seg + 2);
  for (;;) {
    const double u = eng.uniform() * s.p4;
    const double v = eng.uniform_oo();
    y = btpe_attempt(s, u, v);
    if (y >= 0) return y;
  }
}

/// Vector BTPE over up to kWD lanes: envelope setup and the first attempt's
/// triangular-region acceptance in lanes, scalar continuation otherwise.
inline void btpe_group(std::uint64_t seed, std::uint64_t stream,
                       const BtpeLane* lanes, int count,
                       std::int64_t* out) noexcept {
  double rarr[kWD], ndarr[kWD];
  std::uint64_t pos[kWD];
  for (int l = 0; l < kWD; ++l) {
    const BtpeLane& b = lanes[l < count ? l : 0];
    rarr[l] = b.pp;
    ndarr[l] = static_cast<double>(b.n);
    pos[l] = b.seg;
  }

  // Envelope setup, same IEEE op sequence as rng::binomial_btpe elementwise.
  const vd one = vd::broadcast(1.0);
  const vd half = vd::broadcast(0.5);
  const vd r = vd::load(rarr);
  const vd nd = vd::load(ndarr);
  const vd q = one - r;
  const vd fm = nd * r + r;
  const vd md = vfloor(fm);
  const vd nrq = nd * r * q;
  const vd p1 =
      vfloor(vd::broadcast(2.195) * vsqrt(nrq) - vd::broadcast(4.6) * q) + half;
  const vd xm = md + half;
  const vd xl = xm - p1;
  const vd xr = xm + p1;
  const vd c =
      vd::broadcast(0.134) + vd::broadcast(20.5) / (vd::broadcast(15.3) + md);
  vd a = (fm - xl) / (fm - xl * r);
  const vd laml = a * (one + a * half);
  a = (xr - fm) / (xr * q);
  const vd lamr = a * (one + a * half);
  const vd p2 = p1 * (one + vd::broadcast(2.0) * c);
  const vd p3 = p2 + c / laml;
  const vd p4 = p3 + c / lamr;

  // First (u, v) pair for every lane from one Philox pass.
  std::uint64_t w_u[kWD], w_v[kWD];
  pair_words_at(seed, stream, pos, w_u, w_v);
  double uarr[kWD], varr[kWD];
  for (int l = 0; l < kWD; ++l) {
    uarr[l] = static_cast<double>(w_u[l] >> 11) * 0x1.0p-53;
    varr[l] = (static_cast<double>(w_v[l] >> 12) + 0.5) * 0x1.0p-52;
  }
  const vd u = vd::load(uarr) * p4;
  const vd v = vd::load(varr);

  // Triangular central region: immediate acceptance, the bulk of attempts.
  const vm rejected = cmp_gt(u, p1);
  const vd y1 = vfloor(xm - p1 * v + u);

  double y1arr[kWD], uscaled[kWD], rejarr[kWD];
  y1.store(y1arr);
  u.store(uscaled);
  select(rejected, one, vd::broadcast(0.0)).store(rejarr);

  double mdarr[kWD], nrqarr[kWD], p1arr[kWD], xmarr[kWD], xlarr[kWD],
      xrarr[kWD], carr[kWD], lamlarr[kWD], lamrarr[kWD], p2arr[kWD],
      p3arr[kWD], p4arr[kWD], qarr[kWD];
  md.store(mdarr);
  nrq.store(nrqarr);
  p1.store(p1arr);
  xm.store(xmarr);
  xl.store(xlarr);
  xr.store(xrarr);
  c.store(carr);
  laml.store(lamlarr);
  lamr.store(lamrarr);
  p2.store(p2arr);
  p3.store(p3arr);
  p4.store(p4arr);
  q.store(qarr);

  for (int l = 0; l < count; ++l) {
    const BtpeLane& b = lanes[l];
    std::int64_t y;
    if (rejarr[l] == 0.0) {
      y = static_cast<std::int64_t>(y1arr[l]);
    } else {
      const BtpeSetup s{ndarr[l],   b.pp,       qarr[l],   nrqarr[l],
                        mdarr[l],   p1arr[l],   xmarr[l],  xlarr[l],
                        xrarr[l],   carr[l],    lamlarr[l], lamrarr[l],
                        p2arr[l],   p3arr[l],   p4arr[l],  b.n,
                        static_cast<std::int64_t>(mdarr[l])};
      y = btpe_continue(seed, stream, b.seg, s, uscaled[l], varr[l]);
    }
    out[b.out_idx] = b.flip ? b.n - y : y;
  }
}

void binomial_lanes(std::uint64_t seed, std::uint64_t stream,
                    const std::uint64_t* seg, const std::int64_t* n,
                    const double* p, std::size_t count, std::int64_t* out) {
  BinvLane binv_buf[kWD];
  BtpeLane btpe_buf[kWD];
  int n_binv = 0;
  int n_btpe = 0;
  const auto flush_binv = [&] {
    if (n_binv > 0) binv_group(seed, stream, binv_buf, n_binv, out);
    n_binv = 0;
  };
  const auto flush_btpe = [&] {
    if (n_btpe > 0) btpe_group(seed, stream, btpe_buf, n_btpe, out);
    n_btpe = 0;
  };
  for (std::size_t i = 0; i < count; ++i) {
    if (n[i] < 0 || !(p[i] >= 0.0 && p[i] <= 1.0)) {
      throw std::invalid_argument("binomial_lanes: invalid n or p");
    }
    if (n[i] == 0 || p[i] == 0.0) {
      out[i] = 0;
      continue;
    }
    if (p[i] == 1.0) {
      out[i] = n[i];
      continue;
    }
    const bool flip = p[i] > 0.5;
    const double pp = flip ? 1.0 - p[i] : p[i];
    if (static_cast<double>(n[i]) * pp < 30.0) {
      BinvLane& b = binv_buf[n_binv++];
      const double q = 1.0 - pp;
      b.s = pp / q;
      b.npq = static_cast<double>(n[i] + 1) * b.s;
      b.r0 = std::pow(q, static_cast<double>(n[i]));
      b.xmax = static_cast<double>(
          110 + static_cast<std::int64_t>(
                    10.0 * std::sqrt(static_cast<double>(n[i]) * pp)));
      b.seg = seg[i];
      b.n = n[i];
      b.out_idx = i;
      b.flip = flip;
      if (n_binv == kWD) flush_binv();
    } else {
      BtpeLane& b = btpe_buf[n_btpe++];
      b.seg = seg[i];
      b.n = n[i];
      b.pp = pp;
      b.out_idx = i;
      b.flip = flip;
      if (n_btpe == kWD) flush_btpe();
    }
  }
  flush_binv();
  flush_btpe();
}

// --- Fused scoring kernels ---------------------------------------------------

double score_gaussian_sqrt(const double* t0, const double* sim,
                           std::size_t len, double sigma) {
  const double inv_sigma = 1.0 / sigma;
  const vd zero = vd::broadcast(0.0);
  const vd inv = vd::broadcast(inv_sigma);
  vd acc = zero;
  std::size_t t = 0;
  for (; t + kWD <= len; t += kWD) {
    const vd eta = vsqrt(vmax(vd::load(sim + t), zero));
    const vd z = (vd::load(t0 + t) - eta) * inv;
    acc = acc + z * z;
  }
  double total = hsum(acc);
  for (; t < len; ++t) {
    const double eta = std::sqrt(std::max(sim[t], 0.0));
    const double z = (t0[t] - eta) * inv_sigma;
    total += z * z;
  }
  return -0.5 * total -
         static_cast<double>(len) * (std::log(sigma) + kLogSqrt2Pi);
}

double score_nb_sqrt(const double* t0, const double* sim, std::size_t len,
                     double dispersion_k) {
  const double inv_k = 1.0 / dispersion_k;
  const vd zero = vd::broadcast(0.0);
  const vd half = vd::broadcast(0.5);
  const vd one = vd::broadcast(1.0);
  const vd invk = vd::broadcast(inv_k);
  vd acc = zero;
  vd sdprod = one;
  double log_sd_sum = 0.0;
  std::size_t t = 0;
  int chunks = 0;
  for (; t + kWD <= len; t += kWD) {
    const vd eta = vmax(vd::load(sim + t), zero);
    const vd sd = half * vsqrt(one + eta * invk);
    const vd z = (vd::load(t0 + t) - vsqrt(eta)) / sd;
    acc = acc + z * z;
    sdprod = sdprod * sd;
    // Flush the running sd product before it can overflow on long series.
    if (++chunks == 4) {
      log_sd_sum += std::log(hprod(sdprod));
      sdprod = one;
      chunks = 0;
    }
  }
  double total = hsum(acc);
  double tail_prod = hprod(sdprod);
  for (; t < len; ++t) {
    const double eta = std::max(sim[t], 0.0);
    const double sd = 0.5 * std::sqrt(1.0 + eta * inv_k);
    const double z = (t0[t] - std::sqrt(eta)) / sd;
    total += z * z;
    tail_prod *= sd;
  }
  log_sd_sum += std::log(tail_prod);
  return -0.5 * total - log_sd_sum -
         static_cast<double>(len) * kLogSqrt2Pi;
}

double score_poisson(const double* t0, const double* t1, const double* sim,
                     std::size_t len, double rate_floor) {
  // y*log(rate) stays scalar (libm); the rate clamp and the (rate + lgamma)
  // subtraction stream vectorize.
  const vd floor_v = vd::broadcast(rate_floor);
  vd acc = vd::broadcast(0.0);
  std::size_t t = 0;
  for (; t + kWD <= len; t += kWD) {
    acc = acc + vmax(vd::load(sim + t), floor_v) + vd::load(t1 + t);
  }
  double sub = hsum(acc);
  for (; t < len; ++t) {
    sub += std::max(sim[t], rate_floor) + t1[t];
  }
  double logpart = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    logpart += t0[i] * std::log(std::max(sim[i], rate_floor));
  }
  return logpart - sub;
}

const KernelTable& table() {
  static const KernelTable t{
      EPISMC_SIMD_LEVEL,
      EPISMC_SIMD_ENGINE_BLOCKS,
      &philox_fill,
      &binomial_lanes,
      &score_gaussian_sqrt,
      &score_nb_sqrt,
      &score_poisson,
  };
  return t;
}

}  // namespace EPISMC_SIMD_IMPL_NS
}  // namespace epismc::simd
