// Online streaming calibration: the paper's windowed SMC, fed one day of
// surveillance at a time instead of whole windows.
//
// A long-lived StreamingCalibrator ingests observations as they "arrive"
// (here: replayed from a CSV or a synthetic scenario), advances the
// particle cloud incrementally, and emits each window's posterior the
// moment its last day lands -- with periodic checkpoints so an
// interrupted session resumes bit-exactly on another process:
//
//   streaming_calibration                            # scenario replay
//   streaming_calibration --data=observed.csv        # day,cases[,deaths]
//   streaming_calibration --checkpoint-every=7 \
//       --checkpoint-path=stream.ckpt                # archive weekly
//   streaming_calibration --stop-after=20 --checkpoint-path=stream.ckpt
//   streaming_calibration --resume-from=stream.ckpt  # pick up mid-window
//   streaming_calibration --checkpoint-every=7 \
//       --checkpoint-path=stream.ckpt --resume-latest
//       # crash recovery: restore the newest CRC-passing rotated slot
//       # (stream.ckpt.a / .b), falling back to the older on corruption
//   streaming_calibration --stream-csv=days.csv      # per-day diagnostics
//   streaming_calibration --inference=tempered --ess-threshold=0.6
//       # adaptive: resample the live cloud the day ESS collapses
//   streaming_calibration --supervise --checkpoint-every=4 \
//       --checkpoint-path=stream.ckpt --max-retries=2 --stall-timeout=10
//       # hands-off: the whole feed runs in a forked, heartbeat-monitored
//       # worker; crashes/hangs are killed, backed off and resumed from
//       # the newest CRC-passing slot (--report-csv=PATH dumps attempts)

#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "api/api.hpp"
#include "fault/fault.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "stream/stream_state.hpp"
#include "stream/streaming_calibrator.hpp"

int main(int argc, char** argv) {
  using namespace epismc;

  const io::Args args(argc, argv);
  if (api::handle_list_flag(args, std::cout)) return 0;

  api::CalibrationSession session;
  api::CliDefaults defaults;
  defaults.n_params = 400;
  defaults.replicates = 5;
  defaults.likelihood = "nb-sqrt";
  defaults.likelihood_parameter = 500.0;
  api::configure_session_from_args(session, args, defaults);

  // --checkpoint-path doubles as the automatic-checkpoint destination
  // (with --checkpoint-every) and the --stop-after archive target; only
  // the automatic mode requires both knobs.
  const std::string checkpoint_path = args.get_string("checkpoint-path", "");
  api::StreamOptions options;
  options.checkpoint_every = args.get_int("checkpoint-every", 0);
  if (options.checkpoint_every > 0) options.checkpoint_path = checkpoint_path;
  const std::string resume_from = args.get_string("resume-from", "");
  options.resume_latest = args.get_flag("resume-latest");
  if (options.resume_latest) options.checkpoint_path = checkpoint_path;
  const std::string data_csv = args.get_string("data", "");
  const std::string stream_csv = args.get_string("stream-csv", "");
  const auto stop_after = args.get_int("stop-after", 0);
  const api::SuperviseFlags sup_flags = api::query_supervise_flags(args);
  args.check_unused();

  // --- Supervised mode: the whole feed in a monitored worker. -------------
  if (sup_flags.enabled) {
    if (options.checkpoint_every <= 0 || checkpoint_path.empty()) {
      std::cerr << "--supervise needs --checkpoint-every=N and "
                   "--checkpoint-path=PATH (retries resume from the rotated "
                   "slots)\n";
      return 2;
    }
    if (!data_csv.empty()) {
      std::cerr << "--supervise replays the session's scenario feed; "
                   "--data is not supported here\n";
      return 2;
    }
    options.checkpoint_path = checkpoint_path;
    const supervise::SupervisionReport report =
        session.supervised(options, sup_flags.options);

    io::Table table({"task", "kind", "outcome", "attempts", "wall-s"});
    for (const auto& t : report.tasks) {
      table.add_row_values(t.name, t.kind, supervise::to_string(t.outcome),
                           std::to_string(t.attempts.size()),
                           io::Table::num(t.wall_seconds, 2));
    }
    std::cout << "Supervision report (" << report.n_ok() << "/"
              << report.tasks.size() << " ok, " << report.n_recovered()
              << " recovered):\n";
    table.print(std::cout);
    if (!sup_flags.report_csv.empty()) {
      std::ofstream out(sup_flags.report_csv);
      supervise::write_supervision_csv(out, report);
      std::cout << "Attempt log written to "
                << sup_flags.report_csv.string() << "\n";
    }
    if (!report.all_ok()) {
      std::cout << "FAILED: " << report.n_failed()
                << " task(s) exhausted the retry budget\n";
      return 1;
    }

    // Load the worker's final durable state and show what it computed.
    // Any EPISMC_FAULT matrix aimed at the worker is suppressed here: the
    // parent is bookkeeping, not the system under test.
    fault::ScopedSuppress suppress;
    api::StreamOptions load_options;
    load_options.checkpoint_every = options.checkpoint_every;
    load_options.checkpoint_path = checkpoint_path;
    load_options.resume_latest = true;
    stream::StreamingCalibrator calibrator = session.stream(load_options);
    if (!stream_csv.empty()) {
      std::ofstream out(stream_csv);
      stream::write_stream_day_csv(out, calibrator.day_records());
    }
    std::cout << "\nAll " << calibrator.history().size()
              << " windows assimilated.\n";
    return 0;
  }

  // --- The day feed: a CSV (day,cases[,deaths]) or the scenario truth. ----
  std::vector<stream::DailyObservation> feed;
  if (!data_csv.empty()) {
    const io::CsvTable table = io::read_csv(data_csv);
    const auto days = table.column_as_double("day");
    const auto cases = table.column_as_double("cases");
    std::vector<double> deaths;
    for (const auto& h : table.header) {
      if (h == "deaths") deaths = table.column_as_double("deaths");
    }
    for (std::size_t i = 0; i < days.size(); ++i) {
      stream::DailyObservation obs;
      obs.day = static_cast<std::int32_t>(days[i]);
      obs.cases = cases[i];
      if (!deaths.empty()) obs.deaths = deaths[i];
      feed.push_back(obs);
    }
  } else {
    const core::ObservedData& data = session.data();
    for (std::int32_t d = data.first_day(); d <= data.last_day(); ++d) {
      stream::DailyObservation obs;
      obs.day = d;
      obs.cases = data.cases_at(d);
      if (data.has_deaths()) obs.deaths = data.deaths_at(d);
      feed.push_back(obs);
    }
  }

  stream::StreamingCalibrator calibrator = session.stream(options);
  if (const auto& rec = calibrator.last_recovery()) {
    std::cout << "Recovered from " << rec->path.string() << " (generation "
              << rec->generation << (rec->fell_back ? ", after fallback: " : ": ")
              << rec->note << "): " << calibrator.windows_completed()
              << " window(s) done, next expected day "
              << calibrator.next_expected_day() << "\n";
  }
  if (!resume_from.empty()) {
    calibrator.load(resume_from);
    std::cout << "Resumed from " << resume_from << ": "
              << calibrator.windows_completed() << " window(s) done, next "
              << "expected day " << calibrator.next_expected_day() << "\n";
  }

  const auto& cfg = session.config();
  std::cout << "Streaming SMC calibration: engine="
            << session.simulator().name() << ", " << cfg.n_params << " x "
            << cfg.replicates << " trajectories, inference="
            << core::to_string(cfg.inference) << "\n\n";

  // --- Replay the feed day by day. ----------------------------------------
  io::Table table({"day", "window", "ESS", "resampled", "log-evidence"});
  std::int64_t assimilated = 0;
  for (const stream::DailyObservation& obs : feed) {
    if (calibrator.finished()) break;
    if (obs.day != calibrator.next_expected_day()) continue;  // resume skip
    const stream::StreamDayRecord& rec = calibrator.ingest(obs);
    table.add_row_values(rec.day, rec.window, io::Table::num(rec.ess, 1),
                         rec.resampled ? "yes" : "",
                         io::Table::num(rec.log_marginal, 3));
    ++assimilated;
    if (const std::size_t done = calibrator.windows_completed();
        done > 0 && calibrator.history().back().to_day == rec.day) {
      const auto& w = calibrator.history().back();
      std::cout << "window " << done << " [" << w.from_day << ", "
                << w.to_day << "] closed: theta "
                << io::Table::num(w.summary.theta.mean, 3) << " +- "
                << io::Table::num(w.summary.theta.sd, 3) << ", rho "
                << io::Table::num(w.summary.rho.mean, 3) << ", ESS "
                << io::Table::num(w.diag.ess, 1) << "\n";
    }
    if (stop_after > 0 && assimilated >= stop_after) {
      if (!checkpoint_path.empty()) {
        calibrator.save(checkpoint_path);
        std::cout << "\nStopped after " << assimilated
                  << " day(s); session archived to " << checkpoint_path
                  << " -- resume with --resume-from=" << checkpoint_path
                  << "\n";
      }
      break;
    }
  }
  std::cout << "\nPer-day assimilation:\n";
  table.print(std::cout);

  if (!stream_csv.empty()) {
    std::ofstream out(stream_csv);
    stream::write_stream_day_csv(out, calibrator.day_records());
    std::cout << "\nPer-day diagnostics written to " << stream_csv << "\n";
  }
  if (calibrator.finished()) {
    std::cout << "\nAll " << calibrator.history().size()
              << " windows assimilated.\n";
  }
  return 0;
}
