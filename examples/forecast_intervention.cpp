// Posterior-predictive forecasting and intervention assessment -- the
// decision-support loop the paper's discussion (§VI) motivates: "The
// trajectories produced from this SMC-based analysis can produce samples of
// plausible outcomes that allow direct, probabilistic assessment of
// different intervention strategies."
//
// Calibrates through day 75 via a CalibrationSession, then branches the
// posterior ensemble forward to day 100 under (a) status quo
// (session.forecast: each draw keeps its own theta) and (b) a
// transmission-reducing intervention from day 76
// (session.forecast_with_theta), and reports probabilistic outcome
// summaries for both.

#include <iostream>

#include "api/api.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace epismc;
  const io::Args args(argc, argv);
  if (api::handle_list_flag(args, std::cout)) return 0;

  const auto draws = static_cast<std::size_t>(args.get_int("draws", 400));
  const double intervention_theta = args.get_double("intervention-theta", 0.15);

  // Calibrate all four windows on cases + deaths.
  api::CalibrationSession session;
  api::CliDefaults defaults;
  defaults.likelihood = "nb-sqrt";
  defaults.likelihood_parameter = 500.0;
  defaults.n_params = 800;
  defaults.replicates = 8;
  session.with_deaths(true);  // this example's default; --use-deaths=false overrides
  api::configure_session_from_args(session, args, defaults);
  args.check_unused();

  const core::GroundTruth& truth = session.truth();
  std::cout << "Calibrating days 20-75 ("
            << (session.config().use_deaths ? "cases + deaths" : "cases only")
            << ")...\n";
  session.run_all();
  const auto s = session.posterior_summary(session.results().size() - 1);
  std::cout << "Final-window posterior: theta = " << io::Table::num(s.theta.mean)
            << " +/- " << io::Table::num(s.theta.sd) << " (truth "
            << truth.theta_at(70) << ")\n\n";

  // Forecast day 76-100 under the posterior theta (status quo).
  std::cout << "Forecasting days 76-100 with " << draws
            << " posterior-predictive draws...\n";
  const core::Forecast status_quo = session.forecast(100, draws, /*seed=*/777);

  // Intervention branch: restart every posterior state with reduced theta.
  const core::Forecast intervention =
      session.forecast_with_theta(intervention_theta, 100, draws, /*seed=*/777);

  // Probabilistic outcome comparison.
  const auto summarize = [&](const core::Forecast& fc, const char* label,
                             io::Table& table) {
    std::vector<double> totals;
    std::vector<double> peak;
    std::vector<double> death_totals;
    for (std::size_t i = 0; i < fc.true_cases.size(); ++i) {
      double total = 0.0;
      double mx = 0.0;
      for (const double v : fc.true_cases[i]) {
        total += v;
        mx = std::max(mx, v);
      }
      double dt = 0.0;
      for (const double v : fc.deaths[i]) dt += v;
      totals.push_back(total);
      peak.push_back(mx);
      death_totals.push_back(dt);
    }
    const auto ci = stats::credible_interval(totals, 0.9);
    table.add_row_values(
        label, static_cast<std::int64_t>(stats::quantile(totals, 0.5)),
        "[" + io::Table::num(ci.lo, 0) + ", " + io::Table::num(ci.hi, 0) + "]",
        static_cast<std::int64_t>(stats::quantile(peak, 0.5)),
        static_cast<std::int64_t>(stats::quantile(death_totals, 0.5)));
    return stats::quantile(totals, 0.5);
  };

  io::Table table({"scenario", "median cases d76-100", "90% CI",
                   "median peak cases/day", "median deaths d76-100"});
  const double sq = summarize(status_quo, "status quo", table);
  const double iv = summarize(
      intervention,
      ("intervention (theta=" + io::Table::num(intervention_theta, 2) + ")")
          .c_str(),
      table);
  table.print(std::cout);
  std::cout << "\nMedian intervention effect: "
            << io::Table::num(100.0 * (1.0 - iv / sq), 1)
            << "% fewer infections over days 76-100.\n";

  // Forecast skill against the realized truth (status quo arm).
  std::vector<double> day90_ensemble;
  for (const auto& row : status_quo.true_cases) {
    day90_ensemble.push_back(row[90 - 76]);
  }
  const double actual_day90 = truth.true_cases[89];
  std::cout << "Forecast check at day 90 (status quo): CRPS = "
            << io::Table::num(
                   stats::crps_ensemble(day90_ensemble, actual_day90), 1)
            << ", actual = " << actual_day90 << ", forecast median = "
            << io::Table::num(stats::quantile(day90_ensemble, 0.5), 0)
            << "\n";
  return 0;
}
