// Operator tool for durable checkpoint archives: print the seal and
// payload header of both rotation slots (or a single archive file)
// without loading the session itself.
//
//   checkpoint_inspect --path=stream.ckpt        # slots stream.ckpt.a/.b
//   checkpoint_inspect --path=run.bin --single   # one non-rotated archive
//
// For every file this reports existence, footer generation stamp, CRC32C
// verification, format version, payload size and the leading archive tag,
// plus which slot resume_latest would pick -- the same io::inspect_archive
// probe StreamingCalibrator uses for recovery. If a supervisor left its
// report next to the slots (BASE.supervision), the per-task attempt
// history is printed too. Exits 1 when no inspected archive is usable.

#include <filesystem>
#include <iostream>
#include <string>

#include "io/args.hpp"
#include "io/checkpoint_rotation.hpp"
#include "io/table.hpp"
#include "supervise/report.hpp"

namespace {

void add_row(epismc::io::Table& table, const std::string& label,
             const epismc::io::SlotInfo& info) {
  if (!info.exists) {
    table.add_row_values(label, info.path.string(), "-", "-", "-", "-",
                         "missing");
    return;
  }
  table.add_row_values(
      label, info.path.string(), info.usable ? "ok" : "FAIL",
      std::to_string(info.generation),
      info.usable ? std::to_string(info.version) : "-",
      info.usable ? std::to_string(info.payload_bytes) : "-",
      info.usable ? (info.tag.empty() ? "(untagged)" : info.tag)
                  : info.error);
}

// A supervisor saves its report as BASE.supervision next to the slots;
// surface the per-task attempt history when one is there. A torn or
// foreign file is reported, never fatal -- this is a read-only probe.
void maybe_print_supervision(const std::string& base) {
  namespace fs = std::filesystem;
  using namespace epismc;
  const fs::path report_path = base + ".supervision";
  std::error_code ec;
  if (!fs::exists(report_path, ec)) return;
  std::cout << "\nSupervision report (" << report_path.string() << "):\n";
  try {
    const auto report = supervise::SupervisionReport::load(report_path);
    io::Table table({"task", "kind", "attempt", "outcome", "exit", "signal",
                     "resumed", "wall-s"});
    for (const auto& t : report.tasks) {
      for (const auto& a : t.attempts) {
        table.add_row_values(
            a.attempt == 0 ? t.name : "", a.attempt == 0 ? t.kind : "",
            std::to_string(a.attempt), supervise::to_string(a.outcome),
            a.exit_code < 0 ? "-" : std::to_string(a.exit_code),
            a.signal == 0 ? "-" : std::to_string(a.signal),
            a.resumed ? "gen " + std::to_string(a.recovered_generation) : "",
            io::Table::num(a.wall_seconds, 2));
      }
    }
    table.print(std::cout);
    std::cout << report.n_ok() << "/" << report.tasks.size() << " task(s) ok, "
              << report.n_recovered() << " recovered after retries\n";
  } catch (const std::exception& e) {
    std::cout << "  unreadable: " << e.what() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epismc;

  const io::Args args(argc, argv);
  const std::string path = args.get_string("path", "");
  const bool single = args.get_flag("single");
  args.check_unused();
  if (path.empty()) {
    std::cerr << "usage: checkpoint_inspect --path=BASE [--single]\n"
                 "  BASE is a rotation base (inspects BASE.a and BASE.b)\n"
                 "  --single inspects BASE itself as one sealed archive\n";
    return 2;
  }

  io::Table table(
      {"slot", "file", "seal", "generation", "version", "payload-bytes",
       "tag / error"});

  if (single) {
    const io::SlotInfo info = io::inspect_archive(path);
    add_row(table, "-", info);
    table.print(std::cout);
    maybe_print_supervision(path);
    return info.usable ? 0 : 1;
  }

  const io::CheckpointRotation rotation{path};
  const auto slots = rotation.inspect();
  add_row(table, "a", slots[0]);
  add_row(table, "b", slots[1]);
  table.print(std::cout);

  // What resume_latest would do with these slots.
  const auto ordered = rotation.by_recency();
  if (ordered[0].usable) {
    std::cout << "\nrecovery would restore " << ordered[0].path.string()
              << " (generation " << ordered[0].generation << ")\n";
  } else if (ordered[1].usable) {
    std::cout << "\nrecovery would FALL BACK to " << ordered[1].path.string()
              << " (generation " << ordered[1].generation
              << "); newest slot is unusable: " << ordered[0].error << "\n";
  } else if (ordered[0].exists || ordered[1].exists) {
    std::cout << "\nno usable slot -- recovery would fail\n";
    maybe_print_supervision(path);
    return 1;
  } else {
    std::cout << "\nno slots on disk -- a session here would start fresh\n";
  }
  maybe_print_supervision(path);
  return 0;
}
