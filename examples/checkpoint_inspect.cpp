// Operator tool for durable checkpoint archives: print the seal and
// payload header of both rotation slots (or a single archive file)
// without loading the session itself.
//
//   checkpoint_inspect --path=stream.ckpt        # slots stream.ckpt.a/.b
//   checkpoint_inspect --path=run.bin --single   # one non-rotated archive
//
// For every file this reports existence, footer generation stamp, CRC32C
// verification, format version, payload size and the leading archive tag,
// plus which slot resume_latest would pick -- the same io::inspect_archive
// probe StreamingCalibrator uses for recovery.

#include <iostream>
#include <string>

#include "io/args.hpp"
#include "io/checkpoint_rotation.hpp"
#include "io/table.hpp"

namespace {

void add_row(epismc::io::Table& table, const std::string& label,
             const epismc::io::SlotInfo& info) {
  if (!info.exists) {
    table.add_row_values(label, info.path.string(), "-", "-", "-", "-",
                         "missing");
    return;
  }
  table.add_row_values(
      label, info.path.string(), info.usable ? "ok" : "FAIL",
      std::to_string(info.generation),
      info.usable ? std::to_string(info.version) : "-",
      info.usable ? std::to_string(info.payload_bytes) : "-",
      info.usable ? (info.tag.empty() ? "(untagged)" : info.tag)
                  : info.error);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epismc;

  const io::Args args(argc, argv);
  const std::string path = args.get_string("path", "");
  const bool single = args.get_flag("single");
  args.check_unused();
  if (path.empty()) {
    std::cerr << "usage: checkpoint_inspect --path=BASE [--single]\n"
                 "  BASE is a rotation base (inspects BASE.a and BASE.b)\n"
                 "  --single inspects BASE itself as one sealed archive\n";
    return 2;
  }

  io::Table table(
      {"slot", "file", "seal", "generation", "version", "payload-bytes",
       "tag / error"});

  if (single) {
    add_row(table, "-", io::inspect_archive(path));
    table.print(std::cout);
    return 0;
  }

  const io::CheckpointRotation rotation{path};
  const auto slots = rotation.inspect();
  add_row(table, "a", slots[0]);
  add_row(table, "b", slots[1]);
  table.print(std::cout);

  // What resume_latest would do with these slots.
  const auto ordered = rotation.by_recency();
  if (ordered[0].usable) {
    std::cout << "\nrecovery would restore " << ordered[0].path.string()
              << " (generation " << ordered[0].generation << ")\n";
  } else if (ordered[1].usable) {
    std::cout << "\nrecovery would FALL BACK to " << ordered[1].path.string()
              << " (generation " << ordered[1].generation
              << "); newest slot is unusable: " << ordered[0].error << "\n";
  } else if (ordered[0].exists || ordered[1].exists) {
    std::cout << "\nno usable slot -- recovery would fail\n";
    return 1;
  } else {
    std::cout << "\nno slots on disk -- a session here would start fresh\n";
  }
  return 0;
}
