// Calibrating an agent-based model with the SMC core (paper §VI), driven
// entirely through the epismc::api facade: the "abm-truth" scenario preset
// generates the individual-based ground truth and the "abm" registry entry
// supplies the matching simulator backend -- the same two strings any other
// backend uses.
//
// Individual-based models carry a "coordinate system" that maps to reality:
// households, individuals, detected/undetected status. After calibration
// the checkpointed posterior agent states answer an individual-level
// question no compartmental model can: how much of the remaining
// transmission risk sits inside households with an active undetected
// infection?

#include <iostream>

#include "abm/agent_model.hpp"
#include "api/api.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace epismc;
  const io::Args args(argc, argv);
  if (api::handle_list_flag(args, std::cout)) return 0;

  api::CalibrationSession session;
  api::CliDefaults defaults;
  defaults.simulator = "abm";
  defaults.scenario = "abm-truth";
  defaults.n_params = 200;
  defaults.replicates = 5;
  api::configure_session_from_args(session, args, defaults);
  session.with_windows({{20, 33}});
  args.check_unused();

  // --- Ground truth from the ABM itself (the "abm-truth" preset). ----------
  const core::GroundTruth& truth = session.truth();
  const auto& cfg = session.config();
  std::cout << "ABM ground truth: theta* = " << truth.theta_at(20)
            << ", reporting rho* = " << truth.rho_at(20) << "\n";

  // --- Calibrate with the unchanged SMC core. ------------------------------
  std::cout << "Calibrating days 20-33 with "
            << cfg.n_params * cfg.replicates
            << " agent-based trajectories...\n";
  const core::WindowResult& window = session.run_next_window();
  const auto posterior = session.posterior_summary(0);

  io::Table table({"parameter", "truth", "posterior mean", "sd"});
  table.add_row_values("theta", truth.theta_at(20), posterior.theta.mean,
                       posterior.theta.sd);
  table.add_row_values("rho", truth.rho_at(20), posterior.rho.mean,
                       posterior.rho.sd);
  table.print(std::cout);
  std::cout << "ESS " << io::Table::num(window.diag.ess, 1) << ", "
            << window.diag.unique_resampled << " unique posterior states\n\n";

  // --- Individual-level posterior query. -----------------------------------
  // Restore a posterior agent state and inspect household-level risk:
  // fraction of susceptibles living with an undetected infectious agent.
  // The checkpoint bytes round-trip through the generic epi::Checkpoint, so
  // the ABM-specific restore is the only agent-aware part of this program
  // -- and the only one that requires the agent-based backend.
  if (session.simulator().name() != "agent-based") {
    std::cout << "Simulator '" << session.simulator().name()
              << "' has no agent-level state; skipping the household-risk "
                 "query (use --simulator=abm).\n";
    return 0;
  }
  const std::uint32_t draw = window.resampled.front();
  const abm::AgentBasedModel state =
      abm::AgentBasedModel::restore(window.state_checkpoint(draw));
  using C = epi::Compartment;
  const std::int64_t susceptible = state.count(C::kS);
  const std::int64_t undetected_infectious =
      state.count(C::kAu) + state.count(C::kPu) + state.count(C::kSmU) +
      state.count(C::kSsU);
  const std::int64_t exposed_households = undetected_infectious;  // <= one per household bound
  std::cout << "Posterior day-" << state.day() << " agent state: "
            << state.household_count() << " households, " << susceptible
            << " susceptible agents, " << undetected_infectious
            << " undetected infectious agents spread over at most "
            << exposed_households << " households ("
            << io::Table::num(100.0 * static_cast<double>(undetected_infectious) /
                                  static_cast<double>(state.population()), 2)
            << "% of the population is an undetected source).\n";
  return 0;
}
