// Calibrating an agent-based model with the SMC core (paper §VI).
//
// Individual-based models carry a "coordinate system" that maps to reality:
// households, individuals, detected/undetected status. This example
// calibrates the ABM's transmission rate from biased case reports and then
// uses the calibrated, checkpointed agent states to answer an
// individual-level question no compartmental model can: how much of the
// remaining transmission risk sits inside households with an active
// undetected infection?

#include <iostream>

#include "abm/abm_simulator.hpp"
#include "core/posterior.hpp"
#include "core/sequential_calibrator.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace epismc;
  const io::Args args(argc, argv);
  const auto population = args.get_int("population", 50000);
  const auto n_params = static_cast<std::size_t>(args.get_int("n-params", 200));
  args.check_unused();

  // --- Ground truth from the ABM itself. ----------------------------------
  abm::AbmSimulatorConfig cfg;
  cfg.abm.disease.population = population;
  cfg.initial_exposed = 150;
  const double theta_true = 0.34;
  const double rho_true = 0.65;

  abm::AgentBasedModel truth(cfg.abm, epi::PiecewiseSchedule(theta_true), 99);
  truth.seed_exposed(cfg.initial_exposed);
  truth.run_until_day(40);
  auto thin_eng = rng::PhiloxEngine(5, 0);
  std::vector<double> observed;
  for (const double v : truth.trajectory().new_infections(1, 40)) {
    observed.push_back(static_cast<double>(
        rng::binomial(thin_eng, static_cast<std::int64_t>(v), rho_true)));
  }
  std::cout << "ABM ground truth: " << population << " agents in "
            << truth.household_count() << " households, theta* = "
            << theta_true << ", reporting rho* = " << rho_true << "\n";

  // --- Calibrate with the unchanged SMC core. ------------------------------
  const abm::AbmSimulator simulator(cfg);
  core::CalibrationConfig config;
  config.windows = {{20, 33}};
  config.n_params = n_params;
  config.replicates = 5;
  config.resample_size = 2 * n_params;
  core::SequentialCalibrator calibrator(
      simulator, core::ObservedData(1, observed, {}), config);
  std::cout << "Calibrating days 20-33 with " << n_params * 5
            << " agent-based trajectories...\n";
  const core::WindowResult& window = calibrator.run_next_window();
  const auto posterior = core::summarize_window(window);

  io::Table table({"parameter", "truth", "posterior mean", "sd"});
  table.add_row_values("theta", theta_true, posterior.theta.mean,
                       posterior.theta.sd);
  table.add_row_values("rho", rho_true, posterior.rho.mean, posterior.rho.sd);
  table.print(std::cout);
  std::cout << "ESS " << io::Table::num(window.diag.ess, 1) << ", "
            << window.diag.unique_resampled << " unique posterior states\n\n";

  // --- Individual-level posterior query. -----------------------------------
  // Restore a posterior agent state and inspect household-level risk:
  // fraction of susceptibles living with an undetected infectious agent.
  const std::uint32_t draw = window.resampled.front();
  const abm::AgentBasedModel state = abm::AgentBasedModel::restore(
      window.states[window.sim_to_state[draw]]);
  std::int64_t susceptible = 0;
  std::int64_t exposed_households = 0;
  // Count via public census + a fresh branched run is possible, but the
  // checkpoint itself carries every agent; here we use aggregate censuses.
  using C = epi::Compartment;
  susceptible = state.count(C::kS);
  const std::int64_t undetected_infectious =
      state.count(C::kAu) + state.count(C::kPu) + state.count(C::kSmU) +
      state.count(C::kSsU);
  exposed_households = undetected_infectious;  // <= one per household bound
  std::cout << "Posterior day-" << state.day() << " agent state: "
            << susceptible << " susceptible agents, "
            << undetected_infectious
            << " undetected infectious agents spread over at most "
            << exposed_households << " households ("
            << io::Table::num(100.0 * static_cast<double>(undetected_infectious) /
                                  static_cast<double>(population), 2)
            << "% of the population is an undetected source).\n";
  return 0;
}
