// Sequential multi-window calibration -- the paper's full workflow, as a
// configurable application.
//
// Simulates a ground-truth epidemic with time-varying transmission theta(t)
// and reporting bias rho(t), then calibrates the model window by window
// against the reported data, carrying each window's posterior (parameters
// *and* checkpointed simulator states) into the next window's prior.
//
// Usage:
//   sequential_calibration                         # cases only, 4 windows
//   sequential_calibration --use-deaths            # + death stream (eq. 4)
//   sequential_calibration --n-params=25000 --replicates=20  # paper scale
//   sequential_calibration --engine=chain-binomial # baseline simulator

#include <iostream>
#include <memory>

#include "core/posterior.hpp"
#include "core/scenario.hpp"
#include "core/sequential_calibrator.hpp"
#include "core/simulator.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace epismc;

  const io::Args args(argc, argv);
  core::CalibrationConfig config;
  config.n_params = static_cast<std::size_t>(args.get_int("n-params", 1000));
  config.replicates =
      static_cast<std::size_t>(args.get_int("replicates", 10));
  config.resample_size =
      static_cast<std::size_t>(args.get_int("resample", 2000));
  config.use_deaths = args.get_flag("use-deaths");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20240306));
  config.likelihood_name = args.get_string("likelihood", "nb-sqrt");
  config.likelihood_parameter = args.get_double("likelihood-param", 500.0);
  const std::string engine = args.get_string("engine", "seir-event");
  args.check_unused();

  // Ground truth per paper §V-A.
  const core::ScenarioConfig scenario;
  const core::GroundTruth truth = core::simulate_ground_truth(scenario);

  const core::EpiSimulatorConfig sim_config{scenario.params, 0.3,
                                            scenario.initial_exposed};
  std::unique_ptr<core::Simulator> simulator;
  if (engine == "seir-event") {
    simulator = std::make_unique<core::SeirSimulator>(sim_config);
  } else if (engine == "chain-binomial") {
    simulator = std::make_unique<core::ChainBinomialSimulator>(sim_config);
  } else {
    std::cerr << "unknown --engine=" << engine
              << " (use seir-event or chain-binomial)\n";
    return 1;
  }

  std::cout << "Sequential SMC calibration: engine=" << simulator->name()
            << ", data=" << (config.use_deaths ? "cases+deaths" : "cases")
            << ", " << config.n_params << " x " << config.replicates
            << " trajectories per window\n\n";

  core::SequentialCalibrator calibrator(*simulator, truth.observed(), config);
  io::Table table({"window", "theta truth", "theta posterior", "rho truth",
                   "rho posterior", "ESS", "log-evidence"});
  while (!calibrator.finished()) {
    const core::WindowResult& w = calibrator.run_next_window();
    const auto s = core::summarize_window(w);
    table.add_row_values(
        "days " + std::to_string(w.from_day) + "-" + std::to_string(w.to_day),
        truth.theta_at(w.from_day),
        io::Table::num(s.theta.mean) + " +/- " + io::Table::num(s.theta.sd),
        truth.rho_at(w.from_day),
        io::Table::num(s.rho.mean) + " +/- " + io::Table::num(s.rho.sd),
        io::Table::num(w.diag.ess, 1), io::Table::num(w.diag.log_marginal, 1));
    std::cout << "calibrated days " << w.from_day << "-" << w.to_day
              << " (ESS " << io::Table::num(w.diag.ess, 1) << ", "
              << w.diag.unique_resampled << " unique ancestors, "
              << io::Table::num(w.diag.propagate_seconds, 2) << "s)\n";
  }

  std::cout << "\n";
  table.print(std::cout);

  // Posterior-median reconstruction of the unobserved true case curve.
  std::cout << "\nPosterior median of *true* (unobserved) cases per window "
               "vs actual truth:\n";
  io::Table recon({"window", "posterior median true cases (window total)",
                   "actual (window total)", "ratio"});
  for (const auto& w : calibrator.results()) {
    const auto mid = w.posterior_quantile(
        core::WindowResult::Series::kTrueCases, 0.5);
    double post_total = 0.0;
    for (const double v : mid) post_total += v;
    double actual_total = 0.0;
    for (std::int32_t d = w.from_day; d <= w.to_day; ++d) {
      actual_total += truth.true_cases[static_cast<std::size_t>(d - 1)];
    }
    recon.add_row_values(
        "days " + std::to_string(w.from_day) + "-" + std::to_string(w.to_day),
        static_cast<std::int64_t>(post_total),
        static_cast<std::int64_t>(actual_total),
        io::Table::num(post_total / actual_total, 2));
  }
  recon.print(std::cout);
  return 0;
}
