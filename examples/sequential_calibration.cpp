// Sequential multi-window calibration -- the paper's full workflow, as a
// configurable application on top of the epismc::api facade.
//
// Simulates a ground-truth epidemic with time-varying transmission theta(t)
// and reporting bias rho(t), then calibrates the model window by window
// against the reported data, carrying each window's posterior (parameters
// *and* checkpointed simulator states) into the next window's prior.
//
// Every component is selected by registry name:
//   sequential_calibration                          # defaults, 4 windows
//   sequential_calibration --use-deaths             # + death stream (eq. 4)
//   sequential_calibration --n-params=25000 --replicates=20  # paper scale
//   sequential_calibration --simulator=chain-binomial        # baseline engine
//   sequential_calibration --scenario=sharp-jump --jitter=wide
//   sequential_calibration --inference=tempered --ess-threshold=0.5
//       # adaptive: windows whose ESS collapses below 50% of n_sims
//       # re-score through a bisected likelihood^phi temper ladder
//   sequential_calibration --inference=tempered+rejuvenate \
//       --rejuvenation-moves=2 --smc-csv=smc_diagnostics.csv
//       # + independence-MH rejuvenation of the resampled duplicates,
//       # with the per-rung ESS/phi/acceptance trace dumped as CSV
//   sequential_calibration --threads=8 --list

#include <fstream>
#include <iostream>

#include "api/api.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace epismc;

  const io::Args args(argc, argv);
  if (api::handle_list_flag(args, std::cout)) return 0;

  api::CalibrationSession session;
  api::CliDefaults defaults;
  defaults.likelihood = "nb-sqrt";
  defaults.likelihood_parameter = 500.0;
  api::configure_session_from_args(session, args, defaults);
  const std::string smc_csv = args.get_string("smc-csv", "");
  args.check_unused();

  const core::GroundTruth& truth = session.truth();
  const auto& cfg = session.config();
  std::cout << "Sequential SMC calibration: engine="
            << session.simulator().name()
            << ", data=" << (cfg.use_deaths ? "cases+deaths" : "cases")
            << ", " << cfg.n_params << " x " << cfg.replicates
            << " trajectories per window, inference="
            << core::to_string(cfg.inference);
  if (cfg.inference != core::InferenceStrategy::kSingleStage) {
    std::cout << " (ESS threshold " << cfg.ess_threshold << ")";
  }
  std::cout << "\n\n";

  io::Table table({"window", "theta truth", "theta posterior", "rho truth",
                   "rho posterior", "ESS", "log-evidence"});
  while (!session.finished()) {
    const core::WindowResult& w = session.run_next_window();
    const auto s = core::summarize_window(w);
    table.add_row_values(
        "days " + std::to_string(w.from_day) + "-" + std::to_string(w.to_day),
        truth.theta_at(w.from_day),
        io::Table::num(s.theta.mean) + " +/- " + io::Table::num(s.theta.sd),
        truth.rho_at(w.from_day),
        io::Table::num(s.rho.mean) + " +/- " + io::Table::num(s.rho.sd),
        io::Table::num(w.diag.ess, 1), io::Table::num(w.diag.log_marginal, 1));
    std::cout << "calibrated days " << w.from_day << "-" << w.to_day
              << " (ESS " << io::Table::num(w.diag.ess, 1) << ", "
              << w.diag.unique_resampled << " unique ancestors, "
              << io::Table::num(w.diag.propagate_seconds, 2) << "s)";
    if (w.smc.tempered()) {
      std::cout << " [tempered: " << w.smc.stages.size() << " rungs, ESS "
                << io::Table::num(w.smc.initial_ess, 1) << " -> "
                << io::Table::num(w.smc.final_ess, 1);
      if (w.smc.acceptance_rate() >= 0.0) {
        std::cout << ", move acceptance "
                  << io::Table::num(w.smc.acceptance_rate(), 3);
      }
      std::cout << "]";
    }
    std::cout << "\n";
  }

  if (!smc_csv.empty()) {
    std::ofstream csv(smc_csv);
    core::write_smc_diagnostics_csv(csv, session.results());
    if (!csv) {
      std::cerr << "\nFailed to write SMC diagnostics to " << smc_csv << "\n";
      return 1;
    }
    std::cout << "\nWrote SMC diagnostics to " << smc_csv << "\n";
  }

  std::cout << "\n";
  table.print(std::cout);

  // Posterior-median reconstruction of the unobserved true case curve.
  std::cout << "\nPosterior median of *true* (unobserved) cases per window "
               "vs actual truth:\n";
  io::Table recon({"window", "posterior median true cases (window total)",
                   "actual (window total)", "ratio"});
  for (const auto& w : session.results()) {
    const auto mid = w.posterior_quantile(
        core::WindowResult::Series::kTrueCases, 0.5);
    double post_total = 0.0;
    for (const double v : mid) post_total += v;
    double actual_total = 0.0;
    for (std::int32_t d = w.from_day; d <= w.to_day; ++d) {
      actual_total += truth.true_cases[static_cast<std::size_t>(d - 1)];
    }
    recon.add_row_values(
        "days " + std::to_string(w.from_day) + "-" + std::to_string(w.to_day),
        static_cast<std::int64_t>(post_total),
        static_cast<std::int64_t>(actual_total),
        io::Table::num(post_total / actual_total, 2));
  }
  recon.print(std::cout);
  return 0;
}
