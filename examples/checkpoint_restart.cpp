// Checkpoint/restart walkthrough (paper §III-B).
//
// Demonstrates the operational pattern the paper builds its framework on:
//   1. run an epidemic to day 40 and serialize the full simulator state to
//      a file (compartment census, future transition events, RNG position),
//   2. restore it and confirm the continuation is *bit-identical* to an
//      uninterrupted run,
//   3. branch three counterfactual futures from the same state by
//      overriding the restart parameters (seed, transmission rate),
//   4. measure the wall-clock saving of restarting at day 40 vs replaying
//      from day 0,
//   5. lift the same pattern one level up: interrupt a *streaming
//      calibration session* mid-window, archive it, resume on a fresh
//      calibrator, and confirm the final posterior summary is
//      byte-identical to the uninterrupted session's.

#include <bit>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <numeric>

#include "api/api.hpp"
#include "epi/seir_model.hpp"
#include "io/table.hpp"
#include "parallel/parallel.hpp"
#include "stream/streaming_calibrator.hpp"

namespace {

// Byte-level equality for doubles: resumed-vs-uninterrupted must agree to
// the last bit, not within a tolerance.
bool biteq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Feed [from, to] of the observed record into a streaming calibrator.
void feed(epismc::stream::StreamingCalibrator& cal,
          const epismc::core::ObservedData& data, std::int32_t from,
          std::int32_t to) {
  for (std::int32_t d = from; d <= to; ++d) {
    epismc::stream::DailyObservation obs;
    obs.day = d;
    obs.cases = data.cases_at(d);
    if (data.has_deaths()) obs.deaths = data.deaths_at(d);
    cal.ingest(obs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epismc;
  const io::Args args(argc, argv);
  if (api::handle_list_flag(args, std::cout)) return 0;
  const auto replays = static_cast<std::size_t>(args.get_int("replays", 500));
  api::apply_threads_flag(args);

  // This example works below the calibration facade -- it exercises the
  // epi-level checkpoint contract the whole SMC machinery is built on --
  // but its disease parameters still come from the scenario registry so
  // the demo stays in sync with the presets everything else runs.
  const api::ScenarioPreset preset =
      api::scenarios().create(args.get_string("scenario", "paper-baseline"));
  args.check_unused();
  const epi::DiseaseParameters params = preset.scenario.params;
  const epi::PiecewiseSchedule theta(0.3);

  // --- 1. Run to day 40 and checkpoint to disk. ---------------------------
  epi::SeirModel model(params, theta, /*seed=*/2024);
  model.seed_exposed(400);
  model.run_until_day(40);
  const epi::Checkpoint ckpt = model.make_checkpoint();
  const auto path = std::filesystem::temp_directory_path() / "epidemic_d40.ckpt";
  ckpt.save(path);
  std::cout << "Day-40 state checkpointed to " << path << " ("
            << ckpt.bytes.size() << " bytes, " << model.pending_events()
            << " scheduled future transitions)\n";

  // --- 2. Bit-identical continuation. --------------------------------------
  epi::SeirModel continued = epi::SeirModel::restore(epi::Checkpoint::load(path));
  continued.run_until_day(80);
  model.run_until_day(80);
  const bool identical = continued.census() == model.census();
  std::cout << "Resumed run equals uninterrupted run at day 80: "
            << (identical ? "yes (bit-identical)" : "NO -- BUG") << "\n\n";

  // --- 3. Branch counterfactual futures. -----------------------------------
  io::Table branches({"branch", "theta after day 40",
                      "cases days 41-80 (total)", "deaths by day 80"});
  const epi::Checkpoint base = epi::Checkpoint::load(path);
  const auto run_branch = [&](const char* label, double new_theta,
                              std::uint64_t seed) {
    epi::RestartOverrides ovr;
    ovr.seed = seed;
    ovr.transmission_rate = new_theta;
    epi::SeirModel branch = epi::SeirModel::restore(base, ovr);
    branch.run_until_day(80);
    const auto cases = branch.trajectory().new_infections(41, 80);
    branches.add_row_values(
        label, new_theta,
        static_cast<std::int64_t>(
            std::accumulate(cases.begin(), cases.end(), 0.0)),
        branch.count(epi::Compartment::kDu) +
            branch.count(epi::Compartment::kDd));
  };
  run_branch("status quo", 0.30, 1001);
  run_branch("lockdown (theta 0.12)", 0.12, 1001);
  run_branch("new variant (theta 0.45)", 0.45, 1001);
  branches.print(std::cout);

  // --- 4. The compute saving. ----------------------------------------------
  std::cout << "\nTiming " << replays
            << " branched futures (days 41-80), checkpoint restart vs "
               "replay-from-day-0:\n";
  parallel::Timer restart_timer;
  parallel::parallel_for(replays, [&](std::size_t i) {
    epi::RestartOverrides ovr;
    ovr.seed = 5000 + i;
    epi::SeirModel m = epi::SeirModel::restore(base, ovr);
    m.run_until_day(80);
  });
  const double restart_s = restart_timer.seconds();

  parallel::Timer scratch_timer;
  parallel::parallel_for(replays, [&](std::size_t i) {
    epi::SeirModel m(params, theta, 5000 + i);
    m.seed_exposed(400);
    m.run_until_day(80);
  });
  const double scratch_s = scratch_timer.seconds();

  std::cout << "  checkpoint restart: " << io::Table::num(restart_s, 3)
            << "s\n  from day 0:         " << io::Table::num(scratch_s, 3)
            << "s\n  speedup:            "
            << io::Table::num(scratch_s / restart_s, 2)
            << "x\n  (the naive days-ratio bound is 2.0x; actual savings are "
               "smaller because\n   per-day cost grows with the epidemic -- "
               "the skipped early days are the cheap\n   ones. Savings grow "
               "with the restart day; see bench/tab2_checkpoint_savings.)\n";
  std::filesystem::remove(path);

  // --- 5. Interrupt and resume a streaming calibration session. -----------
  // The simulator checkpoint above restores one trajectory; a StreamState
  // archive restores a whole calibration session -- particle cloud, RNG
  // positions, likelihood accumulators, window cursor -- so a stream
  // killed mid-window continues bit-exactly on another process.
  std::cout << "\nStreaming calibration, interrupted at day 40 (mid-window) "
               "vs uninterrupted:\n";
  const auto make_stream_session = [&preset] {
    api::CalibrationSession session;
    session.with_simulator("seir-event", preset.simulator_spec())
        .with_scenario(preset)
        .with_windows({{20, 33}, {34, 47}})
        .with_budget(200, 4, 400)
        .with_seed(2024);
    return session;
  };
  const core::ObservedData data = make_stream_session().data();

  auto ref_session = make_stream_session();
  stream::StreamingCalibrator reference = ref_session.stream();
  feed(reference, data, 20, 47);

  const auto stream_path =
      std::filesystem::temp_directory_path() / "calibration_d40.stream";
  auto first_session = make_stream_session();
  {
    stream::StreamingCalibrator interrupted = first_session.stream();
    feed(interrupted, data, 20, 40);  // day 40: window 2 is mid-flight
    interrupted.save(stream_path);
  }  // "process killed" -- the calibrator is gone, only the archive remains

  auto resumed_session = make_stream_session();
  stream::StreamingCalibrator resumed = resumed_session.stream();
  resumed.load(stream_path);
  feed(resumed, data, resumed.next_expected_day(), 47);

  bool posterior_identical = reference.finished() && resumed.finished() &&
                             reference.history().size() ==
                                 resumed.history().size();
  for (std::size_t w = 0; posterior_identical && w < reference.history().size();
       ++w) {
    const auto& a = reference.history()[w].summary;
    const auto& b = resumed.history()[w].summary;
    posterior_identical = biteq(a.theta.mean, b.theta.mean) &&
                          biteq(a.theta.sd, b.theta.sd) &&
                          biteq(a.theta.median, b.theta.median) &&
                          biteq(a.rho.mean, b.rho.mean) &&
                          biteq(a.rho.ci90.lo, b.rho.ci90.lo) &&
                          biteq(a.rho.ci90.hi, b.rho.ci90.hi) &&
                          biteq(reference.history()[w].diag.log_marginal,
                                resumed.history()[w].diag.log_marginal);
  }
  for (std::size_t w = 0; w < resumed.history().size(); ++w) {
    const auto& s = resumed.history()[w].summary;
    std::cout << "  window [" << s.from_day << ", " << s.to_day
              << "]: theta " << io::Table::num(s.theta.mean, 4) << ", rho "
              << io::Table::num(s.rho.mean, 4) << "\n";
  }
  std::cout << "  resumed posterior equals uninterrupted posterior: "
            << (posterior_identical ? "yes (byte-identical)" : "NO -- BUG")
            << "\n";
  std::filesystem::remove(stream_path);
  return (identical && posterior_identical) ? 0 : 1;
}
