// Quickstart: the smallest end-to-end use of the epismc public API.
//
//   1. Pick a ground-truth scenario and a simulator backend by registry
//      name (the §V-A synthetic epidemic and the event-driven SEIR engine
//      by default).
//   2. Calibrate the first time window against the *reported* cases with
//      single-window importance sampling (paper Algorithm 1).
//   3. Print the recovered posterior for (theta, rho) next to the truth.
//
// Build & run:  ./build/examples/quickstart [--simulator=seir-event]
//               [--scenario=paper-baseline] [--likelihood=gaussian-sqrt]
//               [--n-params=N] [--replicates=R] [--threads=T] [--list]

#include <algorithm>
#include <iostream>

#include "api/api.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace epismc;

  const io::Args args(argc, argv);
  if (api::handle_list_flag(args, std::cout)) return 0;

  api::CalibrationSession session;
  api::CliDefaults defaults;
  defaults.n_params = 400;
  defaults.replicates = 5;
  api::configure_session_from_args(session, args, defaults);
  // Quickstart only reads days 1-40: trim the truth horizon so the
  // smallest example never simulates the preset's unused later days.
  api::ScenarioPreset preset =
      api::scenarios().create(args.get_string("scenario", defaults.scenario));
  preset.scenario.total_days =
      std::min<std::int32_t>(preset.scenario.total_days, 40);
  session.with_scenario(std::move(preset));
  session.with_windows({{20, 33}});
  args.check_unused();

  // --- 1. Ground truth -----------------------------------------------------
  const core::GroundTruth& truth = session.truth();
  std::cout << "Synthetic epidemic (simulator " << session.simulator().name()
            << ", theta*=" << truth.theta_at(20)
            << ", rho*=" << truth.rho_at(20) << "):\n";
  io::Table head({"day", "true cases", "reported cases", "deaths",
                  "hospital census"});
  for (std::int32_t day = 5; day <= 40; day += 5) {
    const auto& rec = truth.trajectory.at_day(day);
    head.add_row_values(day, rec.new_infections,
                        static_cast<std::int64_t>(
                            truth.observed_cases[static_cast<std::size_t>(day - 1)]),
                        rec.new_deaths, rec.hospital_census);
  }
  head.print(std::cout);

  // --- 2. Calibrate window days 20-33 on reported cases --------------------
  const auto& cfg = session.config();
  std::cout << "\nCalibrating days 20-33 with " << cfg.n_params << " x "
            << cfg.replicates << " = " << cfg.n_params * cfg.replicates
            << " trajectories...\n";
  const core::WindowResult& window = session.run_next_window();
  const core::WindowPosteriorSummary posterior = session.posterior_summary(0);

  // --- 3. Report -----------------------------------------------------------
  io::Table out({"parameter", "truth", "posterior mean", "sd", "90% CI"});
  out.add_row_values(
      "theta (transmission)", truth.theta_at(20), posterior.theta.mean,
      posterior.theta.sd,
      "[" + io::Table::num(posterior.theta.ci90.lo) + ", " +
          io::Table::num(posterior.theta.ci90.hi) + "]");
  out.add_row_values(
      "rho (reporting)", truth.rho_at(20), posterior.rho.mean,
      posterior.rho.sd,
      "[" + io::Table::num(posterior.rho.ci90.lo) + ", " +
          io::Table::num(posterior.rho.ci90.hi) + "]");
  out.print(std::cout);

  std::cout << "\nDiagnostics: ESS=" << window.diag.ess << "/"
            << window.diag.n_sims
            << ", unique ancestors=" << window.diag.unique_resampled
            << ", propagation=" << io::Table::num(window.diag.propagate_seconds)
            << "s\n";
  return 0;
}
