// Quickstart: the smallest end-to-end use of the epismc public API.
//
//   1. Simulate a synthetic epidemic with time-varying transmission and a
//      time-varying case-reporting bias (the paper's §V-A ground truth).
//   2. Calibrate the first time window against the *reported* cases with
//      single-window importance sampling (paper Algorithm 1).
//   3. Print the recovered posterior for (theta, rho) next to the truth.
//
// Build & run:  ./build/examples/quickstart [--n-params=N] [--replicates=R]

#include <iostream>

#include "core/posterior.hpp"
#include "core/scenario.hpp"
#include "core/sequential_calibrator.hpp"
#include "core/simulator.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace epismc;

  const io::Args args(argc, argv);
  const auto n_params = static_cast<std::size_t>(args.get_int("n-params", 400));
  const auto replicates =
      static_cast<std::size_t>(args.get_int("replicates", 5));
  args.check_unused();

  // --- 1. Ground truth -----------------------------------------------------
  core::ScenarioConfig scenario;
  scenario.total_days = 40;
  core::GroundTruth truth = core::simulate_ground_truth(scenario);

  std::cout << "Synthetic epidemic (population "
            << scenario.params.population << ", theta=0.30, rho=0.60):\n";
  io::Table head({"day", "true cases", "reported cases", "deaths",
                  "hospital census"});
  for (std::int32_t day = 5; day <= 40; day += 5) {
    const auto& rec = truth.trajectory.at_day(day);
    head.add_row_values(day, rec.new_infections,
                        static_cast<std::int64_t>(
                            truth.observed_cases[static_cast<std::size_t>(day - 1)]),
                        rec.new_deaths, rec.hospital_census);
  }
  head.print(std::cout);

  // --- 2. Calibrate window days 20-33 on reported cases --------------------
  core::SeirSimulator simulator({scenario.params});
  core::CalibrationConfig config;
  config.windows = {{20, 33}};
  config.n_params = n_params;
  config.replicates = replicates;
  config.resample_size = 2 * n_params;

  core::SequentialCalibrator calibrator(simulator, truth.observed(), config);
  std::cout << "\nCalibrating days 20-33 with " << n_params << " x "
            << replicates << " = " << n_params * replicates
            << " trajectories...\n";
  const core::WindowResult& window = calibrator.run_next_window();
  const core::WindowPosteriorSummary posterior =
      core::summarize_window(window);

  // --- 3. Report -----------------------------------------------------------
  io::Table out({"parameter", "truth", "posterior mean", "sd", "90% CI"});
  out.add_row_values(
      "theta (transmission)", truth.theta_at(20), posterior.theta.mean,
      posterior.theta.sd,
      "[" + io::Table::num(posterior.theta.ci90.lo) + ", " +
          io::Table::num(posterior.theta.ci90.hi) + "]");
  out.add_row_values(
      "rho (reporting)", truth.rho_at(20), posterior.rho.mean,
      posterior.rho.sd,
      "[" + io::Table::num(posterior.rho.ci90.lo) + ", " +
          io::Table::num(posterior.rho.ci90.hi) + "]");
  out.print(std::cout);

  std::cout << "\nDiagnostics: ESS=" << window.diag.ess << "/"
            << window.diag.n_sims
            << ", unique ancestors=" << window.diag.unique_resampled
            << ", propagation=" << io::Table::num(window.diag.propagate_seconds)
            << "s\n";
  return 0;
}
