// ScenarioSweep: every named scenario preset crossed with multiple
// simulator backends in one invocation -- the facade's answer to the
// ROADMAP's "as many scenarios as you can imagine".
//
// Each (scenario, simulator) cell runs a full sequential calibration;
// cells execute OpenMP-parallel and the sweep output is byte-identical
// regardless of --threads (counter-based RNG addressing, see
// parallel/parallel.hpp).
//
//   scenario_sweep                                  # 4 presets x 2 backends
//   scenario_sweep --scenarios=paper-baseline,abm-truth --simulators=abm
//   scenario_sweep --windows=2 --n-params=400 --threads=8
//   scenario_sweep --supervise --max-retries=2 --stall-timeout=10
//       # each cell in a forked, heartbeat-monitored worker: crashes and
//       # hangs are killed, backed off, retried; surviving cells report
//       # normally and the failed ones are named (--report-csv=PATH dumps
//       # the per-attempt log)

#include <fstream>
#include <iostream>

#include "api/api.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "parallel/parallel.hpp"

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  for (auto& tok : epismc::io::split_csv_line(csv)) {
    if (!tok.empty()) out.push_back(std::move(tok));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epismc;
  const io::Args args(argc, argv);
  if (api::handle_list_flag(args, std::cout)) return 0;

  api::apply_threads_flag(args);

  const auto scenario_list = split_list(args.get_string(
      "scenarios",
      "paper-baseline,sharp-jump,low-reporting,chain-binomial-truth"));
  const auto simulator_list =
      split_list(args.get_string("simulators", "seir-event,chain-binomial"));
  const auto n_windows = static_cast<std::size_t>(args.get_int("windows", 4));
  const auto n_params = static_cast<std::size_t>(args.get_int("n-params", 250));
  const auto replicates =
      static_cast<std::size_t>(args.get_int("replicates", 5));
  const auto resample = static_cast<std::size_t>(
      args.get_int("resample", static_cast<std::int64_t>(2 * n_params)));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20240306));
  const api::SuperviseFlags sup_flags = api::query_supervise_flags(args);
  args.check_unused();

  std::vector<std::pair<std::int32_t, std::int32_t>> windows(
      {{20, 33}, {34, 47}, {48, 61}, {62, 75}});
  windows.resize(std::min<std::size_t>(std::max<std::size_t>(n_windows, 1),
                                       windows.size()));

  api::ScenarioSweep sweep;
  sweep.add_scenarios(scenario_list)
      .add_simulators(simulator_list)
      .with_windows(windows)
      .with_budget(n_params, replicates, resample)
      .with_seed(seed);

  std::cout << "Sweeping " << scenario_list.size() << " scenarios x "
            << simulator_list.size() << " simulators = " << sweep.cell_count()
            << " calibration runs (" << windows.size() << " windows each, "
            << n_params * replicates << " trajectories per window) on "
            << parallel::max_threads() << " threads"
            << (sup_flags.enabled ? " (supervised workers)" : "")
            << "...\n\n";

  std::vector<api::SweepRun> runs;
  bool supervision_ok = true;
  if (sup_flags.enabled) {
    api::ScenarioSweep::SupervisedSweep result =
        sweep.run_supervised(sup_flags.options);
    supervision_ok = result.all_ok();
    runs = std::move(result.runs);

    io::Table sup_table({"task", "outcome", "attempts", "wall-s"});
    for (const auto& t : result.report.tasks) {
      sup_table.add_row_values(t.name, supervise::to_string(t.outcome),
                               std::to_string(t.attempts.size()),
                               io::Table::num(t.wall_seconds, 2));
    }
    std::cout << "Supervision report (" << result.report.n_ok() << "/"
              << result.report.tasks.size() << " ok, "
              << result.report.n_recovered() << " recovered):\n";
    sup_table.print(std::cout);
    if (!sup_flags.report_csv.empty()) {
      std::ofstream out(sup_flags.report_csv);
      supervise::write_supervision_csv(out, result.report);
      std::cout << "Attempt log written to " << sup_flags.report_csv.string()
                << "\n";
    }
    std::cout << "\n";
  } else {
    runs = sweep.run_all();
  }

  io::Table table({"scenario", "simulator", "window", "theta*", "theta mean",
                   "theta sd", "rho*", "rho mean", "ESS", "wall (s)"});
  for (const auto& run : runs) {
    if (!run.ok()) {
      std::cout << "CELL FAILED (" << run.scenario << " x " << run.simulator
                << "): " << run.error << "\n";
      continue;
    }
    for (std::size_t m = 0; m < run.windows.size(); ++m) {
      const auto& w = run.windows[m];
      table.add_row_values(
          m == 0 ? run.scenario : "", m == 0 ? run.simulator : "",
          "d" + std::to_string(w.from_day) + "-" + std::to_string(w.to_day),
          io::Table::num(run.truth_theta[m]), io::Table::num(w.theta.mean),
          io::Table::num(w.theta.sd), io::Table::num(run.truth_rho[m]),
          io::Table::num(w.rho.mean),
          io::Table::num(run.diagnostics[m].ess, 1),
          m == 0 ? io::Table::num(run.wall_seconds, 2) : "");
    }
  }
  table.print(std::cout);

  std::size_t failed = 0;
  for (const auto& run : runs) {
    if (!run.ok()) ++failed;
  }
  std::cout << "\n" << runs.size() - failed << "/" << runs.size()
            << " cells completed.\n";
  return failed == 0 && supervision_ok ? 0 : 1;
}
