// The two ABM day-step engines. The event-driven "fast" engine must be a
// drop-in statistical replacement for the per-agent-scan "reference"
// engine: same invariants (conservation, fixed-seed determinism,
// checkpoint-resume bit-equality), same sampling distribution (paired-seed
// moment matching across >= 200 seeds with a normal-approximation bound),
// and full cross-engine checkpoint interoperability -- including restoring
// a reference-engine checkpoint into the fast engine, the supported A/B
// migration path. All seeds are pinned so CI is deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "abm/abm_simulator.hpp"
#include "abm/agent_model.hpp"
#include "api/api.hpp"
#include "epi/compartments.hpp"

namespace {

using namespace epismc;
using abm::AbmConfig;
using abm::AbmEngine;
using abm::AgentBasedModel;

AbmConfig engine_config(AbmEngine engine, std::int64_t population = 4000) {
  AbmConfig cfg;
  cfg.disease.population = population;
  cfg.engine = engine;
  return cfg;
}

AgentBasedModel seeded(AbmEngine engine, std::uint64_t seed,
                       double theta = 0.35, std::int64_t exposed = 40,
                       std::int64_t population = 4000) {
  AgentBasedModel m(engine_config(engine, population),
                    epi::PiecewiseSchedule(theta), seed);
  m.seed_exposed(exposed);
  return m;
}

// --- Engine naming. --------------------------------------------------------

TEST(AbmEngineName, RoundTripsAndRejectsUnknown) {
  EXPECT_EQ(abm::to_string(AbmEngine::kFast), "fast");
  EXPECT_EQ(abm::to_string(AbmEngine::kReference), "reference");
  EXPECT_EQ(abm::engine_from_name("fast"), AbmEngine::kFast);
  EXPECT_EQ(abm::engine_from_name("reference"), AbmEngine::kReference);
  EXPECT_THROW((void)abm::engine_from_name("warp"), std::invalid_argument);
}

TEST(AbmEngineName, InfectiousnessClassesMatchCompartmentWeights) {
  using C = epi::Compartment;
  static_assert(epi::infectiousness_class(C::kS) < 0);
  static_assert(epi::infectiousness_class(C::kAu) == 0);
  static_assert(epi::infectiousness_class(C::kAd) == 1);
  static_assert(epi::infectiousness_class(C::kPu) == 2);
  static_assert(epi::infectiousness_class(C::kSmD) == 3);
  const double asym = 0.75, det = 0.25;
  const auto w = epi::infectiousness_class_weights(asym, det);
  for (std::size_t c = 0; c < epi::kCompartmentCount; ++c) {
    const auto comp = static_cast<C>(c);
    const int cls = epi::infectiousness_class(comp);
    const double expected =
        cls < 0 ? 0.0 : w[static_cast<std::size_t>(cls)];
    EXPECT_EQ(epi::infectiousness_weight(comp, asym, det), expected)
        << epi::name(comp);
    EXPECT_EQ(cls >= 0, epi::is_infectious(comp)) << epi::name(comp);
  }
}

// --- Fast-engine invariants. -----------------------------------------------

TEST(AbmFastEngine, ConservesAndRunsDeterministically) {
  AgentBasedModel a = seeded(AbmEngine::kFast, 42);
  AgentBasedModel b = seeded(AbmEngine::kFast, 42);
  for (int day = 1; day <= 80; ++day) {
    a.step();
    ASSERT_EQ(a.total_individuals(), 4000) << "day " << day;
  }
  b.run_until_day(80);
  EXPECT_EQ(a.census(), b.census());
  EXPECT_EQ(a.trajectory().new_infections(1, 80),
            b.trajectory().new_infections(1, 80));
  // The epidemic actually happened (this is not a frozen model).
  EXPECT_LT(a.count(epi::Compartment::kS), 4000 - 40);
}

TEST(AbmFastEngine, CheckpointResumeEqualsUninterrupted) {
  AgentBasedModel reference = seeded(AbmEngine::kFast, 13);
  reference.run_until_day(70);

  AgentBasedModel half = seeded(AbmEngine::kFast, 13);
  half.run_until_day(35);
  AgentBasedModel resumed = AgentBasedModel::restore(half.make_checkpoint());
  EXPECT_EQ(resumed.engine(), AbmEngine::kFast);
  resumed.run_until_day(70);
  EXPECT_EQ(resumed.census(), reference.census());
  EXPECT_EQ(resumed.trajectory().new_infections(1, 70),
            reference.trajectory().new_infections(1, 70));
}

TEST(AbmFastEngine, CheckpointRoundTripPreservesBytes) {
  for (const AbmEngine engine : {AbmEngine::kFast, AbmEngine::kReference}) {
    AgentBasedModel m = seeded(engine, 19);
    m.run_until_day(40);
    const epi::Checkpoint ckpt = m.make_checkpoint();
    const AgentBasedModel restored = AgentBasedModel::restore(ckpt);
    EXPECT_EQ(restored.engine(), engine);
    const epi::Checkpoint round_trip = restored.make_checkpoint();
    EXPECT_EQ(round_trip.day, ckpt.day);
    EXPECT_EQ(round_trip.bytes, ckpt.bytes)
        << "engine " << abm::to_string(engine);
  }
}

TEST(AbmFastEngine, SeedExposedHandlesScarceSusceptibles) {
  // The old accept/reject seeding degenerated when susceptibles were
  // scarce; the subset draw must stay O(count) and exact.
  AgentBasedModel m = seeded(AbmEngine::kFast, 23, 0.35, 0);
  m.seed_exposed(3960);  // nearly everyone
  EXPECT_EQ(m.count(epi::Compartment::kS), 40);
  m.seed_exposed(40);  // the stragglers, from a 1% susceptible pool
  EXPECT_EQ(m.count(epi::Compartment::kS), 0);
  EXPECT_EQ(m.total_individuals(), 4000);
  EXPECT_THROW(m.seed_exposed(1), std::invalid_argument);
}

// --- Cross-engine interoperability. ----------------------------------------

TEST(AbmEngineInterop, ReferenceCheckpointRestoresIntoFastEngine) {
  AgentBasedModel ref_model = seeded(AbmEngine::kReference, 17);
  ref_model.run_until_day(30);
  const epi::Checkpoint ckpt = ref_model.make_checkpoint();

  AgentBasedModel migrated = AgentBasedModel::restore(ckpt);
  EXPECT_EQ(migrated.engine(), AbmEngine::kReference);
  migrated.set_engine(AbmEngine::kFast);
  EXPECT_EQ(migrated.engine(), AbmEngine::kFast);
  EXPECT_EQ(migrated.census(), ref_model.census());
  migrated.run_until_day(90);
  EXPECT_EQ(migrated.total_individuals(), 4000);
  // The migrated run kept transmitting: infections continued after day 30.
  const auto cases = migrated.trajectory().new_infections(31, 90);
  EXPECT_GT(std::accumulate(cases.begin(), cases.end(), 0.0), 0.0);
}

TEST(AbmEngineInterop, SimulatorEnforcesItsConfiguredEngine) {
  // A fast-engine simulator must propagate reference-engine checkpoints
  // (and vice versa): the simulator's engine wins over the checkpoint's.
  abm::AbmSimulatorConfig ref_cfg;
  ref_cfg.abm = engine_config(AbmEngine::kReference);
  ref_cfg.initial_exposed = 40;
  const abm::AbmSimulator ref_sim(ref_cfg);

  abm::AbmSimulatorConfig fast_cfg = ref_cfg;
  fast_cfg.abm.engine = AbmEngine::kFast;
  const abm::AbmSimulator fast_sim(fast_cfg);

  const epi::Checkpoint init = ref_sim.initial_state(19, 7);
  const core::WindowRun from_fast = fast_sim.run_window(init, 0.35, 9, 1, 33,
                                                        /*want_checkpoint=*/true);
  EXPECT_EQ(from_fast.true_cases.size(), 14u);
  EXPECT_EQ(from_fast.end_state.day, 33);
  // The window end state now carries the fast engine.
  const AgentBasedModel end = AgentBasedModel::restore(from_fast.end_state);
  EXPECT_EQ(end.engine(), AbmEngine::kFast);

  // Deterministic replay through the enforcement path.
  const core::WindowRun replay = fast_sim.run_window(init, 0.35, 9, 1, 33,
                                                     /*want_checkpoint=*/false);
  EXPECT_EQ(replay.true_cases, from_fast.true_cases);

  // The batch path (the calibration hot path) must enforce the engine the
  // same way: a reference-engine parent propagated by the fast simulator's
  // run_batch reproduces run_window bit for bit.
  core::EnsembleBuffer buf(1, 14);
  buf.parent[0] = 0;
  buf.theta[0] = 0.35;
  buf.seed[0] = 9;
  buf.stream[0] = 1;
  const std::vector<epi::Checkpoint> parents = {init};
  std::vector<epi::Checkpoint> ends(1);
  fast_sim.run_batch(parents, 33, buf, 0, 1, ends);
  const auto row = buf.true_cases(0);
  ASSERT_EQ(row.size(), from_fast.true_cases.size());
  for (std::size_t d = 0; d < row.size(); ++d) {
    EXPECT_EQ(row[d], from_fast.true_cases[d]) << "day offset " << d;
  }
  EXPECT_EQ(AgentBasedModel::restore(ends[0]).engine(), AbmEngine::kFast);
}

// --- Statistical equivalence: fast vs reference across paired seeds. -------

struct SeedStats {
  double cum_mid = 0.0;        // cumulative infections through day 25
  double cum_end = 0.0;        // cumulative infections through day 45
  double infectious_mid = 0.0; // infectious census at day 25
};

SeedStats run_one(AbmEngine engine, std::uint64_t seed) {
  AgentBasedModel m = seeded(engine, seed);
  m.run_until_day(45);
  const auto cases = m.trajectory().new_infections(1, 45);
  SeedStats s;
  for (std::size_t d = 0; d < cases.size(); ++d) {
    if (d < 25) s.cum_mid += cases[d];
    s.cum_end += cases[d];
  }
  s.infectious_mid = static_cast<double>(m.trajectory()[24].infectious_census);
  return s;
}

struct Moments {
  double mean = 0.0;
  double var = 0.0;
};

Moments moments(const std::vector<double>& xs) {
  Moments m;
  for (const double x : xs) m.mean += x;
  m.mean /= static_cast<double>(xs.size());
  for (const double x : xs) m.var += (x - m.mean) * (x - m.mean);
  m.var /= static_cast<double>(xs.size() - 1);
  return m;
}

void expect_same_distribution(const std::vector<double>& fast,
                              const std::vector<double>& ref,
                              const char* what) {
  const Moments f = moments(fast);
  const Moments r = moments(ref);
  const auto n = static_cast<double>(fast.size());
  // Two-sample z bound on the means: the engines sample the identical
  // distribution, so the gap is asymptotically N(0, (var_f + var_r)/n).
  // z = 4.5 gives a per-comparison false-failure rate of ~7e-6 -- and the
  // seeds are pinned, so a pass is a pass forever on a given platform.
  const double tolerance = 4.5 * std::sqrt((f.var + r.var) / n);
  EXPECT_NEAR(f.mean, r.mean, tolerance)
      << what << ": fast mean " << f.mean << " vs reference mean " << r.mean;
  // Spread must match too (loose bound: sd of a sd estimate over n seeds is
  // ~ sd/sqrt(2n) ~ 5%, so [0.7, 1.43] is > 6 sigma wide).
  const double sd_ratio = std::sqrt(f.var / r.var);
  EXPECT_GT(sd_ratio, 0.7) << what;
  EXPECT_LT(sd_ratio, 1.43) << what;
}

TEST(AbmEngineEquivalence, MomentsMatchAcross200PairedSeeds) {
  const std::size_t n_seeds = 200;
  std::vector<double> fast_mid, ref_mid, fast_end, ref_end, fast_inf, ref_inf;
  for (std::size_t s = 0; s < n_seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(1000 + s);
    const SeedStats f = run_one(AbmEngine::kFast, seed);
    const SeedStats r = run_one(AbmEngine::kReference, seed);
    fast_mid.push_back(f.cum_mid);
    ref_mid.push_back(r.cum_mid);
    fast_end.push_back(f.cum_end);
    ref_end.push_back(r.cum_end);
    fast_inf.push_back(f.infectious_mid);
    ref_inf.push_back(r.infectious_mid);
  }
  expect_same_distribution(fast_mid, ref_mid,
                           "cumulative infections through day 25");
  expect_same_distribution(fast_end, ref_end,
                           "cumulative infections through day 45");
  expect_same_distribution(fast_inf, ref_inf, "infectious census at day 25");
}

TEST(AbmEngineEquivalence, HouseholdShareShiftsBothEnginesAlike) {
  // The two-level mixing structure must survive the event-driven rewrite:
  // pure household transmission saturates and infects fewer people than
  // pure community mixing, under either engine.
  const auto total = [](AbmEngine engine, double share) {
    AbmConfig cfg = engine_config(engine, 20000);
    cfg.household_share = share;
    AgentBasedModel m(cfg, epi::PiecewiseSchedule(0.4), 11);
    m.seed_exposed(60);
    m.run_until_day(90);
    const auto c = m.trajectory().new_infections(1, 90);
    return std::accumulate(c.begin(), c.end(), 0.0);
  };
  for (const AbmEngine engine : {AbmEngine::kFast, AbmEngine::kReference}) {
    EXPECT_GT(total(engine, 0.0), total(engine, 1.0))
        << abm::to_string(engine);
    EXPECT_GT(total(engine, 1.0), 0.0) << abm::to_string(engine);
  }
}

// --- End-to-end selection through the api facade. --------------------------

TEST(AbmEngineSession, ReferenceEngineSelectableEndToEnd) {
  // Synthetic observations from a reference-engine truth.
  AgentBasedModel truth = seeded(AbmEngine::kReference, 555, 0.33, 40);
  truth.run_until_day(33);
  const auto true_cases = truth.trajectory().new_infections(1, 33);
  std::vector<double> observed(true_cases.begin(), true_cases.end());

  api::SimulatorSpec spec;
  spec.params.population = 4000;
  spec.initial_exposed = 40;

  const auto posterior = [&](const std::string& engine) {
    api::CalibrationSession session;
    session.with_simulator("abm", spec)
        .with_abm_engine(engine)
        .with_data(core::ObservedData(1, observed, {}))
        .with_windows({{20, 33}})
        .with_budget(16, 2, 32)
        .with_likelihood("gaussian-sqrt", 1.0)
        .with_seed(5);
    session.run_all();
    std::vector<double> lw = session.results()[0].ensemble.log_weight;
    return lw;
  };

  const auto ref_a = posterior("reference");
  const auto ref_b = posterior("reference");
  const auto fast = posterior("fast");
  // Reference runs are bit-reproducible and actually distinct from fast
  // (different draw sequences): the selector reaches the engine.
  EXPECT_EQ(ref_a, ref_b);
  EXPECT_NE(ref_a, fast);
}

TEST(AbmEngineSession, EngineNameIsValidatedEagerly) {
  api::CalibrationSession session;
  EXPECT_THROW(session.with_abm_engine("warp-speed"), std::invalid_argument);
}

}  // namespace
