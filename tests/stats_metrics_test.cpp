// Calibration-quality metrics: RMSE/MAE identities, interval coverage
// accounting, and the ensemble CRPS (checked against its two defining
// properties: zero for a point mass on the observation, and the closed-form
// value for simple ensembles).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/metrics.hpp"

namespace {

using namespace epismc::stats;

TEST(Rmse, KnownValue) {
  const std::vector<double> est = {1.0, 2.0, 3.0};
  const std::vector<double> truth = {1.0, 4.0, 1.0};
  // errors 0, -2, 2 -> rmse = sqrt(8/3).
  EXPECT_NEAR(rmse(est, truth), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_NEAR(mae(est, truth), 4.0 / 3.0, 1e-12);
  EXPECT_THROW((void)rmse(est, {}), std::invalid_argument);
}

TEST(Rmse, ZeroForPerfectEstimate) {
  const std::vector<double> x = {5.0, -1.0, 0.0};
  EXPECT_EQ(rmse(x, x), 0.0);
  EXPECT_EQ(mae(x, x), 0.0);
}

TEST(Coverage, CountsHits) {
  const std::vector<Interval> ivs = {{0.0, 1.0}, {2.0, 3.0}, {-1.0, 1.0}};
  const std::vector<double> truth = {0.5, 5.0, 1.0};  // in, out, boundary-in
  EXPECT_NEAR(interval_coverage(ivs, truth), 2.0 / 3.0, 1e-14);
  EXPECT_NEAR(mean_interval_width(ivs), (1.0 + 1.0 + 2.0) / 3.0, 1e-14);
}

TEST(Crps, PointMassEqualsAbsoluteError) {
  const std::vector<double> ens(100, 2.0);
  EXPECT_NEAR(crps_ensemble(ens, 2.0), 0.0, 1e-12);
  EXPECT_NEAR(crps_ensemble(ens, 5.0), 3.0, 1e-12);
}

TEST(Crps, TwoMemberClosedForm) {
  // Ensemble {0, 2}, obs 1: E|X-y| = 1, E|X-X'| = half of pairs differ by 2
  // -> with the standard n^2 normalization E|X-X'| = (0+2+2+0)/4 = 1.
  // CRPS = 1 - 0.5 = 0.5.
  const std::vector<double> ens = {0.0, 2.0};
  EXPECT_NEAR(crps_ensemble(ens, 1.0), 0.5, 1e-12);
}

TEST(Crps, RewardsSharpness) {
  // Two ensembles centered on the observation; the tighter one wins.
  std::vector<double> tight;
  std::vector<double> loose;
  for (int i = 0; i < 100; ++i) {
    const double offset = (i - 49.5) / 49.5;  // in (-1, 1)
    tight.push_back(1.0 + 0.1 * offset);
    loose.push_back(1.0 + 2.0 * offset);
  }
  EXPECT_LT(crps_ensemble(tight, 1.0), crps_ensemble(loose, 1.0));
}

TEST(Crps, PenalizesBias) {
  std::vector<double> centered;
  std::vector<double> biased;
  for (int i = 0; i < 100; ++i) {
    const double offset = (i - 49.5) / 49.5;
    centered.push_back(0.0 + offset);
    biased.push_back(3.0 + offset);
  }
  EXPECT_LT(crps_ensemble(centered, 0.0), crps_ensemble(biased, 0.0));
  EXPECT_THROW((void)crps_ensemble({}, 0.0), std::invalid_argument);
}

}  // namespace
