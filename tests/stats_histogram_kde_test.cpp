// Histogram binning/density normalization and kernel density estimation:
// mass conservation, mode recovery, HPD level monotonicity, and the
// weighted-sample path used for posterior contours.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "random/distributions.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"

namespace {

using namespace epismc::stats;
using epismc::rng::Engine;

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.999);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);   // boundary folds into the last bin
  h.add(-0.01);  // dropped
  h.add(10.01);  // dropped
  EXPECT_NEAR(h.count(0), 2.0, 1e-14);
  EXPECT_NEAR(h.count(5), 1.0, 1e-14);
  EXPECT_NEAR(h.count(9), 2.0, 1e-14);
  EXPECT_NEAR(h.total(), 5.0, 1e-14);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 1.0, 20);
  Engine eng(20240030);
  for (int i = 0; i < 5000; ++i) h.add(epismc::rng::uniform_double(eng));
  const auto d = h.density();
  const double mass =
      std::accumulate(d.begin(), d.end(), 0.0) * h.bin_width();
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_NEAR(h.count(0), 3.0, 1e-14);
  EXPECT_NEAR(h.count(1), 1.0, 1e-14);
  EXPECT_EQ(h.mode_bin(), 0u);
}

TEST(Histogram, BinCenters) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_NEAR(h.bin_center(0), 1.25, 1e-14);
  EXPECT_NEAR(h.bin_center(3), 2.75, 1e-14);
  EXPECT_THROW((void)h.bin_center(4), std::out_of_range);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(SilvermanBandwidth, PositiveAndScales) {
  Engine eng(20240031);
  std::vector<double> narrow;
  std::vector<double> wide;
  for (int i = 0; i < 2000; ++i) {
    const double z = epismc::rng::normal(eng);
    narrow.push_back(z);
    wide.push_back(10.0 * z);
  }
  const double h_narrow = silverman_bandwidth(narrow, {});
  const double h_wide = silverman_bandwidth(wide, {});
  EXPECT_GT(h_narrow, 0.0);
  EXPECT_NEAR(h_wide / h_narrow, 10.0, 0.5);
}

TEST(Kde1d, MassAndModeOfGaussianSample) {
  Engine eng(20240032);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(epismc::rng::normal(eng, 2.0, 0.5));
  }
  std::vector<double> grid;
  for (double g = -1.0; g <= 5.0; g += 0.02) grid.push_back(g);
  const auto density = kde_1d(xs, {}, grid);
  // Mass on the grid ~ 1.
  double mass = 0.0;
  for (const double d : density) mass += d * 0.02;
  EXPECT_NEAR(mass, 1.0, 0.02);
  // Mode near 2.
  const auto it = std::max_element(density.begin(), density.end());
  const double mode = grid[static_cast<std::size_t>(
      std::distance(density.begin(), it))];
  EXPECT_NEAR(mode, 2.0, 0.15);
}

TEST(Kde1d, WeightsShiftTheEstimate) {
  // Two point clouds; weighting one to ~zero must move the KDE mass.
  std::vector<double> xs;
  std::vector<double> ws;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(0.0 + 0.001 * i);
    ws.push_back(1.0);
    xs.push_back(10.0 + 0.001 * i);
    ws.push_back(1e-9);
  }
  const std::vector<double> grid = {0.1, 10.1};
  const auto density = kde_1d(xs, ws, grid, 0.5);
  EXPECT_GT(density[0], 100.0 * density[1]);
}

TEST(Kde2d, MassModeAndBoxMass) {
  Engine eng(20240033);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back(epismc::rng::normal(eng, 0.3, 0.03));
    ys.push_back(epismc::rng::normal(eng, 0.7, 0.05));
  }
  const auto kde =
      kde_2d(xs, ys, {}, 0.1, 0.5, 64, 0.4, 1.0, 64);
  EXPECT_NEAR(kde.total_mass(), 1.0, 0.03);
  const auto [mx, my] = kde.mode();
  EXPECT_NEAR(mx, 0.3, 0.03);
  EXPECT_NEAR(my, 0.7, 0.05);
  // A generous box around the truth holds nearly all mass.
  EXPECT_GT(box_mass(kde, 0.2, 0.4, 0.5, 0.9), 0.95);
  // A far-away box holds nearly none.
  EXPECT_LT(box_mass(kde, 0.45, 0.5, 0.4, 0.45), 0.01);
}

TEST(Kde2d, HpdLevelsMonotone) {
  Engine eng(20240034);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(epismc::rng::normal(eng, 0.0, 1.0));
    ys.push_back(epismc::rng::normal(eng, 0.0, 1.0));
  }
  const auto kde = kde_2d(xs, ys, {}, -4.0, 4.0, 48, -4.0, 4.0, 48);
  const std::vector<double> masses = {0.5, 0.9};
  const auto levels = hpd_levels(kde, masses);
  ASSERT_EQ(levels.size(), 2u);
  // Enclosing more mass requires dropping to a lower density threshold.
  EXPECT_GT(levels[0], levels[1]);
  EXPECT_GT(levels[1], 0.0);
  const std::vector<double> bad = {1.5};
  EXPECT_THROW((void)hpd_levels(kde, bad), std::invalid_argument);
}

TEST(Kde2d, Validation) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW((void)kde_2d(xs, ys, {}, 0, 1, 8, 0, 1, 8),
               std::invalid_argument);
}

}  // namespace
