// Sampling-without-replacement helpers: subset validity (distinct,
// in-range), uniformity of the partial Fisher-Yates prefix and of Floyd's
// algorithm, draw-count discipline, and argument validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "random/sampling.hpp"

namespace {

using namespace epismc::rng;

TEST(PartialFisherYates, PrefixIsDistinctSubsetOfInput) {
  Engine eng(11);
  std::vector<std::uint32_t> items(100);
  std::iota(items.begin(), items.end(), 0u);
  partial_fisher_yates(eng, std::span<std::uint32_t>(items), 30);

  std::set<std::uint32_t> prefix(items.begin(), items.begin() + 30);
  EXPECT_EQ(prefix.size(), 30u);
  // Still a permutation of the original input.
  std::vector<std::uint32_t> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(PartialFisherYates, ConsumesExactlyKDraws) {
  Engine eng(3);
  std::vector<int> items(50, 0);
  partial_fisher_yates(eng, std::span<int>(items), 7);
  EXPECT_EQ(eng.position(), 7u);
  partial_fisher_yates(eng, std::span<int>(items), 0);
  EXPECT_EQ(eng.position(), 7u);
}

TEST(PartialFisherYates, PrefixIsUniformOverElements) {
  // Every element should land in the k-prefix with probability k/n.
  const std::size_t n = 20, k = 5, trials = 20000;
  Engine eng(42);
  std::vector<std::size_t> hits(n, 0);
  std::vector<std::uint32_t> items(n);
  for (std::size_t t = 0; t < trials; ++t) {
    std::iota(items.begin(), items.end(), 0u);
    partial_fisher_yates(eng, std::span<std::uint32_t>(items), k);
    for (std::size_t i = 0; i < k; ++i) hits[items[i]] += 1;
  }
  const double expected = static_cast<double>(trials) * k / n;  // 5000
  // Binomial sd ~ sqrt(trials * p * (1-p)) ~ 61; allow 5 sigma.
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_NEAR(static_cast<double>(hits[v]), expected, 5 * 61.0)
        << "element " << v;
  }
}

TEST(PartialFisherYates, SwapCallbackFormMatchesSpanForm) {
  std::vector<std::uint32_t> a(64), b(64);
  std::iota(a.begin(), a.end(), 0u);
  std::iota(b.begin(), b.end(), 0u);
  Engine ea(9), eb(9);
  partial_fisher_yates(ea, std::span<std::uint32_t>(a), 20);
  partial_fisher_yates(eb, b.size(), 20, [&](std::size_t i, std::size_t j) {
    std::swap(b[i], b[j]);
  });
  EXPECT_EQ(a, b);
}

TEST(PartialFisherYates, RejectsOversizedSubset) {
  Engine eng(1);
  std::vector<int> items(4, 0);
  EXPECT_THROW(partial_fisher_yates(eng, std::span<int>(items), 5),
               std::invalid_argument);
}

TEST(SampleWithoutReplacement, DistinctInRangeAndSized) {
  Engine eng(7);
  const auto picks = sample_without_replacement(eng, 1000, 64);
  ASSERT_EQ(picks.size(), 64u);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 64u);
  for (const auto p : picks) EXPECT_LT(p, 1000u);
}

TEST(SampleWithoutReplacement, FullRangeIsPermutation) {
  Engine eng(5);
  const auto picks = sample_without_replacement(eng, 32, 32);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 32u);
}

TEST(SampleWithoutReplacement, MarginalsAreUniform) {
  const std::uint64_t n = 12;
  const std::size_t k = 4, trials = 30000;
  Engine eng(123);
  std::vector<std::size_t> hits(n, 0);
  std::vector<std::uint64_t> out;
  for (std::size_t t = 0; t < trials; ++t) {
    out.clear();
    sample_without_replacement(eng, n, k, out);
    for (const auto p : out) hits[p] += 1;
  }
  const double expected = static_cast<double>(trials) * k / n;  // 10000
  // sd ~ sqrt(trials * 1/3 * 2/3) ~ 82; allow 5 sigma.
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(static_cast<double>(hits[v]), expected, 5 * 82.0)
        << "value " << v;
  }
}

TEST(SampleWithoutReplacement, AppendsAfterExistingContent) {
  Engine eng(2);
  std::vector<std::uint64_t> out = {999};
  sample_without_replacement(eng, 10, 3, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 999u);
  // The pre-existing element is not part of the collision scan.
  std::set<std::uint64_t> fresh(out.begin() + 1, out.end());
  EXPECT_EQ(fresh.size(), 3u);
}

TEST(SampleWithoutReplacement, RejectsOversizedSubset) {
  Engine eng(1);
  EXPECT_THROW((void)sample_without_replacement(eng, 3, 4),
               std::invalid_argument);
}

TEST(SampleWithoutReplacement, DeterministicForSameSeed) {
  Engine a(77), b(77);
  EXPECT_EQ(sample_without_replacement(a, 500, 20),
            sample_without_replacement(b, 500, 20));
}

}  // namespace
