// Reproduction-number machinery: closed-form R0 sanity, parameter
// monotonicity, agreement between the analytic R_t and (a) realized
// epidemic growth and (b) the incidence-only Cori estimator.

#include <gtest/gtest.h>

#include <numeric>

#include "epi/reproduction.hpp"
#include "epi/seir_model.hpp"

namespace {

using namespace epismc::epi;

TEST(Reproduction, DurationIsPlausible) {
  const DiseaseParameters p;
  const double d = effective_infectious_duration(p);
  // Between the presymptomatic period alone and the longest full course.
  EXPECT_GT(d, p.presymptomatic_period);
  EXPECT_LT(d, p.asymptomatic_period + p.mild_period + 4.0);
}

TEST(Reproduction, R0LinearInTheta) {
  const DiseaseParameters p;
  const double r1 = basic_reproduction_number(p, 0.2);
  const double r2 = basic_reproduction_number(p, 0.4);
  EXPECT_NEAR(r2, 2.0 * r1, 1e-12);
  EXPECT_THROW((void)basic_reproduction_number(p, -0.1),
               std::invalid_argument);
}

TEST(Reproduction, DetectionReducesDuration) {
  DiseaseParameters fast_detect;
  fast_detect.detect_mild = 0.95;
  fast_detect.detect_severe = 0.95;
  fast_detect.detect_asymptomatic = 0.9;
  fast_detect.detect_presymptomatic = 0.9;
  fast_detect.detection_delay = 1;
  const DiseaseParameters baseline;
  EXPECT_LT(effective_infectious_duration(fast_detect),
            effective_infectious_duration(baseline));
}

TEST(Reproduction, IsolationStrengthMatters) {
  DiseaseParameters leaky;
  leaky.detected_infectiousness = 0.9;
  DiseaseParameters strict;
  strict.detected_infectiousness = 0.05;
  EXPECT_GT(effective_infectious_duration(leaky),
            effective_infectious_duration(strict));
}

TEST(Reproduction, GrowthMatchesR0Threshold) {
  // theta giving R0 < 1 must produce a dying epidemic; R0 > 1.5 a growing
  // one.
  DiseaseParameters p;
  p.population = 300000;
  const double d_eff = effective_infectious_duration(p);
  const double theta_sub = 0.8 / d_eff;   // R0 = 0.8
  const double theta_super = 1.8 / d_eff; // R0 = 1.8

  const auto epidemic_size = [&](double theta) {
    SeirModel m(p, PiecewiseSchedule(theta), 5);
    m.seed_exposed(2000);
    m.run_until_day(120);
    const auto c = m.trajectory().new_infections(1, 120);
    return std::accumulate(c.begin(), c.end(), 0.0);
  };
  const double sub = epidemic_size(theta_sub);
  const double super = epidemic_size(theta_super);
  EXPECT_GT(super, 5.0 * sub);
  // Subcritical: total infections stay within a few multiples of seeding.
  EXPECT_LT(sub, 20000.0);
}

TEST(Reproduction, InstantaneousRtTracksSchedule) {
  DiseaseParameters p;
  p.population = 500000;
  const PiecewiseSchedule theta(std::vector<PiecewiseSchedule::Segment>{
      {0, 0.30}, {40, 0.15}});
  SeirModel m(p, theta, 9);
  m.seed_exposed(500);
  m.run_until_day(60);
  const auto rt = instantaneous_rt(m.trajectory(), p, theta);
  ASSERT_EQ(rt.size(), 60u);
  const double d_eff = effective_infectious_duration(p);
  // Early epidemic: S/N ~ 1, so R_t ~ theta * D_eff.
  EXPECT_NEAR(rt[5], 0.30 * d_eff, 0.02);
  // After the schedule change R_t halves, modulated by susceptible
  // depletion between the two days.
  const double depletion =
      static_cast<double>(m.trajectory().at_day(46).susceptible) /
      static_cast<double>(m.trajectory().at_day(6).susceptible);
  EXPECT_NEAR(rt[45] / rt[5], 0.5 * depletion, 0.02);
  // R_t never increases while theta is constant (S only shrinks).
  for (std::size_t t = 1; t < 39; ++t) ASSERT_LE(rt[t], rt[t - 1] + 1e-12);
}

TEST(Reproduction, GenerationIntervalIsAProperPmf) {
  const DiseaseParameters p;
  const auto w = generation_interval_pmf(p);
  double total = 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_GE(w[i], 0.0);
    total += w[i];
    mean += static_cast<double>(i + 1) * w[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Mean generation time between the latent period and the full course.
  EXPECT_GT(mean, p.latent_period);
  EXPECT_LT(mean, 14.0);
}

TEST(Reproduction, CoriEstimatorRecoversConstantR) {
  // Deterministic renewal process with known R: I_t = R * Lambda_t.
  const std::vector<double> w = {0.2, 0.5, 0.3};
  const double r_true = 1.4;
  std::vector<double> incidence = {100.0, 110.0, 120.0};
  for (std::size_t t = 3; t < 60; ++t) {
    double lambda = 0.0;
    for (std::size_t s = 1; s <= w.size(); ++s) {
      lambda += w[s - 1] * incidence[t - s];
    }
    incidence.push_back(r_true * lambda);
  }
  const auto rt = cori_rt(incidence, w, 5);
  for (std::size_t t = 10; t < rt.size(); ++t) {
    ASSERT_NEAR(rt[t], r_true, 0.05) << "day " << t;
  }
}

TEST(Reproduction, CoriOnSimulatedEpidemicMatchesAnalyticRt) {
  DiseaseParameters p;
  p.population = 1000000;
  const PiecewiseSchedule theta(0.3);
  SeirModel m(p, theta, 11);
  m.seed_exposed(1000);
  m.run_until_day(60);
  const auto incidence = m.trajectory().new_infections(1, 60);
  const auto w = generation_interval_pmf(p);
  const auto empirical = cori_rt(incidence, w, 7);
  const auto analytic = instantaneous_rt(m.trajectory(), p, theta);
  // Compare in the settled exponential phase; the discretized generation
  // interval makes this approximate.
  double emp_mean = 0.0;
  double ana_mean = 0.0;
  for (std::size_t t = 30; t < 55; ++t) {
    emp_mean += empirical[t];
    ana_mean += analytic[t];
  }
  emp_mean /= 25.0;
  ana_mean /= 25.0;
  EXPECT_NEAR(emp_mean, ana_mean, 0.35 * ana_mean);
  EXPECT_GT(emp_mean, 1.0);  // growing epidemic
}

TEST(Reproduction, CoriValidation) {
  const std::vector<double> incidence = {1.0, 2.0};
  EXPECT_THROW((void)cori_rt(incidence, {}, 7), std::invalid_argument);
  const std::vector<double> w = {1.0};
  EXPECT_THROW((void)cori_rt(incidence, w, 0), std::invalid_argument);
}

}  // namespace
