// The typed state-pool subsystem and the single-pass window built on it:
// golden bit-identity of weights, resampled indices and end states against
// the pre-refactor two-pass path for all three backends; inline-capture ==
// deferred-replay equivalence (including through the sequential
// calibrator and the posterior forecast); pool mechanics (io-boundary
// round trips, compaction, backend mismatch diagnostics); and the
// CapturePolicy::kAuto budget decision.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "api/api.hpp"
#include "core/importance_sampler.hpp"
#include "core/posterior.hpp"
#include "core/scenario.hpp"
#include "core/sequential_calibrator.hpp"
#include "core/state_pool.hpp"
#include "simd/simd.hpp"
#include "epi/chain_binomial.hpp"
#include "epi/seir_model.hpp"

namespace {

using namespace epismc::core;
namespace epi = epismc::epi;
namespace api = epismc::api;

// --- FNV-1a hashing, matching the pre-refactor capture harness. ------------

constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

std::uint64_t fnv(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 1099511628211ull;
  return h;
}

std::uint64_t hash_doubles(const std::vector<double>& v) {
  return fnv(kFnvSeed, v.data(), v.size() * sizeof(double));
}

std::uint64_t hash_u32(const std::vector<std::uint32_t>& v) {
  return fnv(kFnvSeed, v.data(), v.size() * sizeof(std::uint32_t));
}

std::uint64_t hash_states(const StatePool& pool) {
  std::uint64_t h = kFnvSeed;
  for (std::size_t u = 0; u < pool.size(); ++u) {
    const epi::Checkpoint s = pool.to_checkpoint(u);
    h = fnv(h, &s.day, sizeof(s.day));
    h = fnv(h, s.bytes.data(), s.bytes.size());
  }
  return h;
}

ParamProposal prior_proposal() {
  return [](epismc::rng::Engine& eng, std::uint32_t) {
    ProposedParams p;
    p.theta = epismc::rng::uniform_range(eng, 0.1, 0.5);
    p.rho = epismc::rng::beta(eng, 4.0, 1.0);
    p.parent = 0;
    return p;
  };
}

const GroundTruth& shared_truth() {
  static const GroundTruth truth = [] {
    ScenarioConfig cfg;
    cfg.params.population = 300000;
    cfg.initial_exposed = 150;
    cfg.total_days = 40;
    return simulate_ground_truth(cfg);
  }();
  return truth;
}

// ---------------------------------------------------------------------------
// Golden test: the single-pass window reproduces the pre-refactor
// two-pass path (weighted sweep + survivor replay + checkpoint-blob
// states) bit for bit. The hashes below were captured from the pre-refactor
// implementation (commit bdce11f plus the padding-free archive layout
// this PR introduces, applied to that tree) with
// this exact configuration, hashing the IEEE-754 images of all log
// weights, the resampled index vector, and the serialized end states of
// every unique survivor in slot order. Both capture policies must land on
// exactly these values.
// ---------------------------------------------------------------------------

struct GoldenCase {
  const char* name;          // registry name
  std::int64_t population;   // scenario scale per backend cost
  std::size_t n_params;
  std::uint64_t log_weight_hash;
  std::uint64_t resampled_hash;
  std::uint64_t states_hash;
};

class WindowGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(WindowGolden, SinglePassMatchesPreRefactorTwoPassPath) {
  // Golden values are the scalar reference realization; pin the lane
  // kernels to scalar so the suite passes under any EPISMC_SIMD override.
  const epismc::simd::ScopedLevel simd_pin(epismc::simd::SimdLevel::kScalar);

  const GoldenCase gc = GetParam();
  api::SimulatorSpec sim_spec;
  sim_spec.params.population = gc.population;
  sim_spec.initial_exposed = gc.population / 200;
  const auto sim = api::simulators().create(gc.name, sim_spec);

  WindowSpec spec;
  spec.from_day = 20;
  spec.to_day = 33;
  spec.n_params = gc.n_params;
  spec.replicates = 2;
  spec.resample_size = 2 * gc.n_params;
  spec.seed = 99;
  const GaussianSqrtLikelihood lik(1.0);
  const BinomialBias bias;
  const std::vector<epi::Checkpoint> parents = {sim->initial_state(19, 7)};

  for (const CapturePolicy policy :
       {CapturePolicy::kInline, CapturePolicy::kDeferredReplay}) {
    spec.capture = policy;
    const WindowResult r = run_importance_window(
        *sim, lik, bias, shared_truth().observed(), parents, spec,
        prior_proposal());
    EXPECT_EQ(r.diag.inline_capture, policy == CapturePolicy::kInline);
    EXPECT_EQ(hash_doubles(r.ensemble.log_weight), gc.log_weight_hash)
        << to_string(policy);
    EXPECT_EQ(hash_u32(r.resampled), gc.resampled_hash) << to_string(policy);
    ASSERT_TRUE(r.state_pool);
    EXPECT_EQ(hash_states(*r.state_pool), gc.states_hash) << to_string(policy);
    EXPECT_EQ(r.state_count(), r.diag.unique_resampled);
    if (policy == CapturePolicy::kInline) {
      // No replay pass: end states fell out of the weighted sweep.
      EXPECT_LT(r.diag.checkpoint_seconds, 0.10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, WindowGolden,
    ::testing::Values(
        GoldenCase{"seir-event", 300000, 40, 0x3c1be6c6c5fa4d5eull,
                   0xc48da3dcf7cfe392ull, 0x8fde80aed27c1728ull},
        GoldenCase{"chain-binomial", 300000, 40, 0xfeca5faecc4fc54eull,
                   0x0689ab91f6ca21e6ull, 0xfcc13215320f1b63ull},
        // ABM hashes re-captured when the event-driven engine landed: the
        // default "abm" backend is now the fast engine and seed_exposed
        // draws via partial Fisher-Yates, so the realization (not the
        // mechanics under test) changed. Both capture policies still must
        // agree bit for bit on these values.
        GoldenCase{"abm", 4000, 12, 0x178a394aca327b30ull,
                   0xf9143588101a3743ull, 0x4e3e06c856e7f69bull}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

// Two chained windows through the calibrator (window 2 branches from
// window 1's pooled end states, exercising pool-parent propagation) and a
// posterior forecast branched from the pooled states -- both pinned to
// the pre-refactor values captured at commit bdce11f.
TEST(WindowGolden, SequentialWindowsAndForecastMatchPreRefactor) {
  // Golden values are the scalar reference realization; pin the lane
  // kernels to scalar so the suite passes under any EPISMC_SIMD override.
  const epismc::simd::ScopedLevel simd_pin(epismc::simd::SimdLevel::kScalar);

  api::SimulatorSpec sim_spec;
  sim_spec.params.population = 300000;
  sim_spec.initial_exposed = 1500;
  const auto sim = api::simulators().create("seir-event", sim_spec);

  for (const CapturePolicy policy :
       {CapturePolicy::kInline, CapturePolicy::kDeferredReplay}) {
    CalibrationConfig cfg;
    cfg.windows = {{20, 26}, {27, 33}};
    cfg.n_params = 40;
    cfg.replicates = 2;
    cfg.resample_size = 80;
    cfg.seed = 777;
    cfg.capture = policy;
    SequentialCalibrator cal(*sim, shared_truth().observed(), cfg);
    cal.run_all();
    const WindowResult& w2 = cal.results()[1];
    EXPECT_EQ(hash_doubles(w2.ensemble.log_weight), 0x06d450bd2c167afeull)
        << to_string(policy);
    EXPECT_EQ(hash_u32(w2.resampled), 0x3cfbf74168d1bc17ull)
        << to_string(policy);
    EXPECT_EQ(hash_states(*w2.state_pool), 0x81fdac2ddf58a7a8ull)
        << to_string(policy);
    EXPECT_EQ(w2.state_count(), 8u);

    const Forecast fc = posterior_forecast(*sim, w2, 40, 16, 2024);
    std::uint64_t h = kFnvSeed;
    for (const auto& row : fc.true_cases) {
      h = fnv(h, row.data(), row.size() * sizeof(double));
    }
    for (const auto& row : fc.deaths) {
      h = fnv(h, row.data(), row.size() * sizeof(double));
    }
    EXPECT_EQ(h, 0xd6fd29700d0ed64cull) << to_string(policy);
  }
}

// ---------------------------------------------------------------------------
// Pool mechanics.
// ---------------------------------------------------------------------------

TEST(StatePoolTest, CheckpointRoundTripPreservesBytes) {
  api::SimulatorSpec sim_spec;
  sim_spec.params.population = 100000;
  sim_spec.initial_exposed = 500;
  for (const char* backend : {"seir-event", "chain-binomial", "abm"}) {
    api::SimulatorSpec spec = sim_spec;
    if (std::string(backend) == "abm") {
      spec.params.population = 4000;
      spec.initial_exposed = 20;
    }
    const auto sim = api::simulators().create(backend, spec);
    const epi::Checkpoint original = sim->initial_state(12, 5);

    const auto pool = sim->make_pool();
    const std::size_t slot = pool->append_checkpoint(original);
    EXPECT_EQ(pool->size(), 1u);
    EXPECT_EQ(pool->day(slot), 12);
    const epi::Checkpoint round_trip = pool->to_checkpoint(slot);
    EXPECT_EQ(round_trip.day, original.day) << backend;
    EXPECT_EQ(round_trip.bytes, original.bytes) << backend;
    EXPECT_GT(pool->approx_state_bytes(), 0u) << backend;
  }
}

TEST(StatePoolTest, CompactKeepsNamedSlotsInOrder) {
  EpiSimulatorConfig cfg;
  cfg.params.population = 50000;
  cfg.initial_exposed = 100;
  const SeirSimulator sim(cfg);
  const auto pool = sim.make_pool();
  for (std::int32_t day = 5; day <= 9; ++day) {
    pool->append_checkpoint(sim.initial_state(day, 7));
  }
  const std::vector<std::uint32_t> keep = {1, 3, 4};
  pool->compact(keep);
  ASSERT_EQ(pool->size(), 3u);
  EXPECT_EQ(pool->day(0), 6);
  EXPECT_EQ(pool->day(1), 8);
  EXPECT_EQ(pool->day(2), 9);
  EXPECT_THROW(pool->compact(std::vector<std::uint32_t>{7}),
               std::out_of_range);
}

TEST(StatePoolTest, EmptySlotAndBackendMismatchAreDiagnosed) {
  EpiSimulatorConfig cfg;
  cfg.params.population = 50000;
  cfg.initial_exposed = 100;
  const SeirSimulator seir(cfg);
  const ChainBinomialSimulator chain(cfg);

  // Resized-but-unwritten slots refuse reads.
  const auto pool = seir.make_pool();
  pool->resize(2);
  EXPECT_THROW((void)pool->day(0), std::logic_error);
  EXPECT_THROW((void)pool->to_checkpoint(1), std::logic_error);

  // A pool from another backend is rejected by name, not by crash.
  pool->set_from_checkpoint(0, seir.initial_state(10, 7));
  pool->compact(std::vector<std::uint32_t>{0});
  EnsembleBuffer buf(1, 3);
  buf.theta[0] = 0.3;
  try {
    chain.run_batch(*pool, 13, buf, 0, 1);
    FAIL() << "run_batch accepted a foreign pool";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("chain-binomial"), std::string::npos)
        << e.what();
  }
}

TEST(StatePoolTest, CaptureSinkRequiresPoolSpanningTheRange) {
  EpiSimulatorConfig cfg;
  cfg.params.population = 50000;
  cfg.initial_exposed = 100;
  const SeirSimulator sim(cfg);
  const auto parents = sim.make_pool();
  parents->append_checkpoint(sim.initial_state(19, 7));
  EnsembleBuffer buf(4, 3);
  for (std::size_t s = 0; s < 4; ++s) buf.theta[s] = 0.3;
  const auto capture = sim.make_pool();
  capture->resize(2);  // too small for sims [0, 4)
  BatchSink sink;
  sink.capture = capture.get();
  EXPECT_THROW(sim.run_batch(*parents, 22, buf, 0, 4, sink),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CapturePolicy::kAuto resolves by state size against the inline budget.
// ---------------------------------------------------------------------------

TEST(CapturePolicyTest, AutoSwitchesToDeferredUnderTightBudget) {
  EpiSimulatorConfig cfg;
  cfg.params.population = 100000;
  cfg.initial_exposed = 500;
  const SeirSimulator sim(cfg);
  const GaussianSqrtLikelihood lik(1.0);
  const BinomialBias bias;
  const std::vector<epi::Checkpoint> parents = {sim.initial_state(19, 7)};

  WindowSpec spec;
  spec.from_day = 20;
  spec.to_day = 33;
  spec.n_params = 12;
  spec.replicates = 2;
  spec.resample_size = 24;
  spec.seed = 5;
  spec.capture = CapturePolicy::kAuto;

  spec.inline_state_budget = std::size_t{1} << 40;  // effectively unlimited
  const WindowResult inline_r = run_importance_window(
      sim, lik, bias, shared_truth().observed(), parents, spec,
      prior_proposal());
  EXPECT_TRUE(inline_r.diag.inline_capture);

  spec.inline_state_budget = 1;  // nothing fits: forced deferred replay
  const WindowResult deferred_r = run_importance_window(
      sim, lik, bias, shared_truth().observed(), parents, spec,
      prior_proposal());
  EXPECT_FALSE(deferred_r.diag.inline_capture);

  // Policy changes capture mechanics only, never results.
  ASSERT_EQ(inline_r.state_count(), deferred_r.state_count());
  EXPECT_EQ(hash_states(*inline_r.state_pool),
            hash_states(*deferred_r.state_pool));
  EXPECT_EQ(inline_r.resampled, deferred_r.resampled);
}

// The generic checkpoint-pool bridge: a registry simulator that only
// implements run_window (no make_pool / run_batch overrides, so it gets
// the byte-blob CheckpointStatePool and the run_window bridge) calibrates
// through the same pool interface with identical results.
class RunWindowOnlySimulator final : public Simulator {
 public:
  explicit RunWindowOnlySimulator(const Simulator& inner) : inner_(inner) {}
  [[nodiscard]] epi::Checkpoint initial_state(
      std::int32_t day, std::uint64_t seed) const override {
    return inner_.initial_state(day, seed);
  }
  [[nodiscard]] WindowRun run_window(const epi::Checkpoint& state, double theta,
                                     std::uint64_t seed, std::uint64_t stream,
                                     std::int32_t to_day,
                                     bool want_checkpoint) const override {
    return inner_.run_window(state, theta, seed, stream, to_day,
                             want_checkpoint);
  }
  [[nodiscard]] std::string name() const override { return "custom"; }

 private:
  const Simulator& inner_;
};

TEST(StatePoolTest, CheckpointPoolBridgesRunWindowOnlySimulators) {
  EpiSimulatorConfig cfg;
  cfg.params.population = 100000;
  cfg.initial_exposed = 500;
  const SeirSimulator native(cfg);
  const RunWindowOnlySimulator custom(native);

  WindowSpec spec;
  spec.from_day = 20;
  spec.to_day = 33;
  spec.n_params = 8;
  spec.replicates = 2;
  spec.resample_size = 16;
  spec.seed = 31;
  spec.capture = CapturePolicy::kInline;
  const GaussianSqrtLikelihood lik(1.0);
  const BinomialBias bias;

  const std::vector<epi::Checkpoint> parents = {native.initial_state(19, 7)};
  const WindowResult from_native = run_importance_window(
      native, lik, bias, shared_truth().observed(), parents, spec,
      prior_proposal());
  const WindowResult from_custom = run_importance_window(
      custom, lik, bias, shared_truth().observed(), parents, spec,
      prior_proposal());
  // The custom path really ran on the blob pool...
  ASSERT_TRUE(from_custom.state_pool);
  EXPECT_EQ(from_custom.state_pool->backend(), "checkpoint");
  // ...and agrees bit for bit with the typed native engine.
  EXPECT_EQ(hash_doubles(from_native.ensemble.log_weight),
            hash_doubles(from_custom.ensemble.log_weight));
  EXPECT_EQ(from_native.resampled, from_custom.resampled);
  EXPECT_EQ(hash_states(*from_native.state_pool),
            hash_states(*from_custom.state_pool));
}

}  // namespace
