// ObservedData day-indexed access and window slicing.

#include <gtest/gtest.h>

#include "core/data.hpp"

namespace {

using epismc::core::ObservedData;

TEST(ObservedData, DayIndexing) {
  const ObservedData d(10, {1.0, 2.0, 3.0}, {0.1, 0.2, 0.3});
  EXPECT_EQ(d.first_day(), 10);
  EXPECT_EQ(d.last_day(), 12);
  EXPECT_DOUBLE_EQ(d.cases_at(10), 1.0);
  EXPECT_DOUBLE_EQ(d.cases_at(12), 3.0);
  EXPECT_DOUBLE_EQ(d.deaths_at(11), 0.2);
  EXPECT_THROW((void)d.cases_at(9), std::out_of_range);
  EXPECT_THROW((void)d.cases_at(13), std::out_of_range);
}

TEST(ObservedData, WindowSlices) {
  const ObservedData d(1, {1.0, 2.0, 3.0, 4.0, 5.0}, {});
  const auto w = d.cases_window(2, 4);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[2], 4.0);
  EXPECT_THROW((void)d.cases_window(4, 2), std::invalid_argument);
  // Single-day window.
  EXPECT_EQ(d.cases_window(3, 3).size(), 1u);
}

TEST(ObservedData, DeathsOptional) {
  const ObservedData no_deaths(1, {1.0, 2.0}, {});
  EXPECT_FALSE(no_deaths.has_deaths());
  EXPECT_THROW((void)no_deaths.deaths_at(1), std::logic_error);
  EXPECT_THROW((void)no_deaths.deaths_window(1, 2), std::logic_error);

  const ObservedData with_deaths(1, {1.0, 2.0}, {0.0, 1.0});
  EXPECT_TRUE(with_deaths.has_deaths());
  EXPECT_EQ(with_deaths.deaths_window(1, 2).size(), 2u);
}

TEST(ObservedData, Validation) {
  EXPECT_THROW(ObservedData(1, {}, {}), std::invalid_argument);
  EXPECT_THROW(ObservedData(1, {1.0, 2.0}, {0.5}), std::invalid_argument);
}

}  // namespace
