// ScenarioSweep: presets x backends in one call -- cell layout, eager name
// validation, per-cell error capture, and the determinism contract (results
// byte-identical across thread counts, stable under simulator reordering
// per scenario).

#include <gtest/gtest.h>

#include <algorithm>

#include "api/api.hpp"
#include "parallel/parallel.hpp"

namespace {

using namespace epismc;

// Small-population copies of the built-in presets keep a 4x2 sweep cheap
// enough for a unit test; registered once for every test in this file.
void ensure_test_presets() {
  static const bool registered = [] {
    for (const char* base :
         {"paper-baseline", "sharp-jump", "low-reporting",
          "chain-binomial-truth"}) {
      api::ScenarioPreset preset = api::scenarios().create(base);
      preset.name = std::string("test-") + base;
      preset.scenario.params.population = 120000;
      preset.scenario.initial_exposed = 150;
      preset.scenario.total_days = 50;
      api::scenarios().add(preset.name,
                           [preset] { return preset; });
    }
    return true;
  }();
  (void)registered;
}

std::vector<std::string> test_scenarios() {
  ensure_test_presets();
  return {"test-paper-baseline", "test-sharp-jump", "test-low-reporting",
          "test-chain-binomial-truth"};
}

api::ScenarioSweep small_sweep() {
  api::ScenarioSweep sweep;
  sweep.add_scenarios(test_scenarios())
      .add_simulator("seir-event")
      .add_simulator("chain-binomial")
      .with_windows({{20, 33}, {34, 47}})
      .with_budget(40, 3, 80)
      .with_seed(991);
  return sweep;
}

/// Statistical fingerprint of a sweep (excludes wall-clock).
std::vector<double> fingerprint(const std::vector<api::SweepRun>& runs) {
  std::vector<double> out;
  for (const auto& run : runs) {
    EXPECT_TRUE(run.ok()) << run.scenario << " x " << run.simulator << ": "
                          << run.error;
    for (const auto& w : run.windows) {
      out.push_back(w.theta.mean);
      out.push_back(w.theta.sd);
      out.push_back(w.rho.mean);
      out.push_back(w.rho.sd);
    }
    for (const auto& d : run.diagnostics) out.push_back(d.ess);
  }
  return out;
}

TEST(Sweep, RunsFourScenariosAcrossTwoBackends) {
  const api::ScenarioSweep sweep = small_sweep();
  EXPECT_EQ(sweep.cell_count(), 8u);
  const auto runs = sweep.run_all();
  ASSERT_EQ(runs.size(), 8u);

  // Scenario-major layout, every cell completed with 2 windows.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].scenario, test_scenarios()[i / 2]);
    EXPECT_EQ(runs[i].simulator,
              (i % 2 == 0) ? "seir-event" : "chain-binomial");
    ASSERT_TRUE(runs[i].ok()) << runs[i].error;
    ASSERT_EQ(runs[i].windows.size(), 2u);
    ASSERT_EQ(runs[i].diagnostics.size(), 2u);
    EXPECT_GT(runs[i].diagnostics[0].ess, 0.0);
    // Truth metadata rides along for reporting.
    EXPECT_GT(runs[i].truth_theta[0], 0.0);
    EXPECT_GT(runs[i].truth_rho[0], 0.0);
  }
}

TEST(Sweep, ByteIdenticalAcrossThreadCounts) {
  const api::ScenarioSweep sweep = small_sweep();

  // Capture the threaded count *before* forcing serial: max_threads()
  // reflects the last set_threads call, so reading it afterwards would
  // compare two serial runs. Force >= 2 so the contract is exercised even
  // on a single-core machine.
  const int threaded_count = std::max(2, parallel::max_threads());
  parallel::set_threads(1);
  const auto serial = fingerprint(sweep.run_all());
  parallel::set_threads(threaded_count);
  const auto threaded = fingerprint(sweep.run_all());
  EXPECT_EQ(serial, threaded);
}

TEST(Sweep, HierarchicalSchedulingNeverOversubscribesLanes) {
  // Under the pool backend the outer cell loop and the inner particle
  // loops share one set of lanes via hierarchical submit; peak_active is
  // the observable that nesting never exceeded the configured budget.
  const api::ScenarioSweep sweep = small_sweep();
  const int prev_threads = parallel::max_threads();
  const parallel::PoolBackend prev_backend = parallel::backend();
  parallel::set_backend(parallel::PoolBackend::kPool);
  parallel::set_threads(4);
  parallel::TaskPool::instance().reset_peak();

  const auto pooled = fingerprint(sweep.run_all());

  const parallel::PoolStats stats = parallel::pool_stats();
  EXPECT_LE(stats.peak_active, stats.lanes)
      << "outer cells x inner particle loops oversubscribed the pool";
  EXPECT_GE(stats.peak_active, 1);
  EXPECT_EQ(stats.lanes, 4);

  // Same answer as the serial reference: hierarchical placement is an
  // engine decision, not a statistical one.
  parallel::set_backend(parallel::PoolBackend::kSerial);
  parallel::set_threads(1);
  const auto serial = fingerprint(sweep.run_all());
  EXPECT_EQ(pooled, serial);

  parallel::set_threads(prev_threads);
  parallel::set_backend(prev_backend);
}

TEST(Sweep, CellsInvariantToListOrdering) {
  // A cell's randomness derives from (sweep seed, scenario *name*), so
  // listing the scenarios or backends in a different order reproduces
  // every cell exactly.
  ensure_test_presets();
  const auto cell = [&](const std::vector<std::string>& scenarios,
                        const std::vector<std::string>& sims,
                        const std::string& scenario,
                        const std::string& simulator) {
    api::ScenarioSweep sweep;
    sweep.add_scenarios(scenarios)
        .add_simulators(sims)
        .with_windows({{20, 33}})
        .with_budget(30, 2, 60)
        .with_seed(5);
    const auto runs = sweep.run_all();
    for (const auto& r : runs) {
      if (r.scenario == scenario && r.simulator == simulator) {
        return r.windows.front().theta.mean;
      }
    }
    ADD_FAILURE() << "cell not found";
    return 0.0;
  };
  const double ab = cell({"test-paper-baseline", "test-sharp-jump"},
                         {"seir-event", "chain-binomial"},
                         "test-paper-baseline", "chain-binomial");
  const double ba = cell({"test-sharp-jump", "test-paper-baseline"},
                         {"chain-binomial", "seir-event"},
                         "test-paper-baseline", "chain-binomial");
  EXPECT_EQ(ab, ba);
}

TEST(Sweep, UnknownNamesRejectedEagerly) {
  api::ScenarioSweep sweep;
  EXPECT_THROW(sweep.add_scenario("atlantis"), api::UnknownComponentError);
  EXPECT_THROW(sweep.add_simulator("spherical-cow"),
               api::UnknownComponentError);
  EXPECT_THROW((void)api::ScenarioSweep().run_all(), std::logic_error);
}

TEST(Sweep, CellErrorsAreCapturedNotFatal) {
  ensure_test_presets();
  api::ScenarioSweep sweep;
  sweep.add_scenario("test-paper-baseline")
      .add_simulator("seir-event")
      // Windows beyond the 50-day truth horizon: the cell must fail with a
      // data-coverage error while run_all still returns.
      .with_windows({{20, 33}, {34, 47}, {48, 61}, {62, 75}})
      .with_budget(20, 2, 40);
  const auto runs = sweep.run_all();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs[0].ok());
  EXPECT_NE(runs[0].error.find("cover"), std::string::npos);
}

TEST(Sweep, SessionSetupHookApplies) {
  ensure_test_presets();
  api::ScenarioSweep sweep;
  sweep.add_scenario("test-paper-baseline")
      .add_simulator("seir-event")
      .with_windows({{20, 33}})
      .with_budget(30, 2, 60)
      .with_session_setup([](api::CalibrationSession& s) {
        s.with_bias("identity");  // no reporting correction
      });
  const auto runs = sweep.run_all();
  ASSERT_TRUE(runs[0].ok()) << runs[0].error;
  // IdentityBias ignores rho, so the posterior rho equals the fixed 1.0
  // the proposal assigns when the bias model does not use it.
  EXPECT_DOUBLE_EQ(runs[0].windows[0].rho.mean, 1.0);
}

}  // namespace
