// Chain-binomial baseline engine: same invariants as the event-driven model
// (conservation, determinism, checkpoint equivalence) plus cross-engine
// consistency -- both engines must agree on aggregate epidemic size within
// stochastic tolerance, since they discretize the same disease process.

#include <gtest/gtest.h>

#include <numeric>

#include "epi/chain_binomial.hpp"
#include "epi/seir_model.hpp"

namespace {

using namespace epismc::epi;

DiseaseParameters test_params() {
  DiseaseParameters p;
  p.population = 150000;
  return p;
}

TEST(ChainBinomial, Conservation) {
  ChainBinomialModel m(test_params(), PiecewiseSchedule(0.35), 3);
  m.seed_exposed(300);
  for (int day = 1; day <= 120; ++day) {
    m.step();
    ASSERT_EQ(m.total_individuals(), 150000) << "day " << day;
  }
}

TEST(ChainBinomial, Deterministic) {
  const auto run = [] {
    ChainBinomialModel m(test_params(), PiecewiseSchedule(0.3), 5, 2);
    m.seed_exposed(200);
    m.run_until_day(60);
    return m.trajectory().new_infections(1, 60);
  };
  EXPECT_EQ(run(), run());
}

TEST(ChainBinomial, HigherThetaGrowsFaster) {
  const auto total = [](double theta) {
    ChainBinomialModel m(test_params(), PiecewiseSchedule(theta), 7);
    m.seed_exposed(100);
    m.run_until_day(60);
    const auto cases = m.trajectory().new_infections(1, 60);
    return std::accumulate(cases.begin(), cases.end(), 0.0);
  };
  EXPECT_GT(total(0.4), 2.0 * total(0.2));
}

TEST(ChainBinomial, CheckpointResumeEqualsUninterrupted) {
  const auto seeded = [] {
    ChainBinomialModel m(test_params(), PiecewiseSchedule(0.3), 11);
    m.seed_exposed(200);
    return m;
  };
  ChainBinomialModel reference = seeded();
  reference.run_until_day(80);

  ChainBinomialModel half = seeded();
  half.run_until_day(40);
  ChainBinomialModel resumed =
      ChainBinomialModel::restore(half.make_checkpoint());
  resumed.run_until_day(80);
  EXPECT_EQ(resumed.census(), reference.census());
}

TEST(ChainBinomial, CheckpointOverridesApply) {
  ChainBinomialModel m(test_params(), PiecewiseSchedule(0.3), 13);
  m.seed_exposed(200);
  m.run_until_day(30);
  RestartOverrides ovr;
  ovr.seed = 77;
  ovr.transmission_rate = 0.05;
  ChainBinomialModel cold = ChainBinomialModel::restore(m.make_checkpoint(), ovr);
  cold.run_until_day(90);
  RestartOverrides hot;
  hot.seed = 77;
  hot.transmission_rate = 0.5;
  ChainBinomialModel warm = ChainBinomialModel::restore(m.make_checkpoint(), hot);
  warm.run_until_day(90);
  const auto sum = [](const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0);
  };
  EXPECT_GT(sum(warm.trajectory().new_infections(31, 90)),
            sum(cold.trajectory().new_infections(31, 90)));
}

TEST(ChainBinomial, RejectsEventEngineCheckpoints) {
  SeirModel event_model(test_params(), PiecewiseSchedule(0.3), 17);
  event_model.seed_exposed(100);
  event_model.run_until_day(10);
  EXPECT_THROW(
      (void)ChainBinomialModel::restore(event_model.make_checkpoint()),
      epismc::io::ArchiveError);
}

TEST(CrossEngine, AggregateEpidemicSizesComparable) {
  // Not bit-identical (different sojourn laws), but cumulative infections
  // over a fixed horizon should be the same order of magnitude.
  const double theta = 0.35;
  const auto run_event = [&] {
    SeirModel m(test_params(), PiecewiseSchedule(theta), 19);
    m.seed_exposed(200);
    m.run_until_day(70);
    const auto c = m.trajectory().new_infections(1, 70);
    return std::accumulate(c.begin(), c.end(), 0.0);
  };
  const auto run_chain = [&] {
    ChainBinomialModel m(test_params(), PiecewiseSchedule(theta), 19);
    m.seed_exposed(200);
    m.run_until_day(70);
    const auto c = m.trajectory().new_infections(1, 70);
    return std::accumulate(c.begin(), c.end(), 0.0);
  };
  const double event_total = run_event();
  const double chain_total = run_chain();
  EXPECT_GT(event_total, 0.0);
  EXPECT_GT(chain_total, 0.0);
  EXPECT_LT(std::max(event_total, chain_total) /
                std::min(event_total, chain_total),
            5.0);
}

}  // namespace
