// Durability corruption matrix: take one real sealed StreamState archive
// (a mid-window streaming session, serialized and saved through the
// durable writer) and mutate it every way a disk or a crash can -- bit
// flips in each section, truncation at every structural boundary, footer
// field damage, foreign and future-format files. Every cell must fail
// with a *typed* io::ArchiveError -- never a clean load of garbage state,
// never an untyped exception, and never the retryable kIo class (the
// bytes are bad; retrying reads the same bad bytes).
//
// This file runs in the unit group, so the sanitizer CI legs sweep the
// whole matrix under ASan + UBSan as well.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "core/scenario.hpp"
#include "io/binary_archive.hpp"
#include "io/checkpoint_rotation.hpp"
#include "stream/stream_state.hpp"
#include "stream/streaming_calibrator.hpp"

namespace {

using namespace epismc;
using epismc::io::ArchiveError;
using epismc::io::ArchiveErrorKind;
using epismc::io::ArchiveFooter;
using epismc::io::BinaryReader;
using epismc::io::BinaryWriter;
using stream::StreamState;

constexpr std::uint64_t kSeedGeneration = 3;

// One real archive, built once per binary: a streaming session stopped
// mid-window so the open-window sections (accumulators, pool snapshot,
// degenerate-draw flags) are all populated, sealed through save().
const std::vector<std::byte>& sealed_frame() {
  static const std::vector<std::byte> frame = [] {
    core::ScenarioConfig scenario;
    scenario.params.population = 50000;
    scenario.initial_exposed = 80;
    scenario.total_days = 30;
    scenario.theta_segments = {{0, 0.30}};
    scenario.rho_segments = {{0, 0.60}};
    const core::GroundTruth truth = core::simulate_ground_truth(scenario);

    core::CalibrationConfig cfg;
    cfg.windows = {{5, 14}, {15, 24}};
    cfg.n_params = 32;
    cfg.replicates = 2;
    cfg.resample_size = 64;
    cfg.seed = 99;

    api::SimulatorSpec spec;
    spec.params = scenario.params;
    spec.burnin_theta = 0.3;
    spec.initial_exposed = scenario.initial_exposed;

    api::CalibrationSession session;
    session.with_simulator("seir-event", spec)
        .with_data(truth.observed())
        .with_config(std::move(cfg));

    stream::StreamingCalibrator cal = session.stream({});
    const core::ObservedData data = truth.observed();
    for (std::int32_t d = 5; d <= 9; ++d) {  // stop mid first window
      stream::DailyObservation obs;
      obs.day = d;
      obs.cases = data.cases_at(d);
      cal.ingest(obs);
    }

    BinaryWriter out(StreamState::kArchiveVersion);
    cal.snapshot().serialize(out);
    const auto path =
        std::filesystem::temp_directory_path() / "epismc_durability_seed.bin";
    out.save(path, kSeedGeneration);

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    std::vector<std::byte> bytes(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    in.close();
    std::filesystem::remove(path);
    return bytes;
  }();
  return frame;
}

std::size_t payload_size() {
  return sealed_frame().size() - ArchiveFooter::kBytes;
}

/// Write `frame` verbatim to a scratch file and attempt the full recovery
/// path (sealed load + StreamState parse). Returns the ArchiveError kind,
/// or nullopt -- with a test failure recorded -- when the mutant loaded
/// cleanly or threw something untyped.
std::optional<ArchiveErrorKind> load_kind(const std::vector<std::byte>& frame,
                                          const std::string& cell) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("epismc_durability_" + cell + ".bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
  std::optional<ArchiveErrorKind> kind;
  try {
    BinaryReader in = BinaryReader::load(path);
    (void)StreamState::deserialize(in);
    ADD_FAILURE() << cell << ": mutated archive loaded cleanly";
  } catch (const ArchiveError& e) {
    kind = e.kind();
    EXPECT_FALSE(e.retryable())
        << cell << ": bad bytes must not be classed retryable: " << e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << cell << ": untyped exception escaped: " << e.what();
  }
  std::filesystem::remove(path);
  return kind;
}

std::vector<std::byte> with_bit_flip(std::size_t offset, int bit = 0) {
  std::vector<std::byte> frame = sealed_frame();
  frame[offset] ^= std::byte{static_cast<unsigned char>(1u << bit)};
  return frame;
}

std::vector<std::byte> truncated_to(std::size_t size) {
  std::vector<std::byte> frame = sealed_frame();
  frame.resize(size);
  return frame;
}

TEST(Durability, BaselineArchiveLoadsCleanly) {
  const auto path =
      std::filesystem::temp_directory_path() / "epismc_durability_clean.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(sealed_frame().data()),
              static_cast<std::streamsize>(sealed_frame().size()));
  }
  BinaryReader in = BinaryReader::load(path);
  EXPECT_EQ(in.version(), StreamState::kArchiveVersion);
  EXPECT_EQ(in.generation(), kSeedGeneration);
  const StreamState st = StreamState::deserialize(in);
  EXPECT_TRUE(in.exhausted());
  EXPECT_GT(st.n_sims, 0u);
  EXPECT_FALSE(st.days.empty());
  std::filesystem::remove(path);
}

TEST(Durability, EveryPayloadBitFlipFailsTheCrc) {
  // The CRC covers the whole payload, so damage anywhere -- the archive
  // header, the tag, the accumulators, the last payload byte -- is caught
  // at the seal check before a single field is parsed.
  const std::size_t payload = payload_size();
  const std::size_t offsets[] = {0,            // header magic
                                 4,            // header version word
                                 8,            // StreamState tag length
                                 payload / 3,  // early payload
                                 payload / 2,  // mid payload
                                 payload - 1}; // last payload byte
  for (const std::size_t off : offsets) {
    for (const int bit : {0, 7}) {
      const auto kind = load_kind(with_bit_flip(off, bit),
                                  "payload_flip_" + std::to_string(off) +
                                      "_b" + std::to_string(bit));
      if (kind) {
        EXPECT_EQ(*kind, ArchiveErrorKind::kCorrupt)
            << "payload offset " << off << " bit " << bit;
      }
    }
  }
}

TEST(Durability, FooterFieldDamageIsTyped) {
  const std::size_t size = sealed_frame().size();
  // Footer layout: u64 payload_bytes, u64 generation, u32 magic, u32 crc.
  const struct {
    std::size_t offset;
    ArchiveErrorKind expect;
    const char* name;
  } cells[] = {
      // A wrong declared length reads as truncation (checked right after
      // the magic, before the CRC).
      {size - 24, ArchiveErrorKind::kTruncated, "footer_payload_bytes"},
      // The generation stamp is under the CRC: rotation ordering cannot
      // be silently flipped by bit rot.
      {size - 16, ArchiveErrorKind::kCorrupt, "footer_generation"},
      {size - 8, ArchiveErrorKind::kCorrupt, "footer_magic"},
      {size - 4, ArchiveErrorKind::kCorrupt, "footer_crc"},
  };
  for (const auto& cell : cells) {
    const auto kind = load_kind(with_bit_flip(cell.offset), cell.name);
    if (kind) EXPECT_EQ(*kind, cell.expect) << cell.name;
  }
}

TEST(Durability, EveryTruncationBoundaryIsTyped) {
  const std::size_t size = sealed_frame().size();
  const std::size_t payload = payload_size();
  const std::size_t cuts[] = {
      1,             // single byte
      7,             // inside the archive header
      8,             // header only (below the structural minimum)
      31,            // one short of header + footer minimum
      payload / 2,   // torn mid-payload
      payload,       // exactly the payload, footer gone
      size - 24,     // same boundary, spelled from the seal side
      size - 4,      // crc field torn off
      size - 1,      // one byte short
  };
  for (const std::size_t cut : cuts) {
    const auto kind =
        load_kind(truncated_to(cut), "truncate_" + std::to_string(cut));
    if (kind) {
      EXPECT_TRUE(*kind == ArchiveErrorKind::kTruncated ||
                  *kind == ArchiveErrorKind::kCorrupt)
          << "cut at " << cut << " reported "
          << epismc::io::to_string(*kind);
    }
  }
  // Size zero is its own cell: a created-then-crashed empty file.
  const auto kind = load_kind(truncated_to(0), "truncate_0");
  if (kind) EXPECT_EQ(*kind, ArchiveErrorKind::kTruncated);
}

TEST(Durability, TrailingGarbageBreaksTheSeal) {
  std::vector<std::byte> frame = sealed_frame();
  frame.push_back(std::byte{0xAB});
  const auto kind = load_kind(frame, "appended_byte");
  if (kind) {
    EXPECT_TRUE(*kind == ArchiveErrorKind::kTruncated ||
                *kind == ArchiveErrorKind::kCorrupt);
  }
}

TEST(Durability, ForeignSealedArchiveIsForeignTag) {
  // A well-formed, correctly sealed archive of the right format version
  // that simply holds some other payload: the one case the CRC cannot
  // catch, caught by the tag instead.
  BinaryWriter out(StreamState::kArchiveVersion);
  out.write_string("epismc-sweep-grid");
  out.write(std::uint64_t{42});
  const auto path =
      std::filesystem::temp_directory_path() / "epismc_durability_foreign.bin";
  out.save(path);
  BinaryReader in = BinaryReader::load(path);
  try {
    (void)StreamState::deserialize(in);
    FAIL() << "foreign archive parsed as a stream checkpoint";
  } catch (const ArchiveError& e) {
    EXPECT_EQ(e.kind(), ArchiveErrorKind::kForeignTag) << e.what();
    EXPECT_NE(std::string(e.what()).find("epismc-sweep-grid"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Durability, FutureFormatVersionIsVersionNotForeign) {
  // The version gate fires before the tag read, so an archive from a
  // newer build reports "upgrade me", not "wrong payload".
  BinaryWriter out(StreamState::kArchiveVersion + 97);
  out.write_string(StreamState::kArchiveTag);
  const auto path =
      std::filesystem::temp_directory_path() / "epismc_durability_future.bin";
  out.save(path);
  BinaryReader in = BinaryReader::load(path);
  try {
    (void)StreamState::deserialize(in);
    FAIL() << "future-version archive parsed";
  } catch (const ArchiveError& e) {
    EXPECT_EQ(e.kind(), ArchiveErrorKind::kVersion) << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Durability, RotationInspectClassifiesDamagedSlots) {
  // The slot prober used by resume_latest and checkpoint_inspect must
  // carry the same typed verdicts: a damaged newest slot reads unusable
  // with its error, recency ordering falls back to the intact older one.
  const auto base =
      std::filesystem::temp_directory_path() / "epismc_durability_rot";
  const io::CheckpointRotation rotation{base};
  std::filesystem::remove(rotation.slot_a());
  std::filesystem::remove(rotation.slot_b());

  const auto write_frame = [](const std::filesystem::path& p,
                              const std::vector<std::byte>& frame) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  };
  write_frame(rotation.slot_a(), sealed_frame());          // intact, gen 3
  write_frame(rotation.slot_b(), with_bit_flip(payload_size() / 2));

  const auto slots = rotation.inspect();
  EXPECT_TRUE(slots[0].usable);
  EXPECT_EQ(slots[0].generation, kSeedGeneration);
  EXPECT_FALSE(slots[1].usable);
  EXPECT_FALSE(slots[1].error.empty());

  const auto ordered = rotation.by_recency();
  EXPECT_TRUE(ordered[0].usable || ordered[1].usable);

  std::filesystem::remove(rotation.slot_a());
  std::filesystem::remove(rotation.slot_b());
}

}  // namespace
