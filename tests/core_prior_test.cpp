// Priors and jitter kernels: sampling within support, density consistency,
// and the asymmetric-upward rho kernel from §V-B.

#include <gtest/gtest.h>

#include <cmath>

#include "core/prior.hpp"
#include "random/seeding.hpp"

namespace {

using namespace epismc::core;
using epismc::rng::Engine;

TEST(UniformPrior, SamplesWithinSupport) {
  const UniformPrior prior(0.1, 0.5);
  Engine eng(20240060);
  double mn = 1.0;
  double mx = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = prior.sample(eng);
    ASSERT_GE(x, 0.1);
    ASSERT_LT(x, 0.5);
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  // Support is actually explored.
  EXPECT_LT(mn, 0.12);
  EXPECT_GT(mx, 0.48);
}

TEST(UniformPrior, Density) {
  const UniformPrior prior(0.0, 4.0);
  EXPECT_NEAR(prior.logpdf(1.0), -std::log(4.0), 1e-14);
  EXPECT_EQ(prior.logpdf(5.0), -std::numeric_limits<double>::infinity());
  EXPECT_THROW(UniformPrior(1.0, 1.0), std::invalid_argument);
  EXPECT_NE(prior.describe().find("Uniform"), std::string::npos);
}

TEST(BetaPrior, MeanMatches) {
  const BetaPrior prior(4.0, 1.0);
  Engine eng(20240061);
  double acc = 0.0;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) acc += prior.sample(eng);
  EXPECT_NEAR(acc / kDraws, 0.8, 0.005);
  EXPECT_THROW(BetaPrior(0.0, 1.0), std::invalid_argument);
}

TEST(PointPrior, Degenerate) {
  const PointPrior prior(0.42);
  Engine eng(1);
  EXPECT_DOUBLE_EQ(prior.sample(eng), 0.42);
  EXPECT_DOUBLE_EQ(prior.logpdf(0.42), 0.0);
  EXPECT_EQ(prior.logpdf(0.4), -std::numeric_limits<double>::infinity());
}

TEST(JitterKernel, SymmetricWindow) {
  const JitterKernel k{0.05, 0.05, 0.0, 1.0};
  EXPECT_TRUE(k.symmetric());
  Engine eng(20240062);
  double acc = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = k.sample(eng, 0.5);
    ASSERT_GE(x, 0.45);
    ASSERT_LE(x, 0.55);
    acc += x;
  }
  EXPECT_NEAR(acc / kDraws, 0.5, 0.002);
}

TEST(JitterKernel, AsymmetricShiftsUpward) {
  // The paper's rho proposal: more mass above the center.
  const JitterKernel k{0.08, 0.12, 0.0, 1.0};
  EXPECT_FALSE(k.symmetric());
  Engine eng(20240063);
  double acc = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) acc += k.sample(eng, 0.6);
  EXPECT_NEAR(acc / kDraws, 0.6 + (0.12 - 0.08) / 2.0, 0.003);
}

TEST(JitterKernel, ClampsToBounds) {
  const JitterKernel k{0.2, 0.2, 0.0, 1.0};
  Engine eng(20240064);
  for (int i = 0; i < 5000; ++i) {
    const double near_one = k.sample(eng, 0.95);
    ASSERT_LE(near_one, 1.0);
    const double near_zero = k.sample(eng, 0.05);
    ASSERT_GE(near_zero, 0.0);
  }
}

}  // namespace
