// Sequential calibrator (paper §IV-C): multi-window runs track a
// time-varying transmission rate, posterior->prior carry-over restarts from
// checkpoints (never day zero), death data tightens the posterior, and
// configuration errors are caught up front.

#include <gtest/gtest.h>

#include "core/posterior.hpp"
#include "core/scenario.hpp"
#include "core/sequential_calibrator.hpp"

namespace {

using namespace epismc::core;

ScenarioConfig test_scenario() {
  ScenarioConfig cfg;
  cfg.params.population = 300000;
  cfg.initial_exposed = 150;
  cfg.total_days = 80;
  // Sharper theta drop than the paper's to make two-window tracking
  // detectable at small particle counts.
  cfg.theta_segments = {{0, 0.30}, {34, 0.45}};
  cfg.rho_segments = {{0, 0.60}, {34, 0.80}};
  return cfg;
}

CalibrationConfig small_config() {
  CalibrationConfig cfg;
  cfg.windows = {{20, 33}, {34, 47}};
  cfg.n_params = 120;
  cfg.replicates = 4;
  cfg.resample_size = 240;
  cfg.seed = 4242;
  return cfg;
}

TEST(Calibrator, TracksTimeVaryingTheta) {
  const ScenarioConfig scenario = test_scenario();
  const GroundTruth truth = simulate_ground_truth(scenario);
  const SeirSimulator sim(
      EpiSimulatorConfig{scenario.params, 0.3, scenario.initial_exposed});
  SequentialCalibrator cal(sim, truth.observed(), small_config());
  cal.run_all();
  ASSERT_TRUE(cal.finished());
  ASSERT_EQ(cal.results().size(), 2u);

  const auto w1 = summarize_window(cal.results()[0]);
  const auto w2 = summarize_window(cal.results()[1]);
  EXPECT_NEAR(w1.theta.mean, 0.30, 0.06);
  EXPECT_NEAR(w2.theta.mean, 0.45, 0.08);
  // The calibrator noticed the change point.
  EXPECT_GT(w2.theta.mean, w1.theta.mean + 0.05);
}

TEST(Calibrator, WindowsRestartFromCheckpoints) {
  const ScenarioConfig scenario = test_scenario();
  const GroundTruth truth = simulate_ground_truth(scenario);
  const SeirSimulator sim(
      EpiSimulatorConfig{scenario.params, 0.3, scenario.initial_exposed});
  SequentialCalibrator cal(sim, truth.observed(), small_config());

  const WindowResult& w1 = cal.run_next_window();
  // All first-window end states sit at the window boundary...
  for (const auto& state : w1.states) EXPECT_EQ(state.day, 33);
  // ...and the shared initial state sits at burnin_day (default 0: each
  // particle owns its full early path).
  EXPECT_EQ(cal.initial_state().day, 0);

  const WindowResult& w2 = cal.run_next_window();
  // ...and second-window sims branch from those states (parent indices
  // reference w1.states).
  for (const auto& rec : w2.sims) {
    ASSERT_LT(rec.parent, w1.states.size());
  }
  for (const auto& state : w2.states) EXPECT_EQ(state.day, 47);
}

TEST(Calibrator, DeathsTightenPosterior) {
  const ScenarioConfig scenario = [] {
    ScenarioConfig cfg = test_scenario();
    cfg.initial_exposed = 600;  // enough deaths to be informative
    return cfg;
  }();
  const GroundTruth truth = simulate_ground_truth(scenario);
  const SeirSimulator sim(
      EpiSimulatorConfig{scenario.params, 0.3, scenario.initial_exposed});

  CalibrationConfig cases_only = small_config();
  cases_only.windows = {{20, 33}};
  CalibrationConfig with_deaths = cases_only;
  with_deaths.use_deaths = true;

  SequentialCalibrator cal_a(sim, truth.observed(), cases_only);
  SequentialCalibrator cal_b(sim, truth.observed(), with_deaths);
  cal_a.run_all();
  cal_b.run_all();

  const auto a = summarize_window(cal_a.results()[0]);
  const auto b = summarize_window(cal_b.results()[0]);
  // Joint (theta, rho) uncertainty volume must not grow when a second
  // data stream is added.
  const double vol_a = a.theta.ci90.width() * a.rho.ci90.width();
  const double vol_b = b.theta.ci90.width() * b.rho.ci90.width();
  EXPECT_LE(vol_b, vol_a * 1.10);
}

TEST(Calibrator, ReproducibleAcrossRuns) {
  const ScenarioConfig scenario = test_scenario();
  const GroundTruth truth = simulate_ground_truth(scenario);
  const SeirSimulator sim(
      EpiSimulatorConfig{scenario.params, 0.3, scenario.initial_exposed});
  const auto run = [&] {
    SequentialCalibrator cal(sim, truth.observed(), small_config());
    cal.run_all();
    return cal.results()[1].posterior_thetas();
  };
  EXPECT_EQ(run(), run());
}

TEST(Calibrator, RunNextWindowBeyondEndThrows) {
  const ScenarioConfig scenario = test_scenario();
  const GroundTruth truth = simulate_ground_truth(scenario);
  const SeirSimulator sim(
      EpiSimulatorConfig{scenario.params, 0.3, scenario.initial_exposed});
  CalibrationConfig cfg = small_config();
  cfg.windows = {{20, 33}};
  SequentialCalibrator cal(sim, truth.observed(), cfg);
  EXPECT_THROW((void)cal.initial_state(), std::logic_error);
  (void)cal.run_next_window();
  EXPECT_TRUE(cal.finished());
  EXPECT_THROW((void)cal.run_next_window(), std::logic_error);
}

TEST(Calibrator, ConfigValidation) {
  CalibrationConfig cfg;
  cfg.windows = {};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = CalibrationConfig{};
  cfg.windows = {{20, 33}, {35, 40}};  // gap
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = CalibrationConfig{};
  cfg.windows = {{20, 19}};  // inverted
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = CalibrationConfig{};
  cfg.n_params = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = CalibrationConfig{};
  cfg.theta_prior = nullptr;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  EXPECT_NO_THROW(CalibrationConfig{}.validate());
}

TEST(Calibrator, DataCoverageChecked) {
  const ScenarioConfig scenario = [] {
    ScenarioConfig cfg = test_scenario();
    cfg.total_days = 30;  // too short for the default windows
    return cfg;
  }();
  const GroundTruth truth = simulate_ground_truth(scenario);
  const SeirSimulator sim(
      EpiSimulatorConfig{scenario.params, 0.3, scenario.initial_exposed});
  EXPECT_THROW(
      SequentialCalibrator(sim, truth.observed(), small_config()),
      std::invalid_argument);
}

TEST(Calibrator, UseDeathsRequiresDeathSeries) {
  const ScenarioConfig scenario = test_scenario();
  const GroundTruth truth = simulate_ground_truth(scenario);
  const SeirSimulator sim(
      EpiSimulatorConfig{scenario.params, 0.3, scenario.initial_exposed});
  CalibrationConfig cfg = small_config();
  cfg.use_deaths = true;
  const ObservedData no_deaths(1, truth.observed_cases, {});
  EXPECT_THROW(SequentialCalibrator(sim, no_deaths, cfg),
               std::invalid_argument);
}

TEST(Calibrator, ChainBinomialSimulatorWorksToo) {
  // The calibrator is simulator-agnostic: swap in the baseline engine.
  ScenarioConfig scenario = test_scenario();
  scenario.use_chain_binomial = true;
  const GroundTruth truth = simulate_ground_truth(scenario);
  const ChainBinomialSimulator sim(
      EpiSimulatorConfig{scenario.params, 0.3, scenario.initial_exposed});
  CalibrationConfig cfg = small_config();
  cfg.windows = {{20, 33}};
  SequentialCalibrator cal(sim, truth.observed(), cfg);
  const auto& w = cal.run_next_window();
  const auto summary = summarize_window(w);
  EXPECT_NEAR(summary.theta.mean, 0.30, 0.08);
}

}  // namespace
